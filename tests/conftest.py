"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import strategies as st

from repro.fp.format import FP32, FP48, FP64, FPFormat

PAPER_FORMATS = (FP32, FP48, FP64)

# A tiny format that makes corner cases dense (2-bit exponent range is
# minimal; every rounding/overflow path is a short hop away).
TINY = FPFormat(exp_bits=4, man_bits=3, name="tiny")

ALL_FORMATS = PAPER_FORMATS + (TINY,)


# --------------------------------------------------------------------- #
# float32 <-> bits helpers (for numpy cross-checks)
# --------------------------------------------------------------------- #
def f32_to_bits(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def bits_to_f32(b: int) -> float:
    return struct.unpack("<f", struct.pack("<I", b))[0]


def f64_to_bits(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_f64(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b))[0]


# --------------------------------------------------------------------- #
# Hypothesis strategies for FP words
# --------------------------------------------------------------------- #
def words(fmt: FPFormat) -> st.SearchStrategy[int]:
    """Any bit pattern of the format (includes zero/Inf/NaN encodings)."""
    return st.integers(min_value=0, max_value=fmt.word_mask)


def finite_words(fmt: FPFormat) -> st.SearchStrategy[int]:
    """Finite patterns: biased exponent below the all-ones encoding."""

    def build(sign: int, exp: int, man: int) -> int:
        return fmt.pack(sign, exp, man)

    return st.builds(
        build,
        st.integers(0, 1),
        st.integers(0, fmt.exp_max - 1),
        st.integers(0, fmt.man_mask),
    )


def normal_words(fmt: FPFormat) -> st.SearchStrategy[int]:
    """Normal (non-zero, finite) patterns."""

    def build(sign: int, exp: int, man: int) -> int:
        return fmt.pack(sign, exp, man)

    return st.builds(
        build,
        st.integers(0, 1),
        st.integers(1, fmt.exp_max - 1),
        st.integers(0, fmt.man_mask),
    )


def moderate_words(fmt: FPFormat) -> st.SearchStrategy[int]:
    """Normals away from the exponent rails (no overflow/underflow)."""
    lo = fmt.bias // 2
    hi = fmt.bias + fmt.bias // 2

    def build(sign: int, exp: int, man: int) -> int:
        return fmt.pack(sign, exp, man)

    return st.builds(
        build,
        st.integers(0, 1),
        st.integers(lo, hi),
        st.integers(0, fmt.man_mask),
    )


@pytest.fixture(params=ALL_FORMATS, ids=lambda f: f.name)
def fmt(request) -> FPFormat:
    """Parametrized over all formats including the tiny stress format."""
    return request.param


@pytest.fixture(params=PAPER_FORMATS, ids=lambda f: f.name)
def paper_fmt(request) -> FPFormat:
    """Parametrized over the paper's three precisions."""
    return request.param


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xF1094)
