"""Unit tests for the command-line runner."""

import pytest

from repro.cli import main
from repro.engine import CACHE_DIR_ENV, configure_default_engine


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig5" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments: nope" in err

    def test_run_single_experiment(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Nallatech" in out

    def test_run_multiple(self, capsys):
        assert main(["table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 4" in out

    def test_csv_mode_table(self, capsys):
        assert main(["--csv", "table4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Unit,Source")

    def test_csv_mode_figure_bundle(self, capsys):
        assert main(["--csv", "fig6"]) == 0
        out = capsys.readouterr().out
        # all three panels exported (energy, resources, latency)
        assert sum(1 for line in out.splitlines() if line.startswith("b,")) == 3

    def test_results_writer(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "artifacts"
        assert cli_main(["results", "--outdir", str(out)]) == 0
        files = sorted(p.name for p in out.iterdir())
        # every experiment leaves a .txt, tables/figures also leave CSVs
        assert "table1.txt" in files
        assert "table1.csv" in files
        assert "fig5_energy.csv" in files
        assert "sec4_2.txt" in files
        assert (out / "table1.csv").read_text().startswith("Precision,")

    def test_results_artifact_listing_is_sorted(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["results", "--outdir", str(out)]) == 0
        lines = [
            line.strip()
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("  ")
        ]
        assert lines == sorted(lines)


class TestCliEngine:
    """The --parallel/--cache-dir surface and the cache subcommand."""

    @pytest.fixture(autouse=True)
    def _isolate_engine_state(self, monkeypatch):
        # build_engine() publishes --cache-dir via the environment (for
        # pool workers) and resets the default engine; keep both from
        # leaking across tests.
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        yield
        import os

        os.environ.pop(CACHE_DIR_ENV, None)
        configure_default_engine(None)

    def test_parallel_output_matches_serial(self, capsys):
        assert main(["table1", "fig2a"]) == 0
        serial = capsys.readouterr().out
        assert main(["table1", "fig2a", "--parallel", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_engine_summary_on_stderr(self, capsys):
        assert main(["table3"]) == 0
        err = capsys.readouterr().err
        assert "engine: 1 job(s)" in err
        assert "miss(es)" in err

    def test_warm_cache_run_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table3", "table4", "--cache-dir", cache]) == 0
        cold = capsys.readouterr()
        assert "2 miss(es)" in cold.err
        assert main(["table3", "table4", "--cache-dir", cache]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical rendering
        assert "2 hit(s)" in warm.err
        assert "100% hit rate" in warm.err

    def test_no_cache_flag_disables_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table3", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["table3", "--cache-dir", cache, "--no-cache"]) == 0
        assert "0 hit(s)" in capsys.readouterr().err

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table3", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "version" in out
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "entries:     0" in capsys.readouterr().out

    def test_cache_usage_error(self, capsys):
        assert main(["cache"]) == 2
        assert "usage: repro cache" in capsys.readouterr().err
        assert main(["cache", "defrost"]) == 2
        assert "unknown cache action" in capsys.readouterr().err


class TestCliVerify:
    """The 'repro verify' differential-campaign subcommand."""

    @pytest.fixture(autouse=True)
    def _isolate_engine_state(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        yield
        import os

        os.environ.pop(CACHE_DIR_ENV, None)
        configure_default_engine(None)

    def test_scaled_campaign_passes(self, capsys):
        assert main(["verify", "--pairs", "800", "--chunk", "400"]) == 0
        captured = capsys.readouterr()
        assert "differential campaign" in captured.out
        assert "PASS" in captured.out
        assert "0 mismatches" in captured.out
        assert "engine:" in captured.err  # runs through repro.engine

    def test_format_and_op_selection(self, capsys):
        assert main(
            ["verify", "--formats", "fp48", "--ops", "mul",
             "--pairs", "400", "--chunk", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "fp48" in out
        assert "fp32" not in out

    def test_warm_cache_campaign_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["verify", "--formats", "fp32", "--pairs", "400",
                "--chunk", "200", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "100% hit rate" in warm.err

    def test_unknown_format_rejected(self, capsys):
        assert main(["verify", "--formats", "fp128"]) == 2
        assert "unknown formats" in capsys.readouterr().err

    def test_unknown_op_rejected(self, capsys):
        assert main(["verify", "--ops", "cbrt"]) == 2
        assert "unknown ops" in capsys.readouterr().err


class TestCliVerifyKernels:
    """The 'repro verify --kernels' stepped-vs-batched matrix."""

    @pytest.fixture(autouse=True)
    def _isolate_engine_state(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        yield
        import os

        os.environ.pop(CACHE_DIR_ENV, None)
        configure_default_engine(None)

    def test_kernel_matrix_passes(self, capsys):
        assert main(["verify", "--kernels"]) == 0
        captured = capsys.readouterr()
        assert "kernel differential matrix: PASS" in captured.out
        assert "RAW-hazard raise(s)" in captured.out
        assert "engine:" in captured.err  # runs through repro.engine

    def test_warm_cache_matrix_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["verify", "--kernels", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "100% hit rate" in warm.err


class TestCliBench:
    """The 'repro bench' machine-readable perf snapshot."""

    def test_bench_prints_summary(self, capsys):
        assert main(["bench", "--bench-sizes", "2,4", "--scan-sizes", "8",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "kernel bench" in out
        assert "matmul.stepped.fp32.n4" in out
        assert "matmul.batched.fp32.n8" in out
        assert "matmul.fma.fp32.n4" in out
        assert "batched_vs_stepped.fp32.n4" in out
        assert "fma_vs_batched.fp32.n4" in out

    def test_bench_writes_json_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_kernel.json"
        assert main(["bench", "--bench-sizes", "2", "--scan-sizes", "",
                     "--repeats", "1", "--json", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == "repro-bench/1"
        assert snapshot["suite"] == "kernel"
        assert snapshot["config"]["sizes"] == [2]
        assert snapshot["config"]["scan_sizes"] == []
        names = [entry["name"] for entry in snapshot["benchmarks"]]
        assert "matmul.stepped.fp32.n2" in names
        assert "matmul.batched.fp32.n2" in names
        assert "matmul.fma.fp32.n2" in names
        assert "batched_vs_stepped.fp32.n2" in snapshot["speedups"]
        assert "fma_vs_batched.fp32.n2" in snapshot["speedups"]

    def test_bench_rejects_bad_sizes(self, capsys):
        assert main(["bench", "--bench-sizes", "2,zap"]) == 2
        assert "--bench-sizes" in capsys.readouterr().err

    def test_bench_rejects_bad_repeats(self, capsys):
        assert main(["bench", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err


class TestCliService:
    """The serve/loadgen subcommands and --version."""

    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        assert main(["--version"]) == 0
        assert capsys.readouterr().out.strip() == __version__

    def test_serve_rejects_invalid_config(self, capsys):
        assert main(["serve", "--max-batch", "0"]) == 2
        err = capsys.readouterr().err
        assert "max_batch" in err
        assert "REPRO_SERVE_MAX_BATCH" in err

    def test_serve_rejects_malformed_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "lots")
        assert main(["serve"]) == 2
        assert "REPRO_SERVE_QUEUE_DEPTH" in capsys.readouterr().err

    def test_loadgen_rejects_unknown_format(self, capsys):
        assert main(["loadgen", "--port", "1", "--format", "fp31"]) == 2
        assert "fp31" in capsys.readouterr().err

    def test_loadgen_reports_unreachable_server(self, capsys):
        # A port nothing listens on: transport failure, exit code 1.
        assert main(["loadgen", "--port", "1", "--requests", "4",
                     "--concurrency", "2", "--timeout", "10"]) == 1
