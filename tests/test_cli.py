"""Unit tests for the command-line runner."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig5" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments: nope" in err

    def test_run_single_experiment(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Nallatech" in out

    def test_run_multiple(self, capsys):
        assert main(["table3", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 4" in out

    def test_csv_mode_table(self, capsys):
        assert main(["--csv", "table4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Unit,Source")

    def test_csv_mode_figure_bundle(self, capsys):
        assert main(["--csv", "fig6"]) == 0
        out = capsys.readouterr().out
        # all three panels exported (energy, resources, latency)
        assert sum(1 for line in out.splitlines() if line.startswith("b,")) == 3

    def test_results_writer(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "artifacts"
        assert cli_main(["results", "--outdir", str(out)]) == 0
        files = sorted(p.name for p in out.iterdir())
        # every experiment leaves a .txt, tables/figures also leave CSVs
        assert "table1.txt" in files
        assert "table1.csv" in files
        assert "fig5_energy.csv" in files
        assert "sec4_2.txt" in files
        assert (out / "table1.csv").read_text().startswith("Precision,")
