"""Tests for ulp and error-statistics utilities."""

from fractions import Fraction

import pytest

from repro.analysis.accuracy import (
    ErrorStats,
    batch_ulp_errors,
    matmul_ulp_errors,
    ulp,
    ulp_error,
)
from repro.fp.adder import fp_add
from repro.fp.format import FP32, FP64
from repro.fp.value import FPValue


class TestUlp:
    def test_ulp_of_one(self):
        assert ulp(FP32, FP32.one()) == Fraction(1, 1 << 23)

    def test_ulp_scales_with_binade(self):
        two = FPValue.from_float(FP32, 2.0).bits
        assert ulp(FP32, two) == 2 * ulp(FP32, FP32.one())

    def test_ulp_of_zero_uses_smallest_normal(self):
        assert ulp(FP32, FP32.zero()) == ulp(FP32, FP32.min_normal())

    def test_ulp_of_special_rejected(self):
        with pytest.raises(ValueError):
            ulp(FP32, FP32.inf(0))

    def test_ulp_error_exact_is_zero(self):
        one = FP32.one()
        assert ulp_error(FP32, one, Fraction(1)) == 0

    def test_ulp_error_half(self):
        # exact value sits half an ulp above 1.0
        exact = Fraction(1) + Fraction(1, 1 << 24)
        assert ulp_error(FP32, FP32.one(), exact) == Fraction(1, 2)


class TestErrorStats:
    def test_collect(self):
        stats = ErrorStats.collect(
            [Fraction(0), Fraction(1, 2), Fraction(1), Fraction(2)]
        )
        assert stats.count == 4
        assert stats.max_ulp == 2.0
        assert stats.mean_ulp == pytest.approx(0.875)
        assert stats.correctly_rounded_fraction == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorStats.collect([])

    def test_rms_at_least_mean(self):
        stats = ErrorStats.collect([Fraction(0), Fraction(2)])
        assert stats.rms_ulp >= stats.mean_ulp


class TestBatch:
    def test_single_ops_are_correctly_rounded(self, rng):
        """Every RNE add must land within half an ulp — by construction."""
        results = []
        exacts = []
        for _ in range(300):
            a = FP32.pack(0, rng.randint(100, 150), rng.randrange(1 << 23))
            b = FP32.pack(0, rng.randint(100, 150), rng.randrange(1 << 23))
            bits, flags = fp_add(FP32, a, b)
            if not FP32.is_finite(bits) or flags.underflow:
                continue
            results.append(bits)
            exacts.append(
                FPValue(FP32, a).to_fraction() + FPValue(FP32, b).to_fraction()
            )
        stats = batch_ulp_errors(FP32, results, exacts)
        assert stats.correctly_rounded_fraction == 1.0
        assert stats.max_ulp <= 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            batch_ulp_errors(FP32, [FP32.one()], [])


class TestMatmulUlpErrors:
    @pytest.mark.parametrize("fmt", [FP32, FP64], ids=lambda f: f.name)
    def test_fast_routed_matches_scalar_routed(self, fmt, rng, monkeypatch):
        """The fast-path routing (now serving fp64 too) must not change
        the statistics — only the wall time."""
        import repro.analysis.accuracy as acc

        n = 4
        a = [
            [FPValue.from_float(fmt, rng.uniform(-4, 4)).bits for _ in range(n)]
            for _ in range(n)
        ]
        b = [
            [FPValue.from_float(fmt, rng.uniform(-4, 4)).bits for _ in range(n)]
            for _ in range(n)
        ]
        fast = matmul_ulp_errors(fmt, a, b)
        monkeypatch.setattr(acc, "supports_vectorized", lambda _fmt: False)
        slow = matmul_ulp_errors(fmt, a, b)
        assert fast == slow
        assert fast.count == n * n

    def test_errors_are_small_for_benign_inputs(self, rng):
        n = 3
        a = [
            [FPValue.from_float(FP64, rng.uniform(0.5, 2)).bits for _ in range(n)]
            for _ in range(n)
        ]
        b = [
            [FPValue.from_float(FP64, rng.uniform(0.5, 2)).bits for _ in range(n)]
            for _ in range(n)
        ]
        stats = matmul_ulp_errors(FP64, a, b)
        # n - 1 chained RNE adds bound the error well under n/2 ulp.
        assert stats.max_ulp < n
