"""Unit tests for the text-table renderer."""

import pytest

from repro.analysis.tables import Table, format_table


class TestTable:
    def test_add_row_validates_arity(self):
        t = Table("T", ("a", "b"))
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = Table("My Title", ("col1", "col2"))
        t.add_row("x", 1.5)
        out = t.render()
        assert "My Title" in out
        assert "col1" in out and "col2" in out
        assert "x" in out and "1.500" in out

    def test_column_extraction(self):
        t = Table("T", ("a", "b"))
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]
        with pytest.raises(ValueError):
            t.column("missing")

    def test_csv(self):
        t = Table("T", ("a", "b"))
        t.add_row(1, 2.5)
        csv = t.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert "1,2.500" in csv

    def test_str_is_render(self):
        t = Table("T", ("a",))
        t.add_row(1)
        assert str(t) == t.render()


class TestFormatting:
    def test_large_floats_get_thousands_separator(self):
        out = format_table("T", ("v",), [[12345.6]])
        assert "12,346" in out

    def test_medium_floats_one_decimal(self):
        out = format_table("T", ("v",), [[42.25]])
        assert "42.2" in out or "42.3" in out

    def test_small_floats_three_decimals(self):
        out = format_table("T", ("v",), [[0.5471]])
        assert "0.547" in out

    def test_zero(self):
        out = format_table("T", ("v",), [[0.0]])
        assert "0" in out

    def test_alignment_right(self):
        out = format_table("T", ("value",), [[1], [100]])
        lines = out.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")
