"""Unit tests for figure-series containers."""

import pytest

from repro.analysis.series import Series, SweepResult


class TestSeries:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("s", ())


class TestSweepResult:
    def make(self):
        r = SweepResult("Fig X", "n", "nJ", x=(1.0, 2.0, 3.0))
        r.add_series("a", [10, 20, 30])
        r.add_series("b", [1, 2, 3])
        return r

    def test_add_series_length_checked(self):
        r = SweepResult("T", "x", "y", x=(1.0, 2.0))
        with pytest.raises(ValueError):
            r.add_series("bad", [1.0])

    def test_get(self):
        r = self.make()
        assert r.get("a").values == (10.0, 20.0, 30.0)
        with pytest.raises(KeyError):
            r.get("zzz")

    def test_render_contains_labels_and_values(self):
        out = self.make().render()
        assert "Fig X" in out
        assert "a" in out and "b" in out
        assert "30" in out

    def test_csv(self):
        csv = self.make().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "n,a,b"
        assert lines[1] == "1,10,1"

    def test_str(self):
        r = self.make()
        assert str(r) == r.render()
