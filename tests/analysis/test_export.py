"""Tests for JSON serialization of report objects."""

import json

import pytest

from repro.analysis.export import (
    SCHEMA_VERSION,
    estimate_to_dict,
    implementation_to_dict,
    load_json,
    power_to_dict,
    to_json,
)
from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32
from repro.kernels.performance import MatmulPerformanceModel
from repro.power.xpower import estimate_power


@pytest.fixture(scope="module")
def impl():
    return synthesize(adder_datapath(FP32), 10)


@pytest.fixture(scope="module")
def estimate():
    model = MatmulPerformanceModel(
        FP32,
        synthesize(adder_datapath(FP32), 10),
        synthesize(multiplier_datapath(FP32), 7),
    )
    return model.estimate(16)


class TestSerialization:
    def test_implementation_roundtrip(self, impl):
        payload = load_json(to_json(impl))
        assert payload["kind"] == "implementation"
        assert payload["stages"] == 10
        assert payload["slices"] == impl.slices
        assert payload["format"] == "fp32"

    def test_estimate_roundtrip(self, estimate):
        payload = load_json(to_json(estimate))
        assert payload["kind"] == "kernel_estimate"
        assert payload["n"] == 16
        assert payload["pes"] == 16
        assert payload["energy_breakdown"]["total"] == pytest.approx(
            estimate.energy_nj, rel=1e-3
        )

    def test_power_roundtrip(self, impl):
        payload = load_json(to_json(estimate_power(impl, 100.0)))
        assert payload["kind"] == "power"
        assert payload["total_mw"] > 0

    def test_json_is_valid_and_sorted(self, impl):
        text = to_json(impl)
        data = json.loads(text)
        assert list(data) == sorted(data)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_json(object())

    def test_schema_checked(self):
        bad = json.dumps({"schema": SCHEMA_VERSION + 1})
        with pytest.raises(ValueError, match="schema"):
            load_json(bad)
        with pytest.raises(ValueError, match="object"):
            load_json("[1, 2]")

    def test_dicts_directly(self, impl, estimate):
        assert implementation_to_dict(impl)["schema"] == SCHEMA_VERSION
        assert estimate_to_dict(estimate)["schema"] == SCHEMA_VERSION
        assert power_to_dict(estimate_power(impl))["schema"] == SCHEMA_VERSION
