"""Unit tests for the fused multiply-add (single-rounding MAC)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.adder import fp_add
from repro.fp.format import FP32
from repro.fp.mac import FPMac, fp_fma
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue, encode_fraction

from tests.conftest import ALL_FORMATS, moderate_words, words


def f(x: float) -> int:
    return FPValue.from_float(FP32, x).bits


class TestSpecialValues:
    def test_nan_propagates(self):
        bits, flags = fp_fma(FP32, FP32.nan(), f(1.0), f(1.0))
        assert FP32.is_nan(bits) and flags.invalid

    def test_zero_times_inf_invalid(self):
        bits, flags = fp_fma(FP32, FP32.zero(0), FP32.inf(0), f(1.0))
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_product_minus_inf_addend_invalid(self):
        bits, flags = fp_fma(FP32, FP32.inf(0), f(1.0), FP32.inf(1))
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_product_propagates(self):
        bits, _ = fp_fma(FP32, FP32.inf(0), f(-2.0), f(5.0))
        assert bits == FP32.inf(1)

    def test_inf_addend_propagates(self):
        bits, _ = fp_fma(FP32, f(1.0), f(1.0), FP32.inf(1))
        assert bits == FP32.inf(1)

    def test_all_zero_sign_rules(self):
        # (+0 * +0) + +0 = +0 ; (-0 * +0) + +0 = +0 ; (-0*+0) + -0 = -0
        assert fp_fma(FP32, FP32.zero(0), FP32.zero(0), FP32.zero(0))[0] == FP32.zero(0)
        assert fp_fma(FP32, FP32.zero(1), FP32.zero(0), FP32.zero(0))[0] == FP32.zero(0)
        assert fp_fma(FP32, FP32.zero(1), FP32.zero(0), FP32.zero(1))[0] == FP32.zero(1)

    def test_exact_cancellation_positive_zero(self):
        bits, flags = fp_fma(FP32, f(2.0), f(3.0), f(-6.0))
        assert bits == FP32.zero(0)
        assert flags.zero


class TestSingleRounding:
    def test_fused_beats_chained(self):
        """The canonical FMA case: (1+e)^2 - 1 with e = 2^-12.

        Chained: the product 1 + 2^-11 + 2^-24 is a rounding tie that
        drops the low term, so the subtraction returns 2^-11 exactly —
        wrong by 2^-24.  Fused: the exact answer 2^-11 + 2^-24 =
        2^-11 (1 + 2^-13) is representable, so the error is zero.
        """
        x = FP32.pack(0, FP32.bias, 1 << 11)  # 1 + 2^-12
        minus_one = f(-1.0)
        fused, _ = fp_fma(FP32, x, x, minus_one)
        prod, _ = fp_mul(FP32, x, x)
        chained, _ = fp_add(FP32, prod, minus_one)
        exact = FPValue(FP32, x).to_fraction() ** 2 - 1
        fused_err = abs(FPValue(FP32, fused).to_fraction() - exact)
        chained_err = abs(FPValue(FP32, chained).to_fraction() - exact)
        assert fused_err == 0
        assert chained_err > 0

    def test_matches_exact_oracle_directed(self):
        a, b, c = f(1.5), f(2.5), f(0.125)
        exact = Fraction(3, 2) * Fraction(5, 2) + Fraction(1, 8)
        bits, _ = fp_fma(FP32, a, b, c)
        assert bits == encode_fraction(FP32, exact)[0]


format_st = st.sampled_from(ALL_FORMATS)


@st.composite
def fmt_and_three_words(draw, strategy=words):
    fmt = draw(format_st)
    return fmt, draw(strategy(fmt)), draw(strategy(fmt)), draw(strategy(fmt))


class TestProperties:
    @settings(max_examples=250)
    @given(fmt_and_three_words(), st.sampled_from(list(RoundingMode)))
    def test_matches_exact_oracle(self, fabc, mode):
        fmt, a, b, c = fabc
        if not (fmt.is_finite(a) and fmt.is_finite(b) and fmt.is_finite(c)):
            return
        got, _ = fp_fma(fmt, a, b, c, mode)
        pa = Fraction(0) if fmt.is_zero(a) else FPValue(fmt, a).to_fraction()
        pb = Fraction(0) if fmt.is_zero(b) else FPValue(fmt, b).to_fraction()
        pc = Fraction(0) if fmt.is_zero(c) else FPValue(fmt, c).to_fraction()
        exact = pa * pb + pc
        if exact == 0:
            assert fmt.is_zero(got)
        else:
            assert got == encode_fraction(fmt, exact, mode)[0]

    @settings(max_examples=150)
    @given(fmt_and_three_words(moderate_words))
    def test_zero_addend_equals_multiply(self, fabc):
        fmt, a, b, _ = fabc
        fused, _ = fp_fma(fmt, a, b, fmt.zero(0))
        product, _ = fp_mul(fmt, a, b)
        assert fused == product

    @settings(max_examples=150)
    @given(fmt_and_three_words(moderate_words))
    def test_one_multiplicand_equals_add(self, fabc):
        fmt, a, _, c = fabc
        fused, _ = fp_fma(fmt, a, fmt.one(0), c)
        total, _ = fp_add(fmt, a, c)
        assert fused == total

    @settings(max_examples=150)
    @given(fmt_and_three_words(moderate_words))
    def test_fused_error_never_worse_than_chained(self, fabc):
        fmt, a, b, c = fabc
        fused, ff = fp_fma(fmt, a, b, c)
        prod, _ = fp_mul(fmt, a, b)
        chained, cf = fp_add(fmt, prod, c)
        if not (fmt.is_finite(fused) and fmt.is_finite(chained)):
            return
        if ff.underflow or cf.underflow or fmt.is_zero(fused) or fmt.is_zero(chained):
            return
        exact = (
            FPValue(fmt, a).to_fraction() * FPValue(fmt, b).to_fraction()
            + FPValue(fmt, c).to_fraction()
        )
        fe = abs(FPValue(fmt, fused).to_fraction() - exact)
        ce = abs(FPValue(fmt, chained).to_fraction() - exact)
        assert fe <= ce


class TestWrapper:
    def test_mac_object(self):
        mac = FPMac(FP32)
        bits, _ = mac.fma(f(2.0), f(3.0), f(4.0))
        assert FPValue(FP32, bits).to_float() == 10.0
        assert mac(f(2.0), f(3.0), f(4.0))[0] == bits

    def test_truncate_mode(self):
        mac = FPMac(FP32, RoundingMode.TRUNCATE)
        x = FP32.pack(0, FP32.bias, 1)
        bits, _ = mac.fma(x, x, FP32.zero(0))
        rne, _ = fp_fma(FP32, x, x, FP32.zero(0), RoundingMode.NEAREST_EVEN)
        assert FPValue(FP32, bits).to_float() <= FPValue(FP32, rne).to_float()
