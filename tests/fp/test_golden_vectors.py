"""Golden-vector regression corpus: replay the checked-in oracle vectors
through the scalar AND vectorized datapaths on every run."""

from pathlib import Path

import numpy as np
import pytest

from repro.fp.adder import fp_add, fp_sub
from repro.fp.divider import fp_div
from repro.fp.mac import fp_fma
from repro.fp.multiplier import fp_mul
from repro.fp.packing import PACKED_OPS, packed_call, packing_width
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt
from repro.fp.vectorized import (
    vec_add,
    vec_div,
    vec_fma,
    vec_mul,
    vec_sqrt,
    vec_sub,
)
from repro.verify.golden import (
    GOLDEN_OPS,
    GOLDEN_SEED,
    SMALL_GOLDEN_OPS,
    corpus_filename,
    generate_corpus,
    load_corpus,
)

VECTOR_DIR = Path(__file__).resolve().parent.parent / "vectors"

SCALAR = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
    "sqrt": fp_sqrt,
    "fma": fp_fma,
}
VECTORIZED = {
    "add": vec_add,
    "sub": vec_sub,
    "mul": vec_mul,
    "div": vec_div,
    "sqrt": vec_sqrt,
    "fma": vec_fma,
}

CORPUS_FILES = sorted(VECTOR_DIR.glob("*.json"))


def test_corpus_is_checked_in():
    names = {p.name for p in CORPUS_FILES}
    for fmt_name in ("fp32", "fp48", "fp64"):
        for op in GOLDEN_OPS:
            assert f"{fmt_name}_{op}.json" in names
    for fmt_name in ("fp16", "bf16"):
        for op in SMALL_GOLDEN_OPS:
            assert f"{fmt_name}_{op}.json" in names


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_scalar_datapaths_match_golden(path):
    doc = load_corpus(path)
    fmt, op = doc["fmt"], doc["op"]
    impl = SCALAR[op]
    assert doc["cases"], "corpus must not be empty"
    for case in doc["cases"]:
        for mode in RoundingMode:
            want_bits, want_flags = case[mode.value]
            got_bits, got_flags = impl(fmt, *case["operands"], mode)
            assert got_bits == want_bits, (path.name, case, mode.value)
            assert got_flags.to_bits() == want_flags, (path.name, case, mode.value)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_vectorized_datapaths_match_golden(path):
    doc = load_corpus(path)
    fmt, op = doc["fmt"], doc["op"]
    vec = VECTORIZED[op]
    columns = [
        np.array([c["operands"][j] for c in doc["cases"]], dtype=np.uint64)
        for j in range(doc["arity"])
    ]
    for mode in RoundingMode:
        bits, flags = vec(fmt, *columns, mode, with_flags=True)
        for i, case in enumerate(doc["cases"]):
            want_bits, want_flags = case[mode.value]
            assert int(bits[i]) == want_bits, (path.name, case, mode.value)
            assert int(flags[i]) == want_flags, (path.name, case, mode.value)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_packed_datapaths_match_golden(path):
    """Corpora whose (op, format) qualify replay through every supported
    packed sub-lane datapath too — same bits, same flags."""
    doc = load_corpus(path)
    fmt, op = doc["fmt"], doc["op"]
    if op not in PACKED_OPS or packing_width(fmt) == 1:
        pytest.skip(f"{op}/{fmt.name} has no packed datapath")
    columns = [
        np.array([c["operands"][j] for c in doc["cases"]], dtype=np.uint64)
        for j in range(doc["arity"])
    ]
    widths = [w for w in (4, 2) if w <= packing_width(fmt)]
    for width in widths:
        for mode in RoundingMode:
            bits, flags = packed_call(
                op, fmt, *columns, mode, width=width, with_flags=True
            )
            for i, case in enumerate(doc["cases"]):
                want_bits, want_flags = case[mode.value]
                assert int(bits[i]) == want_bits, (
                    path.name, width, case, mode.value,
                )
                assert int(flags[i]) == want_flags, (
                    path.name, width, case, mode.value,
                )


def test_small_corpora_pin_range_corners():
    """The fp16/bf16 corpora carry the subnormal and overflow rows."""
    rne = RoundingMode.NEAREST_EVEN.value
    for name in ("fp16", "bf16"):
        add = load_corpus(VECTOR_DIR / f"{name}_add.json")
        fmt = add["fmt"]
        by_label = {
            c["classes"][0]: c
            for c in add["cases"]
            if len(c["classes"]) == 1
        }
        assert by_label["directed:overflow_to_inf"][rne] == (
            fmt.inf(0),
            0b10100,  # overflow | inexact
        )
        # max subnormal + min subnormal is exact and stays subnormal.
        bits, flags = by_label["directed:subnormal_sum"][rne]
        assert fmt.is_zero(bits) or fmt.unpack(bits)[1] == 0
        mul = load_corpus(VECTOR_DIR / f"{name}_mul.json")
        by_label = {
            c["classes"][0]: c
            for c in mul["cases"]
            if len(c["classes"]) == 1
        }
        # min_normal^2 is far below the subnormal floor: rounds to zero
        # with underflow | inexact (| zero).
        bits, flags = by_label["directed:underflow_flush"][rne]
        assert fmt.is_zero(bits)
        assert flags & 0b1100 == 0b1100  # underflow | inexact
        sub = load_corpus(VECTOR_DIR / f"{name}_sub.json")
        by_label = {
            c["classes"][0]: c
            for c in sub["cases"]
            if len(c["classes"]) == 1
        }
        # max - (-max) doubles out of range in one step.
        assert by_label["directed:overflow_to_inf"][rne][0] == fmt.inf(0)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_is_seed_pinned(path):
    """Regenerating from the pinned seed reproduces the file exactly."""
    doc = load_corpus(path)
    assert doc["seed"] == GOLDEN_SEED
    regenerated = generate_corpus(doc["fmt"], doc["op"])
    # Generation is deterministic, so compare case i with case i.
    assert len(doc["cases"]) == len(regenerated["cases"])
    for got, want in zip(doc["cases"], regenerated["cases"]):
        assert got["classes"] == tuple(want["classes"])
        for key, word in zip(("a", "b", "c"), got["operands"]):
            assert word == int(want[key], 16)
        for mode in RoundingMode:
            assert got[mode.value] == (
                int(want[mode.value]["bits"], 16),
                want[mode.value]["flags"],
            )


def test_div_corpus_pins_exception_rows():
    """The div corpus must carry the x/0, 0/0 and Inf/Inf flag rows."""
    doc = load_corpus(VECTOR_DIR / "fp32_div.json")
    directed = {c["classes"][0] for c in doc["cases"] if len(c["classes"]) == 1}
    for label in ("directed:x_div_zero", "directed:zero_div_zero",
                  "directed:inf_div_inf"):
        assert label in directed
    fmt = doc["fmt"]
    by_label = {c["classes"][0]: c for c in doc["cases"] if len(c["classes"]) == 1}
    rne = RoundingMode.NEAREST_EVEN.value
    assert by_label["directed:x_div_zero"][rne] == (fmt.inf(0), 0b100000)
    assert by_label["directed:zero_div_zero"][rne][1] == 0b10  # invalid
    assert by_label["directed:inf_div_inf"][rne][1] == 0b10  # invalid


def test_sqrt_corpus_pins_parity_cases():
    """The sqrt corpus carries odd/even-exponent and never-a-tie rows."""
    doc = load_corpus(VECTOR_DIR / "fp48_sqrt.json")
    by_label = {c["classes"][0]: c for c in doc["cases"] if len(c["classes"]) == 1}
    for label in ("directed:even_exact_square", "directed:odd_exponent",
                  "directed:all_ones_even", "directed:all_ones_odd"):
        assert label in by_label
    fmt = doc["fmt"]
    # sqrt(4.0) = 2.0 exactly: identical bits, no inexact, in both modes.
    exact = by_label["directed:even_exact_square"]
    two = fmt.pack(0, fmt.bias + 1, 0)
    for mode in RoundingMode:
        assert exact[mode.value] == (two, 0)
    # A square root is never an exact tie, so RNE and RTZ may differ by
    # at most one ULP on the all-ones rows — and both stay inexact.
    for label in ("directed:all_ones_even", "directed:all_ones_odd"):
        case = by_label[label]
        rne_bits, rne_flags = case[RoundingMode.NEAREST_EVEN.value]
        rtz_bits, rtz_flags = case[RoundingMode.TRUNCATE.value]
        assert rne_flags == rtz_flags == 0b100  # inexact
        assert rne_bits - rtz_bits in (0, 1)


def test_corpus_filename_roundtrip():
    from repro.fp.format import FP48

    assert corpus_filename(FP48, "add") == "fp48_add.json"
