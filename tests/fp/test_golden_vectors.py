"""Golden-vector regression corpus: replay the checked-in oracle vectors
through the scalar AND vectorized datapaths on every run."""

from pathlib import Path

import numpy as np
import pytest

from repro.fp.adder import fp_add
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import vec_add, vec_mul
from repro.verify.golden import (
    GOLDEN_OPS,
    GOLDEN_SEED,
    corpus_filename,
    generate_corpus,
    load_corpus,
)

VECTOR_DIR = Path(__file__).resolve().parent.parent / "vectors"

SCALAR = {"add": fp_add, "mul": fp_mul}
VECTORIZED = {"add": vec_add, "mul": vec_mul}

CORPUS_FILES = sorted(VECTOR_DIR.glob("*.json"))


def test_corpus_is_checked_in():
    names = {p.name for p in CORPUS_FILES}
    for fmt_name in ("fp32", "fp48", "fp64"):
        for op in GOLDEN_OPS:
            assert f"{fmt_name}_{op}.json" in names


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_scalar_datapaths_match_golden(path):
    doc = load_corpus(path)
    fmt, op = doc["fmt"], doc["op"]
    impl = SCALAR[op]
    assert doc["cases"], "corpus must not be empty"
    for case in doc["cases"]:
        for mode in RoundingMode:
            want_bits, want_flags = case[mode.value]
            got_bits, got_flags = impl(fmt, case["a"], case["b"], mode)
            assert got_bits == want_bits, (path.name, case, mode.value)
            assert got_flags.to_bits() == want_flags, (path.name, case, mode.value)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_vectorized_datapaths_match_golden(path):
    doc = load_corpus(path)
    fmt, op = doc["fmt"], doc["op"]
    vec = VECTORIZED[op]
    a = np.array([c["a"] for c in doc["cases"]], dtype=np.uint64)
    b = np.array([c["b"] for c in doc["cases"]], dtype=np.uint64)
    for mode in RoundingMode:
        bits, flags = vec(fmt, a, b, mode, with_flags=True)
        for i, case in enumerate(doc["cases"]):
            want_bits, want_flags = case[mode.value]
            assert int(bits[i]) == want_bits, (path.name, case, mode.value)
            assert int(flags[i]) == want_flags, (path.name, case, mode.value)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_is_seed_pinned(path):
    """Regenerating from the pinned seed reproduces the file exactly."""
    doc = load_corpus(path)
    assert doc["seed"] == GOLDEN_SEED
    regenerated = generate_corpus(doc["fmt"], doc["op"])
    # Generation is deterministic, so compare case i with case i.
    assert len(doc["cases"]) == len(regenerated["cases"])
    for got, want in zip(doc["cases"], regenerated["cases"]):
        assert got["classes"] == tuple(want["classes"])
        assert got["a"] == int(want["a"], 16)
        assert got["b"] == int(want["b"], 16)
        for mode in RoundingMode:
            assert got[mode.value] == (
                int(want[mode.value]["bits"], 16),
                want[mode.value]["flags"],
            )


def test_corpus_filename_roundtrip():
    from repro.fp.format import FP48

    assert corpus_filename(FP48, "add") == "fp48_add.json"
