"""Unit tests for FP comparison, min and max."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.compare import (
    Ordering,
    fp_compare,
    fp_eq,
    fp_le,
    fp_lt,
    fp_max,
    fp_min,
)
from repro.fp.format import FP32
from repro.fp.value import FPValue

from tests.conftest import ALL_FORMATS, words


def f(x: float) -> int:
    return FPValue.from_float(FP32, x).bits


class TestCompare:
    def test_basic_orderings(self):
        assert fp_compare(FP32, f(1.0), f(2.0)) is Ordering.LESS
        assert fp_compare(FP32, f(2.0), f(1.0)) is Ordering.GREATER
        assert fp_compare(FP32, f(1.5), f(1.5)) is Ordering.EQUAL

    def test_negative_ordering(self):
        assert fp_compare(FP32, f(-2.0), f(-1.0)) is Ordering.LESS
        assert fp_compare(FP32, f(-1.0), f(1.0)) is Ordering.LESS
        assert fp_compare(FP32, f(1.0), f(-1.0)) is Ordering.GREATER

    def test_signed_zeros_equal(self):
        assert fp_compare(FP32, FP32.zero(0), FP32.zero(1)) is Ordering.EQUAL

    def test_zero_vs_signs(self):
        assert fp_compare(FP32, FP32.zero(1), f(1.0)) is Ordering.LESS
        assert fp_compare(FP32, FP32.zero(0), f(-1.0)) is Ordering.GREATER

    def test_nan_unordered(self):
        assert fp_compare(FP32, FP32.nan(), f(1.0)) is Ordering.UNORDERED
        assert fp_compare(FP32, f(1.0), FP32.nan()) is Ordering.UNORDERED

    def test_infinities(self):
        assert fp_compare(FP32, FP32.inf(1), FP32.inf(0)) is Ordering.LESS
        assert fp_compare(FP32, FP32.inf(0), FP32.max_finite()) is Ordering.GREATER

    def test_predicates(self):
        assert fp_lt(FP32, f(1.0), f(2.0))
        assert fp_le(FP32, f(2.0), f(2.0))
        assert fp_eq(FP32, f(3.0), f(3.0))
        assert not fp_le(FP32, FP32.nan(), FP32.nan())

    @settings(max_examples=300)
    @given(
        st.sampled_from(ALL_FORMATS).flatmap(
            lambda fmt: st.tuples(st.just(fmt), words(fmt), words(fmt))
        )
    )
    def test_matches_float_comparison(self, fab):
        """The hardware key trick must agree with Python float ordering."""
        fmt, a, b = fab
        if fmt.is_nan(a) or fmt.is_nan(b):
            assert fp_compare(fmt, a, b) is Ordering.UNORDERED
            return
        fa = FPValue(fmt, a).to_float()
        fb = FPValue(fmt, b).to_float()
        got = fp_compare(fmt, a, b)
        if fa < fb:
            assert got is Ordering.LESS
        elif fa > fb:
            assert got is Ordering.GREATER
        else:
            assert got is Ordering.EQUAL


class TestMinMax:
    def test_plain(self):
        assert fp_min(FP32, f(1.0), f(2.0))[0] == f(1.0)
        assert fp_max(FP32, f(1.0), f(2.0))[0] == f(2.0)
        assert fp_min(FP32, f(-3.0), f(2.0))[0] == f(-3.0)

    def test_nan_loses_to_number(self):
        bits, flags = fp_min(FP32, FP32.nan(), f(5.0))
        assert bits == f(5.0) and flags.invalid
        bits, flags = fp_max(FP32, f(5.0), FP32.nan())
        assert bits == f(5.0) and flags.invalid

    def test_both_nan(self):
        bits, flags = fp_min(FP32, FP32.nan(), FP32.nan())
        assert FP32.is_nan(bits) and flags.invalid

    def test_signed_zero_preference(self):
        assert fp_min(FP32, FP32.zero(0), FP32.zero(1))[0] == FP32.zero(1)
        assert fp_max(FP32, FP32.zero(1), FP32.zero(0))[0] == FP32.zero(0)

    @settings(max_examples=200)
    @given(
        st.sampled_from(ALL_FORMATS).flatmap(
            lambda fmt: st.tuples(st.just(fmt), words(fmt), words(fmt))
        )
    )
    def test_min_le_max(self, fab):
        fmt, a, b = fab
        lo, _ = fp_min(fmt, a, b)
        hi, _ = fp_max(fmt, a, b)
        if fmt.is_nan(lo) or fmt.is_nan(hi):
            return
        assert fp_le(fmt, lo, hi)

    @settings(max_examples=200)
    @given(
        st.sampled_from(ALL_FORMATS).flatmap(
            lambda fmt: st.tuples(st.just(fmt), words(fmt), words(fmt))
        )
    )
    def test_commutative_up_to_zero_sign(self, fab):
        fmt, a, b = fab
        m1, _ = fp_min(fmt, a, b)
        m2, _ = fp_min(fmt, b, a)
        if fmt.is_nan(m1):
            assert fmt.is_nan(m2)
        elif fmt.is_zero(m1):
            assert fmt.is_zero(m2)
        else:
            assert m1 == m2
