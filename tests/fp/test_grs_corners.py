"""Adversarial guard/round/sticky corner cases.

The adder's exactness rests on a subtle argument: the saturating
alignment shifter's residual becomes a *sticky borrow* in the
subtraction, and the post-normalization result is provably never a
rounding tie in the dangerous (large-exponent-difference, one-bit-
normalization) region.  These tests enumerate that region exhaustively
for a small format and probe it specifically for fp32, so a future
"optimization" of the sticky handling cannot silently break RNE.
"""

from fractions import Fraction

import pytest

from repro.fp.adder import fp_add, fp_sub
from repro.fp.format import FP32, FPFormat
from repro.fp.reference import ref_add, ref_sub
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

# A format small enough to enumerate mantissas exhaustively but with a
# wide-enough exponent range to hit every alignment distance.
GRS_FMT = FPFormat(exp_bits=6, man_bits=4, name="grs6x4")


class TestStickyBorrowRegionExhaustive:
    """Every (mantissa pair, alignment distance) in the sticky region."""

    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_subtraction_sticky_region(self, mode):
        fmt = GRS_FMT
        base = fmt.bias
        # distances from 0 (no shift) past the full shifter width
        for d in range(0, fmt.sig_bits + 6):
            if base - d < 1:
                break
            for m1 in range(fmt.man_mask + 1):
                for m2 in range(fmt.man_mask + 1):
                    a = fmt.pack(0, base, m1)
                    b = fmt.pack(1, base - d, m2)  # opposite sign: subtract
                    assert fp_add(fmt, a, b, mode)[0] == ref_add(fmt, a, b, mode)[0], (
                        d,
                        m1,
                        m2,
                        mode,
                    )

    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_addition_sticky_region(self, mode):
        fmt = GRS_FMT
        base = fmt.bias
        for d in range(0, fmt.sig_bits + 6):
            if base - d < 1:
                break
            for m1 in range(fmt.man_mask + 1):
                for m2 in range(fmt.man_mask + 1):
                    a = fmt.pack(0, base, m1)
                    b = fmt.pack(0, base - d, m2)
                    assert fp_add(fmt, a, b, mode)[0] == ref_add(fmt, a, b, mode)[0]


class TestFp32DangerZone:
    """fp32 probes of the d >= 4, one-bit-normalization window."""

    def test_borrow_with_left_shift(self):
        """Large operand at the binade floor minus a far, sticky-setting
        subtrahend: the case where the normalize-by-one parity argument
        is load-bearing."""
        fmt = FP32
        for d in (4, 5, 9, 24, 25, 26, 30):
            for m2 in (1, 3, fmt.man_mask // 2, fmt.man_mask - 1, fmt.man_mask):
                a = fmt.pack(0, fmt.bias, 0)  # exactly 1.0
                b = fmt.pack(1, fmt.bias - d, m2)
                got = fp_add(fmt, a, b)[0]
                exact = Fraction(1) + FPValue(fmt, b).to_fraction()
                expected = FPValue.from_fraction(fmt, exact).bits
                assert got == expected, (d, m2)

    def test_shift_exactly_beyond_grs_window(self):
        """d = man_bits + 4: first distance where bits drop past R."""
        fmt = FP32
        d = fmt.man_bits + 4
        a = fmt.pack(0, fmt.bias, 0)
        for m2 in (0, 1, fmt.man_mask):
            b = fmt.pack(1, fmt.bias - d, m2)
            assert fp_add(fmt, a, b)[0] == ref_add(fmt, a, b)[0]

    def test_saturated_shift_is_pure_sticky(self):
        """Alignment beyond the shifter width: the subtrahend collapses
        to a sticky bit.  1.0 - epsilon is within half an ulp of 1.0, so
        RNE returns 1.0 exactly — but must still raise inexact (the
        sticky is the only trace the tiny operand leaves)."""
        fmt = FP32
        a = fmt.pack(0, fmt.bias, 0)
        b = fmt.pack(1, 2, 12345)  # astronomically smaller
        got, flags = fp_add(fmt, a, b)
        assert got == a
        assert flags.inexact
        # Truncation, by contrast, must step down one ulp.
        got_rtz, _ = fp_add(fmt, a, b, RoundingMode.TRUNCATE)
        assert got_rtz == fmt.pack(0, fmt.bias - 1, fmt.man_mask)

    def test_tie_cannot_be_manufactured_across_the_window(self, rng):
        """Random probes: results agree with the exact oracle at every
        distance that interacts with the GRS window."""
        fmt = FP32
        for _ in range(2000):
            d = rng.randint(0, fmt.man_bits + 6)
            e1 = rng.randint(d + 1, fmt.exp_max - 2)
            a = fmt.pack(rng.randint(0, 1), e1, rng.randrange(fmt.man_mask + 1))
            b = fmt.pack(rng.randint(0, 1), e1 - d, rng.randrange(fmt.man_mask + 1))
            for mode in RoundingMode:
                assert fp_add(fmt, a, b, mode)[0] == ref_add(fmt, a, b, mode)[0]
                assert fp_sub(fmt, a, b, mode)[0] == ref_sub(fmt, a, b, mode)[0]

    def test_carry_then_round_then_carry(self):
        """Addition whose pre-normalized sum carries AND whose rounding
        carries again (the double-shift path)."""
        fmt = FP32
        # (2 - ulp) + (2 - ulp) = 4 - 2ulp -> exactly representable
        x = fmt.pack(0, fmt.bias, fmt.man_mask)
        got = fp_add(fmt, x, x)[0]
        assert got == ref_add(fmt, x, x)[0]
        # 1.111...1 + 1.111...1*2^-1: carry + round-up to the next binade
        y = fmt.pack(0, fmt.bias - 1, fmt.man_mask)
        got = fp_add(fmt, x, y)[0]
        assert got == ref_add(fmt, x, y)[0]
