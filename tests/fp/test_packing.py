"""Packed SIMD-within-a-lane ops: bit/flag identity against the
unpacked vectorized oracle, limb layout, and the format guards."""

import numpy as np
import pytest

from repro.fp.format import BF16, FP16, FP32, FP48, FP64, FPFormat
from repro.fp.packing import (
    PACK_WIDTHS,
    PACKED_OPS,
    check_packed_format,
    pack_words,
    packed_add,
    packed_call,
    packed_mul,
    packed_sub,
    packing_width,
    supports_packing,
    unpack_words,
)
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import vec_add, vec_mul, vec_sub

#: Every supported (format, packing degree), including the 2-way
#: fallback of the 4-way formats.
PACKINGS = [(FP16, 4), (FP16, 2), (BF16, 4), (BF16, 2), (FP32, 2)]

VEC_OPS = {"add": vec_add, "sub": vec_sub, "mul": vec_mul}


def random_words(fmt, n, rng):
    return np.array(
        [rng.randrange(fmt.word_mask + 1) for _ in range(n)], dtype=np.uint64
    )


def salted_words(fmt, n, rng):
    """Random words with every special/rail encoding mixed in densely."""
    words = random_words(fmt, n, rng)
    specials = [
        fmt.zero(0),
        fmt.zero(1),
        fmt.inf(0),
        fmt.inf(1),
        fmt.nan(),
        fmt.max_finite(),
        fmt.max_finite(1),
        fmt.min_normal(),
        fmt.min_normal(1),
        fmt.one(),
        fmt.pack(0, 0, fmt.man_mask),  # denormal pattern (flushes)
    ]
    for word in specials:
        for _ in range(max(4, n // 50)):
            words[rng.randrange(n)] = word
    return words


# --------------------------------------------------------------------- #
# Capability matrix and format guards
# --------------------------------------------------------------------- #
class TestFormatGuards:
    def test_packing_width_per_format(self):
        assert packing_width(FP16) == 4
        assert packing_width(BF16) == 4
        assert packing_width(FP32) == 2
        assert packing_width(FP48) == 1
        assert packing_width(FP64) == 1

    def test_supports_packing_matrix(self):
        for fmt, width in PACKINGS:
            assert supports_packing(fmt, width)
        assert not supports_packing(FP32, 4)
        assert not supports_packing(FP48, 2)
        assert not supports_packing(FP64, 2)
        assert not supports_packing(FP16, 8)
        assert not supports_packing(FP16, 1)

    def test_guard_band_bound_is_separate_from_width(self):
        # 1+3+12 = 16 bits fits a 16-bit slot, but man_bits 12 > 11
        # leaves no guard band above the GRS-extended adder sum.
        crowded = FPFormat(exp_bits=3, man_bits=12, name="crowded16")
        assert not supports_packing(crowded, 4)
        assert supports_packing(crowded, 2)
        # Largest fraction a 16-bit slot admits: man_bits = slot - 5.
        roomy = FPFormat(exp_bits=2, man_bits=11, name="roomy14")
        assert supports_packing(roomy, 4)

    def test_invalid_width_names_the_choices(self):
        with pytest.raises(ValueError, match=r"packing width must be one of 2, 4"):
            check_packed_format(FP16, 3)

    def test_four_way_fp32_names_the_slot_limit(self):
        with pytest.raises(
            ValueError,
            match=r"4-way packing supports total width <= 16 bits with "
            r"fraction bits <= 11",
        ):
            check_packed_format(FP32, 4)

    def test_two_way_fp48_names_the_slot_limit(self):
        with pytest.raises(
            ValueError,
            match=r"2-way packing supports total width <= 32 bits with "
            r"fraction bits <= 27",
        ):
            check_packed_format(FP48, 2)

    def test_too_narrow_format_raises_the_shared_floor_error(self):
        # man_bits < 3 fails the *vectorized* floor first: the packed
        # guard re-raises the one shared unsupported-format message.
        skinny = FPFormat(exp_bits=5, man_bits=2, name="skinny")
        with pytest.raises(ValueError, match=r"vectorized ops support"):
            check_packed_format(skinny, 4)

    def test_packed_ops_reject_unsupported_packing(self):
        limbs = np.zeros(2, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"4-way packing supports"):
            packed_mul(FP32, limbs, limbs, width=4)
        with pytest.raises(ValueError, match=r"packing width must be one of"):
            packed_add(FP16, limbs, limbs, width=5)

    def test_packed_call_rejects_unknown_op(self):
        a = np.zeros(4, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"unsupported packed op 'div'"):
            packed_call("div", FP16, a, a)


# --------------------------------------------------------------------- #
# Limb layout round trip
# --------------------------------------------------------------------- #
class TestLimbLayout:
    @pytest.mark.parametrize("fmt,width", PACKINGS,
                             ids=lambda p: str(p))
    @pytest.mark.parametrize("n", [0, 1, 3, 4, 5, 64, 257])
    def test_round_trip(self, fmt, width, n, rng):
        words = random_words(fmt, n, rng)
        limbs, count = pack_words(fmt, words, width)
        assert count == n
        assert limbs.dtype == np.uint64
        assert limbs.size == -(-n // width)
        back = unpack_words(fmt, limbs, count, width)
        assert np.array_equal(back, words)

    def test_lane_zero_is_least_significant(self):
        words = np.array([0x0001, 0x0002, 0x0003, 0x0004], dtype=np.uint64)
        limbs, _ = pack_words(FP16, words, 4)
        assert int(limbs[0]) == 0x0004_0003_0002_0001

    def test_two_way_layout(self):
        words = np.array([0x11111111, 0x22222222], dtype=np.uint64)
        limbs, _ = pack_words(FP32, words, 2)
        assert int(limbs[0]) == 0x22222222_11111111

    def test_tail_limb_pads_with_plus_zero(self):
        words = np.array([FP16.one()], dtype=np.uint64)
        limbs, count = pack_words(FP16, words, 4)
        assert count == 1
        assert int(limbs[0]) >> 16 == 0  # three +0 pad lanes

    def test_pack_rejects_out_of_range_words(self):
        bad = np.array([FP16.word_mask + 1], dtype=np.uint64)
        with pytest.raises(ValueError, match=r"outside fp16"):
            pack_words(FP16, bad, 4)

    def test_pack_rejects_2d(self):
        with pytest.raises(ValueError, match=r"1-D"):
            pack_words(FP16, np.zeros((2, 2), dtype=np.uint64), 4)

    def test_unpack_rejects_overlong_count(self):
        limbs = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"exceeds"):
            unpack_words(FP16, limbs, 5, 4)


# --------------------------------------------------------------------- #
# Bit/flag identity with the unpacked vectorized oracle
# --------------------------------------------------------------------- #
class TestPackedVsUnpacked:
    @pytest.mark.parametrize("fmt,width", PACKINGS, ids=lambda p: str(p))
    @pytest.mark.parametrize("mode", list(RoundingMode))
    @pytest.mark.parametrize("op", sorted(PACKED_OPS))
    def test_salted_random_words(self, fmt, width, op, mode, rng):
        n = 4093  # prime: the tail limb always has pad lanes
        a = salted_words(fmt, n, rng)
        b = salted_words(fmt, n, rng)
        want, want_flags = VEC_OPS[op](fmt, a, b, mode, with_flags=True)
        got, got_flags = packed_call(
            op, fmt, a, b, mode, width=width, with_flags=True
        )
        assert np.array_equal(want, got)
        assert np.array_equal(want_flags, got_flags)

    @pytest.mark.parametrize("fmt,width", PACKINGS, ids=lambda p: str(p))
    def test_all_special_pairs(self, fmt, width):
        s = np.array(
            [
                fmt.zero(0), fmt.zero(1), fmt.one(0), fmt.one(1),
                fmt.min_normal(), fmt.max_finite(), fmt.max_finite(1),
                fmt.inf(0), fmt.inf(1), fmt.nan(),
                fmt.pack(0, 0, fmt.man_mask),
            ],
            dtype=np.uint64,
        )
        a, b = np.meshgrid(s, s)
        a, b = a.ravel(), b.ravel()
        for op, vec in VEC_OPS.items():
            want, want_flags = vec(fmt, a, b, with_flags=True)
            got, got_flags = packed_call(
                op, fmt, a, b, width=width, with_flags=True
            )
            assert np.array_equal(want, got), op
            assert np.array_equal(want_flags, got_flags), op

    def test_limb_level_api_matches_packed_call(self, rng):
        n = 97
        a = salted_words(FP16, n, rng)
        b = salted_words(FP16, n, rng)
        pa, count = pack_words(FP16, a, 4)
        pb, _ = pack_words(FP16, b, 4)
        for op, kernel in (("add", packed_add), ("sub", packed_sub),
                           ("mul", packed_mul)):
            limbs, lane_flags = kernel(FP16, pa, pb, width=4, with_flags=True)
            assert limbs.dtype == np.uint64
            assert lane_flags.size == limbs.size * 4
            bits = unpack_words(FP16, limbs, count, 4)
            want_bits, want_flags = packed_call(
                op, FP16, a, b, width=4, with_flags=True
            )
            assert np.array_equal(bits, want_bits)
            assert np.array_equal(lane_flags[:count], want_flags)
            # Pad lanes compute 0+0 / 0*0: zero flag only, never an
            # exception leaking out of an unoccupied sub-lane.
            assert np.all(lane_flags[count:] == 1)  # _FL_ZERO

    def test_flag_sideband_is_lane_isolated(self):
        # One limb carrying [overflow, NaN, exact, underflow] lanes: each
        # lane's flags must match its own scalar-path flags exactly.
        fmt = FP16
        a = np.array(
            [fmt.max_finite(), fmt.nan(), fmt.one(), fmt.min_normal()],
            dtype=np.uint64,
        )
        b = np.array(
            [fmt.max_finite(), fmt.one(), fmt.one(), fmt.min_normal()],
            dtype=np.uint64,
        )
        want, want_flags = vec_mul(fmt, a, b, with_flags=True)
        got, got_flags = packed_call("mul", fmt, a, b, width=4, with_flags=True)
        assert np.array_equal(want, got)
        assert np.array_equal(want_flags, got_flags)
        assert got_flags[0] & 16  # overflow stayed in lane 0
        assert got_flags[1] & 2  # invalid stayed in lane 1
        assert got_flags[2] == 0  # exact lane untouched by neighbours
        assert got_flags[3] & 8  # underflow stayed in lane 3

    def test_mismatched_lengths_rejected(self):
        a = np.zeros(4, dtype=np.uint64)
        b = np.zeros(5, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"disagree in length"):
            packed_call("add", FP16, a, b)

    def test_mismatched_limb_shapes_rejected(self):
        a = np.zeros(2, dtype=np.uint64)
        b = np.zeros(3, dtype=np.uint64)
        with pytest.raises(ValueError, match=r"disagree in shape"):
            packed_add(FP16, a, b, width=4)

    def test_default_width_is_packing_width(self, rng):
        a = salted_words(BF16, 33, rng)
        b = salted_words(BF16, 33, rng)
        assert np.array_equal(
            packed_call("mul", BF16, a, b),
            packed_call("mul", BF16, a, b, width=4),
        )

    @pytest.mark.parametrize("width", PACK_WIDTHS)
    def test_narrowest_supported_format(self, width, rng):
        # The vectorized floor (man_bits = 3) packs at every degree.
        fmt = FPFormat(exp_bits=2, man_bits=3, name="nano")
        n = 512
        a = salted_words(fmt, n, rng)
        b = salted_words(fmt, n, rng)
        for op, vec in VEC_OPS.items():
            want, want_flags = vec(fmt, a, b, with_flags=True)
            got, got_flags = packed_call(
                op, fmt, a, b, width=width, with_flags=True
            )
            assert np.array_equal(want, got), op
            assert np.array_equal(want_flags, got_flags), op
