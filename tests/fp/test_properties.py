"""Property-based tests on the FP datapaths (hypothesis).

The central property is bit-identity with the exact rational reference on
*arbitrary* bit patterns, for every format including a tiny stress format
where corner cases are dense.  The remaining properties are algebraic
laws the hardware semantics must satisfy.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.adder import fp_add, fp_sub
from repro.fp.format import FP32, FPFormat
from repro.fp.multiplier import fp_mul
from repro.fp.reference import ref_add, ref_mul, ref_sub
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

from tests.conftest import ALL_FORMATS, TINY, moderate_words, normal_words, words

format_st = st.sampled_from(ALL_FORMATS)
mode_st = st.sampled_from(list(RoundingMode))


@st.composite
def fmt_and_two_words(draw):
    fmt = draw(format_st)
    a = draw(words(fmt))
    b = draw(words(fmt))
    return fmt, a, b


class TestReferenceIdentity:
    """The datapaths agree bit-for-bit with the exact rational oracle."""

    @settings(max_examples=400)
    @given(fmt_and_two_words(), mode_st)
    def test_add_matches_reference(self, fab, mode):
        fmt, a, b = fab
        assert fp_add(fmt, a, b, mode)[0] == ref_add(fmt, a, b, mode)[0]

    @settings(max_examples=400)
    @given(fmt_and_two_words(), mode_st)
    def test_sub_matches_reference(self, fab, mode):
        fmt, a, b = fab
        assert fp_sub(fmt, a, b, mode)[0] == ref_sub(fmt, a, b, mode)[0]

    @settings(max_examples=400)
    @given(fmt_and_two_words(), mode_st)
    def test_mul_matches_reference(self, fab, mode):
        fmt, a, b = fab
        assert fp_mul(fmt, a, b, mode)[0] == ref_mul(fmt, a, b, mode)[0]

    @settings(max_examples=300)
    @given(fmt_and_two_words(), mode_st)
    def test_flags_match_reference_for_finite(self, fab, mode):
        fmt, a, b = fab
        if not (fmt.is_finite(a) and fmt.is_finite(b)):
            return
        got_bits, got_flags = fp_add(fmt, a, b, mode)
        ref_bits, ref_flags = ref_add(fmt, a, b, mode)
        assert got_bits == ref_bits
        assert got_flags.overflow == ref_flags.overflow
        assert got_flags.underflow == ref_flags.underflow
        assert got_flags.inexact == ref_flags.inexact


class TestAlgebraicLaws:
    @settings(max_examples=200)
    @given(fmt_and_two_words())
    def test_add_commutative(self, fab):
        fmt, a, b = fab
        assert fp_add(fmt, a, b)[0] == fp_add(fmt, b, a)[0]

    @settings(max_examples=200)
    @given(fmt_and_two_words())
    def test_mul_commutative(self, fab):
        fmt, a, b = fab
        assert fp_mul(fmt, a, b)[0] == fp_mul(fmt, b, a)[0]

    @settings(max_examples=200)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_add_zero_identity(self, fa):
        fmt, a = fa
        assert fp_add(fmt, a, fmt.zero(0))[0] == a

    @settings(max_examples=200)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_mul_one_identity(self, fa):
        fmt, a = fa
        bits, flags = fp_mul(fmt, a, fmt.one(0))
        assert bits == a
        assert not flags.inexact

    @settings(max_examples=200)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_x_minus_x_is_positive_zero(self, fa):
        fmt, a = fa
        bits, flags = fp_sub(fmt, a, a)
        assert bits == fmt.zero(0)
        assert flags.zero

    @settings(max_examples=200)
    @given(fmt_and_two_words())
    def test_sign_symmetry_of_multiplication(self, fab):
        fmt, a, b = fab
        if fmt.is_nan(a) or fmt.is_nan(b):
            return
        sa, ea, ma = fmt.unpack(a)
        neg_a = fmt.pack(sa ^ 1, ea, ma)
        p1, _ = fp_mul(fmt, a, b)
        p2, _ = fp_mul(fmt, neg_a, b)
        if fmt.is_nan(p1):
            assert fmt.is_nan(p2)
        else:
            s1, e1, m1 = fmt.unpack(p1)
            s2, e2, m2 = fmt.unpack(p2)
            assert (e1, m1) == (e2, m2)
            if not fmt.is_zero(p1):
                assert s1 != s2

    @settings(max_examples=200)
    @given(fmt_and_two_words())
    def test_negation_symmetry_of_addition(self, fab):
        """-(a + b) == (-a) + (-b) up to the sign of zero."""
        fmt, a, b = fab
        if fmt.is_nan(a) or fmt.is_nan(b):
            return
        sa, ea, ma = fmt.unpack(a)
        sb, eb, mb = fmt.unpack(b)
        s, _ = fp_add(fmt, a, b)
        sn, _ = fp_add(fmt, fmt.pack(sa ^ 1, ea, ma), fmt.pack(sb ^ 1, eb, mb))
        if fmt.is_nan(s):
            assert fmt.is_nan(sn)
        elif fmt.is_zero(s):
            assert fmt.is_zero(sn)
        else:
            ss, es, ms = fmt.unpack(s)
            ssn, esn, msn = fmt.unpack(sn)
            assert (es, ms) == (esn, msn) and ss != ssn


class TestRoundingProperties:
    @settings(max_examples=200)
    @given(
        format_st.flatmap(
            lambda f: st.tuples(st.just(f), moderate_words(f), moderate_words(f))
        )
    )
    def test_truncation_never_exceeds_magnitude_of_exact(self, fab):
        fmt, a, b = fab
        bits, _ = fp_mul(fmt, a, b, RoundingMode.TRUNCATE)
        if not fmt.is_finite(bits) or fmt.is_zero(bits):
            return
        exact = FPValue(fmt, a).to_fraction() * FPValue(fmt, b).to_fraction()
        got = FPValue(fmt, bits).to_fraction()
        assert abs(got) <= abs(exact)

    @settings(max_examples=200)
    @given(
        format_st.flatmap(
            lambda f: st.tuples(st.just(f), moderate_words(f), moderate_words(f))
        )
    )
    def test_rne_error_within_half_ulp(self, fab):
        fmt, a, b = fab
        bits, flags = fp_add(fmt, a, b, RoundingMode.NEAREST_EVEN)
        if not fmt.is_finite(bits) or fmt.is_zero(bits) or flags.underflow:
            return
        exact = FPValue(fmt, a).to_fraction() + FPValue(fmt, b).to_fraction()
        got = FPValue(fmt, bits).to_fraction()
        _, exp, _ = fmt.unpack(bits)
        ulp = Fraction(2) ** (exp - fmt.bias - fmt.man_bits)
        assert abs(got - exact) <= ulp / 2

    @settings(max_examples=150)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_double_is_exact(self, fa):
        """x + x is always exact (pure exponent increment) unless it
        overflows."""
        fmt, a = fa
        bits, flags = fp_add(fmt, a, a)
        if flags.overflow:
            return
        assert not flags.inexact
        exact = 2 * FPValue(fmt, a).to_fraction()
        if flags.underflow:
            return
        assert FPValue(fmt, bits).to_fraction() == exact


class TestResultsAreCanonical:
    @settings(max_examples=300)
    @given(fmt_and_two_words(), mode_st)
    def test_add_result_is_normal_or_special(self, fab, mode):
        """No operation ever produces a denormal encoding."""
        fmt, a, b = fab
        bits, _ = fp_add(fmt, a, b, mode)
        _, exp, man = fmt.unpack(bits)
        if exp == 0:
            assert man == 0  # canonical zero, never a denormal pattern

    @settings(max_examples=300)
    @given(fmt_and_two_words(), mode_st)
    def test_mul_result_is_normal_or_special(self, fab, mode):
        fmt, a, b = fab
        bits, _ = fp_mul(fmt, a, b, mode)
        _, exp, man = fmt.unpack(bits)
        if exp == 0:
            assert man == 0


class TestTinyFormatExhaustive:
    """The tiny format is small enough to enumerate all operand pairs."""

    def test_add_exhaustive_vs_reference(self):
        n = TINY.word_mask + 1
        for a in range(n):
            for b in range(n):
                assert fp_add(TINY, a, b)[0] == ref_add(TINY, a, b)[0], (a, b)

    def test_mul_exhaustive_vs_reference(self):
        n = TINY.word_mask + 1
        for a in range(n):
            for b in range(n):
                assert fp_mul(TINY, a, b)[0] == ref_mul(TINY, a, b)[0], (a, b)

    def test_truncate_exhaustive_vs_reference(self):
        n = TINY.word_mask + 1
        mode = RoundingMode.TRUNCATE
        for a in range(0, n, 3):
            for b in range(0, n, 3):
                assert fp_add(TINY, a, b, mode)[0] == ref_add(TINY, a, b, mode)[0]
                assert fp_mul(TINY, a, b, mode)[0] == ref_mul(TINY, a, b, mode)[0]
