"""Unit tests for the FP divider datapath (library extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.divider import FPDivider, fp_div
from repro.fp.format import FP32, FP64
from repro.fp.reference import ref_div
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

from tests.conftest import ALL_FORMATS, bits_to_f32, f32_to_bits, words


class TestSpecialValues:
    def test_nan_propagates(self):
        bits, flags = fp_div(FP32, FP32.nan(), FP32.one())
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_over_inf_invalid(self):
        bits, flags = fp_div(FP32, FP32.inf(0), FP32.inf(1))
        assert FP32.is_nan(bits) and flags.invalid

    def test_zero_over_zero_invalid(self):
        bits, flags = fp_div(FP32, FP32.zero(0), FP32.zero(1))
        assert FP32.is_nan(bits) and flags.invalid

    def test_finite_over_zero_raises_div_by_zero(self):
        bits, flags = fp_div(FP32, FP32.one(), FP32.zero(1))
        assert bits == FP32.inf(1)
        assert flags.div_by_zero
        assert not flags.invalid

    def test_inf_over_finite(self):
        bits, flags = fp_div(FP32, FP32.inf(1), FPValue.from_float(FP32, 2.0).bits)
        assert bits == FP32.inf(1)
        assert not flags.any_exception

    def test_finite_over_inf_gives_zero(self):
        bits, flags = fp_div(FP32, FP32.one(1), FP32.inf(0))
        assert bits == FP32.zero(1)
        assert flags.zero

    def test_zero_over_finite(self):
        bits, flags = fp_div(FP32, FP32.zero(0), FPValue.from_float(FP32, -3.0).bits)
        assert bits == FP32.zero(1)
        assert flags.zero


class TestDirectedArithmetic:
    @pytest.mark.parametrize(
        "x,y,expected",
        [
            (6.0, 3.0, 2.0),
            (1.0, 2.0, 0.5),
            (1.0, 4.0, 0.25),
            (-8.0, 2.0, -4.0),
            (7.5, -2.5, -3.0),
            (1.0, 1.0, 1.0),
        ],
    )
    def test_exact_quotients(self, x, y, expected):
        bits, flags = fp_div(
            FP32, FPValue.from_float(FP32, x).bits, FPValue.from_float(FP32, y).bits
        )
        assert FPValue(FP32, bits).to_float() == expected
        assert not flags.inexact

    def test_one_third_is_inexact(self):
        bits, flags = fp_div(FP32, FP32.one(), FPValue.from_float(FP32, 3.0).bits)
        assert flags.inexact
        assert abs(FPValue(FP32, bits).to_float() - 1 / 3) < 1e-7

    def test_ratio_below_one_normalizes(self):
        # 1/1.5 in (1/2, 1): exercises the one-position normalization path.
        bits, _ = fp_div(FP32, FP32.one(), FPValue.from_float(FP32, 1.5).bits)
        expected = np.float32(np.float32(1.0) / np.float32(1.5))
        assert bits == f32_to_bits(float(expected))

    def test_overflow(self):
        bits, flags = fp_div(FP32, FP32.max_finite(), FP32.min_normal())
        assert bits == FP32.inf(0)
        assert flags.overflow

    def test_underflow_flushes(self):
        bits, flags = fp_div(FP32, FP32.min_normal(), FP32.max_finite())
        assert FP32.is_zero(bits)
        assert flags.underflow

    def test_rounding_carry_path(self):
        # Choose operands whose quotient rounds up to a power of two.
        x = FP32.pack(0, FP32.bias + 1, FP32.man_mask)  # just under 4
        y = FP32.pack(0, FP32.bias, FP32.man_mask)  # just under 2
        bits, _ = fp_div(FP32, x, y)
        expected = np.float32(
            np.float32(bits_to_f32(x)) / np.float32(bits_to_f32(y))
        )
        assert bits == f32_to_bits(float(expected))


class TestRandomCrossCheck:
    def test_fp32_against_numpy(self, rng):
        checked = 0
        for _ in range(2500):
            x = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-12, 12))
            y = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-12, 12))
            if x == 0 or y == 0 or not (np.isfinite(x) and np.isfinite(y)):
                continue
            with np.errstate(all="ignore"):
                e = np.float32(x / y)
            eb = f32_to_bits(float(e))
            se, ee, me = FP32.unpack(eb)
            if ee == 0 and me:
                continue
            got, _ = fp_div(FP32, f32_to_bits(float(x)), f32_to_bits(float(y)))
            assert got == (FP32.inf(se) if np.isinf(e) else eb), (x, y)
            checked += 1
        assert checked > 2000

    def test_fp64_against_reference(self, rng):
        for _ in range(1200):
            a = rng.randrange(FP64.word_mask + 1)
            b = rng.randrange(FP64.word_mask + 1)
            for mode in RoundingMode:
                assert fp_div(FP64, a, b, mode)[0] == ref_div(FP64, a, b, mode)[0]


format_st = st.sampled_from(ALL_FORMATS)


@st.composite
def fmt_and_two_words(draw):
    fmt = draw(format_st)
    return fmt, draw(words(fmt)), draw(words(fmt))


class TestProperties:
    @settings(max_examples=300)
    @given(fmt_and_two_words(), st.sampled_from(list(RoundingMode)))
    def test_matches_reference(self, fab, mode):
        fmt, a, b = fab
        assert fp_div(fmt, a, b, mode)[0] == ref_div(fmt, a, b, mode)[0]

    @settings(max_examples=150)
    @given(fmt_and_two_words())
    def test_x_over_x_is_one(self, fab):
        fmt, a, _ = fab
        if not fmt.is_finite(a) or fmt.is_zero(a):
            return
        bits, flags = fp_div(fmt, a, a)
        assert bits == fmt.one(0)
        assert not flags.inexact

    @settings(max_examples=150)
    @given(fmt_and_two_words())
    def test_div_by_one_is_identity(self, fab):
        fmt, a, _ = fab
        if not fmt.is_finite(a) or fmt.is_zero(a):
            return
        bits, flags = fp_div(fmt, a, fmt.one(0))
        assert bits == a
        assert not flags.inexact


class TestWrapper:
    def test_divider_object(self):
        d = FPDivider(FP32)
        six = FPValue.from_float(FP32, 6.0).bits
        two = FPValue.from_float(FP32, 2.0).bits
        assert FPValue(FP32, d.div(six, two)[0]).to_float() == 3.0
        assert d(six, two)[0] == d.div(six, two)[0]
