"""Unit tests for the Figure-1 hardware subunit primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.format import FP32
from repro.fp.subunits import (
    align_shift,
    denormalize,
    exponent_compare,
    fixed_add,
    fixed_mul,
    fixed_sub,
    leading_bits,
    mantissa_compare,
    normalize_shift_amount,
    sign_xor,
    split_priority_encoder,
    swap,
)


class TestDenormalize:
    def test_normal_operand_gets_hidden_one(self):
        assert denormalize(FP32, exp=127, man=0) == 1 << 23

    def test_zero_exponent_means_zero_significand_msb(self):
        assert denormalize(FP32, exp=0, man=5) == 5  # hidden bit 0

    def test_fraction_preserved(self):
        assert denormalize(FP32, exp=1, man=0x7FFFFF) == (1 << 23) | 0x7FFFFF


class TestCompareSwap:
    def test_exponent_compare(self):
        assert exponent_compare(5, 3) == (False, 2)
        assert exponent_compare(3, 5) == (True, 2)
        assert exponent_compare(4, 4) == (False, 0)

    def test_mantissa_compare(self):
        assert mantissa_compare(3, 5)
        assert not mantissa_compare(5, 3)
        assert not mantissa_compare(4, 4)

    def test_swap(self):
        assert swap(1, 2, False) == (1, 2)
        assert swap(1, 2, True) == (2, 1)


class TestAlignShift:
    def test_no_shift(self):
        assert align_shift(0b1010, 0, 8) == (0b1010, 0)

    def test_clean_shift_no_sticky(self):
        assert align_shift(0b1000, 3, 8) == (0b1, 0)

    def test_dropped_bits_set_sticky(self):
        assert align_shift(0b1001, 3, 8) == (0b1, 1)

    def test_saturating_shift(self):
        # shift >= width: everything becomes sticky
        assert align_shift(0b1, 8, 8) == (0, 1)
        assert align_shift(0, 8, 8) == (0, 0)
        assert align_shift(0b1, 1000, 8) == (0, 1)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            align_shift(1, -1, 8)

    @given(st.integers(0, 255), st.integers(0, 20))
    def test_value_conservation(self, value, shift):
        shifted, sticky = align_shift(value, shift, 8)
        if shift < 8:
            assert shifted == value >> shift
            assert sticky == (1 if value & ((1 << shift) - 1) else 0)
        else:
            assert shifted == 0
            assert sticky == (1 if value else 0)


class TestPriorityEncoder:
    def test_msb_set(self):
        assert normalize_shift_amount(0b10000000, 8) == 0

    def test_lsb_only(self):
        assert normalize_shift_amount(0b1, 8) == 7

    def test_zero_returns_width(self):
        assert normalize_shift_amount(0, 8) == 8

    @given(st.integers(0, (1 << 16) - 1))
    def test_split_encoder_matches_monolithic(self, value):
        for parts in (1, 2, 3, 4):
            assert split_priority_encoder(value, 16, parts) == normalize_shift_amount(
                value, 16
            )

    def test_split_encoder_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            split_priority_encoder(1, 8, 0)

    @given(st.integers(1, (1 << 12) - 1))
    def test_shift_amount_normalizes(self, value):
        shift = normalize_shift_amount(value, 12)
        assert (value << shift) >> 11 == 1


class TestFixedPoint:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_fixed_add(self, a, b):
        total, carry = fixed_add(a, b, 8)
        assert total + (carry << 8) == a + b
        assert 0 <= total < 256

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_fixed_sub(self, a, b):
        diff, borrow = fixed_sub(a, b, 8)
        assert (diff - (borrow << 8)) == a - b

    def test_fixed_mul(self):
        assert fixed_mul(0xFFFFFF, 0xFFFFFF) == 0xFFFFFF * 0xFFFFFF

    def test_sign_xor(self):
        assert sign_xor(0, 0) == 0
        assert sign_xor(0, 1) == 1
        assert sign_xor(1, 0) == 1
        assert sign_xor(1, 1) == 0


class TestLeadingBits:
    def test_extracts_top_bits(self):
        assert leading_bits(0b10110000, 8, 3) == 0b101

    def test_full_width(self):
        assert leading_bits(0b1011, 4, 4) == 0b1011

    def test_rejects_count_over_width(self):
        with pytest.raises(ValueError):
            leading_bits(1, 4, 5)
