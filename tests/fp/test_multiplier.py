"""Unit tests for the FP multiplier datapath."""

import numpy as np
import pytest

from repro.fp.format import FP32, FP64
from repro.fp.multiplier import FPMultiplier, fp_mul
from repro.fp.reference import ref_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

from tests.conftest import bits_to_f32, f32_to_bits


def mul32(x: float, y: float) -> float:
    bits, _ = fp_mul(FP32, f32_to_bits(x), f32_to_bits(y))
    return bits_to_f32(bits)


class TestSpecialValues:
    def test_nan_propagates(self):
        bits, flags = fp_mul(FP32, FP32.nan(), FP32.one())
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_times_finite(self):
        bits, _ = fp_mul(FP32, FP32.inf(0), FPValue.from_float(FP32, -2.0).bits)
        assert bits == FP32.inf(1)

    def test_inf_times_inf(self):
        bits, _ = fp_mul(FP32, FP32.inf(1), FP32.inf(1))
        assert bits == FP32.inf(0)

    def test_zero_times_inf_is_invalid(self):
        bits, flags = fp_mul(FP32, FP32.zero(0), FP32.inf(0))
        assert FP32.is_nan(bits) and flags.invalid

    def test_zero_times_finite(self):
        bits, flags = fp_mul(FP32, FP32.zero(1), FP32.one())
        assert bits == FP32.zero(1)
        assert flags.zero

    def test_sign_of_zero_product(self):
        neg = FPValue.from_float(FP32, -3.0).bits
        bits, _ = fp_mul(FP32, FP32.zero(0), neg)
        assert bits == FP32.zero(1)

    def test_denormal_input_flushed(self):
        denormal = FP32.pack(0, 0, 999)
        bits, flags = fp_mul(FP32, denormal, FP32.one())
        assert FP32.is_zero(bits) and flags.zero


class TestDirectedArithmetic:
    @pytest.mark.parametrize(
        "x,y,expected",
        [
            (1.0, 1.0, 1.0),
            (2.0, 3.0, 6.0),
            (1.5, 1.5, 2.25),
            (-2.0, 4.0, -8.0),
            (-0.5, -0.5, 0.25),
        ],
    )
    def test_exact_products(self, x, y, expected):
        assert mul32(x, y) == expected

    def test_product_in_two_four_range_normalizes(self):
        # 1.5 * 1.5 = 2.25: product >= 2 requires the one-position shift.
        bits, _ = fp_mul(
            FP32,
            FPValue.from_float(FP32, 1.5).bits,
            FPValue.from_float(FP32, 1.5).bits,
        )
        assert FPValue(FP32, bits).to_float() == 2.25

    def test_rounding_carry_second_shift(self):
        # Choose operands whose rounded product carries out: (2 - ulp)^2
        x = FP32.pack(0, FP32.bias, FP32.man_mask)  # just under 2
        bits, _ = fp_mul(FP32, x, x)
        got = FPValue(FP32, bits).to_float()
        expected = float(
            np.float32(np.float32(bits_to_f32(x)) * np.float32(bits_to_f32(x)))
        )
        assert got == expected

    def test_overflow(self):
        big = FP32.max_finite()
        bits, flags = fp_mul(FP32, big, big)
        assert bits == FP32.inf(0)
        assert flags.overflow

    def test_negative_overflow(self):
        big = FP32.max_finite()
        neg = FP32.max_finite(1)
        bits, _ = fp_mul(FP32, big, neg)
        assert bits == FP32.inf(1)

    def test_underflow_flushes(self):
        tiny = FP32.min_normal()
        bits, flags = fp_mul(FP32, tiny, tiny)
        assert FP32.is_zero(bits)
        assert flags.underflow

    def test_inexact_flag(self):
        third = FPValue.from_float(FP32, 1 / 3).bits
        bits, flags = fp_mul(FP32, third, third)
        assert flags.inexact
        del bits

    def test_exact_power_of_two_scaling(self):
        x = FPValue.from_float(FP32, 3.141592).bits
        two = FPValue.from_float(FP32, 2.0).bits
        bits, flags = fp_mul(FP32, x, two)
        assert FPValue(FP32, bits).to_float() == 2 * FPValue(FP32, x).to_float()
        assert not flags.inexact


class TestRoundingModes:
    def test_truncate_magnitude_not_larger(self, rng):
        for _ in range(300):
            a = FP32.pack(0, rng.randint(100, 150), rng.randrange(1 << 23))
            b = FP32.pack(0, rng.randint(100, 150), rng.randrange(1 << 23))
            rne, _ = fp_mul(FP32, a, b, RoundingMode.NEAREST_EVEN)
            rtz, _ = fp_mul(FP32, a, b, RoundingMode.TRUNCATE)
            if FP32.is_inf(rne) or FP32.is_inf(rtz):
                continue
            assert FPValue(FP32, rtz).to_float() <= FPValue(FP32, rne).to_float()

    def test_truncate_equals_rne_when_exact(self):
        two = FPValue.from_float(FP32, 2.0).bits
        three = FPValue.from_float(FP32, 3.0).bits
        assert (
            fp_mul(FP32, two, three, RoundingMode.TRUNCATE)[0]
            == fp_mul(FP32, two, three, RoundingMode.NEAREST_EVEN)[0]
        )


class TestRandomCrossCheck:
    def test_fp32_against_numpy(self, rng):
        checked = 0
        for _ in range(3000):
            x = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-15, 15))
            y = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-15, 15))
            if not (np.isfinite(x) and np.isfinite(y)) or x == 0 or y == 0:
                continue
            with np.errstate(all="ignore"):
                expected = np.float32(x) * np.float32(y)
            exp_bits = f32_to_bits(float(np.float32(expected)))
            se, ee, me = FP32.unpack(exp_bits)
            if ee == 0 and me != 0:
                continue  # denormal result: flushed by design
            got, _ = fp_mul(FP32, f32_to_bits(float(x)), f32_to_bits(float(y)))
            if np.isinf(expected):
                assert got == FP32.inf(se)
            else:
                assert got == exp_bits, (float(x), float(y))
            checked += 1
        assert checked > 2000

    def test_fp64_against_reference(self, rng):
        for _ in range(1500):
            a = rng.randrange(FP64.word_mask + 1)
            b = rng.randrange(FP64.word_mask + 1)
            for mode in RoundingMode:
                assert fp_mul(FP64, a, b, mode)[0] == ref_mul(FP64, a, b, mode)[0]


class TestFPMultiplierWrapper:
    def test_wrapper(self):
        m = FPMultiplier(FP32)
        a = FPValue.from_float(FP32, 1.5).bits
        b = FPValue.from_float(FP32, 4.0).bits
        assert FPValue(FP32, m.mul(a, b)[0]).to_float() == 6.0
        assert m(a, b)[0] == m.mul(a, b)[0]
