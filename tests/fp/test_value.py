"""Unit tests for FPValue conversions and the shared encoder."""

import math
from fractions import Fraction

import pytest
from hypothesis import given

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue, encode_fraction, _floor_log2

from tests.conftest import (
    bits_to_f32,
    f32_to_bits,
    f64_to_bits,
    finite_words,
    normal_words,
)


class TestFloorLog2:
    @pytest.mark.parametrize(
        "x,expected",
        [
            (Fraction(1), 0),
            (Fraction(2), 1),
            (Fraction(3), 1),
            (Fraction(4), 2),
            (Fraction(1, 2), -1),
            (Fraction(1, 3), -2),
            (Fraction(7, 8), -1),
            (Fraction(255, 256), -1),
            (Fraction(1, 1024), -10),
        ],
    )
    def test_known_values(self, x, expected):
        assert _floor_log2(x) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _floor_log2(Fraction(0))


class TestEncodeFraction:
    def test_exact_values_raise_no_inexact(self):
        bits, flags = encode_fraction(FP32, Fraction(3, 4))
        assert not flags.inexact
        assert FPValue(FP32, bits).to_float() == 0.75

    def test_inexact_value(self):
        bits, flags = encode_fraction(FP32, Fraction(1, 3))
        assert flags.inexact
        assert abs(FPValue(FP32, bits).to_float() - 1 / 3) < 1e-7

    def test_overflow_saturates_to_inf(self):
        bits, flags = encode_fraction(FP32, Fraction(2) ** 200)
        assert flags.overflow
        assert FP32.is_inf(bits)

    def test_negative_overflow(self):
        bits, _ = encode_fraction(FP32, -(Fraction(2) ** 200))
        assert bits == FP32.inf(1)

    def test_underflow_flushes_to_zero(self):
        bits, flags = encode_fraction(FP32, Fraction(1, 2**200))
        assert flags.underflow and flags.zero
        assert FP32.is_zero(bits)

    def test_underflow_keeps_sign(self):
        bits, _ = encode_fraction(FP32, -Fraction(1, 2**200))
        assert bits == FP32.zero(1)

    def test_zero(self):
        bits, flags = encode_fraction(FP32, Fraction(0))
        assert bits == FP32.zero(0)
        assert flags.zero

    def test_tie_rounds_to_even(self):
        # 1 + 2^-24 is exactly halfway between 1.0 and 1 + 2^-23 in fp32.
        tie = Fraction(1) + Fraction(1, 1 << 24)
        bits, _ = encode_fraction(FP32, tie, RoundingMode.NEAREST_EVEN)
        assert bits == FP32.one()  # even mantissa (0) wins

    def test_truncation_drops_tail(self):
        tie = Fraction(1) + Fraction(1, 1 << 24)
        bits, _ = encode_fraction(FP32, tie, RoundingMode.TRUNCATE)
        assert bits == FP32.one()
        just_under_two = Fraction(2) - Fraction(1, 1 << 30)
        bits, _ = encode_fraction(FP32, just_under_two, RoundingMode.TRUNCATE)
        sign, exp, man = FP32.unpack(bits)
        assert (sign, exp, man) == (0, FP32.bias, FP32.man_mask)

    def test_rounding_carry_bumps_exponent(self):
        just_under_two = Fraction(2) - Fraction(1, 1 << 30)
        bits, _ = encode_fraction(FP32, just_under_two, RoundingMode.NEAREST_EVEN)
        assert FPValue(FP32, bits).to_float() == 2.0

    def test_smallest_normal_boundary(self):
        bits, flags = encode_fraction(FP32, Fraction(1, 2**126))
        assert bits == FP32.min_normal()
        assert not flags.underflow
        bits, flags = encode_fraction(FP32, Fraction(1, 2**127))
        assert FP32.is_zero(bits)
        assert flags.underflow


class TestFromToFloat:
    @pytest.mark.parametrize(
        "x", [0.0, -0.0, 1.0, -1.0, 0.5, 1.5, 3.141592653589793, 1e-30, -1e30]
    )
    def test_fp64_roundtrip_exact(self, x):
        v = FPValue.from_float(FP64, x)
        assert v.to_float() == x
        # signed zero preserved
        assert math.copysign(1.0, v.to_float()) == math.copysign(1.0, x)

    def test_fp32_matches_struct_encoding(self):
        for x in (1.0, -2.5, 3.14159, 1e38, 1.1754944e-38, 6.0e-39):
            expected = f32_to_bits(bits_to_f32(f32_to_bits(x)))
            got = FPValue.from_float(FP32, x).bits
            se, ee, me = FP32.unpack(expected)
            if ee == 0 and me != 0:
                # denormal in IEEE: we flush to zero
                assert got == FP32.zero(se)
            else:
                assert got == expected

    def test_fp64_matches_struct_encoding(self):
        for x in (1.0, -2.5, math.pi, 1e300, 5e-324 * 2**60):
            v = FPValue.from_float(FP64, x)
            assert v.bits == f64_to_bits(x)

    def test_nan_and_inf(self):
        assert FPValue.from_float(FP32, math.nan).is_nan
        assert FPValue.from_float(FP32, math.inf).is_inf
        v = FPValue.from_float(FP32, -math.inf)
        assert v.is_inf and v.sign == 1
        assert math.isnan(FPValue(FP32, FP32.nan()).to_float())
        assert FPValue(FP32, FP32.inf(1)).to_float() == -math.inf

    @given(finite_words(FP64))
    def test_fp64_bits_float_bits_roundtrip(self, bits):
        v = FPValue(FP64, bits)
        x = v.to_float()
        # Canonical: zero encodings all map to +-0.0.
        if v.is_zero:
            assert x == 0.0
        else:
            assert FPValue.from_float(FP64, x).bits == bits


class TestFractionRoundtrip:
    @given(normal_words(FP32))
    def test_to_fraction_from_fraction_identity(self, bits):
        v = FPValue(FP32, bits)
        frac = v.to_fraction()
        assert FPValue.from_fraction(FP32, frac).bits == bits

    def test_specials_have_no_fraction(self):
        with pytest.raises(ValueError):
            FPValue(FP32, FP32.inf(0)).to_fraction()
        with pytest.raises(ValueError):
            FPValue(FP32, FP32.nan()).to_fraction()

    def test_zero_fraction(self):
        assert FPValue(FP32, FP32.zero(1)).to_fraction() == 0


class TestOperatorsAndFields:
    def test_neg_flips_sign_only(self):
        v = FPValue.from_float(FP32, 1.5)
        assert (-v).to_float() == -1.5
        assert (-(-v)).bits == v.bits

    def test_abs(self):
        v = FPValue.from_float(FP32, -2.5)
        assert abs(v).to_float() == 2.5

    def test_arithmetic_operators(self):
        a = FPValue.from_float(FP32, 1.5)
        b = FPValue.from_float(FP32, 2.25)
        assert (a + b).to_float() == 3.75
        assert (a - b).to_float() == -0.75
        assert (a * b).to_float() == 3.375

    def test_significand_hidden_bit(self):
        one = FPValue.from_float(FP32, 1.0)
        assert one.significand == 1 << 23
        zero = FPValue(FP32, FP32.zero())
        assert zero.significand == 0

    def test_out_of_range_bits_rejected(self):
        with pytest.raises(ValueError):
            FPValue(FP32, 1 << 32)

    def test_field_accessors(self):
        v = FPValue.from_fields(FP32, 1, 130, 7)
        assert (v.sign, v.exp, v.man) == (1, 130, 7)
