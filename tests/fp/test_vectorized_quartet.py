"""Edge-focused tests for the vectorized div/sqrt/fma trio.

The generic elementwise sweeps live in ``test_vectorized.py``; these
target the corners the ISSUE calls out for the new ops: boundary
operands (minimum/maximum exponent with empty and all-ones mantissas),
signed-zero sign rules, and flag-sideband isolation between lanes of one
batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fp.divider import fp_div
from repro.fp.format import FP32, FPFormat
from repro.fp.mac import fp_fma
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt
from repro.fp.vectorized import vec_div, vec_fma, vec_sqrt

FP16 = FPFormat(exp_bits=5, man_bits=10, name="fp16")


def boundary_words(fmt):
    """Normal-range extremes plus the signed specials.

    Every combination of sign, minimum/maximum normal exponent and
    empty/all-ones mantissa, then signed zeros, infinities, NaN and
    +-1.0 — the operands where normalize/round and the special-case
    bypasses meet.
    """
    words = [
        fmt.pack(sign, exp, man)
        for sign in (0, 1)
        for exp in (1, fmt.exp_max - 1)
        for man in (0, fmt.man_mask)
    ]
    words += [
        fmt.zero(0),
        fmt.zero(1),
        fmt.inf(0),
        fmt.inf(1),
        fmt.nan(),
        fmt.one(0),
        fmt.one(1),
    ]
    return np.array(words, dtype=np.uint64)


def assert_matches_scalar(fmt, mode, scalar_fn, vec_fn, *columns):
    bits, flags = vec_fn(fmt, *columns, mode, with_flags=True)
    for i in range(len(columns[0])):
        operands = tuple(int(col[i]) for col in columns)
        want_bits, want_flags = scalar_fn(fmt, *operands, mode)
        assert int(bits[i]) == want_bits, tuple(map(hex, operands))
        assert int(flags[i]) == want_flags.to_bits(), tuple(map(hex, operands))


@pytest.mark.parametrize("fmt", [FP32, FP16], ids=lambda f: f.name)
@pytest.mark.parametrize("mode", list(RoundingMode))
class TestBoundaryOperands:
    def test_div_full_mesh(self, fmt, mode):
        s = boundary_words(fmt)
        a, b = np.meshgrid(s, s)
        assert_matches_scalar(fmt, mode, fp_div, vec_div, a.ravel(), b.ravel())

    def test_sqrt_all_words(self, fmt, mode):
        assert_matches_scalar(fmt, mode, fp_sqrt, vec_sqrt, boundary_words(fmt))

    def test_fma_full_mesh(self, fmt, mode):
        s = boundary_words(fmt)
        a, b, c = np.meshgrid(s, s, s)
        assert_matches_scalar(
            fmt, mode, fp_fma, vec_fma, a.ravel(), b.ravel(), c.ravel()
        )


class TestSignedZeroRules:
    """IEEE sign-of-zero semantics, asserted against explicit words (not
    just scalar agreement, so a shared scalar/vector bug cannot hide)."""

    def words(self, *values):
        return np.array(values, dtype=np.uint64)

    def test_div_zero_over_finite_signs(self):
        a = self.words(FP32.zero(0), FP32.zero(1), FP32.zero(0), FP32.zero(1))
        b = self.words(FP32.one(1), FP32.one(1), FP32.one(0), FP32.one(0))
        bits, flags = vec_div(FP32, a, b, with_flags=True)
        assert [int(x) for x in bits] == [
            FP32.zero(1),
            FP32.zero(0),
            FP32.zero(0),
            FP32.zero(1),
        ]
        assert all(int(f) == 0b000001 for f in flags)  # zero flag only

    def test_div_by_zero_and_invalid(self):
        a = self.words(FP32.one(0), FP32.one(1), FP32.zero(0), FP32.inf(0))
        b = self.words(FP32.zero(0), FP32.zero(0), FP32.zero(0), FP32.inf(0))
        bits, flags = vec_div(FP32, a, b, with_flags=True)
        assert int(bits[0]) == FP32.inf(0)
        assert int(bits[1]) == FP32.inf(1)
        assert int(flags[0]) == int(flags[1]) == 0b100000  # div_by_zero
        assert int(bits[2]) == int(bits[3]) == FP32.nan()  # 0/0, Inf/Inf
        assert int(flags[2]) == int(flags[3]) == 0b000010  # invalid

    def test_sqrt_signed_zero_passes_through(self):
        bits, flags = vec_sqrt(
            FP32, self.words(FP32.zero(0), FP32.zero(1)), with_flags=True
        )
        assert [int(x) for x in bits] == [FP32.zero(0), FP32.zero(1)]
        assert all(int(f) == 0b000001 for f in flags)

    def test_sqrt_negative_is_invalid_nan(self):
        bits, flags = vec_sqrt(
            FP32, self.words(FP32.one(1), FP32.min_normal(1)), with_flags=True
        )
        assert all(int(x) == FP32.nan() for x in bits)
        assert all(int(f) == 0b000010 for f in flags)

    def test_fma_zero_sign_rules(self):
        # Matching product/addend signs keep the sign; mixed give +0;
        # exact cancellation of non-zero contributions gives +0.
        one, mone = FP32.one(0), FP32.one(1)
        a = self.words(FP32.zero(1), FP32.zero(1), one, mone)
        b = self.words(one, one, one, one)
        c = self.words(FP32.zero(1), FP32.zero(0), mone, one)
        bits, flags = vec_fma(FP32, a, b, c, with_flags=True)
        assert [int(x) for x in bits] == [
            FP32.zero(1),
            FP32.zero(0),
            FP32.zero(0),
            FP32.zero(0),
        ]
        assert all(int(f) == 0b000001 for f in flags)


class TestFlagSidebandIsolation:
    """A flag-raising lane must not leak into its neighbours' sideband
    words: the batch with a special spliced in reports exactly the same
    flags for the benign lanes as the benign-only batch."""

    def splice_check(self, vec_fn, benign_cols, special_row):
        clean = vec_fn(FP32, *benign_cols, with_flags=True)
        n = len(benign_cols[0])
        mid = n // 2
        spliced_cols = []
        for col, word in zip(benign_cols, special_row):
            spliced = np.concatenate(
                [col[:mid], np.array([word], dtype=np.uint64), col[mid:]]
            )
            spliced_cols.append(spliced)
        spliced = vec_fn(FP32, *spliced_cols, with_flags=True)
        keep = np.r_[0:mid, mid + 1 : n + 1]
        assert np.array_equal(spliced[0][keep], clean[0])
        assert np.array_equal(spliced[1][keep], clean[1])

    def benign(self, n, rng):
        # Mid-exponent normals: no overflow/underflow, flags mostly just
        # inexact — any cross-lane OR would be visible immediately.
        return np.array(
            [
                FP32.pack(
                    rng.randint(0, 1),
                    FP32.bias + rng.randint(-8, 8),
                    rng.randrange(FP32.man_mask + 1),
                )
                for _ in range(n)
            ],
            dtype=np.uint64,
        )

    @pytest.mark.parametrize(
        "special",
        [
            ("one", "zero"),  # div_by_zero lane
            ("zero", "zero"),  # invalid lane
            ("max_finite", "min_normal"),  # overflow lane
            ("min_normal", "max_finite"),  # underflow lane
            ("nan", "one"),  # NaN lane
        ],
        ids=lambda s: f"{s[0]}/{s[1]}",
    )
    def test_div_lane_isolation(self, special, rng):
        cols = (self.benign(17, rng), self.benign(17, rng))
        row = tuple(getattr(FP32, name)() for name in special)
        self.splice_check(vec_div, cols, row)

    def test_sqrt_lane_isolation(self, rng):
        for word in (FP32.one(1), FP32.inf(0), FP32.nan(), FP32.zero(1)):
            self.splice_check(vec_sqrt, (self.benign(17, rng),), (word,))

    def test_fma_lane_isolation(self, rng):
        cols = tuple(self.benign(17, rng) for _ in range(3))
        for row in (
            (FP32.inf(0), FP32.zero(0), FP32.one(0)),  # 0 x Inf invalid
            (FP32.inf(0), FP32.one(0), FP32.inf(1)),  # Inf - Inf invalid
            (FP32.max_finite(), FP32.max_finite(), FP32.one(0)),  # overflow
            (FP32.nan(), FP32.one(0), FP32.one(0)),
        ):
            self.splice_check(vec_fma, cols, row)


class TestPropertyArrays:
    @settings(max_examples=30)
    @given(
        arrays(np.uint32, st.integers(1, 48)),
        arrays(np.uint32, st.integers(1, 48)),
    )
    def test_div_property(self, a, b):
        n = min(len(a), len(b))
        assert_matches_scalar(
            FP32,
            RoundingMode.NEAREST_EVEN,
            fp_div,
            vec_div,
            a[:n].astype(np.uint64),
            b[:n].astype(np.uint64),
        )

    @settings(max_examples=30)
    @given(arrays(np.uint32, st.integers(1, 48)))
    def test_sqrt_property(self, a):
        assert_matches_scalar(
            FP32,
            RoundingMode.NEAREST_EVEN,
            fp_sqrt,
            vec_sqrt,
            a.astype(np.uint64),
        )

    @settings(max_examples=30)
    @given(
        arrays(np.uint32, st.integers(1, 32)),
        arrays(np.uint32, st.integers(1, 32)),
        arrays(np.uint32, st.integers(1, 32)),
    )
    def test_fma_property(self, a, b, c):
        n = min(len(a), len(b), len(c))
        assert_matches_scalar(
            FP32,
            RoundingMode.NEAREST_EVEN,
            fp_fma,
            vec_fma,
            a[:n].astype(np.uint64),
            b[:n].astype(np.uint64),
            c[:n].astype(np.uint64),
        )
