"""Differential tests of fp_div/fp_sqrt against the exactly-rounded
rational oracles (ref_div/ref_sqrt), including flag agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import ALL_FORMATS, words
from repro.fp.divider import fp_div
from repro.fp.flags import FPFlags
from repro.fp.format import FP32, FP64
from repro.fp.reference import ref_div, ref_sqrt
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt
from repro.fp.value import FPValue
from repro.verify.testbench import OperandClass, OperandGenerator


class TestSqrtOracle:
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_class_directed_agreement(self, fmt, mode):
        gen = OperandGenerator(fmt, seed=0x507)
        for cls in OperandClass:
            for _ in range(20):
                a = gen.sample(cls)
                got_bits, got_flags = fp_sqrt(fmt, a, mode)
                want_bits, want_flags = ref_sqrt(fmt, a, mode)
                assert got_bits == want_bits, (fmt.name, cls, hex(a))
                assert got_flags == want_flags, (fmt.name, cls, hex(a))

    @settings(max_examples=300)
    @given(a=words(FP32), mode=st.sampled_from(list(RoundingMode)))
    def test_fp32_property(self, a, mode):
        assert fp_sqrt(FP32, a, mode) == ref_sqrt(FP32, a, mode)

    def test_exact_squares_are_exact(self):
        # sqrt(4) == 2 with no inexact flag, in every format.
        for fmt in ALL_FORMATS:
            four = FPValue.from_float(fmt, 4.0).bits
            bits, flags = ref_sqrt(fmt, four)
            assert bits == FPValue.from_float(fmt, 2.0).bits
            assert flags == FPFlags()

    def test_specials(self):
        fmt = FP64
        assert ref_sqrt(fmt, fmt.nan()) == (fmt.nan(), FPFlags(invalid=True))
        assert ref_sqrt(fmt, fmt.inf(0)) == (fmt.inf(0), FPFlags())
        assert ref_sqrt(fmt, fmt.inf(1)) == (fmt.nan(), FPFlags(invalid=True))
        assert ref_sqrt(fmt, fmt.zero(0)) == (fmt.zero(0), FPFlags(zero=True))
        assert ref_sqrt(fmt, fmt.zero(1)) == (fmt.zero(1), FPFlags(zero=True))
        neg = FPValue.from_float(fmt, -1.0).bits
        assert ref_sqrt(fmt, neg) == (fmt.nan(), FPFlags(invalid=True))
        # Denormal patterns read as (signed) zero before the sign check.
        neg_denormal = fmt.pack(1, 0, 1)
        assert ref_sqrt(fmt, neg_denormal) == (fmt.zero(1), FPFlags(zero=True))


class TestDivOracle:
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_class_directed_agreement(self, fmt, mode):
        gen = OperandGenerator(fmt, seed=0xD1F)
        for cls_a in OperandClass:
            for cls_b in OperandClass:
                for _ in range(3):
                    a = gen.sample(cls_a)
                    b = gen.sample(cls_b)
                    got_bits, got_flags = fp_div(fmt, a, b, mode)
                    want_bits, want_flags = ref_div(fmt, a, b, mode)
                    assert got_bits == want_bits, (fmt.name, hex(a), hex(b))
                    assert got_flags == want_flags, (fmt.name, hex(a), hex(b))

    @settings(max_examples=300)
    @given(a=words(FP32), b=words(FP32), mode=st.sampled_from(list(RoundingMode)))
    def test_fp32_property(self, a, b, mode):
        assert fp_div(FP32, a, b, mode) == ref_div(FP32, a, b, mode)

    def test_flag_cases(self):
        fmt = FP32
        one, zero = fmt.one(0), fmt.zero(0)
        assert ref_div(fmt, one, zero)[1] == FPFlags(div_by_zero=True)
        assert ref_div(fmt, zero, zero)[1] == FPFlags(invalid=True)
        assert ref_div(fmt, fmt.inf(0), fmt.inf(0))[1] == FPFlags(invalid=True)
        assert ref_div(fmt, one, fmt.inf(0))[1] == FPFlags(zero=True)
