"""Unit tests for the rounding primitive and GRS extraction."""

import pytest

from repro.fp.rounding import (
    RoundingMode,
    collapse_sticky,
    extract_grs,
    round_significand,
)


class TestRoundSignificand:
    @pytest.mark.parametrize("grs", range(8))
    def test_truncate_never_increments(self, grs):
        sig, inexact = round_significand(0b1011, grs, RoundingMode.TRUNCATE)
        assert sig == 0b1011
        assert inexact == (grs != 0)

    def test_rne_below_half_rounds_down(self):
        for grs in (0b000, 0b001, 0b010, 0b011):
            sig, _ = round_significand(10, grs, RoundingMode.NEAREST_EVEN)
            assert sig == 10

    def test_rne_above_half_rounds_up(self):
        for grs in (0b101, 0b110, 0b111):
            sig, _ = round_significand(10, grs, RoundingMode.NEAREST_EVEN)
            assert sig == 11

    def test_rne_tie_to_even(self):
        # Exactly halfway (grs == 100): round to even significand.
        even, _ = round_significand(10, 0b100, RoundingMode.NEAREST_EVEN)
        odd, _ = round_significand(11, 0b100, RoundingMode.NEAREST_EVEN)
        assert even == 10  # stays even
        assert odd == 12  # bumps to even

    def test_inexact_flag(self):
        _, inexact = round_significand(5, 0, RoundingMode.NEAREST_EVEN)
        assert not inexact
        _, inexact = round_significand(5, 1, RoundingMode.NEAREST_EVEN)
        assert inexact

    def test_carry_out_possible(self):
        sig, _ = round_significand(0b111, 0b101, RoundingMode.NEAREST_EVEN)
        assert sig == 0b1000  # caller must renormalize

    def test_bad_grs_rejected(self):
        with pytest.raises(ValueError):
            round_significand(1, 8, RoundingMode.NEAREST_EVEN)
        with pytest.raises(ValueError):
            round_significand(1, -1, RoundingMode.NEAREST_EVEN)


class TestCollapseSticky:
    def test_zero_bits(self):
        assert collapse_sticky(0b1111, 0) == 0

    def test_detects_any_low_bit(self):
        assert collapse_sticky(0b1000, 3) == 0
        assert collapse_sticky(0b1001, 3) == 1
        assert collapse_sticky(0b0100, 3) == 1

    def test_negative_bits(self):
        assert collapse_sticky(0b1111, -1) == 0


class TestExtractGrs:
    def test_no_drop(self):
        sig, grs = extract_grs(0b1011, 4, 4)
        assert (sig, grs) == (0b1011, 0)

    def test_drop_one_bit_becomes_guard(self):
        sig, grs = extract_grs(0b10111, 4, 5)
        assert sig == 0b1011
        assert grs == 0b100

    def test_drop_two_bits(self):
        sig, grs = extract_grs(0b101101, 4, 6)
        assert sig == 0b1011
        assert grs == 0b010

    def test_drop_many_bits_sticky(self):
        # value = 1011_0101: keep 4, drop 4 -> G=0 R=1 sticky=1
        sig, grs = extract_grs(0b10110101, 4, 8)
        assert sig == 0b1011
        assert grs == 0b011

    def test_sticky_zero_when_clean(self):
        sig, grs = extract_grs(0b10110000, 4, 8)
        assert sig == 0b1011
        assert grs == 0

    def test_keep_exceeds_total_rejected(self):
        with pytest.raises(ValueError):
            extract_grs(0b1, 5, 4)

    def test_grs_agrees_with_exact_fraction(self):
        # Exhaustive for small widths: the GRS triple must place the value
        # correctly relative to the half-ulp midpoints.
        for value in range(1 << 8):
            sig, grs = extract_grs(value, 4, 8)
            frac = value & 0xF  # the dropped 4 bits
            if frac == 0:
                assert grs == 0
            elif frac < 8:
                assert grs < 0b100
            elif frac == 8:
                assert grs == 0b100
            else:
                assert grs > 0b100
            assert sig == value >> 4
