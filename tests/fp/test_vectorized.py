"""Element-wise equivalence of the vectorized ops with the scalar
datapaths, plus input validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fp.adder import fp_add, fp_sub
from repro.fp.format import FP32, FP48, FPFormat
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import vec_add, vec_mul, vec_sub

FP16 = FPFormat(exp_bits=5, man_bits=10, name="fp16")

OPS = [
    (vec_add, fp_add),
    (vec_sub, fp_sub),
    (vec_mul, fp_mul),
]


def random_words(fmt, n, rng):
    return np.array(
        [rng.randrange(fmt.word_mask + 1) for _ in range(n)], dtype=np.uint64
    )


def special_words(fmt):
    return np.array(
        [
            fmt.zero(0),
            fmt.zero(1),
            fmt.one(0),
            fmt.one(1),
            fmt.min_normal(),
            fmt.max_finite(),
            fmt.max_finite(1),
            fmt.inf(0),
            fmt.inf(1),
            fmt.nan(),
            fmt.pack(0, 0, fmt.man_mask),  # denormal pattern
            fmt.pack(1, fmt.bias, 1),
        ],
        dtype=np.uint64,
    )


class TestElementwiseEquivalence:
    @pytest.mark.parametrize("fmt", [FP32, FP16], ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_random_words(self, fmt, mode, rng):
        n = 1500
        a = random_words(fmt, n, rng)
        b = random_words(fmt, n, rng)
        for vec, scal in OPS:
            out = vec(fmt, a, b, mode)
            for i in range(n):
                assert int(out[i]) == scal(fmt, int(a[i]), int(b[i]), mode)[0], (
                    vec.__name__,
                    hex(int(a[i])),
                    hex(int(b[i])),
                )

    @pytest.mark.parametrize("fmt", [FP32, FP16], ids=lambda f: f.name)
    def test_all_special_pairs(self, fmt):
        s = special_words(fmt)
        a, b = np.meshgrid(s, s)
        a, b = a.ravel(), b.ravel()
        for vec, scal in OPS:
            out = vec(fmt, a, b)
            for i in range(len(a)):
                assert int(out[i]) == scal(fmt, int(a[i]), int(b[i]))[0], (
                    vec.__name__,
                    hex(int(a[i])),
                    hex(int(b[i])),
                )

    @settings(max_examples=40)
    @given(
        arrays(np.uint32, st.integers(1, 64)),
        arrays(np.uint32, st.integers(1, 64)),
    )
    def test_property_arrays(self, a, b):
        n = min(len(a), len(b))
        a = a[:n].astype(np.uint64)
        b = b[:n].astype(np.uint64)
        out = vec_add(FP32, a, b)
        for i in range(n):
            assert int(out[i]) == fp_add(FP32, int(a[i]), int(b[i]))[0]


class TestShapeAndValidation:
    def test_preserves_shape(self, rng):
        a = random_words(FP32, 12, rng).reshape(3, 4)
        b = random_words(FP32, 12, rng).reshape(3, 4)
        assert vec_mul(FP32, a, b).shape == (3, 4)

    def test_fp48_accepted(self):
        # Wide paper formats run on the two-limb datapaths now.
        zeros = np.zeros(2, dtype=np.uint64)
        assert np.array_equal(vec_add(FP48, zeros, zeros), zeros)

    def test_too_wide_formats_rejected(self):
        fp65 = FPFormat(exp_bits=12, man_bits=52, name="fp65")
        with pytest.raises(ValueError, match="width <= 64"):
            vec_add(fp65, np.zeros(2, dtype=np.uint64), np.zeros(2, dtype=np.uint64))

    def test_tiny_mantissa_rejected(self):
        small = FPFormat(exp_bits=4, man_bits=2)
        with pytest.raises(ValueError, match="fraction bits <= 59"):
            vec_mul(small, np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64))

    def test_float_arrays_rejected(self):
        with pytest.raises(TypeError):
            vec_add(FP32, np.zeros(2), np.zeros(2))

    def test_out_of_range_words_rejected(self):
        bad = np.array([1 << 40], dtype=np.uint64)
        with pytest.raises(ValueError, match="outside"):
            vec_add(FP32, bad, bad)

    def test_empty_arrays(self):
        empty = np.array([], dtype=np.uint64)
        assert vec_add(FP32, empty, empty).size == 0


class TestConsistencyWithNumpyFloat32:
    def test_matches_ieee_away_from_denormals(self, rng):
        n = 2000
        vals_a = np.array(
            [rng.uniform(-1, 1) * 10 ** rng.randint(-10, 10) for _ in range(n)],
            dtype=np.float32,
        )
        vals_b = np.array(
            [rng.uniform(-1, 1) * 10 ** rng.randint(-10, 10) for _ in range(n)],
            dtype=np.float32,
        )
        a = vals_a.view(np.uint32).astype(np.uint64)
        b = vals_b.view(np.uint32).astype(np.uint64)
        with np.errstate(all="ignore"):
            expected = (vals_a + vals_b).view(np.uint32).astype(np.uint64)
        got = vec_add(FP32, a, b)
        exp_field = (expected >> np.uint64(23)) & np.uint64(0xFF)
        man_field = expected & np.uint64(0x7FFFFF)
        denormal = (exp_field == 0) & (man_field != 0)
        comparable = ~denormal
        assert np.array_equal(got[comparable], expected[comparable])
