"""Unit tests for the datapath trace facility."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.adder import fp_add
from repro.fp.format import FP32
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.trace import fp_add_trace, fp_mul_trace
from repro.fp.value import FPValue

from tests.conftest import ALL_FORMATS, words


def f(x: float) -> int:
    return FPValue.from_float(FP32, x).bits


class TestAdderTrace:
    def test_stage_sequence_normal_path(self):
        t = fp_add_trace(FP32, f(1.5), f(2.25))
        assert [s.name for s in t.stages] == [
            "denorm",
            "swap",
            "align",
            "add_sub",
            "normalize",
            "round",
        ]
        assert t.special is None

    def test_signals_consistent(self):
        t = fp_add_trace(FP32, f(3.0), f(1.0))
        # 3.0 has exponent one above 1.0: the small operand aligns by 1.
        assert t.find("swap", "exp_diff") == 1
        assert t.find("swap", "swapped") == 0
        assert t.find("add_sub", "subtract") == 0

    def test_subtract_path(self):
        t = fp_add_trace(FP32, f(1.0), f(-1.0))
        assert t.special == "exact cancellation"

    def test_zero_operand_short_circuit(self):
        t = fp_add_trace(FP32, FP32.zero(0), f(2.0))
        assert t.special == "zero operand"
        assert t.result == f(2.0)

    def test_special_operand(self):
        t = fp_add_trace(FP32, FP32.inf(0), f(1.0))
        assert t.special == "NaN/Inf operand"
        assert t.result == FP32.inf(0)

    def test_overflow_annotated(self):
        t = fp_add_trace(FP32, FP32.max_finite(), FP32.max_finite())
        assert t.special == "overflow saturate"

    def test_render_mentions_stages(self):
        out = fp_add_trace(FP32, f(1.5), f(2.5)).render()
        assert "align" in out and "result" in out

    def test_missing_signal_raises(self):
        t = fp_add_trace(FP32, f(1.5), f(2.5))
        try:
            t.find("align", "nope")
            raise AssertionError("expected KeyError")
        except KeyError:
            pass


class TestMultiplierTrace:
    def test_stage_sequence(self):
        t = fp_mul_trace(FP32, f(1.5), f(2.5))
        assert [s.name for s in t.stages] == [
            "denorm",
            "multiply",
            "normalize",
            "round",
        ]

    def test_normalize_shift_recorded(self):
        # 1.5 * 1.5 = 2.25 >= 2: one-position shift
        t = fp_mul_trace(FP32, f(1.5), f(1.5))
        assert t.find("normalize", "shift") == 1
        t = fp_mul_trace(FP32, f(1.25), f(1.25))
        assert t.find("normalize", "shift") == 0

    def test_zero_short_circuit(self):
        t = fp_mul_trace(FP32, FP32.zero(0), f(5.0))
        assert t.special == "zero operand"


format_st = st.sampled_from(ALL_FORMATS)


@st.composite
def fmt_two_words_mode(draw):
    fmt = draw(format_st)
    return (
        fmt,
        draw(words(fmt)),
        draw(words(fmt)),
        draw(st.sampled_from(list(RoundingMode))),
    )


class TestTraceNeverDiverges:
    """The trace re-implementation is pinned bit-for-bit to production."""

    @settings(max_examples=300)
    @given(fmt_two_words_mode())
    def test_add_trace_result_matches(self, fabm):
        fmt, a, b, mode = fabm
        t = fp_add_trace(fmt, a, b, mode)
        bits, flags = fp_add(fmt, a, b, mode)
        assert t.result == bits
        assert t.flags == flags

    @settings(max_examples=300)
    @given(fmt_two_words_mode())
    def test_mul_trace_result_matches(self, fabm):
        fmt, a, b, mode = fabm
        t = fp_mul_trace(fmt, a, b, mode)
        bits, flags = fp_mul(fmt, a, b, mode)
        assert t.result == bits
        assert t.flags == flags

    @settings(max_examples=200)
    @given(fmt_two_words_mode())
    def test_trace_final_sig_matches_result(self, fabm):
        """When the normal path completes, the traced rounded significand
        must reconstruct the result mantissa."""
        fmt, a, b, mode = fabm
        t = fp_add_trace(fmt, a, b, mode)
        if t.special is not None:
            return
        sig = t.find("round", "sig")
        _, exp, man = fmt.unpack(t.result)
        del exp
        assert sig & fmt.man_mask == man
