"""Unit tests for format-to-format conversion."""

import pytest
from hypothesis import given, settings

from repro.fp.convert import fp_convert, is_lossless, round_trip_exact
from repro.fp.format import FP32, FP48, FP64, FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

from tests.conftest import finite_words, normal_words


class TestLossless:
    def test_subsumption_matrix(self):
        assert is_lossless(FP32, FP64)
        assert is_lossless(FP32, FP48)
        assert is_lossless(FP48, FP64)
        assert not is_lossless(FP64, FP32)
        assert not is_lossless(FP48, FP32)
        assert not is_lossless(FP64, FP48)
        assert is_lossless(FP32, FP32)

    @settings(max_examples=200)
    @given(finite_words(FP32))
    def test_widening_is_exact(self, bits):
        for dst in (FP48, FP64):
            out, flags = fp_convert(FP32, dst, bits)
            assert not flags.inexact
            if not FP32.is_zero(bits):
                assert FPValue(dst, out).to_fraction() == FPValue(
                    FP32, bits
                ).to_fraction()

    @settings(max_examples=200)
    @given(normal_words(FP32))
    def test_widening_round_trips(self, bits):
        assert round_trip_exact(FP32, FP64, bits)
        assert round_trip_exact(FP32, FP48, bits)


class TestNarrowing:
    def test_narrowing_rounds(self):
        x = FPValue.from_float(FP64, 1.0 + 2.0**-40).bits
        out, flags = fp_convert(FP64, FP32, x)
        assert flags.inexact
        assert out == FP32.one()

    def test_narrowing_overflow_saturates(self):
        x = FPValue.from_float(FP64, 1e300).bits
        out, flags = fp_convert(FP64, FP32, x)
        assert out == FP32.inf(0)
        assert flags.overflow

    def test_narrowing_underflow_flushes(self):
        x = FPValue.from_float(FP64, 1e-300).bits
        out, flags = fp_convert(FP64, FP32, x)
        assert FP32.is_zero(out)
        assert flags.underflow

    def test_truncation_mode(self):
        x = FPValue.from_float(FP64, 1.0 + 2.0**-24 + 2.0**-40).bits
        rne, _ = fp_convert(FP64, FP32, x, RoundingMode.NEAREST_EVEN)
        rtz, _ = fp_convert(FP64, FP32, x, RoundingMode.TRUNCATE)
        assert FPValue(FP32, rtz).to_float() <= FPValue(FP32, rne).to_float()
        assert rtz == FP32.one()

    def test_fp64_to_fp32_matches_python_float_narrowing(self, rng):
        import numpy as np

        for _ in range(500):
            x = rng.uniform(-1, 1) * 10.0 ** rng.randint(-30, 30)
            src = FPValue.from_float(FP64, x).bits
            out, _ = fp_convert(FP64, FP32, src)
            expected = FPValue.from_float(FP32, float(np.float32(x))).bits
            se, ee, me = FP32.unpack(expected)
            del se
            if ee == 0 and me:
                continue  # denormal: flushed by design
            assert out == expected


class TestSpecials:
    def test_nan(self):
        out, flags = fp_convert(FP32, FP64, FP32.nan())
        assert FP64.is_nan(out)
        assert flags.invalid

    def test_inf_keeps_sign(self):
        out, _ = fp_convert(FP64, FP32, FP64.inf(1))
        assert out == FP32.inf(1)

    def test_zero_keeps_sign(self):
        out, flags = fp_convert(FP32, FP64, FP32.zero(1))
        assert out == FP64.zero(1)
        assert flags.zero

    def test_denormal_source_flushes(self):
        denormal = FP32.pack(0, 0, 77)
        out, _ = fp_convert(FP32, FP64, denormal)
        assert FP64.is_zero(out)


class TestCustomFormats:
    def test_half_precision_conversion(self):
        fp16 = FPFormat(exp_bits=5, man_bits=10, name="fp16")
        x = FPValue.from_float(FP32, 1.5).bits
        out, flags = fp_convert(FP32, fp16, x)
        assert FPValue(fp16, out).to_float() == 1.5
        assert not flags.inexact

    def test_vendor_custom_format_shim(self):
        """Model of the Table 3 conversion module: a custom 30-bit format
        loses precision against IEEE single, detectably."""
        custom = FPFormat(exp_bits=8, man_bits=21, name="nallatech30")
        x = FPValue.from_float(FP32, 1.0 + 2.0**-23).bits
        there, flags = fp_convert(FP32, custom, x)
        assert flags.inexact
        back, _ = fp_convert(custom, FP32, there)
        assert back == FP32.one()  # precision lost in the shim
