"""Unit tests for the FP adder/subtractor datapath.

Directed corner cases plus randomized cross-checks against IEEE single
precision (numpy/struct) and against the exact rational reference.
"""

import math

import numpy as np
import pytest

from repro.fp.adder import FPAdder, fp_add, fp_sub
from repro.fp.format import FP32, FP64
from repro.fp.reference import ref_add, ref_sub
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue

from tests.conftest import bits_to_f32, f32_to_bits


def add32(x: float, y: float) -> float:
    bits, _ = fp_add(FP32, f32_to_bits(x), f32_to_bits(y))
    return bits_to_f32(bits)


class TestSpecialValues:
    def test_nan_propagates(self):
        bits, flags = fp_add(FP32, FP32.nan(), FP32.one())
        assert FP32.is_nan(bits)
        assert flags.invalid

    def test_nan_second_operand(self):
        bits, flags = fp_add(FP32, FP32.one(), FP32.nan())
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_plus_finite(self):
        bits, flags = fp_add(FP32, FP32.inf(0), FP32.one())
        assert bits == FP32.inf(0)
        assert not flags.any_exception

    def test_inf_plus_inf_same_sign(self):
        bits, _ = fp_add(FP32, FP32.inf(1), FP32.inf(1))
        assert bits == FP32.inf(1)

    def test_inf_minus_inf_is_invalid(self):
        bits, flags = fp_add(FP32, FP32.inf(0), FP32.inf(1))
        assert FP32.is_nan(bits)
        assert flags.invalid


class TestZeros:
    def test_zero_plus_zero(self):
        bits, flags = fp_add(FP32, FP32.zero(0), FP32.zero(0))
        assert bits == FP32.zero(0) and flags.zero

    def test_negative_zeros_keep_sign(self):
        bits, _ = fp_add(FP32, FP32.zero(1), FP32.zero(1))
        assert bits == FP32.zero(1)

    def test_mixed_zeros_give_positive_zero(self):
        bits, _ = fp_add(FP32, FP32.zero(0), FP32.zero(1))
        assert bits == FP32.zero(0)

    def test_zero_identity(self):
        one = FP32.one()
        assert fp_add(FP32, one, FP32.zero(0))[0] == one
        assert fp_add(FP32, FP32.zero(1), one)[0] == one

    def test_denormal_input_treated_as_zero(self):
        denormal = FP32.pack(0, 0, 12345)
        bits, _ = fp_add(FP32, denormal, FP32.one())
        assert bits == FP32.one()

    def test_exact_cancellation_gives_positive_zero(self):
        x = FPValue.from_float(FP32, 1.5).bits
        neg = FP32.pack(1, *FP32.unpack(x)[1:])
        bits, flags = fp_add(FP32, x, neg)
        assert bits == FP32.zero(0)
        assert flags.zero


class TestDirectedArithmetic:
    @pytest.mark.parametrize(
        "x,y",
        [
            (1.0, 1.0),
            (1.5, 2.25),
            (0.1, 0.2),
            (1e20, 1.0),
            (1.0, -0.9999999),
            (3.0, -3.0000002),
            (1e-20, 1e-20),
            (123456.78, -123456.7),
            (2.0**-126, 2.0**-126),
        ],
    )
    def test_matches_ieee_single(self, x, y):
        expected = np.float32(np.float32(x) + np.float32(y))
        assert add32(float(np.float32(x)), float(np.float32(y))) == float(expected)

    def test_carry_propagation(self):
        # 1.111...1 + ulp -> exactly 2.0
        max_man = FP32.pack(0, FP32.bias, FP32.man_mask)
        ulp = FP32.pack(0, FP32.bias - 23, 0)
        bits, _ = fp_add(FP32, max_man, ulp)
        assert FPValue(FP32, bits).to_float() == 2.0

    def test_large_exponent_difference_sticky(self):
        # Tiny addend far beyond the GRS window must still mark inexact.
        big = FPValue.from_float(FP32, 1.0).bits
        tiny = FPValue.from_float(FP32, 2.0**-60).bits
        bits, flags = fp_add(FP32, big, tiny)
        assert bits == big
        assert flags.inexact

    def test_subtraction_full_cancellation_path(self):
        # Operands one ulp apart: massive normalization shift, exact result.
        a = FPValue.from_float(FP32, 1.0).bits
        b = FP32.pack(0, FP32.bias, 1)  # 1 + 2^-23
        bits, flags = fp_sub(FP32, b, a)
        assert FPValue(FP32, bits).to_float() == 2.0**-23
        assert not flags.inexact

    def test_overflow_saturates(self):
        big = FP32.max_finite()
        bits, flags = fp_add(FP32, big, big)
        assert bits == FP32.inf(0)
        assert flags.overflow

    def test_underflow_flushes(self):
        # min_normal - (min_normal * (1 - 2^-24)) underflows the normal range.
        a = FP32.min_normal()
        b = FP32.pack(1, 1, 1)  # just above min normal, negative
        bits, flags = fp_sub(FP32, FP32.pack(0, 1, 0), FP32.pack(0, 1, 1))
        del a, b
        assert FP32.is_zero(bits)
        assert flags.underflow

    def test_commutative_on_samples(self):
        samples = [1.0, -2.5, 3.25, 1e10, -1e-10]
        for x in samples:
            for y in samples:
                assert add32(x, y) == add32(y, x)


class TestRoundingModes:
    def test_truncation_magnitude_never_larger(self):
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 2.0**-24).bits  # halfway case
        rne, _ = fp_add(FP32, a, b, RoundingMode.NEAREST_EVEN)
        rtz, _ = fp_add(FP32, a, b, RoundingMode.TRUNCATE)
        assert FPValue(FP32, rtz).to_float() <= FPValue(FP32, rne).to_float()

    def test_tie_to_even(self):
        # 1 + 2^-24: tie, rounds to 1.0 (even)
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 2.0**-24).bits
        bits, flags = fp_add(FP32, a, b)
        assert bits == a
        assert flags.inexact

    def test_above_tie_rounds_up(self):
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 2.0**-24 * 1.5).bits
        bits, _ = fp_add(FP32, a, b)
        assert FPValue(FP32, bits).to_float() == 1.0 + 2.0**-23


class TestRandomCrossCheck:
    def test_fp32_against_numpy(self, rng):
        checked = 0
        for _ in range(3000):
            x = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-30, 30))
            y = np.float32(rng.uniform(-1, 1) * 10.0 ** rng.randint(-30, 30))
            if not (np.isfinite(x) and np.isfinite(y)) or x == 0 or y == 0:
                continue
            with np.errstate(all="ignore"):
                expected = np.float32(x) + np.float32(y)
            exp_bits = f32_to_bits(float(np.float32(expected)))
            se, ee, me = FP32.unpack(exp_bits)
            if ee == 0 and me != 0:
                continue  # denormal result: flushed by design
            got, _ = fp_add(FP32, f32_to_bits(float(x)), f32_to_bits(float(y)))
            if np.isinf(expected):
                assert got == FP32.inf(se)
            else:
                assert got == exp_bits, (float(x), float(y))
            checked += 1
        assert checked > 2000

    def test_fp64_against_reference(self, rng):
        for _ in range(1500):
            a = rng.randrange(FP64.word_mask + 1)
            b = rng.randrange(FP64.word_mask + 1)
            for mode in RoundingMode:
                assert fp_add(FP64, a, b, mode)[0] == ref_add(FP64, a, b, mode)[0]
                assert fp_sub(FP64, a, b, mode)[0] == ref_sub(FP64, a, b, mode)[0]


class TestFPAdderWrapper:
    def test_add_and_sub(self):
        adder = FPAdder(FP32)
        one = FP32.one()
        two = FPValue.from_float(FP32, 2.0).bits
        assert FPValue(FP32, adder.add(one, one)[0]).to_float() == 2.0
        assert FPValue(FP32, adder.sub(two, one)[0]).to_float() == 1.0

    def test_call_with_subtract_flag(self):
        adder = FPAdder(FP32)
        two = FPValue.from_float(FP32, 2.0).bits
        one = FP32.one()
        assert adder(two, one, subtract=True)[0] == one

    def test_truncate_mode_wrapper(self):
        adder = FPAdder(FP32, RoundingMode.TRUNCATE)
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 2.0**-24 * 1.5).bits
        bits, _ = adder.add(a, b)
        assert bits == a  # truncation drops the tail


class TestSubtractSignHandling:
    def test_sub_is_add_of_negation(self):
        x = FPValue.from_float(FP32, 5.5).bits
        y = FPValue.from_float(FP32, 2.25).bits
        direct, _ = fp_sub(FP32, x, y)
        via_add, _ = fp_add(FP32, x, FPValue(FP32, y).__neg__().bits)
        assert direct == via_add

    def test_result_takes_larger_magnitude_sign(self):
        small = FPValue.from_float(FP32, 1.0).bits
        big_neg = FPValue.from_float(FP32, -4.0).bits
        bits, _ = fp_add(FP32, small, big_neg)
        assert FPValue(FP32, bits).to_float() == -3.0

    def test_nan_in_subtrahend(self):
        bits, flags = fp_sub(FP32, FP32.one(), FP32.nan())
        assert FP32.is_nan(bits) and flags.invalid

    def test_inf_subtrahend_sign_flips(self):
        bits, _ = fp_sub(FP32, FP32.one(), FP32.inf(0))
        assert bits == FP32.inf(1)
