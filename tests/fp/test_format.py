"""Unit tests for FPFormat geometry, packing and classification."""

import pytest

from repro.fp.format import FP32, FP48, FP64, PAPER_FORMATS, FPFormat


class TestGeometry:
    def test_fp32_matches_ieee_single(self):
        assert FP32.width == 32
        assert FP32.exp_bits == 8
        assert FP32.man_bits == 23
        assert FP32.bias == 127
        assert FP32.emax == 127
        assert FP32.emin == -126

    def test_fp64_matches_ieee_double(self):
        assert FP64.width == 64
        assert FP64.exp_bits == 11
        assert FP64.man_bits == 52
        assert FP64.bias == 1023
        assert FP64.emax == 1023
        assert FP64.emin == -1022

    def test_fp48_layout(self):
        assert FP48.width == 48
        assert FP48.exp_bits == 11
        assert FP48.man_bits == 36
        assert FP48.bias == 1023

    def test_paper_formats_ordering(self):
        assert [f.width for f in PAPER_FORMATS] == [32, 48, 64]

    def test_sig_bits_includes_hidden_bit(self):
        assert FP32.sig_bits == 24
        assert FP64.sig_bits == 53

    def test_custom_format_default_name(self):
        f = FPFormat(exp_bits=5, man_bits=10)
        assert f.name == "fp16"
        assert f.width == 16

    def test_invalid_exp_bits_rejected(self):
        with pytest.raises(ValueError):
            FPFormat(exp_bits=1, man_bits=4)

    def test_invalid_man_bits_rejected(self):
        with pytest.raises(ValueError):
            FPFormat(exp_bits=4, man_bits=0)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        fmt = FP32
        for sign, exp, man in [(0, 0, 0), (1, 255, 1), (0, 127, 0x7FFFFF), (1, 1, 42)]:
            bits = fmt.pack(sign, exp, man)
            assert fmt.unpack(bits) == (sign, exp, man)

    def test_pack_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            FP32.pack(2, 0, 0)

    def test_pack_rejects_exp_overflow(self):
        with pytest.raises(ValueError):
            FP32.pack(0, 256, 0)

    def test_pack_rejects_man_overflow(self):
        with pytest.raises(ValueError):
            FP32.pack(0, 0, 1 << 23)

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FP32.unpack(1 << 32)
        with pytest.raises(ValueError):
            FP32.unpack(-1)

    def test_word_mask(self):
        assert FP32.word_mask == 0xFFFFFFFF
        assert FP64.word_mask == (1 << 64) - 1


class TestCanonicalEncodings:
    def test_zero_encodings(self):
        assert FP32.zero(0) == 0x00000000
        assert FP32.zero(1) == 0x80000000

    def test_inf_encodings(self):
        assert FP32.inf(0) == 0x7F800000
        assert FP32.inf(1) == 0xFF800000

    def test_nan_encoding_is_quiet(self):
        assert FP32.nan() == 0x7FC00000

    def test_one(self):
        assert FP32.one(0) == 0x3F800000
        assert FP32.one(1) == 0xBF800000

    def test_max_finite(self):
        assert FP32.max_finite() == 0x7F7FFFFF

    def test_min_normal(self):
        assert FP32.min_normal() == 0x00800000


class TestClassification:
    def test_zero_detection_ignores_fraction(self):
        # Denormal encodings are classified as zero (flush-to-zero system).
        denormal = FP32.pack(0, 0, 123)
        assert FP32.is_zero(denormal)

    def test_inf_and_nan(self):
        assert FP32.is_inf(FP32.inf(0))
        assert FP32.is_inf(FP32.inf(1))
        assert not FP32.is_inf(FP32.nan())
        assert FP32.is_nan(FP32.nan())
        assert not FP32.is_nan(FP32.inf(0))

    def test_finite(self):
        assert FP32.is_finite(FP32.one())
        assert FP32.is_finite(FP32.zero())
        assert not FP32.is_finite(FP32.inf(0))
        assert not FP32.is_finite(FP32.nan())
