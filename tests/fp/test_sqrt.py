"""Unit tests for the FP square-root datapath (library extension)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import FPSqrt, fp_sqrt, sqrt_recurrence
from repro.fp.value import FPValue

from tests.conftest import ALL_FORMATS, f32_to_bits, f64_to_bits, normal_words


class TestSpecialValues:
    def test_nan(self):
        bits, flags = fp_sqrt(FP32, FP32.nan())
        assert FP32.is_nan(bits) and flags.invalid

    def test_negative_is_invalid(self):
        bits, flags = fp_sqrt(FP32, FPValue.from_float(FP32, -4.0).bits)
        assert FP32.is_nan(bits) and flags.invalid

    def test_signed_zeros_pass_through(self):
        assert fp_sqrt(FP32, FP32.zero(0))[0] == FP32.zero(0)
        assert fp_sqrt(FP32, FP32.zero(1))[0] == FP32.zero(1)

    def test_positive_inf(self):
        bits, flags = fp_sqrt(FP32, FP32.inf(0))
        assert bits == FP32.inf(0)
        assert not flags.any_exception

    def test_negative_inf_invalid(self):
        bits, flags = fp_sqrt(FP32, FP32.inf(1))
        assert FP32.is_nan(bits) and flags.invalid

    def test_denormal_input_flushes(self):
        denormal = FP32.pack(0, 0, 55)
        bits, flags = fp_sqrt(FP32, denormal)
        assert FP32.is_zero(bits)
        del flags


class TestDirected:
    @pytest.mark.parametrize(
        "x,expected",
        [(1.0, 1.0), (4.0, 2.0), (9.0, 3.0), (0.25, 0.5), (2.25, 1.5), (1e4, 100.0)],
    )
    def test_exact_roots(self, x, expected):
        bits, flags = fp_sqrt(FP32, FPValue.from_float(FP32, x).bits)
        assert FPValue(FP32, bits).to_float() == expected
        assert not flags.inexact

    def test_sqrt2_inexact(self):
        bits, flags = fp_sqrt(FP32, FPValue.from_float(FP32, 2.0).bits)
        assert flags.inexact
        assert FPValue(FP32, bits).to_float() == pytest.approx(math.sqrt(2), rel=1e-7)

    def test_odd_exponent_path(self):
        # 2.0 has an odd unbiased exponent (1): exercises the pre-double.
        bits, _ = fp_sqrt(FP64, FPValue.from_float(FP64, 2.0).bits)
        assert bits == f64_to_bits(math.sqrt(2.0))

    def test_extreme_inputs_never_overflow(self):
        big, flags = fp_sqrt(FP32, FP32.max_finite())
        assert FP32.is_finite(big) and not flags.overflow
        small, flags = fp_sqrt(FP32, FP32.min_normal())
        assert not FP32.is_zero(small) and not flags.underflow


class TestRandomCrossCheck:
    def test_fp32_against_numpy(self, rng):
        for _ in range(4000):
            bits = FP32.pack(0, rng.randint(1, FP32.exp_max - 1),
                             rng.randrange(FP32.man_mask + 1))
            x = FPValue(FP32, bits).to_float()
            expected = f32_to_bits(float(np.sqrt(np.float32(x))))
            assert fp_sqrt(FP32, bits)[0] == expected, x

    def test_fp64_against_math(self, rng):
        for _ in range(1500):
            bits = FP64.pack(0, rng.randint(1, FP64.exp_max - 1),
                             rng.randrange(FP64.man_mask + 1))
            x = FPValue(FP64, bits).to_float()
            assert fp_sqrt(FP64, bits)[0] == f64_to_bits(math.sqrt(x))


format_st = st.sampled_from(ALL_FORMATS)


class TestProperties:
    @settings(max_examples=250)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_result_squared_brackets_input(self, fa):
        """RNE square root: the result is the representable value whose
        square is nearest the input."""
        fmt, a = fa
        sign, _, _ = fmt.unpack(a)
        if sign:
            return
        bits, _ = fp_sqrt(fmt, a)
        root = FPValue(fmt, bits).to_fraction()
        value = FPValue(fmt, a).to_fraction()
        # Stepping one ulp either way must not get closer to the input.
        _, exp, man = fmt.unpack(bits)
        up = fmt.pack(0, exp + (man == fmt.man_mask), (man + 1) & fmt.man_mask)
        down_man = man - 1 if man else fmt.man_mask
        down_exp = exp if man else exp - 1
        err = abs(root * root - value)
        if fmt.is_finite(up):
            up_v = FPValue(fmt, up).to_fraction()
            assert abs(up_v * up_v - value) >= err
        if down_exp >= 1:
            down_v = FPValue(fmt, fmt.pack(0, down_exp, down_man)).to_fraction()
            assert abs(down_v * down_v - value) >= err

    @settings(max_examples=150)
    @given(format_st.flatmap(lambda f: st.tuples(st.just(f), normal_words(f))))
    def test_truncate_not_larger_than_rne(self, fa):
        fmt, a = fa
        if fmt.unpack(a)[0]:
            return
        rne, _ = fp_sqrt(fmt, a, RoundingMode.NEAREST_EVEN)
        rtz, _ = fp_sqrt(fmt, a, RoundingMode.TRUNCATE)
        assert FPValue(fmt, rtz).to_fraction() <= FPValue(fmt, rne).to_fraction()

    @settings(max_examples=100)
    @given(st.integers(0, 10**12))
    def test_recurrence_matches_isqrt(self, n):
        bits = max(1, (n.bit_length() + 1) // 2 + 1)
        q, r = sqrt_recurrence(n, bits)
        assert q == math.isqrt(n)
        assert r == n - q * q


class TestWrapper:
    def test_sqrt_object(self):
        s = FPSqrt(FP32)
        bits, _ = s.sqrt(FPValue.from_float(FP32, 16.0).bits)
        assert FPValue(FP32, bits).to_float() == 4.0
        assert s(FPValue.from_float(FP32, 16.0).bits)[0] == bits
