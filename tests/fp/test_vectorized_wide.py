"""Wide-format (fp48/fp64) vectorized datapaths: bit-and-flag equivalence
with the scalar cores, limb-boundary formats, and the shared format guard."""

import numpy as np
import pytest

from repro.fp.adder import fp_add, fp_sub
from repro.fp.format import FP32, FP48, FP64, FPFormat
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import (
    MAX_MAN_BITS,
    check_vectorized_format,
    supports_vectorized,
    vec_add,
    vec_mul,
    vec_sub,
)
from repro.verify.testbench import OperandClass, OperandGenerator

WIDE_FORMATS = (FP48, FP64)

#: Formats straddling the one-limb/two-limb product boundary
#: (2 * sig_bits crosses 64 between man_bits 31 and 32) plus the maximum
#: supported mantissa.
BOUNDARY_FORMATS = (
    FPFormat(exp_bits=8, man_bits=30, name="b30"),
    FPFormat(exp_bits=8, man_bits=31, name="b31"),
    FPFormat(exp_bits=8, man_bits=32, name="b32"),
    FPFormat(exp_bits=4, man_bits=59, name="b59"),
)

OPS = [
    (vec_add, fp_add),
    (vec_sub, fp_sub),
    (vec_mul, fp_mul),
]


def random_words(fmt, n, rng):
    return np.array(
        [rng.randrange(fmt.word_mask + 1) for _ in range(n)], dtype=np.uint64
    )


def class_directed_words(fmt, per_pair, seed):
    """One operand array per side, cycling every operand-class pair."""
    gen = OperandGenerator(fmt, seed)
    classes = list(OperandClass)
    a, b = [], []
    for cls_a in classes:
        for cls_b in classes:
            for _ in range(per_pair):
                a.append(gen.sample(cls_a))
                b.append(gen.sample(cls_b))
    return (
        np.array(a, dtype=np.uint64),
        np.array(b, dtype=np.uint64),
    )


def assert_bits_and_flags_match(fmt, a, b, mode):
    for vec, scal in OPS:
        bits, flags = vec(fmt, a, b, mode, with_flags=True)
        plain = vec(fmt, a, b, mode)
        assert np.array_equal(bits, plain), "with_flags must not change bits"
        for i in range(len(a)):
            want_bits, want_flags = scal(fmt, int(a[i]), int(b[i]), mode)
            assert int(bits[i]) == want_bits, (
                vec.__name__, fmt.name, mode.value,
                hex(int(a[i])), hex(int(b[i])),
            )
            assert int(flags[i]) == want_flags.to_bits(), (
                vec.__name__, fmt.name, mode.value,
                hex(int(a[i])), hex(int(b[i])),
            )


class TestWideEquivalence:
    @pytest.mark.parametrize("fmt", WIDE_FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_random_words(self, fmt, mode, rng):
        a = random_words(fmt, 800, rng)
        b = random_words(fmt, 800, rng)
        assert_bits_and_flags_match(fmt, a, b, mode)

    @pytest.mark.parametrize("fmt", WIDE_FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_class_directed(self, fmt, mode):
        a, b = class_directed_words(fmt, per_pair=3, seed=0x51DE)
        assert_bits_and_flags_match(fmt, a, b, mode)

    @pytest.mark.parametrize("fmt", WIDE_FORMATS, ids=lambda f: f.name)
    def test_all_special_pairs(self, fmt):
        specials = np.array(
            [
                fmt.zero(0), fmt.zero(1),
                fmt.one(0), fmt.one(1),
                fmt.min_normal(), fmt.min_normal(1),
                fmt.max_finite(), fmt.max_finite(1),
                fmt.inf(0), fmt.inf(1),
                fmt.nan(),
                fmt.pack(0, 0, fmt.man_mask),  # denormal pattern
                fmt.pack(1, 0, 1),
                fmt.pack(0, fmt.bias, fmt.man_mask),  # tie-prone
                fmt.pack(1, fmt.bias + 1, 1),
            ],
            dtype=np.uint64,
        )
        a, b = np.meshgrid(specials, specials)
        assert_bits_and_flags_match(fmt, a.ravel(), b.ravel(), RoundingMode.NEAREST_EVEN)


class TestLimbBoundaryFormats:
    @pytest.mark.parametrize("fmt", BOUNDARY_FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_boundary_equivalence(self, fmt, mode, rng):
        a = random_words(fmt, 500, rng)
        b = random_words(fmt, 500, rng)
        assert_bits_and_flags_match(fmt, a, b, mode)

    @pytest.mark.parametrize("fmt", BOUNDARY_FORMATS, ids=lambda f: f.name)
    def test_boundary_class_directed(self, fmt):
        a, b = class_directed_words(fmt, per_pair=2, seed=7)
        assert_bits_and_flags_match(fmt, a, b, RoundingMode.NEAREST_EVEN)


class TestNarrowFlagSideband:
    """Flags are new for narrow formats too; pin them against scalar."""

    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_fp32_flags(self, mode, rng):
        a = random_words(FP32, 600, rng)
        b = random_words(FP32, 600, rng)
        assert_bits_and_flags_match(FP32, a, b, mode)

    def test_fp32_class_directed_flags(self):
        a, b = class_directed_words(FP32, per_pair=2, seed=3)
        assert_bits_and_flags_match(FP32, a, b, RoundingMode.NEAREST_EVEN)


class TestFormatGuard:
    def test_supports_vectorized(self):
        assert all(supports_vectorized(f) for f in (FP32, FP48, FP64))
        assert all(supports_vectorized(f) for f in BOUNDARY_FORMATS)
        assert not supports_vectorized(FPFormat(exp_bits=12, man_bits=52))
        assert not supports_vectorized(FPFormat(exp_bits=4, man_bits=60))
        assert not supports_vectorized(FPFormat(exp_bits=4, man_bits=2))

    def test_width_65_rejected(self):
        fp65 = FPFormat(exp_bits=12, man_bits=52, name="fp65")
        with pytest.raises(ValueError, match="width <= 64"):
            check_vectorized_format(fp65)

    def test_man_bits_over_59_rejected(self):
        # width 64, but the GRS-extended sum would overflow a limb.
        fat = FPFormat(exp_bits=3, man_bits=60, name="fat")
        assert fat.width == 64
        with pytest.raises(ValueError, match=f"fraction bits <= {MAX_MAN_BITS}"):
            check_vectorized_format(fat)

    def test_shared_message_across_entry_points(self):
        from repro.kernels.fast import dot_vectorized, functional_matmul_vectorized

        fp65 = FPFormat(exp_bits=12, man_bits=52, name="fp65")
        messages = set()
        for call in (
            lambda: vec_add(fp65, np.zeros(1, np.uint64), np.zeros(1, np.uint64)),
            lambda: vec_mul(fp65, np.zeros(1, np.uint64), np.zeros(1, np.uint64)),
            lambda: vec_sub(fp65, np.zeros(1, np.uint64), np.zeros(1, np.uint64)),
            lambda: functional_matmul_vectorized(
                fp65, np.zeros((2, 2), np.uint64), np.zeros((2, 2), np.uint64)
            ),
            lambda: dot_vectorized(
                fp65, np.zeros(2, np.uint64), np.zeros(2, np.uint64), 1
            ),
        ):
            with pytest.raises(ValueError) as err:
                call()
            messages.add(str(err.value))
        assert len(messages) == 1, messages
