"""Unit tests for the exception-flag sideband."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.flags import CLEAR, FPFlags


class TestFlags:
    def test_default_clear(self):
        assert not CLEAR.any_exception
        assert CLEAR.to_bits() == 0

    def test_or_merges_sticky(self):
        a = FPFlags(overflow=True)
        b = FPFlags(inexact=True)
        merged = a | b
        assert merged.overflow and merged.inexact
        assert not merged.underflow

    def test_or_identity(self):
        f = FPFlags(invalid=True, zero=True)
        assert (f | CLEAR) == f
        assert (CLEAR | f) == f

    def test_or_idempotent(self):
        f = FPFlags(underflow=True, inexact=True)
        assert (f | f) == f

    def test_any_exception_excludes_zero(self):
        assert not FPFlags(zero=True).any_exception
        assert FPFlags(invalid=True).any_exception
        assert FPFlags(div_by_zero=True).any_exception
        assert FPFlags(overflow=True).any_exception
        assert FPFlags(underflow=True).any_exception
        assert FPFlags(inexact=True).any_exception

    @given(st.integers(0, 63))
    def test_bits_roundtrip(self, bits):
        assert FPFlags.from_bits(bits).to_bits() == bits

    @given(
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    def test_fields_roundtrip(self, o, u, x, i, z, d):
        f = FPFlags(
            overflow=o, underflow=u, inexact=x, invalid=i, zero=z, div_by_zero=d
        )
        assert FPFlags.from_bits(f.to_bits()) == f

    def test_from_bits_range_checked(self):
        with pytest.raises(ValueError):
            FPFlags.from_bits(64)
        with pytest.raises(ValueError):
            FPFlags.from_bits(-1)

    def test_or_rejects_non_flags(self):
        with pytest.raises(TypeError):
            _ = FPFlags() | 1
