"""Unit and property tests for pipeline registers and pipelined units."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl.pipeline import PipelinedFunction, PipelineRegister


class TestPipelineRegister:
    def test_depth_zero_is_passthrough(self):
        r = PipelineRegister(0)
        assert r.step("x") == "x"
        assert r.occupancy == 0

    def test_latency_matches_depth(self):
        r = PipelineRegister(3)
        outs = [r.step(i) for i in range(6)]
        assert outs == [None, None, None, 0, 1, 2]

    def test_bubbles_travel(self):
        r = PipelineRegister(2)
        r.step("a")
        r.step(None)
        assert r.step("b") == "a"
        assert r.step(None) is None
        assert r.step(None) == "b"

    def test_occupancy(self):
        r = PipelineRegister(3)
        r.step("a")
        assert r.occupancy == 1
        r.step("b")
        assert r.occupancy == 2
        r.step(None)
        assert r.occupancy == 2

    def test_flush(self):
        r = PipelineRegister(3)
        r.step("a")
        r.flush()
        assert r.occupancy == 0
        assert r.step(None) is None

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            PipelineRegister(-1)

    def test_len(self):
        assert len(PipelineRegister(4)) == 4


class TestPipelinedFunction:
    def test_latency_exact(self):
        pf = PipelinedFunction(lambda x: x * 2, latency=5)
        results = []
        for i in range(10):
            operands = (i,) if i < 3 else None
            results.append(pf.step(operands))
        # issue at cycles 0,1,2 -> done at cycles 5,6,7
        dones = [i for i, (_, d) in enumerate(results) if d]
        assert dones == [5, 6, 7]
        assert [r for (r, d) in results if d] == [0, 2, 4]

    def test_initiation_interval_one(self):
        pf = PipelinedFunction(lambda x: x, latency=3)
        out = [pf.step((i,)) for i in range(20)]
        values = [r for (r, d) in out if d]
        assert values == list(range(17))
        assert pf.issued == 20
        assert pf.completed == 17

    def test_drain(self):
        pf = PipelinedFunction(lambda x: -x, latency=4)
        for i in range(3):
            pf.step((i,))
        assert pf.drain() == [0, -1, -2]
        assert pf.in_flight == 0

    def test_stats(self):
        pf = PipelinedFunction(lambda x: x, latency=2)
        pf.step((1,))
        pf.step(None)
        pf.step(None)
        pf.step(None)
        assert pf.issued == 1
        assert pf.completed == 1
        assert pf.busy_cycles == 2
        assert pf.cycles == 4
        assert pf.utilization == 0.5

    def test_reset(self):
        pf = PipelinedFunction(lambda x: x, latency=2)
        pf.step((1,))
        pf.reset()
        assert pf.in_flight == 0
        assert pf.cycles == 0
        _, done = pf.step(None)
        assert not done

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            PipelinedFunction(lambda x: x, latency=0)

    def test_two_phase_protocol_enforced(self):
        pf = PipelinedFunction(lambda x: x, latency=2)
        pf.begin_cycle()
        with pytest.raises(RuntimeError):
            pf.begin_cycle()
        pf.end_cycle(None)
        with pytest.raises(RuntimeError):
            pf.end_cycle(None)

    def test_two_phase_equivalent_to_step(self):
        a = PipelinedFunction(lambda x: x + 1, latency=3)
        b = PipelinedFunction(lambda x: x + 1, latency=3)
        for i in range(10):
            operands = (i,) if i % 2 == 0 else None
            ra = a.step(operands)
            rb = b.begin_cycle()
            b.end_cycle(operands)
            assert ra == rb

    @settings(max_examples=100)
    @given(
        st.integers(1, 8),
        st.lists(st.one_of(st.none(), st.integers(0, 100)), max_size=40),
    )
    def test_stream_is_delayed_map(self, latency, stream):
        """Output stream == input stream mapped by fn, delayed by latency."""
        pf = PipelinedFunction(lambda x: x * 3 + 1, latency=latency)
        outs = []
        for item in stream + [None] * latency:
            payload, done = pf.step((item,) if item is not None else None)
            outs.append(payload if done else None)
        expected = [None] * latency + [
            (x * 3 + 1) if x is not None else None for x in stream
        ]
        assert outs == expected

    @settings(max_examples=60)
    @given(st.integers(1, 6), st.integers(0, 30))
    def test_conservation(self, latency, count):
        """Everything issued eventually completes, exactly once."""
        pf = PipelinedFunction(lambda x: x, latency=latency)
        seen = []
        for i in range(count):
            payload, done = pf.step((i,))
            if done:
                seen.append(payload)
        seen.extend(pf.drain())
        assert seen == list(range(count))
