"""Protocol tests for the two-phase staged pipeline."""

import pytest

from repro.rtl.staged import MicroOp, StagedPipeline


def inc_ops():
    return [MicroOp("inc", lambda s: {"x": s["x"] + 1})]


class TestTwoPhaseProtocol:
    def test_double_begin_rejected(self):
        pipe = StagedPipeline(inc_ops(), 2)
        pipe.begin_cycle()
        with pytest.raises(RuntimeError, match="begin_cycle"):
            pipe.begin_cycle()

    def test_end_without_begin_rejected(self):
        pipe = StagedPipeline(inc_ops(), 2)
        with pytest.raises(RuntimeError, match="end_cycle"):
            pipe.end_cycle(None)

    def test_step_composes_phases(self):
        a = StagedPipeline(inc_ops(), 3)
        b = StagedPipeline(inc_ops(), 3)
        for i in range(8):
            bundle = {"x": i} if i % 2 == 0 else None
            ra = a.step(bundle)
            rb = b.begin_cycle()
            b.end_cycle(bundle)
            assert ra == rb

    def test_reset_clears_mid_cycle(self):
        pipe = StagedPipeline(inc_ops(), 2)
        pipe.begin_cycle()
        pipe.reset()
        # after reset a fresh begin must be legal again
        out, done = pipe.begin_cycle()
        assert out is None and not done
        pipe.end_cycle(None)

    def test_writeback_visible_before_issue(self):
        """An issuer reading state between the phases sees this edge's
        completion — the accumulator write-before-read discipline."""
        pipe = StagedPipeline(inc_ops(), 1)
        accumulator = {"value": 0}
        pipe.step({"x": 10})
        out, done = pipe.begin_cycle()
        assert done
        accumulator["value"] = out["x"]  # writeback: 11
        pipe.end_cycle({"x": accumulator["value"]})  # issue reads fresh value
        final = pipe.drain()[0]
        assert final["x"] == 12
