"""Unit tests for width-checked two-phase signals."""

import pytest

from repro.rtl.signal import Signal


class TestSignal:
    def test_reset_value(self):
        s = Signal("s", 8, reset=5)
        assert s.value == 5
        assert int(s) == 5

    def test_drive_is_invisible_until_latch(self):
        s = Signal("s", 8)
        s.drive(42)
        assert s.value == 0
        s.latch()
        assert s.value == 42

    def test_latch_without_drive_holds(self):
        s = Signal("s", 8, reset=7)
        s.latch()
        assert s.value == 7

    def test_width_checked_on_drive(self):
        s = Signal("s", 4)
        with pytest.raises(ValueError):
            s.drive(16)
        with pytest.raises(ValueError):
            s.drive(-1)

    def test_width_checked_on_reset(self):
        with pytest.raises(ValueError):
            Signal("s", 4, reset=16)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Signal("s", 0)

    def test_toggle_counting(self):
        s = Signal("s", 8)
        s.drive(0b1111)  # 4 toggles
        s.latch()
        s.drive(0b1010)  # 2 toggles
        s.latch()
        assert s.toggles == 6

    def test_redrive_overwrites_pending(self):
        s = Signal("s", 8)
        s.drive(1)
        s.drive(2)
        s.latch()
        assert s.value == 2
