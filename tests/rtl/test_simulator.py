"""Unit tests for the two-phase cycle scheduler."""

import pytest

from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator, SynchronousComponent


class Counter(SynchronousComponent):
    """Increments a signal every cycle."""

    def __init__(self, name: str = "count") -> None:
        self.out = Signal(name, 16)

    def evaluate(self, cycle: int) -> None:
        self.out.drive((self.out.value + 1) & 0xFFFF)

    def latch(self) -> None:
        self.out.latch()


class Follower(SynchronousComponent):
    """Registers another signal (one-cycle delay)."""

    def __init__(self, src: Signal) -> None:
        self.src = src
        self.out = Signal(f"{src.name}_d", src.width)

    def evaluate(self, cycle: int) -> None:
        self.out.drive(self.src.value)

    def latch(self) -> None:
        self.out.latch()


class TestSimulator:
    def test_step_advances_cycle(self):
        sim = Simulator([Counter()])
        sim.step()
        sim.step()
        assert sim.cycle == 2

    def test_counter_counts(self):
        c = Counter()
        sim = Simulator([c])
        sim.run(5)
        assert c.out.value == 5

    def test_two_phase_order_independence(self):
        """Follower sees the pre-edge value regardless of registration order."""
        for order in ("cf", "fc"):
            c = Counter()
            f = Follower(c.out)
            comps = [c, f] if order == "cf" else [f, c]
            sim = Simulator(comps)
            sim.run(4)
            assert c.out.value == 4
            assert f.out.value == 3  # exactly one cycle behind

    def test_run_until(self):
        c = Counter()
        sim = Simulator([c])
        used = sim.run_until(lambda: c.out.value >= 10)
        assert used == 10
        assert c.out.value == 10

    def test_run_until_limit(self):
        c = Counter()
        sim = Simulator([c])
        with pytest.raises(RuntimeError):
            sim.run_until(lambda: False, limit=5)

    def test_max_cycles_guard(self):
        sim = Simulator([Counter()], max_cycles=3)
        with pytest.raises(RuntimeError):
            sim.run(10)

    def test_add_component(self):
        sim = Simulator()
        c = Counter()
        sim.add(c)
        sim.step()
        assert c.out.value == 1
