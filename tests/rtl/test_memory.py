"""Tests for the block RAM model."""

import pytest

from repro.rtl.memory import BRAM_BITS, BlockRAM, ReadDuringWrite


class TestBasicOperation:
    def test_synchronous_read_one_cycle(self):
        ram = BlockRAM(depth=16, width=8)
        ram.load([10, 20, 30])
        ram.port(0, 1)
        assert ram.read_data(0) is None  # nothing captured yet
        ram.clock()
        assert ram.read_data(0) == 20

    def test_write_then_read(self):
        ram = BlockRAM(depth=8, width=8)
        ram.port(0, 3, wdata=0x5A)
        ram.clock()
        ram.port(0, 3)
        ram.clock()
        assert ram.read_data(0) == 0x5A
        assert ram.peek(3) == 0x5A

    def test_output_holds_without_request(self):
        ram = BlockRAM(depth=8, width=8)
        ram.load([7])
        ram.port(0, 0)
        ram.clock()
        ram.clock()  # no request: registered output keeps its value
        assert ram.read_data(0) == 7

    def test_dual_ports_independent(self):
        ram = BlockRAM(depth=8, width=8)
        ram.load([1, 2, 3, 4])
        ram.port(0, 0)
        ram.port(1, 3)
        ram.clock()
        assert ram.read_data(0) == 1
        assert ram.read_data(1) == 4

    def test_stats(self):
        ram = BlockRAM(depth=8, width=8)
        ram.port(0, 0, wdata=1)
        ram.clock()
        ram.port(0, 0)
        ram.clock()
        assert ram.writes == 1
        assert ram.reads == 2


class TestReadDuringWrite:
    def test_read_first_returns_old(self):
        ram = BlockRAM(depth=8, width=8, mode=ReadDuringWrite.READ_FIRST)
        ram.load([11])
        ram.port(0, 0, wdata=22)
        ram.clock()
        assert ram.read_data(0) == 11  # old data
        assert ram.peek(0) == 22  # memory updated

    def test_write_first_returns_new(self):
        ram = BlockRAM(depth=8, width=8, mode=ReadDuringWrite.WRITE_FIRST)
        ram.load([11])
        ram.port(0, 0, wdata=22)
        ram.clock()
        assert ram.read_data(0) == 22


class TestValidation:
    def test_address_range(self):
        ram = BlockRAM(depth=4, width=8)
        with pytest.raises(ValueError):
            ram.port(0, 4)

    def test_width_checked(self):
        ram = BlockRAM(depth=4, width=8)
        with pytest.raises(ValueError):
            ram.port(0, 0, wdata=256)

    def test_bad_port(self):
        ram = BlockRAM(depth=4, width=8)
        with pytest.raises(ValueError):
            ram.port(2, 0)
        with pytest.raises(ValueError):
            ram.read_data(3)

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BlockRAM(depth=0, width=8)

    def test_load_overflow(self):
        ram = BlockRAM(depth=2, width=8)
        with pytest.raises(ValueError):
            ram.load([1, 2, 3])
        with pytest.raises(ValueError):
            ram.load([256])


class TestCapacity:
    def test_physical_bram_count(self):
        # 512 x 36 = 18 Kb exactly -> 1 block; one more word -> 2 blocks.
        assert BlockRAM(depth=512, width=36).physical_brams == 1
        assert BlockRAM(depth=513, width=36).physical_brams == 2
        assert BRAM_BITS == 18 * 1024
