"""End-to-end trace propagation over a live socket.

A real server on an ephemeral loopback port; every test talks actual
HTTP.  The contract under test: each request gets a trace ID (inbound
``X-Repro-Trace-Id`` honored, always echoed back), the full span tree
is readable at ``/v1/trace/{id}`` after the response, and the
``/v1/debug/traces`` listing and Chrome export cover what the buffer
holds.
"""

import http.client
import json

import pytest

from repro.obs.trace import REQUEST_STAGES
from repro.service import ServiceConfig, ServiceThread, run_load_blocking
from repro.service.loadgen import resolve_load_format


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(port=0, linger_ms=0.5, queue_depth=256)
    with ServiceThread(config) as thread:
        yield thread


def request(server, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        all_headers = dict(headers or {})
        if payload:
            all_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body=payload, headers=all_headers)
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, data, dict(resp.getheaders())
    finally:
        conn.close()


def post_mul(server, fmt="fp32", trace_id=None, a="0x3f800000",
             b="0x40000000"):
    headers = {"X-Repro-Trace-Id": trace_id} if trace_id else {}
    return request(
        server, "POST", "/v1/op/mul",
        {"a": a, "b": b, "format": fmt, "mode": "rne"},
        headers=headers,
    )


class TestHeaderEcho:
    def test_every_response_carries_a_trace_id(self, server):
        status, _, headers = post_mul(server)
        assert status == 200
        assert headers.get("X-Repro-Trace-Id")

    def test_inbound_id_is_echoed_verbatim(self, server):
        status, _, headers = post_mul(server, trace_id="my-request.1")
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == "my-request.1"

    def test_malformed_inbound_id_is_replaced_not_rejected(self, server):
        status, _, headers = post_mul(server, trace_id="bad id with spaces")
        assert status == 200
        echoed = headers["X-Repro-Trace-Id"]
        assert echoed and echoed != "bad id with spaces"

    def test_error_responses_are_traced_too(self, server):
        status, _, headers = request(server, "GET", "/nope")
        assert status == 404
        tid = headers["X-Repro-Trace-Id"]
        _, data, _ = request(server, "GET", f"/v1/trace/{tid}")
        assert json.loads(data)["status"] == 404


class TestSpanTree:
    def test_op_request_records_the_full_pipeline(self, server):
        tid = "pipeline-check.1"
        status, _, _ = post_mul(server, trace_id=tid)
        assert status == 200
        status, data, _ = request(server, "GET", f"/v1/trace/{tid}")
        assert status == 200
        doc = json.loads(data)
        assert doc["trace_id"] == tid
        assert doc["route"] == "/v1/op/mul"
        assert doc["status"] == 200
        names = [s["name"] for s in doc["spans"]]
        for stage in REQUEST_STAGES:
            assert stage in names, f"{stage} missing from {names}"
        # Pipeline order is preserved in the span list.
        indices = [names.index(stage) for stage in REQUEST_STAGES]
        assert indices == sorted(indices)
        for span in doc["spans"]:
            assert span["duration_ms"] >= 0.0
            assert span["start_ms"] >= 0.0

    def test_dispatch_span_describes_the_lane(self, server):
        tid = "lane-check.fp32"
        post_mul(server, trace_id=tid)
        _, data, _ = request(server, "GET", f"/v1/trace/{tid}")
        doc = json.loads(data)
        dispatch = next(
            s for s in doc["spans"] if s["name"] == "batch.dispatch"
        )
        assert dispatch["tags"]["lane"] == "mul/fp32/rne"
        assert dispatch["tags"]["batch_size"] >= 1
        assert dispatch["tags"]["packing_width"] == 2  # fp32 packs x2
        assert dispatch["tags"]["path"] == "packed"
        admission = next(
            s for s in doc["spans"] if s["name"] == "admission.wait"
        )
        assert admission["tags"]["verdict"] == "ok"

    def test_packed_fp16_lane_is_tagged_with_width_4(self, server):
        tid = "lane-check.fp16"
        status, _, _ = post_mul(server, fmt="fp16", trace_id=tid,
                                a="0x3c00", b="0x4000")
        assert status == 200
        _, data, _ = request(server, "GET", f"/v1/trace/{tid}")
        dispatch = next(
            s for s in json.loads(data)["spans"]
            if s["name"] == "batch.dispatch"
        )
        assert dispatch["tags"]["lane"] == "mul/fp16/rne"
        assert dispatch["tags"]["packing_width"] == 4
        assert dispatch["tags"]["path"] == "packed"

    def test_sweep_request_records_engine_spans(self, server):
        tid = "sweep-check.1"
        status, _, _ = request(
            server, "GET", "/v1/unit?kind=adder&format=fp32",
            headers={"X-Repro-Trace-Id": tid},
        )
        assert status == 200
        _, data, _ = request(server, "GET", f"/v1/trace/{tid}")
        doc = json.loads(data)
        names = [s["name"] for s in doc["spans"]]
        assert "admission.wait" in names
        assert "cache.lookup" in names
        lookup = next(s for s in doc["spans"] if s["name"] == "cache.lookup")
        assert lookup["tags"]["outcome"] in ("miss", "hit", "memo")
        if lookup["tags"]["outcome"] == "miss":
            assert "execute" in names

    def test_unknown_trace_is_404(self, server):
        status, data, _ = request(server, "GET", "/v1/trace/never-seen")
        assert status == 404
        assert "never-seen" in json.loads(data)["error"] \
            or "never-seen" in json.loads(data).get("detail", "")


class TestDebugListing:
    def test_listing_has_stats_and_summaries(self, server):
        post_mul(server, trace_id="listing-check.1")
        status, data, _ = request(server, "GET", "/v1/debug/traces?slowest=5")
        assert status == 200
        doc = json.loads(data)
        assert doc["capacity"] == 512
        assert doc["buffered"] >= 1
        assert doc["finished"] >= 1
        assert doc["spans_dropped"] == 0
        assert len(doc["traces"]) <= 5
        for summary in doc["traces"]:
            assert summary["trace_id"]
            assert summary["duration_ms"] >= 0
            assert summary["spans"] >= 0

    def test_chrome_export_over_http(self, server):
        post_mul(server, trace_id="chrome-check.1")
        status, data, _ = request(
            server, "GET", "/v1/debug/traces?slowest=3&export=chrome"
        )
        assert status == 200
        doc = json.loads(data)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        names = {e["name"] for e in doc["traceEvents"]}
        assert "thread_name" in names


class TestLoadgenPropagation:
    def test_loadgen_trace_ids_are_echoed(self, server):
        report = run_load_blocking(
            "127.0.0.1", server.port, concurrency=4, requests=40,
            fmt=resolve_load_format("fp32"), seed=7, trace_ids=True,
        )
        assert report.requests == 40
        assert report.errors == 0
        assert report.trace_ids is True
        assert report.trace_echoed == 40
        doc = report.to_json()
        assert doc["trace_ids"] is True
        assert doc["trace_echoed"] == 40
        assert "trace ids echoed: 40/40" in report.render()

    def test_loadgen_without_trace_ids_counts_zero(self, server):
        report = run_load_blocking(
            "127.0.0.1", server.port, concurrency=2, requests=10, seed=7,
        )
        assert report.trace_ids is False
        assert report.trace_echoed == 0
        assert "trace ids echoed" not in report.render()


class TestSamplingDisabled:
    def test_unsampled_request_still_echoes_but_buffers_nothing(self):
        config = ServiceConfig(port=0, linger_ms=0.5, trace_sample=0.0)
        with ServiceThread(config) as thread:
            status, _, headers = post_mul(thread, trace_id="unsampled.1")
            assert status == 200
            assert headers["X-Repro-Trace-Id"] == "unsampled.1"
            status, _, _ = request(thread, "GET", "/v1/trace/unsampled.1")
            assert status == 404
            _, data, _ = request(thread, "GET", "/v1/debug/traces")
            doc = json.loads(data)
            assert doc["buffered"] == 0
            assert doc["sampled_out"] >= 1

    def test_tiny_trace_buffer_evicts(self):
        config = ServiceConfig(port=0, linger_ms=0.5, trace_buffer=2)
        with ServiceThread(config) as thread:
            for i in range(4):
                post_mul(thread, trace_id=f"evict-check.{i}")
            _, data, _ = request(thread, "GET", "/v1/debug/traces")
            doc = json.loads(data)
            assert doc["capacity"] == 2
            assert doc["buffered"] == 2
            assert doc["evicted"] >= 2
            status, _, _ = request(thread, "GET", "/v1/trace/evict-check.0")
            assert status == 404


class TestTraceCli:
    """`repro trace` against the live server."""

    def test_render_one_trace_by_id(self, server, capsys):
        from repro.cli import main as cli_main

        tid = "cli-check.render"
        post_mul(server, trace_id=tid)
        rc = cli_main(["trace", "--port", str(server.port), "--id", tid])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace {tid}" in out
        for stage in REQUEST_STAGES:
            assert stage in out
        assert "lane=mul/fp32/rne" in out

    def test_listing_shows_buffer_stats(self, server, capsys):
        from repro.cli import main as cli_main

        post_mul(server, trace_id="cli-check.listing")
        rc = cli_main(["trace", "--port", str(server.port), "--slowest", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "buffered" in out
        assert out.count("ms") >= 1

    def test_chrome_export_writes_valid_json(self, server, tmp_path, capsys):
        from repro.cli import main as cli_main

        post_mul(server, trace_id="cli-check.chrome")
        out_file = tmp_path / "trace.json"
        rc = cli_main(["trace", "--port", str(server.port),
                       "--chrome", str(out_file)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_chrome_export_of_single_trace(self, server, tmp_path):
        from repro.cli import main as cli_main

        tid = "cli-check.chrome-one"
        post_mul(server, trace_id=tid)
        out_file = tmp_path / "one.json"
        rc = cli_main(["trace", "--port", str(server.port), "--id", tid,
                       "--chrome", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "batch.dispatch" in names

    def test_unknown_trace_id_fails(self, server, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["trace", "--port", str(server.port),
                       "--id", "never-seen"])
        assert rc == 1
        assert "404" in capsys.readouterr().err

    def test_unreachable_server_fails(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["trace", "--host", "127.0.0.1", "--port", "1"])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_loadgen_cli_trace_ids_flag(self, server, capsys):
        from repro.cli import main as cli_main

        rc = cli_main([
            "loadgen", "--port", str(server.port), "--requests", "12",
            "--concurrency", "2", "--trace-ids",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace ids echoed: 12/12" in out
