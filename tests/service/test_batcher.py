"""MicroBatcher edge cases (issue satellite: batching semantics).

Every test cross-checks the batched responses bit- and flag-identically
against the scalar datapath — the service's core correctness contract.
"""

import asyncio
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.service.batcher import (
    OP_ARITY,
    OPS,
    BatchIntegrityError,
    MicroBatcher,
    execute_batch,
)
from repro.service.config import ServiceConfig
from repro.service.telemetry import Telemetry

RNE = RoundingMode.NEAREST_EVEN
RTZ = RoundingMode.TRUNCATE


class RecordingExecutor(ThreadPoolExecutor):
    """Single-thread executor that records every executed batch."""

    def __init__(self):
        super().__init__(max_workers=1)
        self.batches = []  # (op, fmt, mode, operand tuples)

    def submit(self, fn, *args, **kwargs):
        if fn is execute_batch:
            op, fmt, mode, requests = args[:4]
            self.batches.append((op, fmt, mode, list(requests)))
        return super().submit(fn, *args, **kwargs)


def run_batched(config, submissions):
    """Submit all requests concurrently; return (results, batches).

    ``submissions`` is a list of (op, fmt, mode, *operands).  All
    submissions are queued before the lane workers first run, so they
    form one burst.
    """
    executor = RecordingExecutor()

    async def _run():
        batcher = MicroBatcher(config, Telemetry(), executor)
        try:
            return await asyncio.gather(
                *(batcher.submit(*s) for s in submissions)
            )
        finally:
            await batcher.close()

    try:
        results = asyncio.run(_run())
    finally:
        executor.shutdown(wait=True)
    return results, executor.batches


def scalar(op, fmt, mode, *operands):
    bits, flags = OPS[op][0](fmt, *operands, mode)
    return bits, flags.to_bits()


class TestBatchingPolicy:
    def test_single_request_flushes_on_linger_expiry(self):
        # One lone request, max_batch far away: the linger must expire
        # and flush a batch of exactly one, not wait for company.
        config = ServiceConfig(max_batch=64, linger_ms=5)
        results, batches = run_batched(
            config, [("mul", FP32, RNE, 0x3FC00000, 0x40200000)]
        )
        assert len(batches) == 1
        assert batches[0][3] == [(0x3FC00000, 0x40200000)]
        assert tuple(results[0]) == scalar(
            "mul", FP32, RNE, 0x3FC00000, 0x40200000
        )

    def test_oversize_burst_splits_into_full_batches(self):
        config = ServiceConfig(max_batch=4, linger_ms=20)
        rng = random.Random(7)
        subs = [
            ("mul", FP32, RNE,
             rng.randrange(FP32.word_mask + 1),
             rng.randrange(FP32.word_mask + 1))
            for _ in range(10)
        ]
        results, batches = run_batched(config, subs)
        sizes = [len(pairs) for _, _, _, pairs in batches]
        assert sum(sizes) == 10
        assert max(sizes) <= 4
        assert sizes.count(4) >= 2  # the burst produced full batches
        # Order and values survive the split exactly.
        for (op, fmt, mode, a, b), got in zip(subs, results):
            assert tuple(got) == scalar(op, fmt, mode, a, b)

    def test_mixed_formats_and_modes_never_share_a_batch(self):
        # Lanes of every arity — including the unary sqrt and ternary
        # fma — interleaved so a sloppy batcher would mix them.
        config = ServiceConfig(max_batch=64, linger_ms=10)
        lanes = [
            ("mul", FP32, RNE),
            ("mul", FP32, RTZ),
            ("mul", FP64, RNE),
            ("add", FP32, RNE),
            ("sqrt", FP32, RNE),
            ("fma", FP32, RNE),
        ]
        rng = random.Random(11)
        subs = []
        for op, fmt, mode in lanes:
            arity = OP_ARITY[op]
            for _ in range(5):
                subs.append((op, fmt, mode) + tuple(
                    rng.randrange(fmt.word_mask + 1) for _ in range(arity)
                ))
        k = len(lanes)
        subs = [s for i in range(k) for s in subs[i::k]]
        results, batches = run_batched(config, subs)
        # Every executed batch is homogeneous: its operand tuples all
        # came from submissions for exactly that (op, format, mode) lane.
        by_lane = {}
        for sub in subs:
            by_lane.setdefault(sub[:3], set()).add(sub[3:])
        assert len(batches) >= len(lanes)
        seen_lanes = set()
        for op, fmt, mode, requests in batches:
            key = (op, fmt, mode)
            seen_lanes.add(key)
            assert set(requests) <= by_lane[key], (
                f"batch for {op}/{fmt.name}/{mode.value} contains "
                "operands submitted to another lane"
            )
        assert seen_lanes == set(by_lane)
        for sub, got in zip(subs, results):
            assert tuple(got) == scalar(*sub)

    def test_flag_sidebands_are_isolated_per_request(self):
        # An overflowing multiply next to exact ones: the neighbour's
        # overflow/inexact flags must not leak into the exact results.
        config = ServiceConfig(max_batch=8, linger_ms=10)
        exact = (0x3F800000, 0x40000000)   # 1.0 * 2.0, flags clean
        boom = (0x7F000000, 0x7F000000)    # overflows fp32
        subs = [
            ("mul", FP32, RNE, *exact),
            ("mul", FP32, RNE, *boom),
            ("mul", FP32, RNE, *exact),
        ]
        results, batches = run_batched(config, subs)
        assert len(batches) == 1 and len(batches[0][3]) == 3
        want_exact = scalar("mul", FP32, RNE, *exact)
        want_boom = scalar("mul", FP32, RNE, *boom)
        assert want_exact[1] == 0, "exact case should raise no flags"
        assert want_boom[1] != 0, "overflow case should raise flags"
        assert tuple(results[0]) == want_exact
        assert tuple(results[1]) == want_boom
        assert tuple(results[2]) == want_exact

    def test_random_burst_matches_scalar_for_all_ops_and_modes(self):
        # All six ops — every arity — across both modes in one burst.
        config = ServiceConfig(max_batch=16, linger_ms=10)
        rng = random.Random(23)
        subs = [
            (op, FP32, mode) + tuple(
                rng.randrange(FP32.word_mask + 1)
                for _ in range(OP_ARITY[op])
            )
            for op in OPS
            for mode in (RNE, RTZ)
            for _ in range(25)
        ]
        results, _batches = run_batched(config, subs)
        for sub, got in zip(subs, results):
            assert tuple(got) == scalar(*sub), (
                f"{sub[0]}/{sub[2].value} operands "
                + " ".join(f"{w:#x}" for w in sub[3:])
            )

    def test_unary_and_ternary_lanes_batch_and_scatter(self):
        # sqrt is the batcher's first unary lane, fma its first ternary
        # one: a burst into each must coalesce (not run one-by-one) and
        # scatter results bit-identical to the scalar datapaths.
        config = ServiceConfig(max_batch=8, linger_ms=10)
        rng = random.Random(31)
        subs = [
            ("sqrt", FP32, RNE, rng.randrange(FP32.word_mask + 1))
            for _ in range(6)
        ] + [
            ("fma", FP32, RNE,
             rng.randrange(FP32.word_mask + 1),
             rng.randrange(FP32.word_mask + 1),
             rng.randrange(FP32.word_mask + 1))
            for _ in range(6)
        ]
        results, batches = run_batched(config, subs)
        sqrt_batches = [b for b in batches if b[0] == "sqrt"]
        fma_batches = [b for b in batches if b[0] == "fma"]
        assert max(len(b[3]) for b in sqrt_batches) > 1
        assert max(len(b[3]) for b in fma_batches) > 1
        for b in sqrt_batches:
            assert all(len(t) == 1 for t in b[3])
        for b in fma_batches:
            assert all(len(t) == 3 for t in b[3])
        for sub, got in zip(subs, results):
            assert tuple(got) == scalar(*sub)

    def test_submit_rejects_wrong_arity(self):
        async def _run():
            batcher = MicroBatcher(ServiceConfig(), Telemetry())
            try:
                with pytest.raises(ValueError, match="exactly 1 operand"):
                    await batcher.submit("sqrt", FP32, RNE, 1, 2)
                with pytest.raises(ValueError, match="exactly 3 operands"):
                    await batcher.submit("fma", FP32, RNE, 1, 2)
                with pytest.raises(ValueError, match="exactly 2 operands"):
                    await batcher.submit("div", FP32, RNE, 1)
            finally:
                await batcher.close()

        asyncio.run(_run())


class TestIntegrityAndLifecycle:
    def test_spot_check_catches_divergence(self, monkeypatch):
        # Corrupt the scalar reference for 'mul': the per-batch spot
        # check must now fail the whole batch with BatchIntegrityError.
        real_scalar, vec, arity = OPS["mul"]

        def corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits ^ 1, flags

        monkeypatch.setitem(OPS, "mul", (corrupted, vec, arity))
        config = ServiceConfig(max_batch=4, linger_ms=5)
        with pytest.raises(BatchIntegrityError):
            run_batched(config, [("mul", FP32, RNE, 3, 5)])

    def test_failed_batch_traces_error_and_stages(self, monkeypatch):
        # A sampled member of a failing batch still gets its pipeline
        # spans — with the dispatch span carrying the error tag.
        from repro.obs.trace import Trace

        real_scalar, vec, arity = OPS["mul"]

        def corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits ^ 1, flags

        monkeypatch.setitem(OPS, "mul", (corrupted, vec, arity))
        config = ServiceConfig(max_batch=4, linger_ms=5)
        trace = Trace("t-batch-err", route="/v1/op/mul")

        async def _run():
            batcher = MicroBatcher(config, Telemetry(), RecordingExecutor())
            try:
                with pytest.raises(BatchIntegrityError):
                    await batcher.submit("mul", FP32, RNE, 3, 5, trace=trace)
            finally:
                await batcher.close()

        asyncio.run(_run())
        doc = trace.to_dict()
        names = [s["name"] for s in doc["spans"]]
        assert names == ["admission.wait", "batch.linger", "batch.dispatch"]
        assert doc["spans"][0]["tags"]["verdict"] == "ok"
        assert doc["spans"][2]["tags"]["error"] == "BatchIntegrityError"

    def test_spot_check_can_be_disabled(self, monkeypatch):
        real_scalar, vec, arity = OPS["mul"]
        monkeypatch.setitem(
            OPS, "mul",
            (lambda *a: (_ for _ in ()).throw(AssertionError), vec, arity),
        )
        config = ServiceConfig(max_batch=4, linger_ms=5, spot_check=False)
        results, _ = run_batched(config, [("mul", FP32, RNE, 3, 5)])
        bits, flags = OPS["add"][0](FP32, 0, 0, RNE)  # sanity: OPS intact
        assert results[0] is not None

    def test_execute_batch_direct(self):
        pairs = [(0x3F800000, 0x3F800000), (0x40000000, 0x40400000)]
        out = execute_batch("mul", FP32, RNE, pairs)
        for (a, b), got in zip(pairs, out):
            assert tuple(got) == scalar("mul", FP32, RNE, a, b)

    def test_unknown_op_rejected(self):
        async def _run():
            batcher = MicroBatcher(ServiceConfig(), Telemetry())
            with pytest.raises(KeyError):
                await batcher.submit("mod", FP32, RNE, 1, 2)

        asyncio.run(_run())

    def test_closed_batcher_rejects_submissions(self):
        async def _run():
            batcher = MicroBatcher(ServiceConfig(), Telemetry())
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit("mul", FP32, RNE, 1, 2)

        asyncio.run(_run())

    def test_telemetry_observes_batches(self):
        config = ServiceConfig(max_batch=4, linger_ms=10)
        executor = RecordingExecutor()
        telemetry = Telemetry()

        async def _run():
            batcher = MicroBatcher(config, telemetry, executor)
            try:
                await asyncio.gather(
                    *(batcher.submit("mul", FP32, RNE, i, i)
                      for i in range(8))
                )
            finally:
                await batcher.close()

        try:
            asyncio.run(_run())
        finally:
            executor.shutdown(wait=True)
        assert telemetry.batch_size.count == len(executor.batches)
        assert telemetry.batches_total.value(("mul", "fp32", "rne")) == len(
            executor.batches
        )
        assert telemetry.spot_checks_total.total == len(executor.batches)
