"""MicroBatcher edge cases (issue satellite: batching semantics).

Every test cross-checks the batched responses bit- and flag-identically
against the scalar datapath — the service's core correctness contract.
"""

import asyncio
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.service.batcher import (
    OPS,
    BatchIntegrityError,
    MicroBatcher,
    execute_batch,
)
from repro.service.config import ServiceConfig
from repro.service.telemetry import Telemetry

RNE = RoundingMode.NEAREST_EVEN
RTZ = RoundingMode.TRUNCATE


class RecordingExecutor(ThreadPoolExecutor):
    """Single-thread executor that records every executed batch."""

    def __init__(self):
        super().__init__(max_workers=1)
        self.batches = []  # (op, fmt, mode, pairs)

    def submit(self, fn, *args, **kwargs):
        if fn is execute_batch:
            op, fmt, mode, pairs = args[:4]
            self.batches.append((op, fmt, mode, list(pairs)))
        return super().submit(fn, *args, **kwargs)


def run_batched(config, submissions):
    """Submit all requests concurrently; return (results, batches).

    ``submissions`` is a list of (op, fmt, mode, a, b).  All submissions
    are queued before the lane workers first run, so they form one burst.
    """
    executor = RecordingExecutor()

    async def _run():
        batcher = MicroBatcher(config, Telemetry(), executor)
        try:
            return await asyncio.gather(
                *(batcher.submit(*s) for s in submissions)
            )
        finally:
            await batcher.close()

    try:
        results = asyncio.run(_run())
    finally:
        executor.shutdown(wait=True)
    return results, executor.batches


def scalar(op, fmt, mode, a, b):
    bits, flags = OPS[op][0](fmt, a, b, mode)
    return bits, flags.to_bits()


class TestBatchingPolicy:
    def test_single_request_flushes_on_linger_expiry(self):
        # One lone request, max_batch far away: the linger must expire
        # and flush a batch of exactly one, not wait for company.
        config = ServiceConfig(max_batch=64, linger_ms=5)
        results, batches = run_batched(
            config, [("mul", FP32, RNE, 0x3FC00000, 0x40200000)]
        )
        assert len(batches) == 1
        assert batches[0][3] == [(0x3FC00000, 0x40200000)]
        assert tuple(results[0]) == scalar(
            "mul", FP32, RNE, 0x3FC00000, 0x40200000
        )

    def test_oversize_burst_splits_into_full_batches(self):
        config = ServiceConfig(max_batch=4, linger_ms=20)
        rng = random.Random(7)
        subs = [
            ("mul", FP32, RNE,
             rng.randrange(FP32.word_mask + 1),
             rng.randrange(FP32.word_mask + 1))
            for _ in range(10)
        ]
        results, batches = run_batched(config, subs)
        sizes = [len(pairs) for _, _, _, pairs in batches]
        assert sum(sizes) == 10
        assert max(sizes) <= 4
        assert sizes.count(4) >= 2  # the burst produced full batches
        # Order and values survive the split exactly.
        for (op, fmt, mode, a, b), got in zip(subs, results):
            assert tuple(got) == scalar(op, fmt, mode, a, b)

    def test_mixed_formats_and_modes_never_share_a_batch(self):
        config = ServiceConfig(max_batch=64, linger_ms=10)
        lanes = [
            ("mul", FP32, RNE),
            ("mul", FP32, RTZ),
            ("mul", FP64, RNE),
            ("add", FP32, RNE),
        ]
        rng = random.Random(11)
        subs = []
        for op, fmt, mode in lanes:
            for _ in range(5):
                subs.append((op, fmt, mode,
                             rng.randrange(fmt.word_mask + 1),
                             rng.randrange(fmt.word_mask + 1)))
        # Interleave the lanes so a sloppy batcher would mix them.
        subs = subs[::4] + subs[1::4] + subs[2::4] + subs[3::4]
        results, batches = run_batched(config, subs)
        # Every executed batch is homogeneous: its pairs all came from
        # submissions for exactly that (op, format, mode) lane.
        by_lane = {}
        for op, fmt, mode, a, b in subs:
            by_lane.setdefault((op, fmt, mode), set()).add((a, b))
        assert len(batches) >= len(lanes)
        seen_lanes = set()
        for op, fmt, mode, pairs in batches:
            key = (op, fmt, mode)
            seen_lanes.add(key)
            assert set(pairs) <= by_lane[key], (
                f"batch for {op}/{fmt.name}/{mode.value} contains "
                "pairs submitted to another lane"
            )
        assert seen_lanes == set(by_lane)
        for (op, fmt, mode, a, b), got in zip(subs, results):
            assert tuple(got) == scalar(op, fmt, mode, a, b)

    def test_flag_sidebands_are_isolated_per_request(self):
        # An overflowing multiply next to exact ones: the neighbour's
        # overflow/inexact flags must not leak into the exact results.
        config = ServiceConfig(max_batch=8, linger_ms=10)
        exact = (0x3F800000, 0x40000000)   # 1.0 * 2.0, flags clean
        boom = (0x7F000000, 0x7F000000)    # overflows fp32
        subs = [
            ("mul", FP32, RNE, *exact),
            ("mul", FP32, RNE, *boom),
            ("mul", FP32, RNE, *exact),
        ]
        results, batches = run_batched(config, subs)
        assert len(batches) == 1 and len(batches[0][3]) == 3
        want_exact = scalar("mul", FP32, RNE, *exact)
        want_boom = scalar("mul", FP32, RNE, *boom)
        assert want_exact[1] == 0, "exact case should raise no flags"
        assert want_boom[1] != 0, "overflow case should raise flags"
        assert tuple(results[0]) == want_exact
        assert tuple(results[1]) == want_boom
        assert tuple(results[2]) == want_exact

    def test_random_burst_matches_scalar_for_all_ops_and_modes(self):
        config = ServiceConfig(max_batch=16, linger_ms=10)
        rng = random.Random(23)
        subs = [
            (op, FP32, mode,
             rng.randrange(FP32.word_mask + 1),
             rng.randrange(FP32.word_mask + 1))
            for op in OPS
            for mode in (RNE, RTZ)
            for _ in range(25)
        ]
        results, _batches = run_batched(config, subs)
        for (op, fmt, mode, a, b), got in zip(subs, results):
            assert tuple(got) == scalar(op, fmt, mode, a, b), (
                f"{op}/{mode.value} a={a:#x} b={b:#x}"
            )


class TestIntegrityAndLifecycle:
    def test_spot_check_catches_divergence(self, monkeypatch):
        # Corrupt the scalar reference for 'mul': the per-batch spot
        # check must now fail the whole batch with BatchIntegrityError.
        real_scalar, vec = OPS["mul"]

        def corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits ^ 1, flags

        monkeypatch.setitem(OPS, "mul", (corrupted, vec))
        config = ServiceConfig(max_batch=4, linger_ms=5)
        with pytest.raises(BatchIntegrityError):
            run_batched(config, [("mul", FP32, RNE, 3, 5)])

    def test_spot_check_can_be_disabled(self, monkeypatch):
        real_scalar, vec = OPS["mul"]
        monkeypatch.setitem(
            OPS, "mul", (lambda *a: (_ for _ in ()).throw(AssertionError), vec)
        )
        config = ServiceConfig(max_batch=4, linger_ms=5, spot_check=False)
        results, _ = run_batched(config, [("mul", FP32, RNE, 3, 5)])
        bits, flags = OPS["add"][0](FP32, 0, 0, RNE)  # sanity: OPS intact
        assert results[0] is not None

    def test_execute_batch_direct(self):
        pairs = [(0x3F800000, 0x3F800000), (0x40000000, 0x40400000)]
        out = execute_batch("mul", FP32, RNE, pairs)
        for (a, b), got in zip(pairs, out):
            assert tuple(got) == scalar("mul", FP32, RNE, a, b)

    def test_unknown_op_rejected(self):
        async def _run():
            batcher = MicroBatcher(ServiceConfig(), Telemetry())
            with pytest.raises(KeyError):
                await batcher.submit("div", FP32, RNE, 1, 2)

        asyncio.run(_run())

    def test_closed_batcher_rejects_submissions(self):
        async def _run():
            batcher = MicroBatcher(ServiceConfig(), Telemetry())
            await batcher.close()
            with pytest.raises(RuntimeError):
                await batcher.submit("mul", FP32, RNE, 1, 2)

        asyncio.run(_run())

    def test_telemetry_observes_batches(self):
        config = ServiceConfig(max_batch=4, linger_ms=10)
        executor = RecordingExecutor()
        telemetry = Telemetry()

        async def _run():
            batcher = MicroBatcher(config, telemetry, executor)
            try:
                await asyncio.gather(
                    *(batcher.submit("mul", FP32, RNE, i, i)
                      for i in range(8))
                )
            finally:
                await batcher.close()

        try:
            asyncio.run(_run())
        finally:
            executor.shutdown(wait=True)
        assert telemetry.batch_size.count == len(executor.batches)
        assert telemetry.batches_total.value(("mul", "fp32", "rne")) == len(
            executor.batches
        )
        assert telemetry.spot_checks_total.total == len(executor.batches)
