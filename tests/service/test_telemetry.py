"""Telemetry instruments: counters, gauges, histograms, exposition."""

import pytest

from repro.service.telemetry import (
    BATCH_BUCKETS,
    STAGE_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    LabeledHistogram,
    Telemetry,
)


class TestCounter:
    def test_unlabeled(self):
        c = Counter("c", "help")
        c.inc()
        c.inc(n=4)
        assert c.value() == 5
        assert c.total == 5

    def test_labeled_series(self):
        c = Counter("c", "help", ("route", "status"))
        c.inc(("/a", "200"))
        c.inc(("/a", "200"))
        c.inc(("/b", "429"))
        assert c.value(("/a", "200")) == 2
        assert c.value(("/b", "429")) == 1
        assert c.value(("/c", "200")) == 0
        assert c.total == 3
        assert list(c.series()) == [
            (("/a", "200"), 2),
            (("/b", "429"), 1),
        ]


class TestGauge:
    def test_tracks_high_water_mark(self):
        g = Gauge("g", "help")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max_seen == 7


class TestHistogram:
    def test_bucketing_and_mean(self):
        h = Histogram("h", "help", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf bucket
        assert h.count == 4
        assert h.mean == pytest.approx(105.0 / 4)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", "help", (10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all mass in the (10, 20] bucket
        # Median rank falls halfway through the bucket: 10 + 0.5 * 10.
        assert h.quantile(0.5) == pytest.approx(15.0)

    def test_quantile_tail_clamps_to_last_bound(self):
        h = Histogram("h", "help", (1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_quantile_empty_and_range(self):
        h = Histogram("h", "help", (1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "help", (1.0, 1.0))

    def test_batch_buckets_cover_default_max_batch(self):
        assert 64.0 in BATCH_BUCKETS


class TestQuantileSaturation:
    """Regression: estimates at the bucket-range edges must not lie.

    The old interpolation clamped overflow ranks to the last finite
    bound with no indication, and a rank at the bottom could land on an
    empty leading bucket's edge.  Both edges now carry an explicit
    saturation flag / skip empty buckets.
    """

    def test_overflow_rank_saturates(self):
        h = Histogram("h", "help", (1.0, 2.0))
        h.observe(50.0)  # all mass in +Inf
        estimate, saturated = h.quantile_estimate(0.99)
        assert estimate == 2.0  # the largest finite bound, as a floor
        assert saturated is True

    def test_mixed_mass_saturates_only_in_overflow(self):
        h = Histogram("h", "help", (1.0, 2.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        p50, sat50 = h.quantile_estimate(0.5)
        assert sat50 is False and 0.0 < p50 <= 1.0
        p999, sat999 = h.quantile_estimate(0.999)
        assert sat999 is True and p999 == 2.0

    def test_underflow_rank_skips_empty_leading_buckets(self):
        h = Histogram("h", "help", (1.0, 2.0, 4.0))
        h.observe(3.0)  # only the (2, 4] bucket holds mass
        estimate, saturated = h.quantile_estimate(0.0)
        assert saturated is False
        # Interpolates inside the occupied bucket, not the empty edge.
        assert 2.0 <= estimate <= 4.0

    def test_quantile_is_estimate_value(self):
        h = Histogram("h", "help", (1.0,))
        h.observe(0.5)
        assert h.quantile(0.5) == h.quantile_estimate(0.5)[0]

    def test_snapshot_carries_saturation_flag(self):
        t = Telemetry()
        t.request_latency_s.observe(99.0)  # beyond the last bucket (10 s)
        snap = t.snapshot()
        assert snap["latency_p99_saturated"] is True
        assert snap["latency_p99_ms"] == pytest.approx(10_000.0)


class TestExemplar:
    def test_keeps_window_max_with_trace_id(self):
        h = Histogram("h", "help", (1.0,))
        h.observe(0.2, trace_id="t-slow")
        h.observe(0.1, trace_id="t-fast")
        assert h.exemplar == (0.2, "t-slow")

    def test_untraced_observations_leave_no_exemplar(self):
        h = Histogram("h", "help", (1.0,))
        h.observe(0.2)
        assert h.exemplar is None

    def test_window_expiry_resets_max(self):
        h = Histogram("h", "help", (1.0,), exemplar_window_s=0.0)
        h.observe(0.9, trace_id="t-old")
        # Window length zero: the next traced observation starts a new
        # window, so a smaller value may take over.
        h.observe(0.1, trace_id="t-new")
        assert h.exemplar is None or h.exemplar[1] == "t-new"

    def test_render_emits_slowest_gauge(self):
        t = Telemetry()
        t.request_latency_s.observe(0.25, trace_id="abc-1")
        text = t.render()
        assert "# TYPE repro_request_latency_seconds_slowest gauge" in text
        assert ('repro_request_latency_seconds_slowest{trace_id="abc-1"} 0.25'
                in text)

    def test_render_omits_slowest_family_without_exemplar(self):
        t = Telemetry()
        t.request_latency_s.observe(0.25)
        assert "_slowest" not in t.render()


class TestLabeledHistogram:
    def test_child_identity_and_observe(self):
        h = LabeledHistogram("h", "help", ("stage",), (1.0, 2.0))
        child = h.child(("admit",))
        assert h.child(("admit",)) is child
        h.observe(("admit",), 0.5)
        child.observe(1.5)
        assert child.count == 2

    def test_render_labels_every_sample(self):
        t = Telemetry()
        t.stage_latency_s.observe(("scatter",), 0.0002)
        text = t.render()
        assert "# TYPE repro_stage_latency_seconds histogram" in text
        assert ('repro_stage_latency_seconds_bucket{stage="scatter",le="+Inf"} 1'
                in text)
        assert 'repro_stage_latency_seconds_count{stage="scatter"} 1' in text

    def test_stage_summary_shape(self):
        t = Telemetry()
        for _ in range(4):
            t.stage_latency_s.observe(("batch.linger",), 0.001)
        t.stage_latency_s.child(("scatter",))  # pre-resolved, unobserved
        summary = t.stage_summary()
        assert set(summary) == {"batch.linger"}
        row = summary["batch.linger"]
        assert row["count"] == 4
        assert row["mean_ms"] == pytest.approx(1.0, rel=1e-6)
        assert row["p99_saturated"] is False

    def test_stage_buckets_cover_microsecond_stages(self):
        assert STAGE_BUCKETS_S[0] <= 0.0001  # linger waits live here


class TestTelemetry:
    def test_snapshot_shape(self):
        t = Telemetry(version="9.9.9")
        t.requests_total.inc(("/v1/op/mul", "200"))
        t.request_latency_s.observe(0.002)
        t.batch_size.observe(4)
        t.batches_total.inc(("mul", "fp32", "rne"))
        snap = t.snapshot()
        assert snap["version"] == "9.9.9"
        assert snap["requests"] == 1
        assert snap["batches"] == 1
        assert snap["mean_batch_size"] == 4.0
        assert snap["latency_p50_ms"] > 0
        assert snap["uptime_s"] >= 0

    def test_engine_hit_rate(self):
        t = Telemetry()
        assert t.engine_hit_rate() == 0.0
        t.record_engine("computed")
        t.record_engine("hit")
        t.record_engine("memo")
        t.record_engine("failed")
        assert t.engine_hit_rate() == pytest.approx(0.5)

    def test_prometheus_exposition(self):
        t = Telemetry(version="1.0.0")
        t.requests_total.inc(("/healthz", "200"))
        t.request_latency_s.observe(0.003)
        t.shed_total.inc()
        text = t.render()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{route="/healthz",status="200"} 1' in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_request_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_request_latency_seconds_count 1" in text
        assert "repro_shed_total 1" in text
        assert "repro_uptime_seconds" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        t = Telemetry()
        t.batch_size.observe(1)
        t.batch_size.observe(3)
        t.batch_size.observe(3)
        text = t.render()
        assert 'repro_batch_size_bucket{le="1"} 1' in text
        assert 'repro_batch_size_bucket{le="4"} 3' in text
        assert 'repro_batch_size_bucket{le="+Inf"} 3' in text
