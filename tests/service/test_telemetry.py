"""Telemetry instruments: counters, gauges, histograms, exposition."""

import pytest

from repro.service.telemetry import (
    BATCH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)


class TestCounter:
    def test_unlabeled(self):
        c = Counter("c", "help")
        c.inc()
        c.inc(n=4)
        assert c.value() == 5
        assert c.total == 5

    def test_labeled_series(self):
        c = Counter("c", "help", ("route", "status"))
        c.inc(("/a", "200"))
        c.inc(("/a", "200"))
        c.inc(("/b", "429"))
        assert c.value(("/a", "200")) == 2
        assert c.value(("/b", "429")) == 1
        assert c.value(("/c", "200")) == 0
        assert c.total == 3
        assert list(c.series()) == [
            (("/a", "200"), 2),
            (("/b", "429"), 1),
        ]


class TestGauge:
    def test_tracks_high_water_mark(self):
        g = Gauge("g", "help")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max_seen == 7


class TestHistogram:
    def test_bucketing_and_mean(self):
        h = Histogram("h", "help", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf bucket
        assert h.count == 4
        assert h.mean == pytest.approx(105.0 / 4)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", "help", (10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all mass in the (10, 20] bucket
        # Median rank falls halfway through the bucket: 10 + 0.5 * 10.
        assert h.quantile(0.5) == pytest.approx(15.0)

    def test_quantile_tail_clamps_to_last_bound(self):
        h = Histogram("h", "help", (1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 1.0

    def test_quantile_empty_and_range(self):
        h = Histogram("h", "help", (1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "help", (1.0, 1.0))

    def test_batch_buckets_cover_default_max_batch(self):
        assert 64.0 in BATCH_BUCKETS


class TestTelemetry:
    def test_snapshot_shape(self):
        t = Telemetry(version="9.9.9")
        t.requests_total.inc(("/v1/op/mul", "200"))
        t.request_latency_s.observe(0.002)
        t.batch_size.observe(4)
        t.batches_total.inc(("mul", "fp32", "rne"))
        snap = t.snapshot()
        assert snap["version"] == "9.9.9"
        assert snap["requests"] == 1
        assert snap["batches"] == 1
        assert snap["mean_batch_size"] == 4.0
        assert snap["latency_p50_ms"] > 0
        assert snap["uptime_s"] >= 0

    def test_engine_hit_rate(self):
        t = Telemetry()
        assert t.engine_hit_rate() == 0.0
        t.record_engine("computed")
        t.record_engine("hit")
        t.record_engine("memo")
        t.record_engine("failed")
        assert t.engine_hit_rate() == pytest.approx(0.5)

    def test_prometheus_exposition(self):
        t = Telemetry(version="1.0.0")
        t.requests_total.inc(("/healthz", "200"))
        t.request_latency_s.observe(0.003)
        t.shed_total.inc()
        text = t.render()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{route="/healthz",status="200"} 1' in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_request_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_request_latency_seconds_count 1" in text
        assert "repro_shed_total 1" in text
        assert "repro_uptime_seconds" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        t = Telemetry()
        t.batch_size.observe(1)
        t.batch_size.observe(3)
        t.batch_size.observe(3)
        text = t.render()
        assert 'repro_batch_size_bucket{le="1"} 1' in text
        assert 'repro_batch_size_bucket{le="4"} 3' in text
        assert 'repro_batch_size_bucket{le="+Inf"} 3' in text
