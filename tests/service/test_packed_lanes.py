"""Packed service lanes: qualifying (op, format) lanes execute on the
sub-lane datapaths transparently — bit/flag-identical scatter, packing
telemetry in /metrics and /v1/batch-stats, small formats by name."""

import asyncio
import http.client
import json
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.fp.format import BF16, FP16, FP32, FP48, FP64
from repro.fp.rounding import RoundingMode
from repro.service import ServiceConfig, ServiceThread
from repro.service.batcher import (
    OPS,
    MicroBatcher,
    execute_batch,
    lane_packing_width,
)
from repro.service.telemetry import Telemetry

RNE = RoundingMode.NEAREST_EVEN


def scalar(op, fmt, mode, *operands):
    bits, flags = OPS[op][0](fmt, *operands, mode)
    return bits, flags.to_bits()


class TestLanePackingWidth:
    def test_widths_by_lane(self):
        assert lane_packing_width("mul", FP16) == 4
        assert lane_packing_width("add", BF16) == 4
        assert lane_packing_width("sub", FP16) == 4
        assert lane_packing_width("mul", FP32) == 2
        assert lane_packing_width("mul", FP48) == 1
        assert lane_packing_width("add", FP64) == 1
        # No packed kernels exist for div/sqrt/fma, any format.
        assert lane_packing_width("div", FP16) == 1
        assert lane_packing_width("sqrt", FP16) == 1
        assert lane_packing_width("fma", BF16) == 1


class TestExecuteBatchPacked:
    @pytest.mark.parametrize("fmt", [FP16, BF16, FP32], ids=lambda f: f.name)
    @pytest.mark.parametrize("op", ["add", "sub", "mul"])
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_packed_lane_matches_scalar(self, fmt, op, mode):
        rng = random.Random(0xBEEF)
        requests = [
            (rng.randrange(fmt.word_mask + 1), rng.randrange(fmt.word_mask + 1))
            for _ in range(67)  # odd: tail pad lanes in every limb pass
        ]
        requests += [
            (fmt.max_finite(), fmt.max_finite()),  # overflow
            (fmt.min_normal(), fmt.min_normal()),  # mul underflow
            (fmt.nan(), fmt.one()),
            (fmt.inf(), fmt.zero()),
            (fmt.zero(1), fmt.zero()),
        ]
        results = execute_batch(op, fmt, mode, requests)
        assert len(results) == len(requests)
        for operands, (bits, flags) in zip(requests, results):
            assert (bits, flags) == scalar(op, fmt, mode, *operands)

    def test_unpacked_lanes_unaffected(self):
        rng = random.Random(7)
        for op, fmt in (("div", FP16), ("sqrt", FP16), ("fma", BF16),
                        ("mul", FP64)):
            arity = OPS[op][2]
            requests = [
                tuple(rng.randrange(fmt.word_mask + 1) for _ in range(arity))
                for _ in range(9)
            ]
            for operands, (bits, flags) in zip(
                requests, execute_batch(op, fmt, RNE, requests)
            ):
                assert (bits, flags) == scalar(op, fmt, RNE, *operands)


class TestBatcherTelemetry:
    def test_packed_lane_telemetry(self):
        telemetry = Telemetry()
        executor = ThreadPoolExecutor(max_workers=1)
        config = ServiceConfig(max_batch=16, linger_ms=0.5)
        rng = random.Random(3)
        subs = [
            ("mul", FP16, RNE, rng.randrange(FP16.word_mask + 1),
             rng.randrange(FP16.word_mask + 1))
            for _ in range(24)
        ] + [
            ("mul", FP64, RNE, rng.randrange(FP64.word_mask + 1),
             rng.randrange(FP64.word_mask + 1))
            for _ in range(4)
        ]

        async def _run():
            batcher = MicroBatcher(config, telemetry, executor)
            try:
                return await asyncio.gather(
                    *(batcher.submit(*s) for s in subs)
                )
            finally:
                await batcher.close()

        try:
            results = asyncio.run(_run())
        finally:
            executor.shutdown(wait=True)
        for s, (bits, flags) in zip(subs, results):
            assert (bits, flags) == scalar(s[0], s[1], s[2], *s[3:])
        fp16_lane = ("mul", "fp16", "rne")
        fp64_lane = ("mul", "fp64", "rne")
        assert telemetry.lane_packing_width.value(fp16_lane) == 4
        assert telemetry.lane_packing_width.value(fp64_lane) == 1
        assert telemetry.packed_batches_total.value(fp16_lane) >= 1
        assert telemetry.packed_batches_total.value(fp64_lane) == 0
        assert (
            telemetry.packed_batches_total.value(fp16_lane)
            == telemetry.batches_total.value(fp16_lane)
        )
        rendered = telemetry.render()
        assert (
            'repro_lane_packing_width{op="mul",format="fp16",mode="rne"} 4'
            in rendered
        )
        assert "repro_packed_batches_total" in rendered
        assert telemetry.snapshot()["packed_batches"] >= 1


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(port=0, linger_ms=0.5, queue_depth=256)
    with ServiceThread(config) as thread:
        yield thread


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, data, dict(resp.getheaders())
    finally:
        conn.close()


class TestLiveServerPacked:
    def test_fp16_mul_bit_exact_over_socket(self, server):
        # 0x3e00 (1.5) * 0x4000 (2.0) = 0x4200 (3.0), exact.
        status, body, _ = request(
            server, "POST", "/v1/op/mul",
            {"a": "0x3e00", "b": "0x4000", "format": "fp16", "mode": "rne"},
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["bits"] == "0x4200"
        assert doc["flags"] == 0

    def test_bf16_served_by_name(self, server):
        # 0x3fc0 (1.5) * 0x4000 (2.0) = 0x4040 (3.0) in bfloat16.
        status, body, _ = request(
            server, "POST", "/v1/op/mul",
            {"a": "0x3fc0", "b": "0x4000", "format": "bf16"},
        )
        assert status == 200
        assert json.loads(body)["bits"] == "0x4040"

    def test_small_format_random_burst_matches_scalar(self, server):
        rng = random.Random(0x51AB)
        for fmt in (FP16, BF16):
            for op in ("add", "sub", "mul"):
                for _ in range(8):
                    a = rng.randrange(fmt.word_mask + 1)
                    b = rng.randrange(fmt.word_mask + 1)
                    status, body, _ = request(
                        server, "POST", f"/v1/op/{op}",
                        {"a": a, "b": b, "format": fmt.name},
                    )
                    assert status == 200
                    doc = json.loads(body)
                    want_bits, want_flags = scalar(op, fmt, RNE, a, b)
                    assert int(doc["bits"], 16) == want_bits
                    assert doc["flags"] == want_flags

    def test_batch_stats_reports_packing_width(self, server):
        # The bursts above populated fp16/bf16 lanes; fp64 gives an
        # unpacked row for contrast.
        status, _, _ = request(
            server, "POST", "/v1/op/mul",
            {"a": FP64.one(), "b": FP64.one(), "format": "fp64"},
        )
        assert status == 200
        status, body, _ = request(server, "GET", "/v1/batch-stats")
        assert status == 200
        doc = json.loads(body)
        assert doc["batches"] >= 1
        assert doc["packed_batches"] >= 1
        lanes = {(l["op"], l["format"], l["mode"]): l for l in doc["lanes"]}
        fp16_mul = lanes[("mul", "fp16", "rne")]
        assert fp16_mul["packing_width"] == 4
        assert fp16_mul["packed_batches"] == fp16_mul["batches"]
        fp64_mul = lanes[("mul", "fp64", "rne")]
        assert fp64_mul["packing_width"] == 1
        assert fp64_mul["packed_batches"] == 0

    def test_batch_stats_is_get_only(self, server):
        status, _, _ = request(server, "POST", "/v1/batch-stats", {})
        assert status == 405

    def test_metrics_expose_lane_packing_width(self, server):
        status, body, _ = request(server, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        assert (
            'repro_lane_packing_width{op="mul",format="fp16",mode="rne"} 4'
            in text
        )
        assert "repro_packed_batches_total{" in text
