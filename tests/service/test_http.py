"""HTTP wire layer unit tests: parsing, limits, keep-alive semantics."""

import asyncio

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    build_response,
    error_body,
    json_body,
    read_request,
)


def parse(raw: bytes):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


class TestReadRequest:
    def test_minimal_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.body == b""
        assert req.keep_alive is True

    def test_body_and_query(self):
        req = parse(
            b"POST /v1/op/mul?x=1&x=2&y=z HTTP/1.1\r\n"
            b"Content-Length: 4\r\n\r\nabcd"
        )
        assert req.body == b"abcd"
        assert req.query == {"x": "2", "y": "z"}  # last wins

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET /x HTTP/1.1\r\nHo")
        assert excinfo.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"GARBAGE\r\n\r\n")

    def test_unsupported_protocol_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET /x HTTP/2\r\n\r\n")
        assert "HTTP/2" in str(excinfo.value)

    def test_malformed_header_line(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n")

    @pytest.mark.parametrize("value", [b"abc", b"-5"])
    def test_bad_content_length(self, value):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET /x HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversize_body_rejected(self):
        huge = str(MAX_BODY_BYTES + 1).encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: " + huge + b"\r\n\r\n")
        assert excinfo.value.status == 413

    def test_chunked_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_truncated_body(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_keep_alive_semantics(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive is True
        assert (
            parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
            is False
        )
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False
        assert (
            parse(
                b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
            ).keep_alive
            is True
        )

    def test_percent_decoded_path(self):
        assert parse(b"GET /a%20b HTTP/1.1\r\n\r\n").path == "/a b"


class TestRequestJson:
    def make(self, body: bytes) -> Request:
        return Request("POST", "/x", "", {}, body)

    def test_valid_object(self):
        assert self.make(b'{"a": 1}').json() == {"a": 1}

    def test_empty_body(self):
        with pytest.raises(ProtocolError):
            self.make(b"").json()

    def test_malformed(self):
        with pytest.raises(ProtocolError):
            self.make(b"{nope").json()

    def test_non_object(self):
        with pytest.raises(ProtocolError):
            self.make(b"[1,2]").json()


class TestBuildResponse:
    def test_shape(self):
        raw = build_response(200, b'{"ok":1}', extra_headers=(("X-A", "b"),))
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert "Content-Length: 8\r\n" in text
        assert "Connection: keep-alive\r\n" in text
        assert "X-A: b\r\n" in text
        assert text.endswith('\r\n\r\n{"ok":1}')

    def test_close_and_unknown_status(self):
        raw = build_response(599, b"", keep_alive=False)
        assert b"HTTP/1.1 599 Unknown" in raw
        assert b"Connection: close" in raw

    def test_bodies(self):
        assert json_body({"a": 1}) == b'{"a":1}'
        doc = error_body(429, "slow down")
        assert b"Too Many Requests" in doc and b"slow down" in doc
