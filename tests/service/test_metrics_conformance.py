"""/metrics exposition-format conformance (Prometheus text 0.0.4).

Parses the full exposition from a live server after exercising the op,
sweep and trace paths, and checks the contract a scraper relies on:
every sample belongs to a family with exactly one HELP and one TYPE
line (declared before its samples), histogram families carry the
``_bucket``/``_sum``/``_count`` triplet with a ``+Inf`` bucket, and the
response advertises the text-format content type.
"""

import http.client
import json
import re

import pytest

from repro.service import ServiceConfig, ServiceThread

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@pytest.fixture(scope="module")
def exposition():
    config = ServiceConfig(port=0, linger_ms=0.5)
    with ServiceThread(config) as thread:
        conn = http.client.HTTPConnection("127.0.0.1", thread.port, timeout=30)
        try:
            # Touch the major paths so every instrument family has data.
            body = json.dumps(
                {"a": "0x3f800000", "b": "0x40000000", "format": "fp32"}
            ).encode()
            conn.request("POST", "/v1/op/mul", body=body,
                         headers={"Content-Type": "application/json"})
            conn.getresponse().read()
            conn.request("GET", "/v1/kernel/matmul?n=4")
            conn.getresponse().read()
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            text = resp.read().decode()
            content_type = resp.getheader("Content-Type")
        finally:
            conn.close()
    return text, content_type


def parse(text):
    """Returns (helps, types, samples): declared families and samples."""
    helps, types, samples = {}, {}, []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            match = SAMPLE_RE.match(line)
            assert match, f"unparseable sample at line {lineno}: {line!r}"
            samples.append((match.group(1), match.group(2), match.group(3)))
    return helps, types, samples


def family_of(sample_name, types):
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def test_content_type_is_text_format(exposition):
    _, content_type = exposition
    assert content_type == "text/plain; version=0.0.4"


def test_every_sample_has_a_declared_family(exposition):
    text, _ = exposition
    helps, types, samples = parse(text)
    assert samples, "empty exposition"
    for name, _labels, _value in samples:
        family = family_of(name, types)
        assert family is not None, f"sample {name} has no TYPE declaration"
        assert family in helps, f"family {family} has no HELP line"
        assert types[family] in ("counter", "gauge", "histogram")


def test_families_declare_before_first_sample(exposition):
    text, _ = exposition
    _, types, _ = parse(text)
    seen_types = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            seen_types.add(line[len("# TYPE "):].split(" ")[0])
        elif line.strip() and not line.startswith("#"):
            name = SAMPLE_RE.match(line).group(1)
            family = family_of(name, types)
            assert family in seen_types, (
                f"sample {name} appears before its TYPE declaration"
            )


def test_every_declared_family_is_well_formed(exposition):
    text, _ = exposition
    helps, types, _ = parse(text)
    assert set(helps) == set(types), (
        "HELP/TYPE mismatch: "
        f"{set(helps).symmetric_difference(set(types))}"
    )
    for name, help_text in helps.items():
        assert help_text.strip(), f"family {name} has an empty HELP"


def test_histograms_carry_complete_triplets(exposition):
    text, _ = exposition
    _, types, samples = parse(text)
    names = [name for name, _, _ in samples]
    labels_by_name = {}
    for name, labels, _ in samples:
        labels_by_name.setdefault(name, []).append(labels or "")
    for family, kind in types.items():
        if kind != "histogram":
            continue
        assert f"{family}_bucket" in names, f"{family} has no buckets"
        assert f"{family}_sum" in names
        assert f"{family}_count" in names
        inf_buckets = [
            l for l in labels_by_name[f"{family}_bucket"] if 'le="+Inf"' in l
        ]
        assert inf_buckets, f"{family} lacks a +Inf bucket"


def test_values_parse_as_floats(exposition):
    text, _ = exposition
    _, _, samples = parse(text)
    for name, _labels, value in samples:
        float(value)  # raises on malformed values


def test_expected_families_are_present(exposition):
    text, _ = exposition
    _, types, _ = parse(text)
    for family in (
        "repro_requests_total",
        "repro_request_latency_seconds",
        "repro_stage_latency_seconds",
        "repro_batch_size",
        "repro_queue_depth",
        "repro_queue_depth_max",
        "repro_uptime_seconds",
    ):
        assert family in types, f"{family} missing from exposition"
