"""ServiceConfig: defaults, env overrides, validation messages."""

import pytest

from repro.service.config import ENV_PREFIX, ServiceConfig


class TestDefaults:
    def test_documented_defaults(self):
        config = ServiceConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 8080
        assert config.max_batch == 64
        assert config.linger_ms == 2.0
        assert config.queue_depth == 256
        assert config.request_timeout_s == 10.0
        assert config.sweep_timeout_s == 120.0
        assert config.drain_timeout_s == 5.0
        assert config.spot_check is True
        assert config.cache_dir is None

    def test_linger_seconds_view(self):
        assert ServiceConfig(linger_ms=2.5).linger_s == pytest.approx(0.0025)

    def test_frozen(self):
        with pytest.raises(Exception):
            ServiceConfig().port = 9  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "knob, bad",
        [
            ("port", -1),
            ("max_batch", 0),
            ("linger_ms", -0.1),
            ("queue_depth", 0),
            ("request_timeout_s", 0.0),
            ("sweep_timeout_s", -5.0),
            ("drain_timeout_s", -1.0),
        ],
    )
    def test_error_names_knob_and_env_var(self, knob, bad):
        with pytest.raises(ValueError) as excinfo:
            ServiceConfig(**{knob: bad})
        message = str(excinfo.value)
        assert knob in message
        assert ENV_PREFIX + knob.upper() in message
        assert repr(bad) in message

    def test_ephemeral_port_zero_is_legal(self):
        assert ServiceConfig(port=0).port == 0

    def test_zero_linger_is_legal(self):
        assert ServiceConfig(linger_ms=0).linger_s == 0.0


class TestFromEnv:
    def test_empty_env_gives_defaults(self):
        assert ServiceConfig.from_env(environ={}) == ServiceConfig()

    def test_env_overrides(self):
        config = ServiceConfig.from_env(
            environ={
                "REPRO_SERVE_HOST": "0.0.0.0",
                "REPRO_SERVE_PORT": "9001",
                "REPRO_SERVE_MAX_BATCH": "8",
                "REPRO_SERVE_LINGER_MS": "0.5",
                "REPRO_SERVE_QUEUE_DEPTH": "32",
                "REPRO_SERVE_REQUEST_TIMEOUT_S": "3.5",
                "REPRO_SERVE_SPOT_CHECK": "off",
            }
        )
        assert config.host == "0.0.0.0"
        assert config.port == 9001
        assert config.max_batch == 8
        assert config.linger_ms == 0.5
        assert config.queue_depth == 32
        assert config.request_timeout_s == 3.5
        assert config.spot_check is False

    def test_explicit_overrides_beat_env(self):
        config = ServiceConfig.from_env(
            environ={"REPRO_SERVE_PORT": "9001"}, port=7000
        )
        assert config.port == 7000

    def test_none_overrides_fall_through(self):
        # The CLI passes every flag unconditionally; unset ones are None.
        config = ServiceConfig.from_env(
            environ={"REPRO_SERVE_PORT": "9001"}, port=None, host=None
        )
        assert config.port == 9001
        assert config.host == "127.0.0.1"

    def test_malformed_env_int_names_variable(self):
        with pytest.raises(ValueError) as excinfo:
            ServiceConfig.from_env(environ={"REPRO_SERVE_PORT": "eighty"})
        message = str(excinfo.value)
        assert "REPRO_SERVE_PORT" in message
        assert "'eighty'" in message

    def test_malformed_env_bool_names_variable(self):
        with pytest.raises(ValueError) as excinfo:
            ServiceConfig.from_env(environ={"REPRO_SERVE_SPOT_CHECK": "maybe"})
        assert "REPRO_SERVE_SPOT_CHECK" in str(excinfo.value)

    @pytest.mark.parametrize("raw, expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("False", False), ("no", False), ("OFF", False),
    ])
    def test_bool_spellings(self, raw, expected):
        config = ServiceConfig.from_env(
            environ={"REPRO_SERVE_SPOT_CHECK": raw}
        )
        assert config.spot_check is expected

    def test_env_values_still_validated(self):
        with pytest.raises(ValueError) as excinfo:
            ServiceConfig.from_env(environ={"REPRO_SERVE_MAX_BATCH": "0"})
        assert "max_batch" in str(excinfo.value)
        assert "REPRO_SERVE_MAX_BATCH" in str(excinfo.value)

    def test_cache_dir_falls_back_to_engine_env(self):
        config = ServiceConfig.from_env(
            environ={"REPRO_CACHE_DIR": "/tmp/shared-cache"}
        )
        assert config.cache_dir == "/tmp/shared-cache"

    def test_serve_cache_dir_beats_engine_env(self):
        config = ServiceConfig.from_env(
            environ={
                "REPRO_CACHE_DIR": "/tmp/shared-cache",
                "REPRO_SERVE_CACHE_DIR": "/tmp/serve-cache",
            }
        )
        assert config.cache_dir == "/tmp/serve-cache"
