"""Tests for the serving layer (repro.service)."""
