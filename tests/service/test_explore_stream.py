"""Wire-format tests for the streaming exploration endpoints.

`/v1/explore` speaks chunked NDJSON over a live socket: these tests
parse the chunked transfer coding by hand (frame boundaries, final
chunk), replay the stream warm from the cache, kill a client
mid-stream and check the server stays healthy, and pin the
`/v1/recommend` payload bit-identical to the direct library call.
"""

import http.client
import json
import socket

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.explore.recommend import payload_bytes, recommend

EXPLORE_PATH = "/v1/explore?kinds=adder&formats=fp16"
RECOMMEND_QUERY = {
    "kinds": ["adder"],
    "formats": ["fp16"],
    "objective": "mops_per_watt",
    "constraints": {"max_slices": 10_000, "min_clock_mhz": 100},
}


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(port=0, linger_ms=0.5, queue_depth=256)
    with ServiceThread(config) as thread:
        yield thread


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, data, dict(resp.getheaders())
    finally:
        conn.close()


def read_raw_response(sock):
    """Read until the peer closes; split head from body."""
    blob = b""
    while True:
        piece = sock.recv(65536)
        if not piece:
            break
        blob += piece
    head, _sep, body = blob.partition(b"\r\n\r\n")
    return head.decode("latin-1"), body


def dechunk(body):
    """Parse a chunked body into the list of chunk payloads."""
    chunks = []
    offset = 0
    while True:
        eol = body.index(b"\r\n", offset)
        size = int(body[offset:eol], 16)
        offset = eol + 2
        if size == 0:
            assert body[offset:offset + 2] == b"\r\n", "missing final CRLF"
            assert body[offset + 2:] == b"", "trailing bytes after last chunk"
            return chunks
        chunk = body[offset:offset + size]
        assert len(chunk) == size, "truncated chunk"
        assert body[offset + size:offset + size + 2] == b"\r\n", \
            "chunk missing CRLF terminator"
        chunks.append(chunk)
        offset += size + 2


def parse_stream_lines(data):
    lines = data.decode().splitlines()
    docs = [json.loads(line) for line in lines]
    points, trailers = [], []
    for doc in docs:
        (points if doc["type"] == "point" else trailers).append(doc)
    return points, trailers


class TestExploreStream:
    def test_raw_socket_chunk_framing(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=60
        ) as sock:
            sock.sendall(
                f"GET {EXPLORE_PATH} HTTP/1.1\r\n"
                "Host: t\r\nConnection: close\r\n\r\n".encode()
            )
            head, body = read_raw_response(sock)
        status_line, *header_lines = head.split("\r\n")
        assert " 200 " in status_line
        headers = {
            k.lower(): v
            for k, v in (line.split(": ", 1) for line in header_lines)
        }
        assert headers["transfer-encoding"] == "chunked"
        assert headers["content-type"] == "application/x-ndjson"
        assert "content-length" not in headers
        assert headers["x-repro-trace-id"]

        chunks = dechunk(body)
        # One chunk per NDJSON line: every frame is a complete document.
        assert len(chunks) >= 2
        for chunk in chunks:
            assert chunk.endswith(b"\n")
            json.loads(chunk)

        points, trailers = parse_stream_lines(b"".join(chunks))
        assert len(trailers) == 1
        trailer = trailers[0]
        assert trailer["type"] == "frontier"
        assert trailer["space"] == "units"
        assert trailer["designs"] == len(points)
        ids = {p["id"] for p in points}
        assert set(trailer["frontier"]) <= ids
        for point in points:
            assert point["kind"] == "adder"
            assert point["format"] == "fp16"
            assert point["source"] in ("computed", "memo", "hit")

    def test_warm_stream_replays_from_cache(self, server):
        # The raw-socket test already materialized this sweep on the
        # serving engine; a second pass must be a pure cache burst.
        status, cold, _ = request(server, "GET", EXPLORE_PATH)
        assert status == 200
        status, warm, _ = request(server, "GET", EXPLORE_PATH)
        assert status == 200
        points, _trailers = parse_stream_lines(warm)
        assert points
        assert all(p["source"] in ("memo", "hit") for p in points)
        # Identical designs modulo the provenance field.
        strip = lambda blob: [
            {k: v for k, v in doc.items() if k != "source"}
            for doc in map(json.loads, blob.decode().splitlines())
        ]
        assert strip(warm) == strip(cold)

    def test_keep_alive_survives_chunked_body(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request("GET", EXPLORE_PATH)
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
            # Same connection, next request: the stream must have left
            # the framing in a reusable state.
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["status"] == "ok"
        finally:
            conn.close()

    def test_bad_grid_parameters_are_400(self, server):
        status, data, _ = request(
            server, "GET", "/v1/explore?kinds=blender"
        )
        assert status == 400
        assert "unknown unit kinds" in json.loads(data)["detail"]

    def test_mid_stream_disconnect_leaves_server_healthy(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=60
        ) as sock:
            sock.sendall(
                f"GET {EXPLORE_PATH} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            # Read just the head and the first frames, then vanish.
            got = b""
            while b"\r\n\r\n" not in got:
                got += sock.recv(4096)
        for _ in range(3):
            status, data, _ = request(server, "GET", "/healthz")
            assert status == 200
            assert json.loads(data)["status"] == "ok"
        status, body, _ = request(server, "GET", EXPLORE_PATH)
        assert status == 200
        points, trailers = parse_stream_lines(body)
        assert points and trailers


class TestRecommendEndpoint:
    def test_round_trip_matches_direct_call_bitwise(self, server):
        status, data, headers = request(
            server, "POST", "/v1/recommend", RECOMMEND_QUERY
        )
        assert status == 200, data
        assert headers["Content-Type"] == "application/json"
        assert headers["X-Repro-Source"] in ("computed", "memo", "hit")
        direct = payload_bytes(recommend(dict(RECOMMEND_QUERY)))
        assert data == direct

    def test_recommendation_is_on_streamed_frontier(self, server):
        status, stream, _ = request(server, "GET", EXPLORE_PATH)
        assert status == 200
        _points, trailers = parse_stream_lines(stream)
        status, data, _ = request(
            server, "POST", "/v1/recommend", RECOMMEND_QUERY
        )
        assert status == 200
        doc = json.loads(data)
        assert doc["best"]["id"] in trailers[0]["frontier"]
        assert doc["best"]["slices"] <= RECOMMEND_QUERY["constraints"]["max_slices"]
        assert doc["best"]["clock_mhz"] >= RECOMMEND_QUERY["constraints"]["min_clock_mhz"]

    def test_warm_recommend_is_a_cache_hit(self, server):
        _status, first, _ = request(
            server, "POST", "/v1/recommend", RECOMMEND_QUERY
        )
        status, second, headers = request(
            server, "POST", "/v1/recommend", RECOMMEND_QUERY
        )
        assert status == 200
        assert headers["X-Repro-Source"] in ("memo", "hit")
        assert second == first

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({"constraints": {"min_slices": 10}}, "use max_slices"),
            ({"constraints": {"max_beauty": 1}}, "unknown constraint"),
            ({"space": "widgets"}, "unknown space"),
            ({"objective": "speed"}, "unknown objective"),
            ({"kinds": ["adder"], "formats": ["fp16"],
              "constraints": {"min_clock_mhz": 9000}}, "grid's best is"),
        ],
    )
    def test_precise_400s(self, server, body, fragment):
        status, data, _ = request(server, "POST", "/v1/recommend", body)
        assert status == 400, data
        assert fragment in json.loads(data)["detail"]

    def test_metrics_count_streamed_points(self, server):
        status, data, _ = request(server, "GET", "/metrics")
        assert status == 200
        text = data.decode()
        assert "repro_explore_points_total" in text
        for line in text.splitlines():
            if line.startswith("repro_explore_points_total"):
                assert float(line.split()[-1]) > 0
