"""Live-server tests: golden-vector replay, backpressure, drain.

A real :class:`~repro.service.server.ServiceThread` listens on an
ephemeral loopback port; tests talk to it over actual HTTP.  The golden
corpus replay is the serving layer's version of the differential
campaign: every committed vector, replayed through the full accept →
admit → batch → execute → scatter path, must come back bit- and
flag-identical to the pinned oracle outputs.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import __version__
from repro.fp.adder import fp_sub
from repro.fp.format import FP32, FP48, FP64
from repro.service import ServiceConfig, ServiceThread, run_load_blocking
from repro.verify.golden import corpus_filename, load_corpus

VECTOR_DIR = os.path.join(os.path.dirname(__file__), "..", "vectors")


@pytest.fixture(scope="module")
def server():
    # Tiny linger: correctness tests issue sequential requests, so each
    # flushes as a batch of one after the linger expires.
    config = ServiceConfig(port=0, linger_ms=0.5, queue_depth=256)
    with ServiceThread(config) as thread:
        yield thread


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"}
                     if payload else {})
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, data, dict(resp.getheaders())
    finally:
        conn.close()


class Client:
    """Keep-alive client: many requests over one connection."""

    def __init__(self, server):
        self.conn = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=30
        )

    def post_op(self, op, fmt_name, mode, *operands):
        doc = {"format": fmt_name, "mode": mode}
        for key, word in zip(("a", "b", "c"), operands):
            doc[key] = f"{word:#x}"
        body = json.dumps(doc).encode()
        self.conn.request("POST", f"/v1/op/{op}", body=body,
                          headers={"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        doc = json.loads(resp.read())
        assert resp.status == 200, doc
        return int(doc["bits"], 16), doc["flags"]

    def close(self):
        self.conn.close()


class TestOperational:
    def test_healthz_reports_version(self, server):
        status, data, _ = request(server, "GET", "/healthz")
        doc = json.loads(data)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["version"] == __version__
        assert doc["uptime_s"] >= 0

    def test_metrics_exposition_is_populated(self, server):
        client = Client(server)
        try:
            client.post_op("mul", "fp32", "rne", 0x3F800000, 0x40000000)
        finally:
            client.close()
        status, data, headers = request(server, "GET", "/metrics")
        text = data.decode()
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert re.search(
            r'repro_requests_total\{route="/v1/op/mul",status="200"\} \d+',
            text,
        )
        assert "repro_batch_size_count" in text
        assert "repro_request_latency_seconds_bucket" in text

    def test_version_header_consistency_with_cli(self, server):
        # Satellite 1: /healthz and `repro --version` report one string.
        from repro.cli import main as cli_main
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert cli_main(["--version"]) == 0
        _, data, _ = request(server, "GET", "/healthz")
        assert buffer.getvalue().strip() == json.loads(data)["version"]


class TestGoldenReplay:
    """Replay the committed oracle vectors through the live server."""

    def replay(self, server, fmt, op, stride=1):
        doc = load_corpus(os.path.join(VECTOR_DIR, corpus_filename(fmt, op)))
        client = Client(server)
        try:
            for case in doc["cases"][::stride]:
                for mode in ("rne", "rtz"):
                    want_bits, want_flags = case[mode]
                    got_bits, got_flags = client.post_op(
                        op, fmt.name, mode, *case["operands"]
                    )
                    operands = " ".join(
                        f"{w:#x}" for w in case["operands"]
                    )
                    assert (got_bits, got_flags) == (want_bits, want_flags), (
                        f"{op}/{fmt.name}/{mode} {operands}: served "
                        f"{got_bits:#x}/{got_flags:#04x}, golden "
                        f"{want_bits:#x}/{want_flags:#04x}"
                    )
        finally:
            client.close()

    def test_fp32_add_full_corpus(self, server):
        self.replay(server, FP32, "add")

    def test_fp32_mul_full_corpus(self, server):
        self.replay(server, FP32, "mul")

    def test_fp32_div_full_corpus(self, server):
        self.replay(server, FP32, "div")

    def test_fp32_sqrt_full_corpus(self, server):
        self.replay(server, FP32, "sqrt")

    def test_fp32_fma_slices(self, server):
        self.replay(server, FP32, "fma", stride=5)

    @pytest.mark.parametrize("fmt", [FP48, FP64], ids=["fp48", "fp64"])
    @pytest.mark.parametrize("op", ["add", "mul", "div", "sqrt", "fma"])
    def test_wide_format_slices(self, server, fmt, op):
        self.replay(server, fmt, op, stride=7)

    def test_sub_matches_scalar_datapath(self, server):
        # No golden sub corpus: reuse the add corpus operands and
        # compare the served difference against the scalar fp_sub.
        doc = load_corpus(os.path.join(VECTOR_DIR, corpus_filename(FP32, "add")))
        client = Client(server)
        try:
            for case in doc["cases"][::5]:
                for mode_name, mode in (("rne", None), ("rtz", None)):
                    from repro.fp.rounding import RoundingMode

                    rmode = {m.value: m for m in RoundingMode}[mode_name]
                    want_bits, want_flags = fp_sub(
                        FP32, case["a"], case["b"], rmode
                    )
                    got = client.post_op(
                        "sub", "fp32", mode_name, case["a"], case["b"]
                    )
                    assert got == (want_bits, want_flags.to_bits())
        finally:
            client.close()

    def test_custom_geometry_format(self, server):
        from repro.fp.format import FPFormat
        from repro.fp.multiplier import fp_mul
        from repro.fp.rounding import RoundingMode

        fmt = FPFormat(8, 10)
        a, b = 0x1C200, 0x1E000
        want_bits, want_flags = fp_mul(fmt, a, b, RoundingMode.NEAREST_EVEN)
        body = {"a": a, "b": b, "mode": "rne",
                "format": {"exp_bits": 8, "man_bits": 10}}
        status, data, _ = request(server, "POST", "/v1/op/mul", body)
        doc = json.loads(data)
        assert status == 200
        assert int(doc["bits"], 16) == want_bits
        assert doc["flags"] == want_flags.to_bits()


class TestRequestValidation:
    @pytest.mark.parametrize(
        "method, path, body, want",
        [
            ("GET", "/nope", None, 404),
            ("POST", "/v1/op/mod", {"a": 1, "b": 2}, 404),
            ("GET", "/v1/op/mul", None, 405),
            ("POST", "/v1/op/mul", {"a": 1}, 400),  # missing operand
            ("POST", "/v1/op/mul", {"a": 1, "b": 2, "format": "fp31"}, 400),
            ("POST", "/v1/op/mul", {"a": 1, "b": 2, "mode": "up"}, 400),
            ("POST", "/v1/op/mul",
             {"a": 0x1_0000_0000, "b": 2, "format": "fp32"}, 400),
            ("POST", "/v1/unit", None, 405),
            ("GET", "/v1/experiment/nope", None, 404),
        ],
    )
    def test_status_codes(self, server, method, path, body, want):
        status, data, _ = request(server, method, path, body)
        assert status == want
        doc = json.loads(data)
        assert "error" in doc

    @pytest.mark.parametrize(
        "op, body, fragment",
        [
            # Unary op posted with a binary body: precise 400, not 500.
            ("sqrt", {"a": 1, "b": 2}, "unexpected 'b'"),
            ("sqrt", {"b": 2}, "missing 'a'"),
            # Binary op posted with unary / ternary bodies.
            ("div", {"a": 1}, "missing 'b'"),
            ("div", {"a": 1, "b": 2, "c": 3}, "unexpected 'c'"),
            # Ternary op posted with a binary body.
            ("fma", {"a": 1, "b": 2}, "missing 'c'"),
        ],
    )
    def test_arity_mismatch_is_precise_400(self, server, op, body, fragment):
        status, data, _ = request(server, "POST", f"/v1/op/{op}", body)
        doc = json.loads(data)
        assert status == 400, doc
        assert f"op '{op}' takes" in doc["detail"]
        assert fragment in doc["detail"]

    def test_malformed_json_body(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("POST", "/v1/op/mul", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"malformed JSON" in resp.read()
        finally:
            conn.close()


class TestSlowEndpoints:
    def test_kernel_matmul_closed_forms(self, server):
        status, data, _ = request(
            server, "GET",
            "/v1/kernel/matmul?n=16&mul_latency=3&add_latency=5",
        )
        from repro.kernels.batched import array_cycles

        doc = json.loads(data)
        assert status == 200
        assert doc["cycles"] == array_cycles(16, 8, 16)
        assert doc["issued_macs"] == 16 ** 3
        assert doc["hazards"] == 0
        assert 0 < doc["pe_utilization"] <= 1

    def test_unit_sweep_and_engine_cache_metrics(self, server):
        status, data, _ = request(
            server, "GET", "/v1/unit?kind=adder&format=fp32"
        )
        doc = json.loads(data)
        assert status == 200
        assert doc["kind"] == "adder" and doc["format"] == "fp32"
        assert len(doc["points"]) == 3  # min / max / per-MHz-optimal rows
        assert doc["peak_clock_mhz"] > 0
        # Second hit is served from the engine memo; telemetry shows it.
        status, data2, _ = request(
            server, "GET", "/v1/unit?kind=adder&format=fp32"
        )
        assert json.loads(data2) == doc
        _, health, _ = request(server, "GET", "/healthz")
        assert json.loads(health)["engine_hit_rate"] > 0

    def test_experiment_endpoint(self, server):
        status, data, _ = request(server, "GET", "/v1/experiment/table3")
        doc = json.loads(data)
        assert status == 200
        assert doc["name"] == "table3"
        assert doc["source"] in ("computed", "memo", "hit")
        assert "Table 3" in doc["rendered"]
        # Replay: the engine memo answers without recomputing.
        status, data, _ = request(server, "GET", "/v1/experiment/table3")
        assert json.loads(data)["source"] in ("memo", "hit")


class TestBackpressure:
    def test_burst_past_capacity_sheds_429_with_retry_after(self):
        # Two admission slots, long linger: concurrent burst must split
        # into a few admitted requests and fast 429s, never errors.
        config = ServiceConfig(
            port=0, queue_depth=2, linger_ms=300, max_batch=64
        )
        with ServiceThread(config) as thread:
            outcomes = []
            lock = threading.Lock()

            def fire():
                status, _, headers = request(
                    thread, "POST", "/v1/op/mul",
                    {"a": "0x3f800000", "b": "0x40000000", "format": "fp32"},
                )
                with lock:
                    outcomes.append((status, headers.get("Retry-After")))

            workers = [threading.Thread(target=fire) for _ in range(12)]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=30)
            statuses = [s for s, _ in outcomes]
            assert len(statuses) == 12
            assert set(statuses) <= {200, 429}
            assert statuses.count(200) >= 1, "nothing was admitted"
            assert statuses.count(429) >= 1, "nothing was shed"
            for status, retry_after in outcomes:
                if status == 429:
                    assert retry_after == "1"
            # The shed counter saw every 429.
            _, health, _ = request(thread, "GET", "/healthz")
            assert json.loads(health)["shed"] == statuses.count(429)

    def test_draining_server_answers_503(self):
        config = ServiceConfig(port=0, linger_ms=0.5)
        with ServiceThread(config) as thread:
            thread.service.admission.begin_drain()
            status, data, _ = request(
                thread, "POST", "/v1/op/mul",
                {"a": 1, "b": 2, "format": "fp32"},
            )
            assert status == 503
            _, health, _ = request(thread, "GET", "/healthz")
            assert json.loads(health)["status"] == "draining"


class TestLoadgen:
    def test_loadgen_against_live_server(self, tmp_path):
        config = ServiceConfig(port=0, queue_depth=256)
        with ServiceThread(config) as thread:
            report = run_load_blocking(
                "127.0.0.1", thread.port, concurrency=8, requests=160, seed=3
            )
        assert report.requests == 160
        assert report.ok == 160
        assert report.errors == 0
        assert report.shed == 0
        assert report.achieved_rps > 0
        assert report.p99_ms >= report.p50_ms > 0
        from repro.service.loadgen import write_report

        out = tmp_path / "load.json"
        write_report(report, str(out))
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-loadgen/1"
        assert doc["statuses"] == {"200": 160}


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            match = re.search(r"listening on http://127\.0\.0\.1:(\d+)$", line)
            assert match, f"unexpected startup line: {line!r}"
            assert f"repro-serve {__version__}" in line
            port = int(match.group(1))
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/healthz")
            assert conn.getresponse().status == 200
            conn.close()
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            stderr = proc.stderr.read()
            assert rc == 0, stderr
            assert "draining" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
