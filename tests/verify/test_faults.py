"""Mutation-coverage tests: the golden-model flow detects injected faults."""

import pytest

from repro.fp.adder import fp_add
from repro.fp.format import FP32
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.units.structural import adder_micro_ops, multiplier_micro_ops
from repro.verify.faults import Fault, MutationReport, inject, mutation_campaign


class TestInjection:
    def test_fault_changes_result(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        # Flip a low mantissa bit right after denorm: must perturb the sum.
        denorm_idx = next(i for i, op in enumerate(ops) if op.name == "denorm")
        chain = inject(ops, Fault(op_index=denorm_idx, field="m1", bit=3))
        a = FPValue.from_float(FP32, 1.5).bits
        b = FPValue.from_float(FP32, 2.5).bits
        state = {"a": a, "b": b}
        for op in chain:
            merged = dict(state)
            merged.update(op.fn(state))
            state = merged
        assert state["result"] != fp_add(FP32, a, b)[0]

    def test_unfaulted_ops_untouched(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        chain = inject(ops, Fault(op_index=1, field="m1", bit=0))
        assert chain[0] is ops[0]
        assert chain[1] is not ops[1]
        assert chain[1].name.endswith("!fault")

    def test_bad_index_rejected(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        with pytest.raises(ValueError):
            inject(ops, Fault(op_index=99, field="m1", bit=0))

    def test_missing_field_is_harmless(self):
        """A fault site naming an absent field leaves behaviour intact
        (it models a fault in logic the vector never exercises)."""
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        chain = inject(ops, Fault(op_index=0, field="nonexistent", bit=0))
        a = FPValue.from_float(FP32, 1.0).bits
        state = {"a": a, "b": a}
        for op in chain:
            merged = dict(state)
            merged.update(op.fn(state))
            state = merged
        assert state["result"] == fp_add(FP32, a, a)[0]


class TestMutationCampaign:
    def test_adder_coverage_is_high(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        report = mutation_campaign(
            FP32, ops, lambda a, b: fp_add(FP32, a, b), trials=40, seed=5
        )
        assert isinstance(report, MutationReport)
        assert report.trials == 40
        # Random normal-operand vectors catch the overwhelming majority
        # of single-point datapath faults.
        assert report.coverage > 0.8

    def test_multiplier_coverage_is_high(self):
        ops = multiplier_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        report = mutation_campaign(
            FP32, ops, lambda a, b: fp_mul(FP32, a, b), trials=40, seed=6
        )
        assert report.coverage > 0.8

    def test_escapees_are_reported(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        report = mutation_campaign(
            FP32, ops, lambda a, b: fp_add(FP32, a, b), trials=30, seed=7
        )
        assert report.detected + len(report.escaped) == report.trials
        for fault in report.escaped:
            assert fault.describe()

    def test_deterministic_with_seed(self):
        ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        r1 = mutation_campaign(FP32, ops, lambda a, b: fp_add(FP32, a, b),
                               trials=15, seed=3)
        r2 = mutation_campaign(FP32, ops, lambda a, b: fp_add(FP32, a, b),
                               trials=15, seed=3)
        assert r1.detected == r2.detected
