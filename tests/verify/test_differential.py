"""The engine-driven differential campaign: zero mismatches on a scaled
campaign, cache/parallel behavior, and mismatch *detection* (the suite
must prove the checker can fail, not only that it passes)."""

import dataclasses

import pytest

from repro.engine import Engine, ResultCache
from repro.fp.format import (
    BF16,
    FP16,
    FP32,
    FP48,
    FP64,
    PAPER_FORMATS,
    SMALL_FORMATS,
)
from repro.fp.rounding import RoundingMode
from repro.verify.differential import (
    CAMPAIGN_OPS,
    OP_ARITY,
    PACKED_CAMPAIGN_OPS,
    CampaignReport,
    ChunkReport,
    DiffExample,
    PackedCampaignReport,
    PackedChunkReport,
    campaign_jobs,
    diff_chunk,
    packed_campaign_jobs,
    packed_chunk,
    run_campaign,
    run_packed_campaign,
    supported_packings,
)


class TestDiffChunk:
    @pytest.mark.parametrize("op", CAMPAIGN_OPS)
    def test_chunk_passes_all_formats(self, paper_fmt, op):
        report = diff_chunk(
            paper_fmt, op, RoundingMode.NEAREST_EVEN, seed=11, pairs=700
        )
        assert report.passed, report
        assert report.pairs == 700
        assert report.oracle_checked > 0
        # 700 pairs cycle the 13**arity operand-class grid in order, so
        # coverage is the full grid where it fits (13 unary, 169 binary)
        # and exactly one class tuple per pair where it does not (fma's
        # 2197-cell grid).
        assert report.covered_class_pairs == min(700, 13 ** OP_ARITY[op])

    def test_chunk_rtz(self):
        report = diff_chunk(FP64, "mul", RoundingMode.TRUNCATE, seed=3, pairs=400)
        assert report.passed, report

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign op"):
            diff_chunk(FP32, "cbrt", RoundingMode.NEAREST_EVEN, seed=0, pairs=10)

    def test_chunk_is_deterministic(self):
        r1 = diff_chunk(FP48, "add", RoundingMode.NEAREST_EVEN, seed=5, pairs=300)
        r2 = diff_chunk(FP48, "add", RoundingMode.NEAREST_EVEN, seed=5, pairs=300)
        assert r1 == r2


class TestMismatchDetection:
    """A checker that cannot fail proves nothing: corrupt one side."""

    def test_detects_bit_and_flag_divergence(self, monkeypatch):
        import repro.verify.differential as diff

        real_scalar = diff._SCALAR["add"]

        def corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits ^ 1, flags  # flip the LSB of every result

        monkeypatch.setitem(diff._SCALAR, "add", corrupted)
        report = diff_chunk(
            FP32, "add", RoundingMode.NEAREST_EVEN, seed=0, pairs=200
        )
        assert not report.passed
        assert report.bit_mismatches > 0
        assert report.examples  # concrete counterexamples are carried
        ex = report.examples[0]
        assert isinstance(ex, DiffExample)
        assert ex.against in ("scalar", "oracle")

    def test_detects_flag_only_divergence(self, monkeypatch):
        import repro.verify.differential as diff

        real_scalar = diff._SCALAR["mul"]

        def flag_corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits, dataclasses.replace(flags, invalid=not flags.invalid)

        monkeypatch.setitem(diff._SCALAR, "mul", flag_corrupted)
        report = diff_chunk(
            FP32, "mul", RoundingMode.NEAREST_EVEN, seed=0, pairs=200
        )
        assert not report.passed
        assert report.flag_mismatches > 0


class TestCampaign:
    def test_jobs_cover_grid_and_budget(self):
        jobs = campaign_jobs(
            formats=PAPER_FORMATS,
            pairs_per_format=12_000,
            chunk_pairs=1_000,
        )
        names = [j.name for j in jobs]
        for fmt in PAPER_FORMATS:
            fmt_jobs = [n for n in names if f"/{fmt.name}/" in n]
            assert fmt_jobs, names
            pairs = sum(
                dict(j.kwargs)["pairs"]
                for j in jobs
                if f"/{fmt.name}/" in j.name
            )
            assert pairs >= 12_000
        for op in CAMPAIGN_OPS:
            assert any(f"/{op}/" in n for n in names)
        for mode in RoundingMode:
            assert any(f"/{mode.value}/" in n for n in names)

    def test_scaled_campaign_passes_serial(self):
        report = run_campaign(
            formats=(FP48,),
            pairs_per_format=3_000,
            chunk_pairs=600,
            engine=Engine(),
        )
        assert isinstance(report, CampaignReport)
        assert report.passed, report.summary()
        assert report.total_pairs >= 3_000
        assert "PASS" in report.summary()

    def test_campaign_parallel_and_cached_matches_serial(self, tmp_path):
        kwargs = dict(
            formats=(FP32,), pairs_per_format=2_000, chunk_pairs=500
        )
        serial = run_campaign(engine=Engine(), **kwargs)

        cache = ResultCache(tmp_path / "cache")
        cold_engine = Engine(cache=cache, workers=2)
        cold = run_campaign(engine=cold_engine, **kwargs)
        assert cold == serial  # parallel evaluation, identical report

        warm_engine = Engine(cache=cache)
        warm = run_campaign(engine=warm_engine, **kwargs)
        assert warm == serial
        assert warm_engine.metrics.cache_hits == len(campaign_jobs(**kwargs))
        assert warm_engine.metrics.hit_rate == 1.0

    def test_chunk_reports_are_picklable(self):
        import pickle

        report = diff_chunk(FP32, "add", RoundingMode.TRUNCATE, seed=1, pairs=169)
        assert pickle.loads(pickle.dumps(report)) == report

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            campaign_jobs(pairs_per_format=0)
        with pytest.raises(ValueError):
            campaign_jobs(ops=())


class TestSmallFormatCampaign:
    """fp16/bf16 are first-class campaign formats: all six ops, both
    modes, same zero-mismatch bar as the paper formats."""

    @pytest.mark.parametrize("fmt", SMALL_FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("op", CAMPAIGN_OPS)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_chunk_passes(self, fmt, op, mode):
        report = diff_chunk(fmt, op, mode, seed=23, pairs=500)
        assert report.passed, report
        assert report.oracle_checked > 0

    def test_default_campaign_includes_small_formats(self):
        names = [j.name for j in campaign_jobs(pairs_per_format=12)]
        for fmt in SMALL_FORMATS + PAPER_FORMATS:
            assert any(f"/{fmt.name}/" in n for n in names)


class TestPackedChunk:
    @pytest.mark.parametrize(
        "fmt,width",
        supported_packings(),
        ids=lambda v: v.name if hasattr(v, "name") else f"x{v}",
    )
    @pytest.mark.parametrize("op", PACKED_CAMPAIGN_OPS)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_chunk_passes(self, fmt, width, op, mode):
        report = packed_chunk(fmt, op, mode, seed=7, pairs=400, width=width)
        assert report.passed, report
        assert report.pairs == 400
        assert report.width == width
        # 400 pairs cycle the 169-cell binary class grid: full coverage.
        assert report.covered_class_pairs == 169

    def test_supported_packings_matrix(self):
        combos = {(f.name, w) for f, w in supported_packings()}
        assert combos == {
            ("fp16", 4), ("fp16", 2),
            ("bf16", 4), ("bf16", 2),
            ("fp32", 2),
        }

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown packed op"):
            packed_chunk(
                FP16, "div", RoundingMode.NEAREST_EVEN, seed=0, pairs=8,
                width=4,
            )

    def test_chunk_is_deterministic_and_picklable(self):
        import pickle

        r1 = packed_chunk(
            BF16, "mul", RoundingMode.TRUNCATE, seed=5, pairs=338, width=4
        )
        r2 = packed_chunk(
            BF16, "mul", RoundingMode.TRUNCATE, seed=5, pairs=338, width=4
        )
        assert r1 == r2
        assert pickle.loads(pickle.dumps(r1)) == r1

    def test_detects_divergence(self, monkeypatch):
        import repro.verify.differential as diff

        real_vec = diff._VEC["add"]

        def corrupted(fmt, a, b, mode, with_flags=False):
            bits, flags = real_vec(fmt, a, b, mode, with_flags=True)
            return bits ^ 1, flags  # unpacked side lies by one LSB

        monkeypatch.setitem(diff._VEC, "add", corrupted)
        report = packed_chunk(
            FP16, "add", RoundingMode.NEAREST_EVEN, seed=0, pairs=100, width=4
        )
        assert not report.passed
        assert report.bit_mismatches == 100
        assert report.examples
        assert report.examples[0].against == "unpacked"


class TestPackedCampaign:
    def test_jobs_cover_every_supported_lane(self):
        jobs = packed_campaign_jobs(pairs_per_lane=60, chunk_pairs=10)
        names = [j.name for j in jobs]
        for fmt, width in supported_packings():
            lane = [n for n in names if f"/{fmt.name}/x{width}/" in n]
            assert lane, (fmt.name, width, names)
        for op in PACKED_CAMPAIGN_OPS:
            assert any(f"/{op}/" in n for n in names)
        for mode in RoundingMode:
            assert any(f"/{mode.value}/" in n for n in names)
        # fp64 supports no packing and must contribute no jobs.
        assert not any("/fp64/" in n for n in names)

    def test_campaign_passes_and_caches(self, tmp_path):
        kwargs = dict(
            formats=(FP16, FP32), pairs_per_lane=600, chunk_pairs=200
        )
        report = run_packed_campaign(engine=Engine(), **kwargs)
        assert isinstance(report, PackedCampaignReport)
        assert report.passed, report.summary()
        assert report.total_pairs >= 3 * 600  # fp16 x4, fp16 x2, fp32 x2
        assert "PASS" in report.summary()

        cache = ResultCache(tmp_path / "cache")
        cold = run_packed_campaign(engine=Engine(cache=cache), **kwargs)
        assert cold == report
        warm_engine = Engine(cache=cache)
        warm = run_packed_campaign(engine=warm_engine, **kwargs)
        assert warm == report
        assert warm_engine.metrics.hit_rate == 1.0

    def test_non_packed_ops_rejected(self):
        with pytest.raises(ValueError, match="no packed kernel"):
            packed_campaign_jobs(ops=("add", "sqrt"))
        with pytest.raises(ValueError):
            packed_campaign_jobs(pairs_per_lane=0)
