"""The engine-driven differential campaign: zero mismatches on a scaled
campaign, cache/parallel behavior, and mismatch *detection* (the suite
must prove the checker can fail, not only that it passes)."""

import dataclasses

import pytest

from repro.engine import Engine, ResultCache
from repro.fp.format import FP32, FP48, FP64, PAPER_FORMATS
from repro.fp.rounding import RoundingMode
from repro.verify.differential import (
    CAMPAIGN_OPS,
    OP_ARITY,
    CampaignReport,
    ChunkReport,
    DiffExample,
    campaign_jobs,
    diff_chunk,
    run_campaign,
)


class TestDiffChunk:
    @pytest.mark.parametrize("op", CAMPAIGN_OPS)
    def test_chunk_passes_all_formats(self, paper_fmt, op):
        report = diff_chunk(
            paper_fmt, op, RoundingMode.NEAREST_EVEN, seed=11, pairs=700
        )
        assert report.passed, report
        assert report.pairs == 700
        assert report.oracle_checked > 0
        # 700 pairs cycle the 13**arity operand-class grid in order, so
        # coverage is the full grid where it fits (13 unary, 169 binary)
        # and exactly one class tuple per pair where it does not (fma's
        # 2197-cell grid).
        assert report.covered_class_pairs == min(700, 13 ** OP_ARITY[op])

    def test_chunk_rtz(self):
        report = diff_chunk(FP64, "mul", RoundingMode.TRUNCATE, seed=3, pairs=400)
        assert report.passed, report

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign op"):
            diff_chunk(FP32, "cbrt", RoundingMode.NEAREST_EVEN, seed=0, pairs=10)

    def test_chunk_is_deterministic(self):
        r1 = diff_chunk(FP48, "add", RoundingMode.NEAREST_EVEN, seed=5, pairs=300)
        r2 = diff_chunk(FP48, "add", RoundingMode.NEAREST_EVEN, seed=5, pairs=300)
        assert r1 == r2


class TestMismatchDetection:
    """A checker that cannot fail proves nothing: corrupt one side."""

    def test_detects_bit_and_flag_divergence(self, monkeypatch):
        import repro.verify.differential as diff

        real_scalar = diff._SCALAR["add"]

        def corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits ^ 1, flags  # flip the LSB of every result

        monkeypatch.setitem(diff._SCALAR, "add", corrupted)
        report = diff_chunk(
            FP32, "add", RoundingMode.NEAREST_EVEN, seed=0, pairs=200
        )
        assert not report.passed
        assert report.bit_mismatches > 0
        assert report.examples  # concrete counterexamples are carried
        ex = report.examples[0]
        assert isinstance(ex, DiffExample)
        assert ex.against in ("scalar", "oracle")

    def test_detects_flag_only_divergence(self, monkeypatch):
        import repro.verify.differential as diff

        real_scalar = diff._SCALAR["mul"]

        def flag_corrupted(fmt, a, b, mode):
            bits, flags = real_scalar(fmt, a, b, mode)
            return bits, dataclasses.replace(flags, invalid=not flags.invalid)

        monkeypatch.setitem(diff._SCALAR, "mul", flag_corrupted)
        report = diff_chunk(
            FP32, "mul", RoundingMode.NEAREST_EVEN, seed=0, pairs=200
        )
        assert not report.passed
        assert report.flag_mismatches > 0


class TestCampaign:
    def test_jobs_cover_grid_and_budget(self):
        jobs = campaign_jobs(
            formats=PAPER_FORMATS,
            pairs_per_format=12_000,
            chunk_pairs=1_000,
        )
        names = [j.name for j in jobs]
        for fmt in PAPER_FORMATS:
            fmt_jobs = [n for n in names if f"/{fmt.name}/" in n]
            assert fmt_jobs, names
            pairs = sum(
                dict(j.kwargs)["pairs"]
                for j in jobs
                if f"/{fmt.name}/" in j.name
            )
            assert pairs >= 12_000
        for op in CAMPAIGN_OPS:
            assert any(f"/{op}/" in n for n in names)
        for mode in RoundingMode:
            assert any(f"/{mode.value}/" in n for n in names)

    def test_scaled_campaign_passes_serial(self):
        report = run_campaign(
            formats=(FP48,),
            pairs_per_format=3_000,
            chunk_pairs=600,
            engine=Engine(),
        )
        assert isinstance(report, CampaignReport)
        assert report.passed, report.summary()
        assert report.total_pairs >= 3_000
        assert "PASS" in report.summary()

    def test_campaign_parallel_and_cached_matches_serial(self, tmp_path):
        kwargs = dict(
            formats=(FP32,), pairs_per_format=2_000, chunk_pairs=500
        )
        serial = run_campaign(engine=Engine(), **kwargs)

        cache = ResultCache(tmp_path / "cache")
        cold_engine = Engine(cache=cache, workers=2)
        cold = run_campaign(engine=cold_engine, **kwargs)
        assert cold == serial  # parallel evaluation, identical report

        warm_engine = Engine(cache=cache)
        warm = run_campaign(engine=warm_engine, **kwargs)
        assert warm == serial
        assert warm_engine.metrics.cache_hits == len(campaign_jobs(**kwargs))
        assert warm_engine.metrics.hit_rate == 1.0

    def test_chunk_reports_are_picklable(self):
        import pickle

        report = diff_chunk(FP32, "add", RoundingMode.TRUNCATE, seed=1, pairs=169)
        assert pickle.loads(pickle.dumps(report)) == report

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            campaign_jobs(pairs_per_format=0)
        with pytest.raises(ValueError):
            campaign_jobs(ops=())
