"""Mutation-coverage smoke gate (run in CI as a named step).

A seeded mutation campaign against the 32-bit structural cores — adder,
multiplier, divider, square root and fused MAC — must detect at least
95% of injected single-point faults.  This pins the *sensitivity* of the
golden-model verification flow: if a refactor of the testbench or the
structural cores weakens fault detection, this fails the build.  The
campaign is fully deterministic (seeded), so the gate is stable; the
threshold is below the observed rates only by the headroom of one extra
legitimate dead-corner escape.

The div/sqrt/fma gates use the *vectorized* datapaths as golden
detectors (the same single-rounding numpy implementations the service
lanes execute), closing the loop between the mutation flow and the
vectorized layer.  Uniform random operands leave recurrence-remainder
and wide-product low bits observable only through the sticky/inexact
sideband or under cancellation, so those gates bias half their vectors
toward the corners that expose them: exact quotients (identical
significands), exact squares, and catastrophic-cancellation FMA triples
(``c = -round(a*b)``).
"""

import numpy as np

from repro.fp.adder import fp_add
from repro.fp.flags import FPFlags
from repro.fp.format import FP32
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import vec_div, vec_fma, vec_sqrt
from repro.units.structural import (
    adder_micro_ops,
    divider_micro_ops,
    fma_micro_ops,
    multiplier_micro_ops,
    sqrt_micro_ops,
)
from repro.verify.faults import mutation_campaign

#: Pinned campaign parameters — chosen so every unit clears the gate
#: with deterministic seeds while keeping the smoke fast (< a few
#: seconds).
TRIALS = 60
VECTORS_PER_TRIAL = 48
SEED = 2
MIN_COVERAGE = 0.95

RNE = RoundingMode.NEAREST_EVEN


def _vec_golden(vec_fn):
    """Adapt a vectorized op into the campaign's scalar golden shape."""

    def golden(*operands):
        arrays = [np.array([w], dtype=np.uint64) for w in operands]
        bits, flags = vec_fn(FP32, *arrays, RNE, with_flags=True)
        return int(bits[0]), FPFlags.from_bits(int(flags[0]))

    return golden


def _normal_word(rng):
    return FP32.pack(
        rng.randint(0, 1),
        rng.randint(1, FP32.exp_max - 1),
        rng.randrange(FP32.man_mask + 1),
    )


def _div_vectors(rng):
    """Half exact quotients (same significand, free exponents/signs)."""
    if rng.random() < 0.5:
        f = rng.randrange(FP32.man_mask + 1)
        return (
            FP32.pack(rng.randint(0, 1), rng.randint(1, FP32.exp_max - 1), f),
            FP32.pack(rng.randint(0, 1), rng.randint(1, FP32.exp_max - 1), f),
        )
    return (_normal_word(rng), _normal_word(rng))


def _sqrt_vectors(rng):
    """Half exact squares: (12-bit s)^2 scaled by an even power of two."""
    if rng.random() < 0.5:
        square = rng.randrange(1 << 11, 1 << 12) ** 2
        top = square.bit_length() - 1
        man = (square << (FP32.man_bits - top)) & FP32.man_mask
        k = rng.randint((FP32.emin - top) // 2 + 1, (FP32.emax - top) // 2)
        return (FP32.pack(0, top + 2 * k + FP32.bias, man),)
    return (_normal_word(rng),)


def _fma_vectors(rng):
    """Half cancellation triples: ``c = -round(a*b)`` at mid exponents."""
    if rng.random() < 0.5:
        a = FP32.pack(
            rng.randint(0, 1),
            FP32.bias + rng.randint(-30, 30),
            rng.randrange(FP32.man_mask + 1),
        )
        b = FP32.pack(
            rng.randint(0, 1),
            FP32.bias + rng.randint(-30, 30),
            rng.randrange(FP32.man_mask + 1),
        )
        product, _ = fp_mul(FP32, a, b, RNE)
        return (a, b, product ^ (1 << (FP32.width - 1)))
    return (_normal_word(rng), _normal_word(rng), _normal_word(rng))


def test_adder_mutation_coverage_gate():
    ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
    report = mutation_campaign(
        FP32,
        ops,
        lambda a, b: fp_add(FP32, a, b),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"adder mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )


def test_multiplier_mutation_coverage_gate():
    ops = multiplier_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
    report = mutation_campaign(
        FP32,
        ops,
        lambda a, b: fp_mul(FP32, a, b),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"multiplier mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )


def test_divider_mutation_coverage_gate():
    ops = divider_micro_ops(FP32, RNE)
    report = mutation_campaign(
        FP32,
        ops,
        _vec_golden(vec_div),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
        arity=2,
        vectors=_div_vectors,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"divider mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )


def test_sqrt_mutation_coverage_gate():
    ops = sqrt_micro_ops(FP32, RNE)
    report = mutation_campaign(
        FP32,
        ops,
        _vec_golden(vec_sqrt),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
        arity=1,
        vectors=_sqrt_vectors,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"sqrt mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )


def test_fused_mac_mutation_coverage_gate():
    ops = fma_micro_ops(FP32, RNE)
    report = mutation_campaign(
        FP32,
        ops,
        _vec_golden(vec_fma),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
        arity=3,
        vectors=_fma_vectors,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"fused-MAC mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )
