"""Mutation-coverage smoke gate (run in CI as a named step).

A seeded mutation campaign against the 32-bit structural adder and
multiplier must detect at least 95% of injected single-point faults.
This pins the *sensitivity* of the golden-model verification flow: if a
refactor of the testbench or the structural cores weakens fault
detection, this fails the build.  The campaign is fully deterministic
(seeded), so the gate is stable; the threshold is below the ~97%
observed rate only by the headroom of one extra legitimate dead-corner
escape.
"""

from repro.fp.adder import fp_add
from repro.fp.format import FP32
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.units.structural import adder_micro_ops, multiplier_micro_ops
from repro.verify.faults import mutation_campaign

#: Pinned campaign parameters — chosen so both units clear the gate with
#: deterministic seeds while keeping the smoke fast (< a few seconds).
TRIALS = 60
VECTORS_PER_TRIAL = 48
SEED = 2
MIN_COVERAGE = 0.95


def test_adder_mutation_coverage_gate():
    ops = adder_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
    report = mutation_campaign(
        FP32,
        ops,
        lambda a, b: fp_add(FP32, a, b),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"adder mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )


def test_multiplier_mutation_coverage_gate():
    ops = multiplier_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
    report = mutation_campaign(
        FP32,
        ops,
        lambda a, b: fp_mul(FP32, a, b),
        trials=TRIALS,
        vectors_per_trial=VECTORS_PER_TRIAL,
        seed=SEED,
    )
    assert report.coverage >= MIN_COVERAGE, (
        f"multiplier mutation coverage regressed: {report.coverage:.3f} < "
        f"{MIN_COVERAGE} ({len(report.escaped)} escapees: "
        f"{[f.describe() for f in report.escaped]})"
    )
