"""Tests for the coverage-directed verification harness — and, through
it, a full class-pair sweep of every datapath on every paper format."""

import pytest

from repro.fp.format import BF16, FP16, FP32, FP48, FP64, FPFormat
from repro.fp.rounding import RoundingMode
from repro.verify.testbench import (
    OperandClass,
    OperandGenerator,
    run_testbench,
)


class TestOperandGenerator:
    def test_every_class_produces_valid_words(self):
        gen = OperandGenerator(FP32, seed=1)
        for cls in OperandClass:
            for _ in range(5):
                bits = gen.sample(cls)
                assert 0 <= bits <= FP32.word_mask

    def test_classes_classify_correctly(self):
        gen = OperandGenerator(FP32, seed=2)
        assert FP32.is_zero(gen.sample(OperandClass.POS_ZERO))
        assert FP32.is_zero(gen.sample(OperandClass.NEG_ZERO))
        assert FP32.is_inf(gen.sample(OperandClass.POS_INF))
        assert FP32.is_nan(gen.sample(OperandClass.NAN))
        assert FP32.is_zero(gen.sample(OperandClass.DENORMAL_PATTERN))
        assert FP32.is_finite(gen.sample(OperandClass.RANDOM_NORMAL))

    def test_deterministic_with_seed(self):
        a = OperandGenerator(FP32, seed=7)
        b = OperandGenerator(FP32, seed=7)
        for cls in OperandClass:
            assert a.sample(cls) == b.sample(cls)

    @pytest.mark.parametrize(
        "fmt",
        [FP16, BF16, FPFormat(2, 3), FPFormat(3, 3), FPFormat(2, 11)],
        ids=lambda f: f.name,
    )
    def test_small_and_tiny_formats_sample_in_range(self, fmt):
        # The range-extreme classes clamp their exponent draws, so
        # formats whose exponent field is narrower than the +/-4 bands
        # (2-3 exponent bits) still sample valid members of every class.
        gen = OperandGenerator(fmt, seed=9)
        for cls in OperandClass:
            for _ in range(20):
                bits = gen.sample(cls)
                assert 0 <= bits <= fmt.word_mask


class TestTestbenchRuns:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    @pytest.mark.parametrize("fmt", [FP32, FP48, FP64], ids=lambda f: f.name)
    def test_all_ops_pass_with_full_coverage(self, op, fmt):
        report = run_testbench(fmt, op=op, samples_per_pair=2, seed=13)
        assert report.passed, report.mismatches[:3]
        assert report.full_coverage
        assert report.cases == report.total_pairs * 2

    def test_truncation_mode(self):
        report = run_testbench(FP32, op="mul", samples_per_pair=2,
                               mode=RoundingMode.TRUNCATE)
        assert report.passed

    def test_flag_histogram_populated(self):
        report = run_testbench(FP32, op="add", samples_per_pair=3)
        assert report.flag_histogram.get("invalid", 0) > 0  # NaN pairs
        assert report.flag_histogram.get("zero", 0) > 0

    def test_div_by_zero_flag_observed(self):
        report = run_testbench(FP32, op="div", samples_per_pair=3)
        assert report.flag_histogram.get("div_by_zero", 0) > 0

    def test_summary_format(self):
        report = run_testbench(FP32, op="add", samples_per_pair=1)
        s = report.summary()
        assert "PASS" in s and "fp32" in s

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            run_testbench(FP32, op="cbrt")


class TestUnarySqrt:
    @pytest.mark.parametrize("fmt", [FP32, FP48, FP64], ids=lambda f: f.name)
    def test_sqrt_passes_with_full_coverage(self, fmt):
        report = run_testbench(fmt, op="sqrt", samples_per_pair=3, seed=21)
        assert report.passed, report.mismatches[:3]
        assert report.arity == 1
        assert report.full_coverage
        assert report.cases == len(OperandClass) * 3

    def test_sqrt_flags_observed(self):
        report = run_testbench(FP32, op="sqrt", samples_per_pair=3)
        # negative operands and NaNs raise invalid; roots are inexact
        assert report.flag_histogram.get("invalid", 0) > 0
        assert report.flag_histogram.get("inexact", 0) > 0

    def test_sqrt_truncation_mode(self):
        report = run_testbench(FP32, op="sqrt", samples_per_pair=2,
                               mode=RoundingMode.TRUNCATE)
        assert report.passed
