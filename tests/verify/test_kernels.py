"""The stepped-vs-batched kernel differential matrix: passing subsets,
report plumbing, engine-job integration, and mismatch *detection*."""

import pytest

from repro.engine import Engine
from repro.fp.format import FP32, FP48
from repro.fp.rounding import RoundingMode
from repro.verify.kernels import (
    KERNEL_CORNERS,
    KernelMatrixReport,
    fused_matmul_case,
    matmul_case,
    matrix_jobs,
    run_matrix,
)

# A small slice of the full matrix keeps the unit suite fast; the CLI
# (`repro verify --kernels`) runs the whole thing.
SMALL_CORNERS = ((1, 2, 3), (4, 7, 10), (6, 3, 5))


class TestMatmulCase:
    def test_padded_case_passes(self):
        report = matmul_case(FP32, 6, 3, 5)
        assert report["ok"], report
        assert report["mismatched"] == []
        assert report["raised"] is None

    def test_unpadded_hazard_case_raises_identically(self):
        report = matmul_case(FP32, 4, 7, 10, pad_schedule=False)
        assert report["ok"], report
        assert "read-after-write" in report["raised"]

    def test_case_is_deterministic(self):
        r1 = matmul_case(FP48, 4, 7, 10, seed=3)
        r2 = matmul_case(FP48, 4, 7, 10, seed=3)
        assert r1 == r2

    def test_detects_divergence(self, monkeypatch):
        """Corrupt the batched side; the case must report the mismatch."""
        import repro.verify.kernels as vk
        from repro.kernels.batched import BatchedMatmulArray

        class Corrupted(BatchedMatmulArray):
            def run(self, a, b):
                run = super().run(a, b)
                bad_c = [row[:] for row in run.c]
                bad_c[0][0] ^= 1
                import dataclasses

                return dataclasses.replace(run, c=bad_c)

        monkeypatch.setattr(vk, "BatchedMatmulArray", Corrupted)
        report = matmul_case(FP32, 4, 2, 3)
        assert not report["ok"]
        assert "c" in report["mismatched"]


class TestFusedMatmulCase:
    def test_padded_case_passes(self):
        report = fused_matmul_case(FP32, 6, 3, 5)
        assert report["ok"], report
        assert report["mismatched"] == []
        assert report["raised"] is None

    def test_unpadded_hazard_case_raises_identically(self):
        report = fused_matmul_case(FP32, 4, 7, 10, pad_schedule=False)
        assert report["ok"], report
        assert "read-after-write" in report["raised"]

    def test_case_is_deterministic(self):
        r1 = fused_matmul_case(FP48, 4, 7, 10, seed=3)
        r2 = fused_matmul_case(FP48, 4, 7, 10, seed=3)
        assert r1 == r2

    def test_detects_divergence(self, monkeypatch):
        """Corrupt the fused array; the case must report the mismatch."""
        import repro.verify.kernels as vk
        from repro.kernels.batched import FusedMatmulArray

        class Corrupted(FusedMatmulArray):
            def run(self, a, b):
                run = super().run(a, b)
                bad_c = [row[:] for row in run.c]
                bad_c[0][0] ^= 1
                import dataclasses

                return dataclasses.replace(run, c=bad_c)

        monkeypatch.setattr(vk, "FusedMatmulArray", Corrupted)
        report = fused_matmul_case(FP32, 4, 2, 3)
        assert not report["ok"]
        assert "c" in report["mismatched"]


class TestMatrix:
    def test_small_matrix_passes_serial(self):
        report = run_matrix(
            formats=(FP32,), corners=SMALL_CORNERS, engine=Engine(workers=1)
        )
        assert isinstance(report, KernelMatrixReport)
        assert report.passed
        # Every grid point carries a chained (stepped-vs-batched) case
        # and a fused (fma-vs-scalar-fused-PE) case.
        assert len(report.cases) == 1 * 2 * len(SMALL_CORNERS) * 2 * 2
        # (4, 7, 10) and (6, 3, 5) have n < PL: one identical raise per
        # hazardous corner per rounding mode, for each case kind.
        assert report.hazard_cases == 8
        assert report.failures() == []
        assert report.summary().startswith("kernel differential matrix: PASS")

    def test_jobs_cover_full_grid(self):
        jobs = matrix_jobs()
        # 3 formats x 2 modes x corners x {padded, unpadded} x
        # {chained, fused}
        assert len(jobs) == 3 * 2 * len(KERNEL_CORNERS) * 2 * 2
        names = [job.name for job in jobs]
        assert len(set(names)) == len(names)
        assert any(".nopad" in name for name in names)
        assert sum(".fma." in name for name in names) == len(jobs) // 2

    def test_failure_reported_in_summary(self):
        bad_case = {"ok": False, "raised": None, "mismatched": ["cycles"]}
        report = KernelMatrixReport(cases=(bad_case,))
        assert not report.passed
        assert report.failures() == [bad_case]
        assert "FAIL" in report.summary()

    def test_parallel_matches_serial(self):
        serial = run_matrix(
            formats=(FP32,),
            modes=(RoundingMode.NEAREST_EVEN,),
            corners=SMALL_CORNERS,
            engine=Engine(workers=1),
        )
        parallel = run_matrix(
            formats=(FP32,),
            modes=(RoundingMode.NEAREST_EVEN,),
            corners=SMALL_CORNERS,
            engine=Engine(workers=2),
        )
        assert serial == parallel
