"""Integration tests: every experiment runs and reproduces the paper's
qualitative claims (the 'shape' assertions of the reproduction)."""

import pytest

from repro.experiments import (
    REGISTRY,
    fig2_freq_area,
    fig3_power,
    fig4_energy_distribution,
    fig5_problem_size,
    fig6_block_size,
    sec42_matmul,
    table1_adders,
    table2_multipliers,
    table3_compare32,
    table4_compare64,
)
from repro.experiments.configs import kernel_configs
from repro.units.explorer import UnitKind


@pytest.fixture(scope="module")
def fig2a():
    return fig2_freq_area.run(UnitKind.ADDER)


@pytest.fixture(scope="module")
def fig2b():
    return fig2_freq_area.run(UnitKind.MULTIPLIER)


@pytest.fixture(scope="module")
def table1():
    return table1_adders.run()


@pytest.fixture(scope="module")
def table2():
    return table2_multipliers.run()


@pytest.fixture(scope="module")
def sec42():
    return sec42_matmul.run()


@pytest.fixture(scope="module")
def fig5():
    return fig5_problem_size.run()


@pytest.fixture(scope="module")
def fig6():
    return fig6_block_size.run()


class TestFig2:
    def test_three_precisions(self, fig2a):
        assert [s.label for s in fig2a.series] == ["32-bit", "48-bit", "64-bit"]

    def test_rises_then_flattens(self, fig2a):
        """Fig 2: steep initial rise, flattening toward the end."""
        for s in fig2a.series:
            v = s.values
            n = len(v)
            early_gain = v[n // 4] - v[0]
            late_gain = abs(v[-1] - v[3 * n // 4])
            assert early_gain > 0
            assert late_gain < early_gain / 2

    def test_dips_at_deep_pipelining(self, fig2a, fig2b):
        """'...and may dip for deep pipelining.'"""
        for fig in (fig2a, fig2b):
            for s in fig.series:
                peak = max(s.values)
                assert s.values[-1] < peak

    def test_narrower_formats_higher_metric(self, fig2a, fig2b):
        """32-bit sits above 48-bit above 64-bit (less area, same clock
        ballpark)."""
        for fig in (fig2a, fig2b):
            p32 = max(fig.get("32-bit").values)
            p48 = max(fig.get("48-bit").values)
            p64 = max(fig.get("64-bit").values)
            assert p32 > p48 > p64

    def test_multipliers_beat_adders_on_metric(self, fig2a, fig2b):
        for label in ("32-bit", "48-bit", "64-bit"):
            assert max(fig2b.get(label).values) > max(fig2a.get(label).values)


class TestTables12:
    def test_nine_rows_each(self, table1, table2):
        assert len(table1.rows) == 9
        assert len(table2.rows) == 9

    def test_opt_has_best_metric_within_precision(self, table1):
        for prec in ("32-bit", "48-bit", "64-bit"):
            rows = [r for r in table1.rows if r[0] == prec]
            by_impl = {r[1]: r for r in rows}
            metric = table1.columns.index("Freq/Area (MHz/slice)")
            assert by_impl["opt"][metric] >= by_impl["min"][metric]
            assert by_impl["opt"][metric] >= by_impl["max"][metric] - 1e-9

    def test_max_has_best_clock(self, table1, table2):
        clock = table1.columns.index("Clock (MHz)")
        for table in (table1, table2):
            for prec in ("32-bit", "48-bit", "64-bit"):
                rows = {r[1]: r for r in table.rows if r[0] == prec}
                assert rows["max"][clock] >= rows["min"][clock]
                assert rows["max"][clock] >= rows["opt"][clock] - 1e-9

    def test_paper_throughput_claims(self, table1, table2):
        """Abstract: >240 MHz single, >200 MHz double, via deep pipelines."""
        clock = table1.columns.index("Clock (MHz)")
        t1 = {(r[0], r[1]): r for r in table1.rows}
        t2 = {(r[0], r[1]): r for r in table2.rows}
        assert t1[("32-bit", "max")][clock] > 240.0
        assert t1[("64-bit", "max")][clock] > 200.0
        assert t2[("32-bit", "max")][clock] > 240.0
        assert t2[("64-bit", "max")][clock] > 200.0

    def test_area_grows_with_precision(self, table1):
        slices = table1.columns.index("Slices")
        opt = {r[0]: r[slices] for r in table1.rows if r[1] == "opt"}
        assert opt["32-bit"] < opt["48-bit"] < opt["64-bit"]


class TestTables34:
    def test_table3_has_usc_and_vendors(self):
        t = table3_compare32.run()
        sources = set(t.column("Source"))
        assert sources == {"USC (ours)", "Nallatech", "Quixilica"}

    def test_table3_vendor_raw_metric_can_beat_usc(self):
        """Paper: 'due to a lower area, their Frequency/Area metric is
        sometimes better than ours'."""
        t = table3_compare32.run()
        raw = t.columns.index("Freq/Area (MHz/slice)")
        rows = {(r[0], r[1]): r for r in t.rows}
        usc_mul = rows[("32-bit multiplier", "USC (ours)")][raw]
        best_vendor = max(
            rows[("32-bit multiplier", v)][raw] for v in ("Nallatech", "Quixilica")
        )
        assert best_vendor > usc_mul

    def test_table4_usc_dominates_neu(self):
        t = table4_compare64.run()
        clock = t.columns.index("Clock (MHz)")
        metric = t.columns.index("Freq/Area (MHz/slice)")
        rows = {(r[0], r[1]): r for r in t.rows}
        for unit in ("64-bit adder", "64-bit multiplier"):
            assert rows[(unit, "USC (ours)")][clock] > 2 * rows[(unit, "NEU")][clock]
            assert rows[(unit, "USC (ours)")][metric] > rows[(unit, "NEU")][metric]


class TestFig3:
    def test_power_monotone_in_stages(self):
        fig = fig3_power.run(UnitKind.ADDER)
        for s in fig.series:
            assert all(b >= a - 1e-9 for a, b in zip(s.values, s.values[1:]))

    def test_wider_formats_higher_power(self):
        fig = fig3_power.run(UnitKind.MULTIPLIER)
        # compare at a depth every format supports
        idx = 7
        p32 = fig.get("32-bit").values[idx]
        p48 = fig.get("48-bit").values[idx]
        p64 = fig.get("64-bit").values[idx]
        assert p32 < p48 < p64


class TestSec42:
    def _row(self, sec42, precision):
        return {c: v for c, v in zip(sec42.columns, next(
            r for r in sec42.rows if r[0] == precision
        ))}

    def test_single_precision_band(self, sec42):
        """Paper: ~19.6 GFLOPS single (abstract: 'about 15')."""
        row = self._row(sec42, "32-bit")
        assert 15.0 <= row["GFLOPS"] <= 25.0

    def test_double_precision_band(self, sec42):
        """Paper: ~8 GFLOPS double."""
        row = self._row(sec42, "64-bit")
        assert 5.0 <= row["GFLOPS"] <= 10.0

    def test_speedup_vs_p4(self, sec42):
        """Paper: '6X improvement over the 2.54 GHz Pentium 4'."""
        row = self._row(sec42, "32-bit")
        assert 4.5 <= row["vs P4 (GFLOPS)"] <= 8.0

    def test_speedup_vs_g4(self, sec42):
        """Paper: '3X improvement over the 1 GHz G4'."""
        row = self._row(sec42, "32-bit")
        assert 2.0 <= row["vs G4 (GFLOPS)"] <= 4.5

    def test_gflops_per_watt_advantage(self, sec42):
        """Paper: 'upto 6x improvement (for single precision) in terms of
        the GFLOPS/W metric'."""
        row = self._row(sec42, "32-bit")
        assert 4.0 <= row["vs P4 (GFLOPS/W)"] <= 9.0

    def test_single_beats_double(self, sec42):
        s = self._row(sec42, "32-bit")
        d = self._row(sec42, "64-bit")
        assert s["GFLOPS"] > 2 * d["GFLOPS"]
        assert s["PEs"] > d["PEs"]

    def test_kernel_selfcheck_fp64_fast_path(self):
        """The Section 4.2 hot path (fp64 matmul) runs on the vectorized
        kernel and is bit-identical to the scalar reference."""
        from repro.fp.format import FP64

        check = sec42_matmul.kernel_selfcheck(fmt=FP64, n=8, seed=1)
        assert check["identical"], check
        assert check["checked"] == 64

    def test_kernel_selfcheck_runs_as_engine_job(self):
        from repro.engine import Engine, Job
        from repro.fp.format import FP32

        job = Job.create(
            "sec42.selfcheck", sec42_matmul.kernel_selfcheck, fmt=FP32, n=6, seed=2
        )
        result = Engine().evaluate(job)
        assert result["identical"], result

    def test_kernel_selfcheck_backends_agree(self):
        """The selfcheck must pass — and report the same schedule — on
        both the batched default and the stepped reference array."""
        from repro.fp.format import FP32

        batched = sec42_matmul.kernel_selfcheck(fmt=FP32, n=6, seed=3)
        stepped = sec42_matmul.kernel_selfcheck(
            fmt=FP32, n=6, seed=3, backend="stepped"
        )
        assert batched["backend"] == "batched"
        assert stepped["backend"] == "stepped"
        for key in ("identical", "checked", "cycles", "pe_utilization"):
            assert batched[key] == stepped[key], key

    def test_problem_size_scan_small(self):
        from repro.engine import Engine
        from repro.kernels.performance import kernel_schedule_cycles

        table = sec42_matmul.problem_size_scan(
            sizes=(4, 8), engine=Engine(workers=1)
        )
        ns = [row[table.columns.index("n")] for row in table.rows]
        assert ns == [4, 8]
        cyc = table.columns.index("Cycles")
        for row in table.rows:
            n = row[table.columns.index("n")]
            assert row[cyc] == kernel_schedule_cycles(n, 8)  # PL = 3 + 5


class TestConfigs:
    def test_three_levels_with_paper_pl_values(self):
        configs = kernel_configs()
        pls = [c.pl for c in configs]
        assert pls == sorted(pls)
        assert pls[0] == 10  # paper: minimum set has PL = 10
        assert pls[1] == 19  # paper: moderate set has PL = 19
        assert 24 <= pls[2] <= 28  # paper: 25; model lands within one stage

    def test_labels_match_pl(self):
        for c in kernel_configs():
            assert c.label == f"pl={c.pl}"


class TestFig4:
    def test_padding_waste_at_small_problem(self):
        t = fig4_energy_distribution.run()
        total = t.columns.index("Total (nJ)")
        cfg = t.columns.index("Config")
        n_col = t.columns.index("Problem n")
        small = {r[cfg]: r[total] for r in t.rows if r[n_col] == 10}
        large = {r[cfg]: r[total] for r in t.rows if r[n_col] == 30}
        labels = sorted(small, key=lambda k: int(k.split("=")[1]))
        # At n=10 the deep configuration wastes heavily...
        assert small[labels[-1]] > 2.5 * small[labels[0]]
        # ...while at n=30 the ratio shrinks substantially.
        ratio_small = small[labels[-1]] / small[labels[0]]
        ratio_large = large[labels[-1]] / large[labels[0]]
        assert ratio_large < ratio_small / 1.5

    def test_mac_dominates_everywhere(self):
        t = fig4_energy_distribution.run()
        mac = t.columns.index("MAC (nJ)")
        total = t.columns.index("Total (nJ)")
        for r in t.rows:
            assert r[mac] > 0.4 * r[total]


class TestFig5:
    def test_energy_monotone_in_n(self, fig5):
        for s in fig5.energy.series:
            assert list(s.values) == sorted(s.values)

    def test_small_problems_punish_deep_pipelines(self, fig5):
        at_5 = {s.label: s.values[0] for s in fig5.energy.series}
        labels = sorted(at_5, key=lambda k: int(k.split("=")[1]))
        assert at_5[labels[-1]] > 2 * at_5[labels[0]]

    def test_resources_linear_in_n(self, fig5):
        for s in fig5.resources.series:
            if not s.label.startswith("slices"):
                continue
            v = s.values
            x = fig5.resources.x
            slope_first = (v[1] - v[0]) / (x[1] - x[0])
            slope_last = (v[-1] - v[-2]) / (x[-1] - x[-2])
            assert slope_first == pytest.approx(slope_last, rel=0.05)

    def test_deeper_pipelines_use_more_slices(self, fig5):
        slice_series = [
            s for s in fig5.resources.series if s.label.startswith("slices")
        ]
        finals = [s.values[-1] for s in slice_series]
        assert finals == sorted(finals)

    def test_deep_pipeline_wins_latency_at_large_n(self, fig5):
        """Paper: 'it might consume the least energy due to less latency'
        — the deep configuration has the lowest latency at large n."""
        at_max = {s.label: s.values[-1] for s in fig5.latency.series}
        labels = sorted(at_max, key=lambda k: int(k.split("=")[1]))
        assert at_max[labels[-1]] < at_max[labels[0]]

    def test_bmult_bram_independent_of_pipelining(self, fig5):
        labels = [s.label for s in fig5.resources.series]
        assert "BMult (all pl)" in labels
        assert "BRAM (all pl)" in labels


class TestFig6:
    def test_energy_falls_with_block_size(self, fig6):
        """Paper: wasteful dissipation when b << PL."""
        for s in fig6.energy.series:
            assert list(s.values) == sorted(s.values, reverse=True)
            assert s.values[0] > 2 * s.values[-1]

    def test_resources_grow_with_block_size(self, fig6):
        for s in fig6.resources.series:
            if s.label.startswith("slices"):
                assert list(s.values) == sorted(s.values)

    def test_latency_falls_with_block_size(self, fig6):
        for s in fig6.latency.series:
            assert list(s.values) == sorted(s.values, reverse=True)

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            fig6_block_size.run(n=16, block_sizes=(3,))


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig2a",
            "fig2b",
            "table1",
            "table2",
            "table3",
            "table4",
            "fig3a",
            "fig3b",
            "sec4.2",
            "fig4",
            "fig5",
            "fig6",
            "ext-units",
            "ablation-objective",
            "ablation-congestion",
            "ablation-rounding",
            "ablation-fma",
            "ablation-registers",
        }
        assert set(REGISTRY) == expected

    def test_registered_callables_produce_printable(self):
        # Spot-check the cheap ones end to end.
        for name in ("table3", "table4"):
            out = str(REGISTRY[name]())
            assert len(out) > 50


class TestExtUnits:
    def test_extension_units_table(self):
        from repro.experiments import ext_units

        t = ext_units.run()
        assert len(t.rows) == 2 * 3 * 3  # 2 kinds x 3 formats x 3 impls
        clock = t.columns.index("Clock (MHz)")
        metric = t.columns.index("Freq/Area (MHz/slice)")
        slices = t.columns.index("Slices")
        rows = {(r[0], r[1]): r for r in t.rows}
        # Deep pipelining pushes the recurrence units past 200 MHz...
        assert rows[("64-bit divider", "max")][clock] > 200.0
        assert rows[("64-bit sqrt", "max")][clock] > 200.0
        # ...but their quadratic area keeps MHz/slice far below the
        # multiplier's ~0.25-1.2 range.
        assert rows[("64-bit divider", "opt")][metric] < 0.1
        # and they are the area outliers of the library.
        assert rows[("64-bit divider", "opt")][slices] > 2500
