"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    congestion_ablation,
    fused_mac_ablation,
    mixed_precision_matmul_ablation,
    rounding_mode_ablation,
    tool_objective_ablation,
)


@pytest.fixture(scope="module")
def objective_table():
    return tool_objective_ablation()


class TestObjectiveAblation:
    def test_covers_all_units_and_objectives(self, objective_table):
        assert len(objective_table.rows) == 3 * 2 * 3  # fmt x kind x objective

    def test_speed_fastest_area_smallest(self, objective_table):
        cols = list(objective_table.columns)
        by_unit: dict[str, dict[str, list]] = {}
        for row in objective_table.rows:
            by_unit.setdefault(row[0], {})[row[1]] = row
        clock = cols.index("Clock (MHz)")
        slices = cols.index("Slices")
        for unit, rows in by_unit.items():
            assert rows["speed"][clock] > rows["balanced"][clock] > rows["area"][clock]
            assert rows["speed"][slices] > rows["balanced"][slices] > rows["area"][slices]

    def test_balanced_usually_wins_metric(self, objective_table):
        """Neither extreme dominates throughput/area — the reason the
        paper evaluates the metric for all objectives."""
        cols = list(objective_table.columns)
        metric = cols.index("MHz/slice")
        wins = {"speed": 0, "balanced": 0, "area": 0}
        by_unit: dict[str, dict[str, list]] = {}
        for row in objective_table.rows:
            by_unit.setdefault(row[0], {})[row[1]] = row
        for rows in by_unit.values():
            best = max(rows, key=lambda k: rows[k][metric])
            wins[best] += 1
        assert wins["balanced"] >= 4


class TestCongestionAblation:
    def test_monotone_in_factor(self):
        t = congestion_ablation()
        gflops = t.column("GFLOPS")
        assert gflops == sorted(gflops, reverse=True)

    def test_paper_band_within_sweep(self):
        t = congestion_ablation()
        gflops = t.column("GFLOPS")
        assert min(gflops) < 19.6 < max(gflops)


class TestRoundingAblation:
    def test_truncation_is_biased_and_worse(self):
        t = rounding_mode_ablation()
        rows = {r[0]: r for r in t.rows}
        cols = list(t.columns)
        mean = cols.index("Mean rel. error")
        signed = cols.index("Signed mean error")
        assert rows["rtz"][mean] > rows["rne"][mean]
        # Truncation on positive data is systematically negative...
        assert rows["rtz"][signed] < 0
        # ...and its bias magnitude is essentially its mean error.
        assert abs(rows["rtz"][signed]) > 0.5 * rows["rtz"][mean]
        # RNE errors largely cancel.
        assert abs(rows["rne"][signed]) < rows["rne"][mean]


class TestMixedPrecisionAblation:
    @pytest.fixture(scope="class")
    def mixed_table(self):
        return mixed_precision_matmul_ablation(n=6, seed=13)

    def test_covers_both_small_formats(self, mixed_table):
        rows = [(r[0], r[1]) for r in mixed_table.rows]
        assert rows == [
            ("fp16", "fp16"), ("fp16", "fp32"),
            ("bf16", "bf16"), ("bf16", "fp32"),
        ]

    def test_fp32_accumulate_is_more_accurate(self, mixed_table):
        cols = list(mixed_table.columns)
        mean = cols.index("Mean |rel. error|")
        worst = cols.index("Max |rel. error|")
        by_key = {(r[0], r[1]): r for r in mixed_table.rows}
        for small in ("fp16", "bf16"):
            narrow = by_key[(small, small)]
            mixed = by_key[(small, "fp32")]
            # The fp32 accumulator must improve both the mean and the
            # worst case — by a lot, not within noise.
            assert mixed[mean] < narrow[mean] / 10
            assert mixed[worst] < narrow[worst] / 10

    def test_errors_are_finite_and_sane(self, mixed_table):
        cols = list(mixed_table.columns)
        mean = cols.index("Mean |rel. error|")
        by_key = {(r[0], r[1]): r for r in mixed_table.rows}
        for small in ("fp16", "bf16"):
            # In-format accumulation always rounds; widened bf16
            # products (<= 16 significant bits) can sum *exactly* in
            # fp32 at small n, so the mixed rows may reach 0.
            assert 0 < by_key[(small, small)][mean] < 1
            assert 0 <= by_key[(small, "fp32")][mean] < 1


class TestFusedMacAblation:
    def test_fused_is_more_accurate(self):
        t = fused_mac_ablation(samples=60, length=24)
        rows = {r[0]: r for r in t.rows}
        cols = list(t.columns)
        mean = cols.index("Mean |rel. error|")
        assert rows["fused MAC"][mean] < rows["chained (mul -> add)"][mean]

    def test_rounding_counts(self):
        t = fused_mac_ablation(samples=10, length=8)
        counts = dict(zip(t.column("PE datapath"), t.column("Roundings per MAC")))
        assert counts["fused MAC"] == 1
        assert counts["chained (mul -> add)"] == 2


class TestRegisterSharingAblation:
    def test_free_registers_maximize_metric(self):
        from repro.experiments.ablations import register_sharing_ablation

        t = register_sharing_ablation()
        metric = t.column("Opt MHz/slice")
        assert metric == sorted(metric, reverse=True)

    def test_full_cost_retreats_to_shallower_optimum(self):
        """The paper's enabler quantified: without slice-FF sharing the
        deep-pipelining optimum collapses to a shallower design."""
        from repro.experiments.ablations import register_sharing_ablation

        t = register_sharing_ablation(factors=(0.0, 1.0))
        stages = t.column("Opt stages")
        clocks = t.column("Opt MHz")
        assert stages[1] < stages[0]
        assert clocks[1] < clocks[0]

    def test_bad_factor_rejected(self):
        import pytest as _pytest

        from repro.fabric.netlist import adder_datapath
        from repro.fabric.synthesis import synthesize as _synth
        from repro.fp.format import FP32 as _FP32

        with _pytest.raises(ValueError):
            _synth(adder_datapath(_FP32), 4, ff_sharing=1.5)
