"""Guard the documented public API surface.

Every name a README/docstring tells users to import must resolve from
the package roots — this catches ``__init__`` rot when modules move.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": [
        "FP32",
        "FP48",
        "FP64",
        "FPFormat",
        "FPValue",
        "RoundingMode",
        "MatmulArray",
        "MatmulPerformanceModel",
        "PipelinedFPAdder",
        "PipelinedFPMultiplier",
        "XC2VP125",
        "explore",
        "fp_add",
        "fp_mul",
        "fp_sub",
        "functional_matmul",
        "get_device",
        "__version__",
    ],
    "repro.fp": [
        "fp_add",
        "fp_sub",
        "fp_mul",
        "fp_div",
        "fp_sqrt",
        "fp_fma",
        "fp_convert",
        "fp_compare",
        "fp_min",
        "fp_max",
        "fp_add_trace",
        "fp_mul_trace",
        "FPAdder",
        "FPMultiplier",
        "FPDivider",
        "FPSqrt",
        "FPMac",
        "FPFlags",
        "Ordering",
        "is_lossless",
    ],
    "repro.rtl": ["PipelinedFunction", "PipelineRegister", "Signal", "Simulator"],
    "repro.fabric": [
        "Device",
        "ImplementationReport",
        "Objective",
        "SpeedGrade",
        "adder_datapath",
        "multiplier_datapath",
        "divider_datapath",
        "partition_chain",
        "synthesize",
    ],
    "repro.units": [
        "DesignSpace",
        "PipelinedFPAdder",
        "PipelinedFPMultiplier",
        "PipelinedFPDivider",
        "PipelinedFPSqrt",
        "StructuralFPAdder",
        "StructuralFPMultiplier",
        "StructuralFPDivider",
        "StructuralFPSqrt",
        "explore",
    ],
    "repro.kernels": [
        "MatmulArray",
        "MatmulRun",
        "BatchedMatmulArray",
        "MATMUL_BACKENDS",
        "make_matmul_array",
        "check_block_cycles",
        "RAWHazard",
        "ProcessingElement",
        "StructuralProcessingElement",
        "DotProductUnit",
        "MVMArray",
        "LUPerformanceModel",
        "IOChannel",
        "blocked_schedule",
        "functional_matmul",
        "functional_matmul_vectorized",
        "functional_lu",
        "kernel_schedule_cycles",
    ],
    "repro.power": ["EnergyBreakdown", "PEEnergyModel", "PowerReport", "estimate_power"],
    "repro.baselines": ["PENTIUM4_2_53", "POWERPC_G4_1000", "VendorCore"],
    "repro.analysis": ["Table", "SweepResult", "ErrorStats", "ulp", "ulp_error"],
    "repro.verify": [
        "run_testbench",
        "mutation_campaign",
        "OperandClass",
        "run_matrix",
        "KernelMatrixReport",
    ],
    "repro.hdl": ["emit_vhdl"],
    "repro.experiments": ["REGISTRY"],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name} lost export {name!r}"


def test_all_lists_are_accurate():
    """Every name in each __all__ must actually exist."""
    for module_name in PUBLIC_API:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
