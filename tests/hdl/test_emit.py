"""Structural tests for the VHDL skeleton emitter."""

import re

import pytest

from repro.fabric.netlist import (
    adder_datapath,
    divider_datapath,
    multiplier_datapath,
)
from repro.fabric.retiming import partition_chain
from repro.fp.format import FP32, FP64
from repro.hdl.emit import _identifier, emit_vhdl


class TestIdentifier:
    def test_sanitizes_labels(self):
        assert _identifier("norm.priority_enc[hi]") == "norm_priority_enc_hi"
        assert _identifier("swap.mux+exp_sub") == "swap_mux_exp_sub"

    def test_leading_digit_prefixed(self):
        assert _identifier("3stage")[0].isalpha()


class TestEmission:
    @pytest.fixture(scope="class")
    def vhdl(self):
        return emit_vhdl(adder_datapath(FP32), stages=8)

    def test_entity_declared(self, vhdl):
        assert "entity fpadd_fp32 is" in vhdl
        assert "end entity fpadd_fp32;" in vhdl
        assert "architecture pipelined of fpadd_fp32 is" in vhdl

    def test_ports(self, vhdl):
        assert "op_a     : in  std_logic_vector(31 downto 0);" in vhdl
        assert "op_b     : in  std_logic_vector(31 downto 0);" in vhdl
        assert "result   : out std_logic_vector(31 downto 0);" in vhdl
        assert "done     : out std_logic" in vhdl
        assert "flags    : out std_logic_vector(5 downto 0);" in vhdl

    def test_one_process_per_stage(self, vhdl):
        assert len(re.findall(r"stage\d+_proc : process \(clk\)", vhdl)) == 8

    def test_register_signals_match_partition(self, vhdl):
        dp = adder_datapath(FP32)
        partition = partition_chain(dp.quanta, 8)
        regs = re.findall(r"signal stage\d+_r : std_logic_vector\((\d+) downto 0\);",
                          vhdl)
        assert len(regs) == 8
        declared_bits = sum(int(r) + 1 for r in regs)
        assert declared_bits == partition.register_bits

    def test_every_quantum_instantiated_once(self, vhdl):
        dp = adder_datapath(FP32)
        for q in dp.quanta:
            assert vhdl.count(f"work.{_identifier(q.label)} ") == 1

    def test_clock_comment_matches_model(self, vhdl):
        m = re.search(r"->\s+([\d.]+) MHz", vhdl)
        assert m
        from repro.fabric.synthesis import synthesize

        r = synthesize(adder_datapath(FP32), 8)
        assert float(m.group(1)) == pytest.approx(r.clock_mhz, abs=0.1)

    def test_custom_entity_name(self):
        out = emit_vhdl(multiplier_datapath(FP64), 6, entity_name="my_mul")
        assert "entity my_mul is" in out

    def test_surplus_stages_emit_register_only(self):
        dp = multiplier_datapath(FP32)
        deep = emit_vhdl(dp, dp.natural_max_stages + 2)
        assert "register only" in deep

    def test_divider_emits_rows(self):
        out = emit_vhdl(divider_datapath(FP32), 20)
        assert "work.divide_row_0 " in out
        # One 'work.' instance comment per recurrence row: the fabric
        # model prices sig_bits + 3 rows (quotient bits incl. GRS).
        assert out.count("work.divide_row_") == FP32.sig_bits + 3

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            emit_vhdl(adder_datapath(FP32), 0)

    def test_balanced_statement_structure(self, vhdl):
        # every process closes; two 'end if's per stage (reset + edge)
        assert vhdl.count("process (clk)") == vhdl.count("end process;") == 8
        assert vhdl.count("end if;") == 16
