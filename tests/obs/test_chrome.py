"""Chrome trace-event export shape (chrome://tracing / Perfetto)."""

import json

import pytest

from repro.obs.chrome import chrome_trace
from repro.obs.trace import Tracer


def finished_doc(route="/v1/op/mul", spans=("batch.linger", "scatter")):
    tracer = Tracer()
    trace = tracer.start(route=route)
    for name in spans:
        trace.begin(name, tags={"lane": "mul/fp32/rne"}).finish()
    tracer.finish(trace, status=200)
    return tracer.get(trace.trace_id)


def test_export_is_json_serializable_object_format():
    doc = chrome_trace([finished_doc()])
    text = json.dumps(doc)  # must round-trip: the CLI writes this file
    parsed = json.loads(text)
    assert parsed["displayTimeUnit"] == "ms"
    assert isinstance(parsed["traceEvents"], list)


def test_events_cover_metadata_request_and_spans():
    doc = finished_doc(spans=("batch.dispatch",))
    events = chrome_trace([doc])["traceEvents"]
    phases = [e["ph"] for e in events]
    assert phases == ["M", "X", "X"]  # thread_name, request, one span
    meta, request, span = events
    assert meta["name"] == "thread_name"
    assert doc["trace_id"] in meta["args"]["name"]
    assert request["name"] == "/v1/op/mul"
    assert request["cat"] == "request"
    assert request["args"]["status"] == 200
    assert span["name"] == "batch.dispatch"
    assert span["cat"] == "span"
    assert span["args"]["lane"] == "mul/fp32/rne"


def test_span_timestamps_are_microseconds_anchored_at_wall_clock():
    doc = finished_doc(spans=("scatter",))
    events = chrome_trace([doc])["traceEvents"]
    request = events[1]
    span = events[2]
    assert request["ts"] == pytest.approx(doc["started_unix"] * 1e6)
    assert request["dur"] == pytest.approx(doc["duration_ms"] * 1e3)
    assert span["ts"] >= request["ts"]
    # All events from one trace land on one virtual thread.
    assert {e["tid"] for e in events} == {1}
    assert {e["pid"] for e in events} == {1}


def test_multiple_traces_get_distinct_threads():
    events = chrome_trace([finished_doc(), finished_doc()])["traceEvents"]
    assert {e["tid"] for e in events} == {1, 2}


def test_empty_input_is_a_valid_empty_export():
    assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}
