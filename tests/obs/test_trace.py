"""Tracing core: spans, traces, sampling, the bounded ring buffer."""

import io
import json
import re

import pytest

from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    NULL_SPAN,
    NULL_TRACE,
    NullTrace,
    REQUEST_STAGES,
    Span,
    Trace,
    Tracer,
    render_trace,
)


class TestSpan:
    def test_finish_stamps_time_and_tags(self):
        span = Span("work", 10.0)
        span.finish(11.5, tags={"outcome": "ok"})
        assert span.duration_s == pytest.approx(1.5)
        assert span.tags == {"outcome": "ok"}

    def test_finish_merges_into_existing_tags(self):
        span = Span("work", 0.0, tags={"lane": "mul/fp32/rne"})
        span.finish(1.0, tags={"batch_size": 4})
        assert span.tags == {"lane": "mul/fp32/rne", "batch_size": 4}

    def test_null_span_absorbs_everything(self):
        assert NULL_SPAN.finish(tags={"err": "x"}) is NULL_SPAN
        with NULL_SPAN as s:
            assert s is NULL_SPAN


class TestTrace:
    def test_begin_finish_builds_span_list(self):
        trace = Trace("t-1", route="/v1/op/mul")
        span = trace.begin("admission.wait")
        span.finish(tags={"verdict": "admitted"})
        assert [s.name for s in trace.spans] == ["admission.wait"]
        assert trace.spans[0].tags["verdict"] == "admitted"

    def test_span_context_manager_records_errors(self):
        trace = Trace("t-2")
        with pytest.raises(RuntimeError):
            with trace.span("kernel.wavefront", k=3):
                raise RuntimeError("boom")
        assert trace.spans[0].tags == {"k": 3, "error": "RuntimeError"}

    def test_attach_shares_one_span_across_traces(self):
        shared = Span("batch.dispatch", 0.0, tags={"batch_size": 2})
        a, b = Trace("t-a"), Trace("t-b")
        a.attach(shared)
        b.attach(shared)
        shared.finish(1.0)
        assert a.spans[0] is b.spans[0]
        assert a.to_dict()["spans"][0]["tags"]["batch_size"] == 2

    def test_span_cap_counts_drops(self):
        trace = Trace("t-cap")
        for i in range(MAX_SPANS_PER_TRACE + 5):
            trace.add("s", 0.0, 0.0)
        assert len(trace.spans) == MAX_SPANS_PER_TRACE
        assert trace.dropped_spans == 5
        assert trace.begin("over") is NULL_SPAN
        assert trace.dropped_spans == 6
        trace.attach(Span("over", 0.0))
        assert trace.dropped_spans == 7
        trace.extend((("a", 0.0, 0.0, -1, None), ("b", 0.0, 0.0, -1, None)))
        assert trace.dropped_spans == 9
        assert len(trace.spans) == MAX_SPANS_PER_TRACE

    def test_extend_appends_tuples_and_spans_together(self):
        trace = Trace("t-ext", route="/v1/op/mul")
        shared = Span("batch.dispatch", 0.0, tags={"batch_size": 2})
        shared.finish(1.0)
        trace.extend((
            ("admission.wait", 0.0, 0.0, -1, {"verdict": "ok"}),
            ("batch.linger", 0.0, 0.5, -1, None),
            shared,
        ))
        doc = trace.to_dict()
        names = [s["name"] for s in doc["spans"]]
        assert names == ["admission.wait", "batch.linger", "batch.dispatch"]
        assert doc["spans"][0]["tags"] == {"verdict": "ok"}
        assert doc["spans"][1]["tags"] == {}
        assert doc["spans"][2]["tags"]["batch_size"] == 2

    def test_to_dict_times_are_relative_milliseconds(self):
        trace = Trace("t-3", route="/x")
        trace.add("a", trace.t0 + 0.001, trace.t0 + 0.003)
        doc = trace.to_dict()
        assert doc["trace_id"] == "t-3"
        assert doc["route"] == "/x"
        span = doc["spans"][0]
        assert span["start_ms"] == pytest.approx(1.0, abs=1e-6)
        assert span["duration_ms"] == pytest.approx(2.0, abs=1e-6)

    def test_summary_counts_spans(self):
        trace = Trace("t-4", route="/x", status=200)
        trace.add("a", 0.0, 1.0)
        summary = trace.summary()
        assert summary["trace_id"] == "t-4"
        assert summary["spans"] == 1
        assert summary["route"] == "/x"
        assert summary["status"] == 200


class TestNullTrace:
    def test_carries_id_but_drops_spans(self):
        trace = NullTrace("echoed-id")
        assert trace.trace_id == "echoed-id"
        assert trace.sampled is False
        assert trace.begin("x") is NULL_SPAN
        trace.add("x", 0.0, 1.0)
        trace.attach(Span("x", 0.0))
        trace.extend((("x", 0.0, 1.0, -1, None),))
        assert trace.span("x") is NULL_SPAN
        assert trace.spans == ()
        assert NULL_TRACE.trace_id == ""


class TestTracer:
    def test_minted_ids_are_unique_and_valid(self):
        tracer = Tracer()
        ids = {tracer.mint_id() for _ in range(100)}
        assert len(ids) == 100
        for tid in ids:
            assert re.match(r"^[A-Za-z0-9][A-Za-z0-9._\-]{0,63}$", tid)

    def test_honors_wellformed_inbound_id(self):
        tracer = Tracer()
        trace = tracer.start("client-id.7")
        assert trace.trace_id == "client-id.7"
        assert trace.sampled is True

    @pytest.mark.parametrize("bad", ["", "-leading-dash", "a" * 65,
                                     "has space", "semi;colon"])
    def test_replaces_malformed_inbound_id(self, bad):
        tracer = Tracer()
        trace = tracer.start(bad)
        assert trace.trace_id != bad
        assert re.match(r"^[A-Za-z0-9]", trace.trace_id)

    def test_sample_zero_returns_null_trace(self):
        tracer = Tracer(sample=0.0)
        trace = tracer.start("still-echoed")
        assert isinstance(trace, NullTrace)
        assert trace.trace_id == "still-echoed"
        assert tracer.stats()["sampled_out"] == 1
        # Finishing an unsampled trace is a no-op, not an error.
        tracer.finish(trace, status=200)
        assert tracer.stats()["finished"] == 0

    def test_fractional_sampling_is_headwise(self):
        tracer = Tracer(sample=0.5)
        kinds = {tracer.start().sampled for _ in range(200)}
        assert kinds == {True, False}  # both outcomes occur
        stats = tracer.stats()
        assert stats["started"] == 200
        assert 0 < stats["sampled_out"] < 200

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_finish_buffers_and_get_serializes(self):
        tracer = Tracer()
        trace = tracer.start(route="/v1/op/mul")
        trace.begin("scatter").finish()
        tracer.finish(trace, status=200)
        doc = tracer.get(trace.trace_id)
        assert doc is not None
        assert doc["status"] == 200
        assert [s["name"] for s in doc["spans"]] == ["scatter"]
        assert tracer.get("never-seen") is None

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        trace = tracer.start()
        tracer.finish(trace)
        tracer.finish(trace)
        assert tracer.stats()["finished"] == 1

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        traces = [tracer.start() for _ in range(3)]
        for trace in traces:
            tracer.finish(trace)
        stats = tracer.stats()
        assert stats["buffered"] == 2
        assert stats["evicted"] == 1
        assert tracer.get(traces[0].trace_id) is None  # oldest gone
        assert tracer.get(traces[2].trace_id) is not None

    def test_slowest_orders_by_duration(self):
        tracer = Tracer()
        quick = tracer.start()
        tracer.finish(quick)
        slow = tracer.start()
        slow.t0 -= 5.0  # pretend it started five seconds ago
        tracer.finish(slow)
        ordered = tracer.slowest(2)
        assert [t.trace_id for t in ordered] == [slow.trace_id, quick.trace_id]
        assert tracer.slowest(0) == []

    def test_on_finish_hook_sees_the_trace(self):
        seen = []
        tracer = Tracer(on_finish=seen.append)
        trace = tracer.start()
        trace.begin("admission.wait").finish()
        tracer.finish(trace)
        assert seen == [trace]
        assert tracer.stats()["spans_recorded"] == 1

    def test_ndjson_log_stream(self):
        stream = io.StringIO()
        tracer = Tracer(log_stream=stream)
        trace = tracer.start("t-log", route="/v1/op/mul")
        span = trace.begin("batch.dispatch", tags={"lane": "mul/fp32/rne"})
        span.finish(tags={"batch_size": 3})
        tracer.finish(trace, status=200)
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert len(lines) == 2
        span_line, trace_line = lines
        assert span_line["event"] == "span"
        assert span_line["trace_id"] == "t-log"
        assert span_line["span"] == "batch.dispatch"
        assert span_line["lane"] == "mul/fp32/rne"
        assert span_line["duration_ms"] >= 0
        assert trace_line["event"] == "trace"
        assert trace_line["status"] == 200
        assert trace_line["spans"] == 1


class TestRenderTrace:
    def test_renders_tree_with_tags_and_drops(self):
        doc = {
            "trace_id": "t-render",
            "route": "/v1/op/mul",
            "status": 200,
            "duration_ms": 1.25,
            "dropped_spans": 2,
            "spans": [
                {"name": "batch.linger", "parent": -1, "start_ms": 0.0,
                 "duration_ms": 0.5, "tags": {}},
                {"name": "batch.dispatch", "parent": 0, "start_ms": 0.5,
                 "duration_ms": 0.5, "tags": {"lane": "mul/fp32/rne"}},
            ],
        }
        text = render_trace(doc)
        assert "trace t-render /v1/op/mul status=200" in text
        assert "batch.linger" in text
        assert "lane=mul/fp32/rne" in text
        # The child is indented one level deeper than its parent.
        linger = next(l for l in text.splitlines() if "batch.linger" in l)
        dispatch = next(l for l in text.splitlines() if "batch.dispatch" in l)
        assert len(dispatch) - len(dispatch.lstrip()) > \
            len(linger) - len(linger.lstrip())
        assert "2 spans dropped" in text


def test_request_stages_are_the_pipeline_in_order():
    assert REQUEST_STAGES == (
        "admission.wait", "batch.linger", "batch.dispatch", "scatter"
    )
