"""Calibration-anchor tests for the delay model.

Each test pins one of the operating points the paper reports; if a model
change breaks an anchor, the reproduction's quantitative claims drift.
"""

import pytest

from repro.fabric import timing


class TestPaperAnchors:
    def test_11_bit_comparator_reaches_250mhz(self):
        """Paper: 'Comparators of a bitwidth less than or equal to 11 can
        achieve 250 MHz'."""
        f = timing.achievable_mhz(timing.comparator_delay(11))
        assert f >= 250.0 - 2.0

    def test_52_bit_mantissa_comparator_near_220mhz(self):
        """Paper: 'The mantissa comparator for double precision can achieve
        a frequency of 220 MHz'."""
        f = timing.achievable_mhz(timing.comparator_delay(52))
        assert 210.0 <= f <= 232.0

    def test_three_mux_stage_exceeds_200mhz(self):
        """Paper: 'Three muxes in serial can be considered as a stage and a
        frequency of more than 200 MHz can be achieved'."""
        f = timing.achievable_mhz(3 * timing.MUX_LEVEL_NS)
        assert f > 200.0

    def test_two_mux_stage_is_faster(self):
        f3 = timing.achievable_mhz(3 * timing.MUX_LEVEL_NS)
        f2 = timing.achievable_mhz(2 * timing.MUX_LEVEL_NS)
        assert f2 > f3 > 200.0

    def test_54_bit_adder_four_stages_near_200mhz(self):
        """Paper: 'a 54-bit adder/subtractor can achieve 200 MHz with 4
        pipelining stages'."""
        per_stage = timing.adder_delay(54) / 4
        f = timing.achievable_mhz(per_stage)
        assert 190.0 <= f <= 215.0

    def test_54_bit_multiplier_seven_stages_near_200mhz(self):
        """Paper: 'for the 54-bit fixed-point multiplication, seven
        pipelining stages are required to achieve ... 200 MHz'."""
        per_stage = timing.multiplier_delay(54) / 7
        f = timing.achievable_mhz(per_stage)
        assert 190.0 <= f <= 215.0
        # and six stages must NOT be enough:
        f6 = timing.achievable_mhz(timing.multiplier_delay(54) / 6)
        assert f6 < 200.0

    def test_54_bit_priority_encoder_must_split(self):
        """Paper: the 54-bit priority encoder must be broken in two to
        exceed 200 MHz."""
        whole = timing.achievable_mhz(timing.priority_encoder_delay(54))
        halved = timing.achievable_mhz(timing.priority_encoder_delay(54) / 2)
        assert whole < 200.0 < halved


class TestModelShape:
    @pytest.mark.parametrize(
        "fn",
        [
            timing.comparator_delay,
            timing.small_comparator_delay,
            timing.adder_delay,
            timing.const_adder_delay,
            timing.small_adder_delay,
            timing.priority_encoder_delay,
            timing.multiplier_delay,
        ],
    )
    def test_delay_monotone_in_width(self, fn):
        values = [fn(n) for n in (4, 8, 16, 32, 64)]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert all(v > 0 for v in values)

    def test_shifter_levels(self):
        assert timing.shifter_levels(2) == 1
        assert timing.shifter_levels(27) == 5
        assert timing.shifter_levels(56) == 6

    def test_shifter_delay_scales_with_levels(self):
        assert timing.shifter_delay(64) == 6 * timing.MUX_LEVEL_NS

    def test_period_to_mhz(self):
        assert timing.period_to_mhz(4.0) == 250.0
        with pytest.raises(ValueError):
            timing.period_to_mhz(0.0)

    def test_achievable_mhz_respects_ceiling(self):
        # A trivially short path cannot beat the fabric clock ceiling.
        assert timing.achievable_mhz(0.1, max_clock_mhz=300.0) == 300.0

    def test_register_overhead_applied(self):
        f = timing.achievable_mhz(3.0)
        assert f == pytest.approx(1000.0 / 4.0)
