"""Unit and property tests for optimal pipeline-register placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.netlist import Quantum, adder_datapath
from repro.fabric.retiming import (
    brute_force_bottleneck,
    partition_chain,
)
from repro.fp.format import FP32


def chain(*delays: float) -> list[Quantum]:
    return [Quantum(f"q{i}", d, 10) for i, d in enumerate(delays)]


class TestPartitionBasics:
    def test_single_stage_is_total_delay(self):
        result = partition_chain(chain(1.0, 2.0, 3.0), 1)
        assert result.critical_path_ns == pytest.approx(6.0)
        assert result.boundaries == ()
        assert result.segment_delays_ns == (6.0,)

    def test_two_stages_balanced(self):
        result = partition_chain(chain(3.0, 1.0, 1.0, 3.0), 2)
        assert result.critical_path_ns == pytest.approx(4.0)
        assert len(result.segment_delays_ns) == 2

    def test_full_pipelining_bottoms_at_max_quantum(self):
        q = chain(1.0, 4.0, 2.0)
        result = partition_chain(q, 3)
        assert result.critical_path_ns == pytest.approx(4.0)

    def test_over_pipelining_adds_surplus_registers(self):
        q = chain(1.0, 4.0, 2.0)
        base = partition_chain(q, 3)
        over = partition_chain(q, 6)
        assert over.critical_path_ns == base.critical_path_ns
        assert over.surplus_registers == 3
        assert over.register_bits > base.register_bits

    def test_stage_monotonicity(self):
        """More stages never increase the bottleneck."""
        q = chain(2.0, 3.0, 1.5, 4.0, 0.5, 2.5)
        prev = float("inf")
        for s in range(1, 10):
            cur = partition_chain(q, s).critical_path_ns
            assert cur <= prev + 1e-9
            prev = cur

    def test_segments_cover_chain(self):
        q = chain(2.0, 3.0, 1.5, 4.0, 0.5, 2.5)
        result = partition_chain(q, 3)
        assert sum(result.segment_delays_ns) == pytest.approx(13.5)

    def test_boundaries_are_valid_and_sorted(self):
        q = chain(*([1.0] * 12))
        result = partition_chain(q, 4)
        assert list(result.boundaries) == sorted(set(result.boundaries))
        assert all(0 <= b < len(q) - 1 for b in result.boundaries)
        assert len(result.boundaries) == 3

    def test_register_bits_counted_per_cut(self):
        q = chain(1.0, 1.0, 1.0, 1.0)
        r = partition_chain(q, 2)
        # one internal cut (10 bits) + output register (10 bits)
        assert r.register_bits == 20

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_chain(chain(1.0), 0)
        with pytest.raises(ValueError):
            partition_chain([], 2)


class TestOptimality:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=9,
        ),
        st.integers(1, 6),
    )
    def test_matches_brute_force(self, delays, segments):
        q = chain(*delays)
        got = partition_chain(q, segments).critical_path_ns
        best = brute_force_bottleneck(delays, segments)
        assert got == pytest.approx(best, rel=1e-6)

    def test_uses_all_requested_segments_when_beneficial(self):
        # 8 equal quanta into 4 stages must give exactly 2 quanta each.
        q = chain(*([1.0] * 8))
        r = partition_chain(q, 4)
        assert r.critical_path_ns == pytest.approx(2.0)
        assert len(r.segment_delays_ns) == 4

    def test_real_datapath_partition(self):
        dp = adder_datapath(FP32)
        r = partition_chain(dp.quanta, 10)
        assert len(r.segment_delays_ns) == 10
        assert max(r.segment_delays_ns) == pytest.approx(r.critical_path_ns)
        assert r.critical_path_ns >= dp.max_atomic_ns - 1e-9
        assert r.critical_path_ns <= dp.total_delay_ns


class TestBruteForce:
    def test_trivial(self):
        assert brute_force_bottleneck([5.0], 3) == 5.0

    def test_known_answer(self):
        assert brute_force_bottleneck([1, 2, 3, 4, 5], 2) == pytest.approx(9.0)
        assert brute_force_bottleneck([1, 2, 3, 4, 5], 3) == pytest.approx(6.0)
