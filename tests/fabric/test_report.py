"""Tests for the device utilization report."""

import pytest

from repro.fabric.device import XC2VP125, get_device
from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.report import PlacedUnit, utilization_report
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32


def units(count=10):
    add = synthesize(adder_datapath(FP32), 12)
    mul = synthesize(multiplier_datapath(FP32), 8)
    return [
        PlacedUnit("fp32 adder", add, count),
        PlacedUnit("fp32 multiplier", mul, count),
    ]


class TestUtilizationReport:
    def test_totals_row(self):
        table = utilization_report(XC2VP125, units(10))
        total = table.rows[-1]
        assert total[0] == "TOTAL"
        assert total[2] == sum(r[2] for r in table.rows[:-1])

    def test_percentages(self):
        table = utilization_report(XC2VP125, units(5))
        pct = table.columns.index("% slices")
        assert all(0 <= r[pct] <= 100 for r in table.rows)

    def test_misc_slices_row(self):
        table = utilization_report(XC2VP125, units(2), misc_slices=500)
        labels = [r[0] for r in table.rows]
        assert "misc (control/IO)" in labels

    def test_overflow_detected(self):
        small = get_device("XC2VP2")
        with pytest.raises(ValueError, match="slices"):
            utilization_report(small, units(50))

    def test_mult_budget_detected(self):
        mul = synthesize(multiplier_datapath(FP32), 8)
        too_many = [PlacedUnit("mul", mul, 200)]  # 800 MULT18 > 556
        with pytest.raises(ValueError, match="MULT18"):
            utilization_report(XC2VP125, too_many)

    def test_bram_budget_detected(self):
        with pytest.raises(ValueError, match="BRAM"):
            utilization_report(XC2VP125, units(1), brams=100000)

    def test_extra_slices_each(self):
        add = synthesize(adder_datapath(FP32), 12)
        bare = PlacedUnit("a", add, 2)
        padded = PlacedUnit("a", add, 2, extra_slices_each=100)
        assert padded.slices == bare.slices + 200
