"""Unit tests for the Virtex-II Pro device catalog."""

import pytest

from repro.fabric.device import XC2VP125, Device, SpeedGrade, catalog, get_device


class TestCatalog:
    def test_paper_device(self):
        assert XC2VP125.slices == 55616
        assert XC2VP125.mult18 == 556
        assert XC2VP125.bram == 556

    def test_lookup_case_insensitive(self):
        assert get_device("xc2vp30").name == "XC2VP30"

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("XC7Z020")

    def test_catalog_sorted_by_size(self):
        parts = catalog()
        sizes = [p.slices for p in parts]
        assert sizes == sorted(sizes)
        assert parts[-1] is XC2VP125

    def test_derived_resources(self):
        d = Device("X", slices=100, bram=1, mult18=1)
        assert d.luts == 200
        assert d.flipflops == 200


class TestUsableSlices:
    def test_default_margin(self):
        assert XC2VP125.usable_slices() == int(55616 * 0.9)

    def test_full_utilization(self):
        assert XC2VP125.usable_slices(1.0) == 55616

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            XC2VP125.usable_slices(0.0)
        with pytest.raises(ValueError):
            XC2VP125.usable_slices(1.5)


class TestSpeedGrade:
    def test_reference_grade_is_unity(self):
        assert SpeedGrade.MINUS_7.delay_scale == 1.0

    def test_slower_grades_scale_up(self):
        assert SpeedGrade.MINUS_6.delay_scale > 1.0
        assert SpeedGrade.MINUS_5.delay_scale > SpeedGrade.MINUS_6.delay_scale
