"""Unit tests for the area model (the paper's slice formulas)."""

import pytest

from repro.fabric import area


class TestPaperFormulas:
    def test_comparator_half_slice_per_bit(self):
        """Paper: 'Comparators take about n/2 slices for a bitwidth of n'."""
        assert area.comparator_slices(54) == 27

    def test_adder_half_slice_per_bit(self):
        """Paper: '[the adder] takes about n/2 slices for a bitwidth of n'."""
        assert area.adder_slices(54) == 27

    def test_shifter_nlogn_over_two(self):
        """Paper: '[the shifter] takes up about n log n / 2 slices'."""
        import math

        n = 32
        assert area.shifter_slices(n) == pytest.approx(n * math.log2(n) / 2)


class TestMultiplierResources:
    def test_mult18_counts_per_format(self):
        # 24-bit significand -> 2x2 blocks; 37 -> 3x3; 53 -> 4x4.
        assert area.mult18_count(24) == 4
        assert area.mult18_count(37) == 9
        assert area.mult18_count(53) == 16

    def test_single_block_product_needs_one(self):
        assert area.mult18_count(17) == 1
        assert area.multiplier_tree_slices(17) == 0.0

    def test_tree_grows_with_blocks(self):
        assert area.multiplier_tree_slices(53) > area.multiplier_tree_slices(24) > 0


class TestRegisters:
    def test_register_cost_scales_with_stages(self):
        one = area.register_slices(64, 1)
        ten = area.register_slices(64, 10)
        assert ten == pytest.approx(10 * one)

    def test_sharing_discount(self):
        # Pipelining exploits unused slice FFs: cheaper than bits/2.
        assert area.register_slices(64, 1) < 64 / 2

    def test_zero_stages_free(self):
        assert area.register_slices(64, 0) == 0.0

    def test_luts_estimate(self):
        assert area.slices_to_luts(100) == 180
