"""Unit tests for the synthesis flow and its paper-level invariants."""

import pytest

from repro.fabric.device import SpeedGrade
from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize, sweep_stages
from repro.fabric.toolchain import Objective
from repro.fp.format import FP32, FP48, FP64, PAPER_FORMATS


class TestImplementationReport:
    def test_basic_fields(self):
        r = synthesize(adder_datapath(FP32), 8)
        assert r.stages == 8
        assert r.latency_cycles == 8
        assert r.slices > 0 and r.luts > 0 and r.flipflops > 0
        assert r.clock_mhz > 0
        assert r.freq_per_area == pytest.approx(r.clock_mhz / r.slices)
        assert r.latency_ns == pytest.approx(8 * 1000.0 / r.clock_mhz)
        assert r.throughput_mops == r.clock_mhz

    def test_flipflops_grow_with_stages(self):
        dp = adder_datapath(FP32)
        ffs = [synthesize(dp, s).flipflops for s in (2, 6, 12)]
        assert ffs == sorted(ffs)
        assert ffs[0] < ffs[-1]

    def test_clock_monotone_in_stages(self):
        dp = adder_datapath(FP64)
        clocks = [synthesize(dp, s).clock_mhz for s in range(1, dp.natural_max_stages)]
        assert all(b >= a - 1e-9 for a, b in zip(clocks, clocks[1:]))

    def test_area_monotone_in_stages(self):
        dp = multiplier_datapath(FP48)
        slices = [synthesize(dp, s).slices for s in range(1, 15)]
        assert all(b >= a for a, b in zip(slices, slices[1:]))


class TestPaperLevelAnchors:
    def test_single_precision_adder_exceeds_240mhz(self):
        """Abstract: 'throughput rates of more than 240 MHz for single'."""
        dp = adder_datapath(FP32)
        best = max(r.clock_mhz for r in sweep_stages(dp))
        assert best > 240.0

    def test_double_precision_exceeds_200mhz(self):
        """Abstract: '... (200 MHz) for ... double precision operations'."""
        for build in (adder_datapath, multiplier_datapath):
            best = max(r.clock_mhz for r in sweep_stages(build(FP64)))
            assert best > 200.0

    def test_freq_area_dips_past_natural_max(self):
        """Fig 2: the metric 'may dip for deep pipelining'."""
        for fmt in PAPER_FORMATS:
            dp = adder_datapath(fmt)
            natural = dp.natural_max_stages
            at_nat = synthesize(dp, natural)
            over = synthesize(dp, natural + 4)
            assert over.clock_mhz == pytest.approx(at_nat.clock_mhz)
            assert over.freq_per_area < at_nat.freq_per_area

    def test_multiplier_peaks_shallower_than_adder(self):
        """Multipliers saturate their clock with fewer stages."""
        for fmt in PAPER_FORMATS:
            add_reports = sweep_stages(adder_datapath(fmt))
            mul_reports = sweep_stages(multiplier_datapath(fmt))

            def first_peak(reports):
                peak = max(r.clock_mhz for r in reports)
                return min(r.stages for r in reports if r.clock_mhz >= peak - 1e-9)

            assert first_peak(mul_reports) < first_peak(add_reports)


class TestObjectives:
    def test_speed_objective_trades_area_for_clock(self):
        dp = adder_datapath(FP32)
        balanced = synthesize(dp, 8, objective=Objective.BALANCED)
        speed = synthesize(dp, 8, objective=Objective.SPEED)
        assert speed.clock_mhz > balanced.clock_mhz
        assert speed.slices > balanced.slices

    def test_area_objective_trades_clock_for_area(self):
        dp = adder_datapath(FP32)
        balanced = synthesize(dp, 8, objective=Objective.BALANCED)
        small = synthesize(dp, 8, objective=Objective.AREA)
        assert small.clock_mhz < balanced.clock_mhz
        assert small.slices < balanced.slices

    def test_objectives_give_vastly_different_results(self):
        """Paper: 'using a different optimization objective ... gives
        vastly different results'."""
        dp = adder_datapath(FP64)
        speed = synthesize(dp, 10, objective=Objective.SPEED)
        small = synthesize(dp, 10, objective=Objective.AREA)
        assert speed.slices / small.slices > 1.15
        assert speed.clock_mhz / small.clock_mhz > 1.15


class TestSpeedGrades:
    def test_slower_grade_slower_clock(self):
        dp = multiplier_datapath(FP32)
        minus7 = synthesize(dp, 8, grade=SpeedGrade.MINUS_7)
        minus5 = synthesize(dp, 8, grade=SpeedGrade.MINUS_5)
        assert minus5.clock_mhz < minus7.clock_mhz
        assert minus5.slices == minus7.slices  # grade affects timing only


class TestSweep:
    def test_sweep_covers_one_to_max(self):
        dp = multiplier_datapath(FP32)
        reports = sweep_stages(dp, max_stages=12)
        assert [r.stages for r in reports] == list(range(1, 13))

    def test_default_sweep_extends_past_natural(self):
        dp = multiplier_datapath(FP32)
        reports = sweep_stages(dp)
        assert reports[-1].stages == dp.natural_max_stages + 4
