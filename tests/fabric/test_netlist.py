"""Unit tests for the datapath quanta chains."""

import pytest

from repro.fabric.netlist import (
    Datapath,
    Quantum,
    adder_datapath,
    multiplier_datapath,
)
from repro.fp.format import FP32, FP48, FP64, PAPER_FORMATS


class TestQuantum:
    def test_rejects_non_positive_delay(self):
        with pytest.raises(ValueError):
            Quantum("q", 0.0, 8)

    def test_rejects_negative_cut_bits(self):
        with pytest.raises(ValueError):
            Quantum("q", 1.0, -1)


class TestChains:
    @pytest.mark.parametrize("build", [adder_datapath, multiplier_datapath])
    @pytest.mark.parametrize("fmt", PAPER_FORMATS, ids=lambda f: f.name)
    def test_chain_well_formed(self, build, fmt):
        dp = build(fmt)
        assert dp.quanta, "empty chain"
        assert all(q.delay_ns > 0 for q in dp.quanta)
        assert all(q.cut_bits > 0 for q in dp.quanta)
        assert dp.total_delay_ns == pytest.approx(
            sum(q.delay_ns for q in dp.quanta)
        )
        assert dp.max_atomic_ns == max(q.delay_ns for q in dp.quanta)
        assert dp.natural_max_stages == len(dp.quanta)
        assert dp.comb_slices > 0
        assert dp.output_bits >= fmt.width

    def test_adder_wider_formats_are_slower_and_bigger(self):
        delays = [adder_datapath(f).total_delay_ns for f in PAPER_FORMATS]
        slices = [adder_datapath(f).comb_slices for f in PAPER_FORMATS]
        assert delays == sorted(delays)
        assert slices == sorted(slices)

    def test_multiplier_uses_embedded_multipliers(self):
        assert multiplier_datapath(FP32).mult18 == 4
        assert multiplier_datapath(FP48).mult18 == 9
        assert multiplier_datapath(FP64).mult18 == 16
        assert adder_datapath(FP32).mult18 == 0

    def test_adder_has_expected_stage_structure(self):
        """The chain must walk the Figure 1a module sequence in order."""
        labels = [q.label for q in adder_datapath(FP32).quanta]
        order = [
            "denorm",
            "swap.mantissa_cmp",
            "swap.mux",
            "align",
            "mantissa_add",
            "prenorm",
            "norm.priority_enc",
            "norm.shift",
            "round",
        ]
        positions = []
        for key in order:
            idx = next(i for i, lab in enumerate(labels) if lab.startswith(key))
            positions.append(idx)
        assert positions == sorted(positions)

    def test_multiplier_has_expected_stage_structure(self):
        labels = [q.label for q in multiplier_datapath(FP32).quanta]
        order = ["denorm", "mantissa_mul", "norm", "round"]
        positions = []
        for key in order:
            idx = next(i for i, lab in enumerate(labels) if lab.startswith(key))
            positions.append(idx)
        assert positions == sorted(positions)

    def test_multiplier_faster_than_adder_end_to_end(self):
        """FP multiplication 'is easier than addition/subtraction' —
        shorter chain, less fabric area."""
        for fmt in PAPER_FORMATS:
            assert (
                multiplier_datapath(fmt).total_delay_ns
                < adder_datapath(fmt).total_delay_ns
            )
            assert (
                multiplier_datapath(fmt).comb_slices < adder_datapath(fmt).comb_slices
            )

    def test_cut_bits_shrink_toward_output(self):
        """Early cuts latch two operands; late cuts latch one result."""
        dp = adder_datapath(FP64)
        assert dp.quanta[0].cut_bits > dp.quanta[-1].cut_bits

    def test_datapath_is_frozen(self):
        dp = adder_datapath(FP32)
        with pytest.raises(AttributeError):
            dp.comb_slices = 0


class TestDatapathProperties:
    def test_empty_quanta_rejected_via_properties(self):
        dp = Datapath("x", FP32, (Quantum("q", 1.0, 4),), 10.0, 0, 38)
        assert dp.total_delay_ns == 1.0
        assert dp.natural_max_stages == 1
