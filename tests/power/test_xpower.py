"""Unit tests for the XPower-style dynamic power model."""

import pytest

from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32, FP64, PAPER_FORMATS
from repro.power.xpower import (
    device_power_mw,
    estimate_power,
    raw_power_mw,
)


class TestEstimatePower:
    def test_components_positive(self):
        impl = synthesize(adder_datapath(FP32), 8)
        p = estimate_power(impl, 100.0)
        assert p.clock_mw > 0
        assert p.signal_mw > 0
        assert p.logic_mw > 0
        assert p.total_mw == pytest.approx(
            p.clock_mw + p.signal_mw + p.logic_mw + p.mult_mw
        )

    def test_linear_in_frequency(self):
        impl = synthesize(adder_datapath(FP32), 8)
        p100 = estimate_power(impl, 100.0).total_mw
        p200 = estimate_power(impl, 200.0).total_mw
        assert p200 == pytest.approx(2 * p100)

    def test_grows_with_pipeline_depth(self):
        """The Figure 3 invariant: more stages, more power at fixed f."""
        dp = adder_datapath(FP64)
        powers = [
            estimate_power(synthesize(dp, s), 100.0).total_mw for s in (2, 8, 16)
        ]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_wider_formats_burn_more(self):
        values = [
            estimate_power(synthesize(adder_datapath(f), 8), 100.0).total_mw
            for f in PAPER_FORMATS
        ]
        assert values == sorted(values)

    def test_multiplier_includes_mult18_power(self):
        impl = synthesize(multiplier_datapath(FP32), 8)
        p = estimate_power(impl, 100.0)
        assert p.mult_mw > 0

    def test_activity_scaling(self):
        impl = synthesize(adder_datapath(FP32), 8)
        quiet = estimate_power(impl, 100.0, activity=0.05)
        loud = estimate_power(impl, 100.0, activity=0.4)
        assert loud.total_mw > quiet.total_mw
        assert loud.clock_mw == pytest.approx(quiet.clock_mw)  # f-only term

    def test_invalid_inputs(self):
        impl = synthesize(adder_datapath(FP32), 4)
        with pytest.raises(ValueError):
            estimate_power(impl, 0.0)
        with pytest.raises(ValueError):
            estimate_power(impl, 100.0, activity=1.5)

    def test_unit_level_magnitude_sane(self):
        """A deeply pipelined double adder lands in the 100 mW - 1 W band
        at 100 MHz, consistent with XPower-era reports."""
        impl = synthesize(adder_datapath(FP64), 19)
        total = estimate_power(impl, 100.0).total_mw
        assert 100.0 < total < 1000.0


class TestRawAndDevicePower:
    def test_raw_power_components(self):
        base = raw_power_mw(flipflops=100, luts=50, frequency_mhz=100.0)
        with_bram = raw_power_mw(
            flipflops=100, luts=50, frequency_mhz=100.0, bram_ports=2
        )
        assert with_bram > base

    def test_device_power_adds_static_terms(self):
        assert device_power_mw(1000.0) > 1000.0

    def test_zero_resources_zero_dynamic(self):
        assert raw_power_mw(flipflops=0, luts=0, frequency_mhz=100.0) == 0.0
