"""Unit tests for the domain-specific PE energy model."""

import pytest

from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32, FP64
from repro.power.energy import EnergyBreakdown, PEEnergyModel


def make_model(add_stages=8, mul_stages=6, fmt=FP32, f=100.0):
    return PEEnergyModel(
        fmt,
        synthesize(adder_datapath(fmt), add_stages),
        synthesize(multiplier_datapath(fmt), mul_stages),
        frequency_mhz=f,
    )


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert e.total_nj == 10.0

    def test_add(self):
        a = EnergyBreakdown(1.0, 1.0, 1.0, 1.0)
        b = EnergyBreakdown(2.0, 2.0, 2.0, 2.0)
        assert (a + b).total_nj == 12.0

    def test_scaled(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0, 4.0).scaled(2.0)
        assert e.mac_nj == 2.0 and e.io_nj == 8.0

    def test_as_dict(self):
        d = EnergyBreakdown(1.0, 2.0, 3.0, 4.0).as_dict()
        assert d["total"] == 10.0
        assert set(d) == {"mac", "storage", "misc", "io", "total"}

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            EnergyBreakdown(1, 1, 1, 1) + 3


class TestPEEnergyModel:
    def test_pl_is_sum_of_latencies(self):
        assert make_model(8, 6).pipeline_latency == 14

    def test_component_powers_positive(self):
        m = make_model()
        assert m.mac_power_mw() > 0
        assert m.storage_power_mw() > 0
        assert m.misc_power_mw() > 0
        assert m.io_power_mw() > 0
        assert m.pe_power_mw() == pytest.approx(
            m.mac_power_mw()
            + m.storage_power_mw()
            + m.misc_power_mw()
            + m.io_power_mw()
        )

    def test_mac_dominates(self):
        """The FP units dominate the PE budget (paper Fig 4)."""
        m = make_model()
        assert m.mac_power_mw() > m.storage_power_mw()
        assert m.mac_power_mw() > m.misc_power_mw() + m.io_power_mw()

    def test_misc_grows_with_pipeline_depth(self):
        """Control shift registers track the unit latency."""
        shallow = make_model(4, 3)
        deep = make_model(16, 10)
        assert deep.misc_power_mw() > shallow.misc_power_mw()

    def test_mac_power_grows_with_depth(self):
        shallow = make_model(4, 3)
        deep = make_model(16, 10)
        assert deep.mac_power_mw() > shallow.mac_power_mw()

    def test_energy_linear_in_cycles(self):
        m = make_model()
        e1 = m.energy_for_cycles(100)
        e2 = m.energy_for_cycles(200)
        assert e2.total_nj == pytest.approx(2 * e1.total_nj)

    def test_energy_independent_of_frequency(self):
        """Dynamic energy: P grows with f, time shrinks by 1/f."""
        slow = make_model(f=50.0)
        fast = make_model(f=200.0)
        assert slow.energy_for_cycles(1000).total_nj == pytest.approx(
            fast.energy_for_cycles(1000).total_nj
        )

    def test_zero_cycles_zero_energy(self):
        assert make_model().energy_for_cycles(0).total_nj == 0.0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            make_model().energy_for_cycles(-1)


class TestPEResources:
    def test_pe_slices_exceed_unit_sum(self):
        m = make_model()
        assert m.pe_slices() > m.adder.slices + m.multiplier.slices

    def test_pe_mult18(self):
        assert make_model(fmt=FP32).pe_mult18() == 4
        assert make_model(fmt=FP64).pe_mult18() == 16

    def test_pe_brams(self):
        assert make_model().pe_brams() == 1

    def test_deeper_pe_is_bigger(self):
        assert make_model(16, 10).pe_slices() > make_model(4, 3).pe_slices()
