"""Unit tests for the pipelined FP square-root core."""

import pytest

from repro.fp.format import FP32, FP64
from repro.fp.sqrt import fp_sqrt
from repro.fp.value import FPValue
from repro.units.fpsqrt import PipelinedFPSqrt


class TestPipelinedSqrt:
    def test_report_attached(self):
        u = PipelinedFPSqrt(FP32, stages=18)
        assert u.report.stages == 18
        assert u.report.unit == "fpsqrt_fp32"
        assert u.latency == 18
        assert u.slices > 0 and u.clock_mhz > 0

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            PipelinedFPSqrt(FP32, stages=0)

    def test_compute(self):
        u = PipelinedFPSqrt(FP32, stages=10)
        bits, flags = u.compute(FPValue.from_float(FP32, 9.0).bits)
        assert FPValue(FP32, bits).to_float() == 3.0
        assert not flags.any_exception

    def test_timed_latency(self):
        u = PipelinedFPSqrt(FP32, stages=5)
        u.step(FPValue.from_float(FP32, 4.0).bits)
        for cycle in range(1, 6):
            result, done = u.step()
            assert done == (cycle == 5)
        bits, _ = result
        assert FPValue(FP32, bits).to_float() == 2.0

    def test_streaming_matches_scalar(self, rng):
        u = PipelinedFPSqrt(FP64, stages=8)
        inputs = [
            FP64.pack(0, rng.randint(1, FP64.exp_max - 1), rng.randrange(1 << 52))
            for _ in range(20)
        ]
        outs = []
        for a in inputs:
            r, done = u.step(a)
            if done:
                outs.append(r)
        outs.extend(u.pipe.drain())
        assert outs == [fp_sqrt(FP64, a) for a in inputs]

    def test_deeper_is_faster(self):
        shallow = PipelinedFPSqrt(FP64, stages=6)
        deep = PipelinedFPSqrt(FP64, stages=40)
        assert deep.clock_mhz > shallow.clock_mhz
        assert deep.slices > shallow.slices
