"""Unit tests for the pipelined FP adder core object."""

import pytest

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.units.fpadd import PipelinedFPAdder


class TestConstruction:
    def test_report_attached(self):
        u = PipelinedFPAdder(FP32, stages=10)
        assert u.report.stages == 10
        assert u.slices == u.report.slices
        assert u.clock_mhz == u.report.clock_mhz
        assert u.latency == 10

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            PipelinedFPAdder(FP32, stages=0)

    def test_deeper_is_faster_until_saturation(self):
        shallow = PipelinedFPAdder(FP64, stages=3)
        deep = PipelinedFPAdder(FP64, stages=15)
        assert deep.clock_mhz > shallow.clock_mhz


class TestTimedBehaviour:
    def test_result_after_exact_latency(self):
        u = PipelinedFPAdder(FP32, stages=6)
        a = FPValue.from_float(FP32, 1.5).bits
        b = FPValue.from_float(FP32, 2.5).bits
        result, done = u.step(a, b)
        assert not done
        for cycle in range(1, 7):
            result, done = u.step()
            assert done == (cycle == 6), cycle
        bits, flags = result
        assert FPValue(FP32, bits).to_float() == 4.0
        assert not flags.any_exception

    def test_pipelined_throughput(self):
        u = PipelinedFPAdder(FP32, stages=4)
        ops = [(float(i), float(2 * i)) for i in range(10)]
        outs = []
        for x, y in ops:
            r, done = u.step(
                FPValue.from_float(FP32, x).bits, FPValue.from_float(FP32, y).bits
            )
            if done:
                outs.append(r)
        outs.extend(u.pipe.drain())
        got = [FPValue(FP32, bits).to_float() for bits, _ in outs]
        assert got == [x + y for x, y in ops]

    def test_subtract_through_pipeline(self):
        u = PipelinedFPAdder(FP32, stages=3)
        a = FPValue.from_float(FP32, 5.0).bits
        b = FPValue.from_float(FP32, 2.0).bits
        u.step(a, b, subtract=True)
        u.step()
        u.step()
        (bits, _), done = u.step()
        assert done
        assert FPValue(FP32, bits).to_float() == 3.0

    def test_partial_issue_rejected(self):
        u = PipelinedFPAdder(FP32, stages=2)
        with pytest.raises(ValueError):
            u.step(1, None)

    def test_compute_matches_pipeline(self):
        u = PipelinedFPAdder(FP32, stages=5)
        a = FPValue.from_float(FP32, 0.1).bits
        b = FPValue.from_float(FP32, 0.2).bits
        expected = u.compute(a, b)
        u.step(a, b)
        results = u.pipe.drain()
        assert results == [expected]


class TestModes:
    def test_truncate_mode(self):
        u = PipelinedFPAdder(FP32, stages=2, mode=RoundingMode.TRUNCATE)
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 2.0**-24 * 1.5).bits
        bits, _ = u.compute(a, b)
        assert bits == a
