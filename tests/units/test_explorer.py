"""Unit tests for the pipeline-depth design-space explorer."""

import pytest

from repro.fp.format import FP32, FP64, PAPER_FORMATS
from repro.units.explorer import (
    MIN_STAGES_ADDER,
    MIN_STAGES_MULTIPLIER,
    UnitKind,
    explore,
)


class TestDesignSpace:
    def test_sweep_is_dense(self):
        space = explore(FP32, UnitKind.ADDER)
        stages = [r.stages for r in space.reports]
        assert stages == list(range(1, len(stages) + 1))

    def test_at_lookup(self):
        space = explore(FP32, UnitKind.ADDER)
        assert space.at(5).stages == 5
        with pytest.raises(KeyError):
            space.at(10_000)

    def test_minimum_uses_architectural_floor(self):
        assert explore(FP32, UnitKind.ADDER).minimum.stages == MIN_STAGES_ADDER
        assert (
            explore(FP32, UnitKind.MULTIPLIER).minimum.stages
            == MIN_STAGES_MULTIPLIER
        )

    def test_optimal_maximizes_freq_per_area(self):
        space = explore(FP64, UnitKind.ADDER)
        opt = space.optimal.report
        assert opt.freq_per_area == pytest.approx(
            max(r.freq_per_area for r in space.reports)
        )

    def test_maximum_is_first_peak_clock(self):
        space = explore(FP64, UnitKind.MULTIPLIER)
        mx = space.maximum.report
        peak = space.peak_clock_mhz
        assert mx.clock_mhz == pytest.approx(peak)
        # no shallower implementation reaches the peak
        for r in space.reports:
            if r.stages < mx.stages:
                assert r.clock_mhz < peak - 1e-9

    def test_ordering_min_le_opt_le_max_freq(self):
        for fmt in PAPER_FORMATS:
            for kind in (UnitKind.ADDER, UnitKind.MULTIPLIER):
                space = explore(fmt, kind)
                assert (
                    space.minimum.report.clock_mhz
                    <= space.optimal.report.clock_mhz + 1e-9
                )
                assert space.minimum.stages < space.maximum.stages

    def test_table_rows_order(self):
        space = explore(FP32, UnitKind.ADDER)
        labels = [p.label for p in space.table_rows()]
        assert labels == ["min", "max", "opt"]


class TestKernelSelection:
    def test_cheapest_at_least_meets_floor(self):
        space = explore(FP32, UnitKind.ADDER)
        impl = space.cheapest_at_least(250.0)
        assert impl.clock_mhz >= 250.0
        # every cheaper implementation misses the floor
        for r in space.reports:
            if r.slices < impl.slices:
                assert r.clock_mhz < 250.0

    def test_unreachable_floor_raises(self):
        space = explore(FP64, UnitKind.ADDER)
        with pytest.raises(ValueError, match="no fp64 adder implementation"):
            space.cheapest_at_least(400.0)

    def test_unreachable_floor_names_request_and_peak(self):
        # The error must tell the caller exactly what to relax: the
        # requested clock and the sweep's actually-achievable peak.
        space = explore(FP64, UnitKind.ADDER)
        with pytest.raises(ValueError) as err:
            space.cheapest_at_least(400.0)
        message = str(err.value)
        assert "requested 400 MHz" in message
        assert f"peak_clock_mhz is {space.peak_clock_mhz:.1f} MHz" in message
        assert space.peak_clock_mhz < 400.0

    def test_lower_floor_never_costs_more(self):
        space = explore(FP32, UnitKind.MULTIPLIER)
        at_150 = space.cheapest_at_least(150.0)
        at_250 = space.cheapest_at_least(250.0)
        assert at_150.slices <= at_250.slices


class TestUnitKind:
    def test_datapath_dispatch(self):
        assert UnitKind.ADDER.datapath(FP32).name == "fpadd_fp32"
        assert UnitKind.MULTIPLIER.datapath(FP32).name == "fpmul_fp32"

    def test_min_stages(self):
        assert UnitKind.ADDER.min_stages == MIN_STAGES_ADDER
        assert UnitKind.MULTIPLIER.min_stages == MIN_STAGES_MULTIPLIER
