"""RTL-vs-golden-model verification of the structural cores.

The structural pipelines must be stream-equivalent to the behavioural
datapaths at every stage count: same results, same flags, same latency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.adder import fp_add, fp_sub
from repro.fp.divider import fp_div
from repro.fp.format import FP32, FP64
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.rtl.staged import MicroOp, StagedPipeline, partition_micro_ops
from repro.units.structural import (
    StructuralFPAdder,
    StructuralFPDivider,
    StructuralFPMultiplier,
)

from tests.conftest import TINY, words


class TestPartition:
    def test_balanced_groups(self):
        ops = [MicroOp(str(i), lambda s: {}) for i in range(8)]
        groups = partition_micro_ops(ops, 3)
        assert [len(g) for g in groups] == [3, 3, 2]

    def test_more_stages_than_ops(self):
        ops = [MicroOp(str(i), lambda s: {}) for i in range(3)]
        groups = partition_micro_ops(ops, 6)
        assert [len(g) for g in groups] == [1, 1, 1, 0, 0, 0]

    def test_single_stage(self):
        ops = [MicroOp(str(i), lambda s: {}) for i in range(5)]
        groups = partition_micro_ops(ops, 1)
        assert [len(g) for g in groups] == [5]

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            partition_micro_ops([], 0)


class TestStagedPipeline:
    def test_latency_is_stage_count(self):
        ops = [MicroOp("inc", lambda s: {"x": s["x"] + 1})]
        pipe = StagedPipeline(ops, 4)
        pipe.step({"x": 0})
        outs = [pipe.step(None) for _ in range(5)]
        dones = [i for i, (_, d) in enumerate(outs, start=1) if d]
        assert dones == [4]

    def test_ops_execute_exactly_once(self):
        ops = [
            MicroOp("a", lambda s: {"x": s["x"] + 1}),
            MicroOp("b", lambda s: {"x": s["x"] * 10}),
            MicroOp("c", lambda s: {"x": s["x"] + 3}),
        ]
        for stages in (1, 2, 3, 5):
            pipe = StagedPipeline(ops, stages)
            pipe.step({"x": 1})
            out = pipe.drain()[0]
            assert out["x"] == ((1 + 1) * 10) + 3, stages

    def test_bubbles_preserved(self):
        ops = [MicroOp("id", lambda s: {})]
        pipe = StagedPipeline(ops, 3)
        pipe.step({"v": 1})
        pipe.step(None)
        pipe.step({"v": 2})
        seq = [pipe.step(None)[0] for _ in range(3)]
        assert [s["v"] if s else None for s in seq] == [1, None, 2]

    def test_reset(self):
        ops = [MicroOp("id", lambda s: {})]
        pipe = StagedPipeline(ops, 2)
        pipe.step({"v": 1})
        pipe.reset()
        assert pipe.in_flight == 0


def stream_check(structural, golden_fn, fmt, operands, stages):
    """Issue a stream with bubbles, compare against the golden function."""
    expected = [golden_fn(fmt, a, b) for a, b in operands]
    got = []
    i = 0
    cycle = 0
    while len(got) < len(expected):
        cycle += 1
        if i < len(operands) and cycle % 3 != 0:  # bubble every 3rd cycle
            a, b = operands[i]
            i += 1
            result, done = structural.step(a, b)
        else:
            result, done = structural.step()
        if done:
            got.append(result)
        assert cycle < 10_000
    assert got == expected, f"stages={stages}"


class TestAdderEquivalence:
    @pytest.mark.parametrize("stages", [1, 2, 3, 5, 8, 12])
    def test_stream_matches_behavioural(self, stages, rng):
        fmt = FP32
        ops = [
            (rng.randrange(fmt.word_mask + 1), rng.randrange(fmt.word_mask + 1))
            for _ in range(40)
        ]
        unit = StructuralFPAdder(fmt, stages)
        stream_check(unit, fp_add, fmt, ops, stages)

    def test_subtract_flag(self):
        unit = StructuralFPAdder(FP32, 4)
        a = FPValue.from_float(FP32, 5.0).bits
        b = FPValue.from_float(FP32, 2.0).bits
        bits, flags = unit.compute(a, b, subtract=True)
        expected = fp_sub(FP32, a, b)
        assert (bits, flags) == expected

    def test_truncate_mode(self, rng):
        unit = StructuralFPAdder(FP32, 6, mode=RoundingMode.TRUNCATE)
        for _ in range(100):
            a = rng.randrange(FP32.word_mask + 1)
            b = rng.randrange(FP32.word_mask + 1)
            assert unit.compute(a, b) == fp_add(FP32, a, b, RoundingMode.TRUNCATE)

    @settings(max_examples=150)
    @given(words(TINY), words(TINY), st.integers(1, 10))
    def test_tiny_format_property(self, a, b, stages):
        unit = StructuralFPAdder(TINY, stages)
        assert unit.compute(a, b) == fp_add(TINY, a, b)


class TestMultiplierEquivalence:
    @pytest.mark.parametrize("stages", [1, 3, 6, 9])
    def test_stream_matches_behavioural(self, stages, rng):
        fmt = FP64
        ops = [
            (rng.randrange(fmt.word_mask + 1), rng.randrange(fmt.word_mask + 1))
            for _ in range(30)
        ]
        unit = StructuralFPMultiplier(fmt, stages)
        stream_check(unit, fp_mul, fmt, ops, stages)

    @settings(max_examples=150)
    @given(words(TINY), words(TINY), st.integers(1, 8))
    def test_tiny_format_property(self, a, b, stages):
        unit = StructuralFPMultiplier(TINY, stages)
        assert unit.compute(a, b) == fp_mul(TINY, a, b)


class TestDividerEquivalence:
    @pytest.mark.parametrize("stages", [1, 4, 13, 26])
    def test_stream_matches_behavioural(self, stages, rng):
        fmt = FP32
        ops = [
            (rng.randrange(fmt.word_mask + 1), rng.randrange(fmt.word_mask + 1))
            for _ in range(20)
        ]
        unit = StructuralFPDivider(fmt, stages)
        stream_check(unit, fp_div, fmt, ops, stages)

    def test_recurrence_row_count(self):
        unit = StructuralFPDivider(FP32, 4)
        rows = [op for op in unit.micro_ops if op.name.startswith("row[")]
        assert len(rows) == FP32.man_bits + 3

    @settings(max_examples=120)
    @given(words(TINY), words(TINY), st.integers(1, 9))
    def test_tiny_format_property(self, a, b, stages):
        unit = StructuralFPDivider(TINY, stages)
        assert unit.compute(a, b) == fp_div(TINY, a, b)


class TestCoreInterface:
    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            StructuralFPAdder(FP32, 0)

    def test_partial_issue_rejected(self):
        unit = StructuralFPMultiplier(FP32, 2)
        with pytest.raises(ValueError):
            unit.step(1, None)

    def test_latency_property(self):
        assert StructuralFPAdder(FP32, 7).latency == 7


class TestSqrtEquivalence:
    @pytest.mark.parametrize("stages", [1, 5, 14, 28])
    def test_stream_matches_behavioural(self, stages, rng):
        from repro.fp.sqrt import fp_sqrt
        from repro.units.structural import StructuralFPSqrt

        fmt = FP32
        unit = StructuralFPSqrt(fmt, stages)
        operands = [rng.randrange(fmt.word_mask + 1) for _ in range(25)]
        expected = [fp_sqrt(fmt, a) for a in operands]
        got = []
        i = 0
        cycle = 0
        while len(got) < len(expected):
            cycle += 1
            if i < len(operands) and cycle % 4 != 0:
                result, done = unit.step(operands[i])
                i += 1
            else:
                result, done = unit.step()
            if done:
                got.append(result)
            assert cycle < 10_000
        assert got == expected

    @settings(max_examples=100)
    @given(words(TINY), st.integers(1, 12))
    def test_tiny_format_property(self, a, stages):
        from repro.fp.sqrt import fp_sqrt
        from repro.units.structural import StructuralFPSqrt

        unit = StructuralFPSqrt(TINY, stages)
        assert unit.compute(a) == fp_sqrt(TINY, a)

    def test_row_count(self):
        from repro.units.structural import StructuralFPSqrt

        unit = StructuralFPSqrt(FP32, 4)
        rows = [op for op in unit.micro_ops if op.name.startswith("row[")]
        assert len(rows) == FP32.man_bits + 4


class TestFusedMacEquivalence:
    @pytest.mark.parametrize("stages", [1, 2, 5])
    def test_stream_matches_behavioural(self, stages, rng):
        from repro.fp.mac import fp_fma
        from repro.units.structural import StructuralFPMac

        fmt = FP32
        unit = StructuralFPMac(fmt, stages)
        operands = [
            tuple(rng.randrange(fmt.word_mask + 1) for _ in range(3))
            for _ in range(30)
        ]
        expected = [fp_fma(fmt, a, b, c) for a, b, c in operands]
        got = []
        i = 0
        cycle = 0
        while len(got) < len(expected):
            cycle += 1
            if i < len(operands) and cycle % 3 != 0:
                result, done = unit.step(*operands[i])
                i += 1
            else:
                result, done = unit.step()
            if done:
                got.append(result)
            assert cycle < 10_000
        assert got == expected

    def test_truncate_mode(self, rng):
        from repro.fp.mac import fp_fma
        from repro.units.structural import StructuralFPMac

        unit = StructuralFPMac(FP32, 4, mode=RoundingMode.TRUNCATE)
        for _ in range(100):
            a, b, c = (rng.randrange(FP32.word_mask + 1) for _ in range(3))
            assert unit.compute(a, b, c) == fp_fma(
                FP32, a, b, c, RoundingMode.TRUNCATE
            )

    def test_single_rounding_beats_chained_on_directed_case(self):
        """``a*b - round(a*b)``: fused recovers the exact rounding
        residual where the chained mul-then-add cancels to zero."""
        from repro.fp.adder import fp_add
        from repro.fp.mac import fp_fma
        from repro.units.structural import StructuralFPMac

        a = FP32.pack(0, FP32.bias, 1)  # 1 + 2^-23
        product, _ = fp_mul(FP32, a, a)
        c = product ^ (1 << (FP32.width - 1))
        unit = StructuralFPMac(FP32, 3)
        bits, flags = unit.compute(a, a, c)
        assert (bits, flags) == fp_fma(FP32, a, a, c)
        assert bits == FP32.pack(0, FP32.bias - 46, 0)  # exact 2^-46
        assert not flags.inexact
        chained, chained_flags = fp_add(FP32, product, c)
        assert chained == FP32.zero(0)
        assert chained_flags.zero

    def test_partial_issue_rejected(self):
        from repro.units.structural import StructuralFPMac

        unit = StructuralFPMac(FP32, 2)
        with pytest.raises(ValueError):
            unit.step(1, 2, None)

    @settings(max_examples=100)
    @given(words(TINY), words(TINY), words(TINY), st.integers(1, 6))
    def test_tiny_format_property(self, a, b, c, stages):
        from repro.fp.mac import fp_fma
        from repro.units.structural import StructuralFPMac

        unit = StructuralFPMac(TINY, stages)
        assert unit.compute(a, b, c) == fp_fma(TINY, a, b, c)
