"""Unit tests for the pipelined FP multiplier core object."""

import pytest

from repro.fp.format import FP32, FP48
from repro.fp.value import FPValue
from repro.units.fpmul import PipelinedFPMultiplier


class TestConstruction:
    def test_report_attached(self):
        u = PipelinedFPMultiplier(FP32, stages=7)
        assert u.report.stages == 7
        assert u.report.mult18 == 4
        assert u.latency == 7

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            PipelinedFPMultiplier(FP32, stages=0)

    def test_fp48_uses_nine_mult18(self):
        assert PipelinedFPMultiplier(FP48, stages=8).report.mult18 == 9


class TestTimedBehaviour:
    def test_result_after_exact_latency(self):
        u = PipelinedFPMultiplier(FP32, stages=5)
        a = FPValue.from_float(FP32, 3.0).bits
        b = FPValue.from_float(FP32, 4.0).bits
        u.step(a, b)
        for cycle in range(1, 6):
            result, done = u.step()
            assert done == (cycle == 5)
        bits, _ = result
        assert FPValue(FP32, bits).to_float() == 12.0

    def test_streaming(self):
        u = PipelinedFPMultiplier(FP32, stages=3)
        outs = []
        for i in range(1, 8):
            r, done = u.step(
                FPValue.from_float(FP32, float(i)).bits,
                FPValue.from_float(FP32, 2.0).bits,
            )
            if done:
                outs.append(r)
        outs.extend(u.pipe.drain())
        got = [FPValue(FP32, bits).to_float() for bits, _ in outs]
        assert got == [2.0 * i for i in range(1, 8)]

    def test_partial_issue_rejected(self):
        u = PipelinedFPMultiplier(FP32, stages=2)
        with pytest.raises(ValueError):
            u.step(None, 1)

    def test_bubble_cycles_produce_no_done(self):
        u = PipelinedFPMultiplier(FP32, stages=4)
        for _ in range(10):
            _, done = u.step()
            assert not done
