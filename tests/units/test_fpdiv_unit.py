"""Unit tests for the pipelined FP divider core and its datapath."""

import pytest

from repro.fabric.netlist import adder_datapath, divider_datapath
from repro.fabric.synthesis import sweep_stages, synthesize
from repro.fp.format import FP32, FP64, PAPER_FORMATS
from repro.fp.value import FPValue
from repro.units.fpdiv import PipelinedFPDivider


class TestDividerDatapath:
    @pytest.mark.parametrize("fmt", PAPER_FORMATS, ids=lambda f: f.name)
    def test_chain_well_formed(self, fmt):
        dp = divider_datapath(fmt)
        assert dp.quanta
        assert dp.total_delay_ns > 0
        assert dp.mult18 == 0

    def test_divider_dwarfs_adder_in_area(self):
        """The recurrence array grows quadratically: dividers are the
        area outlier of 2004-era FP libraries."""
        for fmt in PAPER_FORMATS:
            div = divider_datapath(fmt)
            add = adder_datapath(fmt)
            assert div.comb_slices > 2 * add.comb_slices

    def test_divider_pipelines_much_deeper(self):
        dp = divider_datapath(FP64)
        assert dp.natural_max_stages > 50  # one row per quotient bit

    def test_double_divider_reaches_200mhz_deep(self):
        best = max(r.clock_mhz for r in sweep_stages(divider_datapath(FP64)))
        assert best > 200.0

    def test_200mhz_needs_deep_pipeline(self):
        """Consistent with the Quixilica divider's very deep pipelines."""
        reports = sweep_stages(divider_datapath(FP64))
        reaching = [r.stages for r in reports if r.clock_mhz >= 200.0]
        assert min(reaching) > 20


class TestPipelinedDivider:
    def test_report_attached(self):
        u = PipelinedFPDivider(FP32, stages=20)
        assert u.report.stages == 20
        assert u.latency == 20
        assert u.slices > 0 and u.clock_mhz > 0

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            PipelinedFPDivider(FP32, stages=0)

    def test_compute(self):
        u = PipelinedFPDivider(FP32, stages=10)
        a = FPValue.from_float(FP32, 7.5).bits
        b = FPValue.from_float(FP32, 2.5).bits
        bits, flags = u.compute(a, b)
        assert FPValue(FP32, bits).to_float() == 3.0
        assert not flags.any_exception

    def test_timed_latency(self):
        u = PipelinedFPDivider(FP32, stages=6)
        a = FPValue.from_float(FP32, 1.0).bits
        b = FPValue.from_float(FP32, 4.0).bits
        u.step(a, b)
        for cycle in range(1, 7):
            result, done = u.step()
            assert done == (cycle == 6)
        bits, _ = result
        assert FPValue(FP32, bits).to_float() == 0.25

    def test_partial_issue_rejected(self):
        u = PipelinedFPDivider(FP32, stages=3)
        with pytest.raises(ValueError):
            u.step(1, None)

    def test_synthesize_divider_point(self):
        r = synthesize(divider_datapath(FP32), 25)
        assert r.unit == "fpdiv_fp32"
        assert r.flipflops > 0


class TestSqrtDatapath:
    def test_chain_well_formed(self):
        from repro.fabric.netlist import sqrt_datapath

        for fmt in PAPER_FORMATS:
            dp = sqrt_datapath(fmt)
            assert dp.quanta
            assert dp.mult18 == 0
            assert dp.comb_slices > adder_datapath(fmt).comb_slices

    def test_deep_pipelining_reaches_200mhz(self):
        from repro.fabric.netlist import sqrt_datapath

        best = max(r.clock_mhz for r in sweep_stages(sqrt_datapath(FP64)))
        assert best > 200.0
