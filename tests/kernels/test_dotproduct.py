"""Tests for the latency-hiding dot-product kernel."""

import numpy as np
import pytest

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.kernels.dotproduct import DotProductUnit, functional_dot


def vec(fmt, values):
    return [FPValue.from_float(fmt, v).bits for v in values]


class TestFunctionalDot:
    def test_simple_sum(self):
        xs = vec(FP32, [1.0, 2.0, 3.0, 4.0])
        ys = vec(FP32, [1.0, 1.0, 1.0, 1.0])
        bits, flags = functional_dot(FP32, xs, ys, lanes=2)
        assert FPValue(FP32, bits).to_float() == 10.0
        assert not flags.any_exception

    def test_empty_vector(self):
        bits, flags = functional_dot(FP32, [], [], lanes=4)
        assert FP32.is_zero(bits)
        del flags

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            functional_dot(FP32, [FP32.one()], [], lanes=2)

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            functional_dot(FP32, [], [], lanes=0)

    def test_lane_count_changes_rounding(self, rng):
        """Interleaving changes the summation order, hence (slightly) the
        result — a real property of latency-hidden accumulators."""
        n = 64
        xs = vec(FP32, [rng.uniform(-1, 1) for _ in range(n)])
        ys = vec(FP32, [rng.uniform(-1, 1) for _ in range(n)])
        results = {
            functional_dot(FP32, xs, ys, lanes=lanes)[0] for lanes in (1, 4, 8, 16)
        }
        # Not asserting inequality for any single pair (could coincide),
        # but across four lane counts at least two orders differ.
        assert len(results) >= 2

    def test_matches_float64_closely(self, rng):
        n = 100
        vals_x = [rng.uniform(-1, 1) for _ in range(n)]
        vals_y = [rng.uniform(-1, 1) for _ in range(n)]
        bits, _ = functional_dot(FP64, vec(FP64, vals_x), vec(FP64, vals_y), lanes=8)
        expected = float(np.dot(vals_x, vals_y))
        assert FPValue(FP64, bits).to_float() == pytest.approx(expected, rel=1e-12)


class TestDotProductUnit:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 33, 100])
    def test_matches_functional_reference(self, n, rng):
        unit = DotProductUnit(FP32, mul_latency=5, add_latency=8)
        xs = vec(FP32, [rng.uniform(-2, 2) for _ in range(n)])
        ys = vec(FP32, [rng.uniform(-2, 2) for _ in range(n)])
        run = unit.run(xs, ys)
        expected, _ = functional_dot(FP32, xs, ys, lanes=unit.lanes)
        assert run.result == expected

    def test_lane_count_is_adder_latency(self):
        assert DotProductUnit(FP32, 3, 11).lanes == 11

    def test_cycle_accounting(self, rng):
        unit = DotProductUnit(FP32, mul_latency=4, add_latency=6)
        n = 50
        xs = vec(FP32, [1.0] * n)
        ys = vec(FP32, [1.0] * n)
        run = unit.run(xs, ys)
        assert run.mac_cycles == (n - 1) + 4 + 6
        assert run.reduce_cycles > 0
        assert run.cycles == run.mac_cycles + run.reduce_cycles

    def test_empty(self):
        run = DotProductUnit(FP32, 2, 3).run([], [])
        assert FP32.is_zero(run.result)
        assert run.cycles == 0

    def test_interleaving_beats_naive(self):
        unit = DotProductUnit(FP32, mul_latency=7, add_latency=12)
        assert unit.speedup_over_naive(1000) > 10.0

    def test_speedup_grows_with_latency(self):
        shallow = DotProductUnit(FP32, 2, 3)
        deep = DotProductUnit(FP32, 7, 14)
        assert deep.speedup_over_naive(500) > shallow.speedup_over_naive(500)

    def test_truncation_mode_consistent(self, rng):
        unit = DotProductUnit(FP32, 3, 5, mode=RoundingMode.TRUNCATE)
        xs = vec(FP32, [rng.uniform(0, 2) for _ in range(20)])
        ys = vec(FP32, [rng.uniform(0, 2) for _ in range(20)])
        run = unit.run(xs, ys)
        expected, _ = functional_dot(
            FP32, xs, ys, lanes=unit.lanes, mode=RoundingMode.TRUNCATE
        )
        assert run.result == expected

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DotProductUnit(FP32, 2, 3).run([FP32.one()], [])

    def test_invalid_latencies(self):
        with pytest.raises(ValueError):
            DotProductUnit(FP32, 0, 3)
