"""Tests for the off-chip bandwidth model."""

import pytest

from repro.fp.format import FP32, FP64
from repro.kernels.io_model import (
    DDR_64_200,
    IOChannel,
    dot_sustained,
    matmul_sustained,
    max_io_bound_macs,
)


class TestChannel:
    def test_bandwidth_math(self):
        assert DDR_64_200.gbits_per_s == pytest.approx(25.6)

    def test_words_per_cycle_scales_with_format(self):
        w32 = DDR_64_200.words_per_cycle(FP32, 200.0)
        w64 = DDR_64_200.words_per_cycle(FP64, 200.0)
        assert w32 == pytest.approx(2 * w64)

    def test_faster_kernel_clock_fewer_words(self):
        slow = DDR_64_200.words_per_cycle(FP32, 100.0)
        fast = DDR_64_200.words_per_cycle(FP32, 250.0)
        assert fast < slow


class TestMatmul:
    def test_matmul_is_compute_bound_with_reuse(self):
        """The linear array reuses each streamed A element across all
        PEs, so a single DDR channel keeps even a full XC2VP125 fed."""
        r = matmul_sustained(FP32, pes=40, kernel_clock_mhz=250.0)
        assert r.bound_by == "compute"
        assert r.gflops == pytest.approx(20.0)

    def test_starved_channel_binds(self):
        thin = IOChannel("thin", pins=8, clock_mhz=100.0)
        r = matmul_sustained(FP32, pes=40, kernel_clock_mhz=250.0, channel=thin)
        assert r.bound_by == "bandwidth"
        assert r.gflops < r.compute_gflops


class TestStreamingDot:
    def test_no_reuse_binds_quickly(self):
        r = dot_sustained(FP32, macs=40, kernel_clock_mhz=250.0)
        assert r.bound_by == "bandwidth"
        assert r.gflops < r.compute_gflops

    def test_single_mac_is_compute_bound(self):
        r = dot_sustained(FP32, macs=1, kernel_clock_mhz=200.0)
        assert r.bound_by == "compute"

    def test_max_io_bound_macs_consistent(self):
        macs = max_io_bound_macs(FP32, 250.0)
        assert macs >= 1
        at_limit = dot_sustained(FP32, macs=macs, kernel_clock_mhz=250.0)
        beyond = dot_sustained(FP32, macs=macs + 1, kernel_clock_mhz=250.0)
        assert at_limit.bound_by == "compute"
        assert beyond.bound_by == "bandwidth"

    def test_wider_formats_bind_sooner(self):
        assert max_io_bound_macs(FP64, 200.0) <= max_io_bound_macs(FP32, 200.0)
