"""Bit-identity of the vectorized kernels with the scalar references."""

import numpy as np
import pytest

from repro.fp.format import FP32, FP48, FP64, FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.kernels.dotproduct import functional_dot
from repro.kernels.fast import dot_vectorized, functional_matmul_vectorized
from repro.kernels.matmul import functional_matmul


def rand_matrix_bits(n, rng, fmt=FP32):
    return [
        [FPValue.from_float(fmt, rng.uniform(-8, 8)).bits for _ in range(n)]
        for _ in range(n)
    ]


class TestVectorizedMatmul:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 12])
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_bit_identical_to_scalar_reference(self, n, mode, rng):
        a = rand_matrix_bits(n, rng)
        b = rand_matrix_bits(n, rng)
        fast = functional_matmul_vectorized(
            FP32, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64), mode
        )
        slow = functional_matmul(FP32, a, b, mode)
        assert fast.tolist() == slow

    def test_handles_specials(self, rng):
        n = 3
        a = rand_matrix_bits(n, rng)
        b = rand_matrix_bits(n, rng)
        a[0][0] = FP32.inf(0)
        a[1][1] = FP32.nan()
        b[2][2] = FP32.zero(1)
        fast = functional_matmul_vectorized(
            FP32, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64)
        )
        assert fast.tolist() == functional_matmul(FP32, a, b)

    def test_shape_validation(self):
        sq = np.zeros((3, 3), dtype=np.uint64)
        rect = np.zeros((3, 4), dtype=np.uint64)
        with pytest.raises(ValueError):
            functional_matmul_vectorized(FP32, sq, rect)

    @pytest.mark.parametrize("fmt", [FP48, FP64], ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_wide_formats_bit_identical_to_scalar(self, fmt, mode, rng):
        n = 6
        a = rand_matrix_bits(n, rng, fmt)
        b = rand_matrix_bits(n, rng, fmt)
        fast = functional_matmul_vectorized(
            fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64), mode
        )
        assert fast.tolist() == functional_matmul(fmt, a, b, mode)

    def test_fp64_randomized_byte_identity(self, rng):
        # The acceptance check: random fp64 word matrices (specials and
        # denormal patterns included), byte-identical to the scalar path.
        n = 8
        a = [[rng.randrange(FP64.word_mask + 1) for _ in range(n)] for _ in range(n)]
        b = [[rng.randrange(FP64.word_mask + 1) for _ in range(n)] for _ in range(n)]
        fast = functional_matmul_vectorized(
            FP64, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64)
        )
        slow = functional_matmul(FP64, a, b)
        assert np.array(slow, dtype=np.uint64).tobytes() == fast.tobytes()

    def test_unsupported_format_rejected(self):
        m = np.zeros((2, 2), dtype=np.uint64)
        fp65 = FPFormat(exp_bits=12, man_bits=52, name="fp65")
        with pytest.raises(ValueError, match="width <= 64"):
            functional_matmul_vectorized(fp65, m, m)
        with pytest.raises(ValueError, match="width <= 64"):
            dot_vectorized(fp65, np.zeros(4, dtype=np.uint64),
                           np.zeros(4, dtype=np.uint64), 2)

    def test_medium_problem_against_numpy(self, rng):
        """n = 24: too slow for the scalar reference in bulk testing, but
        the vectorized path must still track IEEE closely."""
        n = 24
        vals_a = np.array(
            [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)],
            dtype=np.float32,
        )
        vals_b = np.array(
            [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)],
            dtype=np.float32,
        )
        a = vals_a.view(np.uint32).astype(np.uint64)
        b = vals_b.view(np.uint32).astype(np.uint64)
        fast = functional_matmul_vectorized(FP32, a, b)
        got = fast.astype(np.uint32).view(np.float32)
        expected = vals_a.astype(np.float64) @ vals_b.astype(np.float64)
        assert np.allclose(got, expected, rtol=1e-4, atol=1e-5)


class TestVectorizedDot:
    @pytest.mark.parametrize("n", [1, 5, 16, 33])
    @pytest.mark.parametrize("lanes", [1, 3, 8])
    def test_bit_identical_to_scalar_reference(self, n, lanes, rng):
        xs = [FPValue.from_float(FP32, rng.uniform(-4, 4)).bits for _ in range(n)]
        ys = [FPValue.from_float(FP32, rng.uniform(-4, 4)).bits for _ in range(n)]
        fast = dot_vectorized(
            FP32, np.array(xs, dtype=np.uint64), np.array(ys, dtype=np.uint64), lanes
        )
        slow, _ = functional_dot(FP32, xs, ys, lanes)
        assert fast == slow

    @pytest.mark.parametrize("fmt", [FP48, FP64], ids=lambda f: f.name)
    def test_wide_formats_bit_identical_to_scalar(self, fmt, rng):
        n, lanes = 21, 4
        xs = [FPValue.from_float(fmt, rng.uniform(-4, 4)).bits for _ in range(n)]
        ys = [FPValue.from_float(fmt, rng.uniform(-4, 4)).bits for _ in range(n)]
        fast = dot_vectorized(
            fmt, np.array(xs, dtype=np.uint64), np.array(ys, dtype=np.uint64), lanes
        )
        slow, _ = functional_dot(fmt, xs, ys, lanes)
        assert fast == slow

    def test_validation(self):
        v = np.zeros(4, dtype=np.uint64)
        with pytest.raises(ValueError):
            dot_vectorized(FP32, v, v[:-1], 2)
        with pytest.raises(ValueError):
            dot_vectorized(FP32, v, v, 0)
