"""Tests for design-space enumeration and Pareto analysis."""

import pytest

from repro.kernels.design_space import (
    DesignConstraints,
    best_design,
    dominates,
    enumerate_designs,
    pareto_front,
)


@pytest.fixture(scope="module")
def designs():
    return enumerate_designs(n=32, block_sizes=(4, 8, 16, 32))


class TestEnumeration:
    def test_full_cartesian_product(self, designs):
        assert len(designs) == 3 * 4  # configs x block sizes

    def test_labels_unique(self, designs):
        labels = [d.label for d in designs]
        assert len(set(labels)) == len(labels)

    def test_non_dividing_block_rejected(self):
        with pytest.raises(ValueError, match="does not divide"):
            enumerate_designs(n=32, block_sizes=(5,))


class TestPareto:
    def test_front_is_non_dominated(self, designs):
        front = pareto_front(designs)
        assert front
        for a in front:
            assert not any(dominates(b, a) for b in designs if b is not a)

    def test_excluded_points_are_dominated(self, designs):
        front = set(id(d) for d in pareto_front(designs))
        for d in designs:
            if id(d) not in front:
                assert any(dominates(f, d) for f in designs)

    def test_dominance_relation(self, designs):
        # No design dominates itself; dominance is antisymmetric.
        for d in designs[:6]:
            assert not dominates(d, d)
        for a in designs[:6]:
            for b in designs[:6]:
                if dominates(a, b):
                    assert not dominates(b, a)

    def test_front_contains_extremes(self, designs):
        front = pareto_front(designs)
        best_energy = min(designs, key=lambda d: d.estimate.energy_nj)
        best_latency = min(designs, key=lambda d: d.estimate.latency_us)
        front_labels = {d.label for d in front}
        assert best_energy.label in front_labels
        assert best_latency.label in front_labels


class TestSelection:
    def test_best_for_each_objective(self, designs):
        e = best_design(designs, "energy")
        lt = best_design(designs, "latency")
        s = best_design(designs, "slices")
        assert e.estimate.energy_nj == min(d.estimate.energy_nj for d in designs)
        assert lt.estimate.latency_us == min(d.estimate.latency_us for d in designs)
        assert s.estimate.slices == min(d.estimate.slices for d in designs)

    def test_constraints_filter(self, designs):
        tight = DesignConstraints(max_slices=min(d.estimate.slices for d in designs))
        pick = best_design(designs, "energy", tight)
        assert pick.estimate.slices == tight.max_slices

    def test_infeasible_constraints_raise(self, designs):
        impossible = DesignConstraints(max_slices=1)
        with pytest.raises(ValueError, match="no design"):
            best_design(designs, "energy", impossible)

    def test_unknown_objective(self, designs):
        with pytest.raises(ValueError, match="unknown objective"):
            best_design(designs, "cost")

    def test_latency_constraint(self, designs):
        fastest = min(d.estimate.latency_us for d in designs)
        c = DesignConstraints(max_latency_us=fastest * 1.01)
        pick = best_design(designs, "energy", c)
        assert pick.estimate.latency_us <= fastest * 1.01


class TestFrontierEquivalence:
    """The thin wrappers must match a local 3-objective reference.

    ``dominates``/``pareto_front`` now delegate to the generalized
    sense-aware machinery in :mod:`repro.explore.frontier`; this pins
    their output identical (same designs, same order) to the original
    all-minimized scalar formulation on the kernel grid.
    """

    @staticmethod
    def reference_dominates(a, b):
        ax, bx = a.objectives(), b.objectives()
        return all(x <= y for x, y in zip(ax, bx)) and any(
            x < y for x, y in zip(ax, bx)
        )

    def test_dominates_matches_reference(self, designs):
        for a in designs:
            for b in designs:
                assert dominates(a, b) == self.reference_dominates(a, b)

    def test_pareto_front_matches_reference(self, designs):
        reference = [
            d
            for d in designs
            if not any(
                self.reference_dominates(o, d) for o in designs if o is not d
            )
        ]
        front = pareto_front(designs)
        assert [d.label for d in front] == [d.label for d in reference]
        assert all(a is b for a, b in zip(front, reference))
