"""Unit tests for the matrix-multiply processing element."""

import pytest

from repro.fp.format import FP32
from repro.fp.value import FPValue
from repro.kernels.pe import AToken, ProcessingElement


def fbits(x: float) -> int:
    return FPValue.from_float(FP32, x).bits


def make_pe(rows=4, lm=2, la=3) -> ProcessingElement:
    return ProcessingElement(FP32, col=0, rows=rows, mul_latency=lm, add_latency=la)


class TestBasicOperation:
    def test_single_mac(self):
        pe = make_pe()
        pe.load_b([fbits(2.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(3.0)))
        for _ in range(10):
            pe.step(None)
        assert FPValue(FP32, pe.c_accum[0]).to_float() == 6.0

    def test_accumulation_across_k(self):
        pe = make_pe()
        pe.load_b([fbits(1.0), fbits(2.0), fbits(3.0), fbits(4.0)])
        # c_0 = 1*1 + 1*2 + 1*3 + 1*4 = 10, spaced >= PL apart
        for k in range(4):
            pe.step(AToken(i=0, k=k, bits=fbits(1.0)))
            for _ in range(6):
                pe.step(None)
        assert FPValue(FP32, pe.c_accum[0]).to_float() == 10.0

    def test_forwarding_delay_one_cycle(self):
        pe = make_pe()
        tok = AToken(i=1, k=2, bits=fbits(1.5))
        assert pe.step(tok) is None
        assert pe.step(None) is tok

    def test_load_b_validates_length(self):
        pe = make_pe(rows=4)
        with pytest.raises(ValueError):
            pe.load_b([fbits(1.0)] * 3)

    def test_reset_c(self):
        pe = make_pe()
        pe.load_b([fbits(1.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        for _ in range(8):
            pe.step(None)
        pe.reset_c()
        assert all(FP32.is_zero(c) for c in pe.c_accum)


class TestHazardDetection:
    def test_reuse_within_latency_is_hazard(self):
        pe = make_pe(lm=3, la=4)  # PL = 7
        pe.load_b([fbits(1.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        pe.step(AToken(i=0, k=1, bits=fbits(1.0)))  # 1 cycle later: hazard
        assert pe.hazards == 1

    def test_reuse_at_exactly_latency_is_safe(self):
        pe = make_pe(lm=3, la=4)  # PL = 7
        pe.load_b([fbits(1.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        for _ in range(6):
            pe.step(None)
        pe.step(AToken(i=0, k=1, bits=fbits(1.0)))  # exactly PL cycles later
        assert pe.hazards == 0
        for _ in range(10):
            pe.step(None)
        assert FPValue(FP32, pe.c_accum[0]).to_float() == 2.0

    def test_different_accumulators_never_conflict(self):
        pe = make_pe(lm=3, la=4)
        pe.load_b([fbits(1.0)] * 4)
        for i in range(4):
            pe.step(AToken(i=i, k=0, bits=fbits(1.0)))
        assert pe.hazards == 0

    def test_busy_flag(self):
        pe = make_pe(lm=1, la=1)
        pe.load_b([fbits(1.0)] * 4)
        assert not pe.busy
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        assert pe.busy
        for _ in range(4):
            pe.step(None)
        assert not pe.busy
