"""Unit tests for block-matmul schedule accounting."""

import pytest

from repro.kernels.blocking import blocked_schedule, check_block_cycles


class TestScheduleConstruction:
    def test_rejects_non_dividing_block(self):
        with pytest.raises(ValueError, match="does not divide"):
            blocked_schedule(16, 3, 10)

    def test_rejects_block_bigger_than_problem(self):
        with pytest.raises(ValueError, match="exceeds"):
            blocked_schedule(4, 8, 10)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            blocked_schedule(0, 1, 10)
        with pytest.raises(ValueError):
            blocked_schedule(4, 0, 10)

    def test_unblocked_degenerate_case(self):
        s = blocked_schedule(8, 8, 5)
        assert s.block_ops == 1
        assert s.blocks_per_dim == 1
        assert s.spacing == 8


class TestCycleAccounting:
    def test_spacing_is_latency_bound(self):
        assert blocked_schedule(16, 4, 10).spacing == 10
        assert blocked_schedule(16, 16, 10).spacing == 16

    def test_padding_only_when_block_below_latency(self):
        assert blocked_schedule(16, 4, 10).padded_cycles > 0
        assert blocked_schedule(32, 16, 10).padded_cycles == 0

    def test_wasted_fraction_decreases_with_block_size(self):
        pl = 17
        fractions = [
            blocked_schedule(16, b, pl).wasted_fraction for b in (2, 4, 8, 16)
        ]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] > 0.5  # b=2 vs PL=17: overwhelmingly padding

    def test_block_ops_cubic(self):
        s = blocked_schedule(16, 4, 10)
        assert s.block_ops == 4**3

    def test_useful_macs(self):
        s = blocked_schedule(16, 4, 10)
        assert s.useful_macs == 16**3 // 4

    def test_total_energy_relevant_cycles_flat_beyond_latency(self):
        """For b >= PL the steady-state schedule cycles scale as n^3/b
        while the array has b PEs: PE-cycles are constant (paper Fig 6a
        flattening)."""
        pl = 8
        pe_cycles = [
            b * blocked_schedule(64, b, pl).block_ops
            * blocked_schedule(64, b, pl).cycles_per_block_op
            for b in (8, 16, 32)
        ]
        assert pe_cycles[0] == pytest.approx(pe_cycles[1], rel=0.01)
        assert pe_cycles[1] == pytest.approx(pe_cycles[2], rel=0.01)

    def test_latency_scaling(self):
        pl = 8
        lat = [blocked_schedule(64, b, pl).latency_us(100.0) for b in (8, 16, 32)]
        assert lat == sorted(lat, reverse=True)

    def test_drain_positive(self):
        for b, pl in ((2, 17), (8, 8), (16, 10), (1, 1)):
            assert blocked_schedule(16, b, pl).drain_cycles > 0


class TestCycleCheck:
    """check_block_cycles: the analytic per-block accounting, confirmed
    by actually running a b x b op through a cycle-accurate array."""

    @pytest.mark.parametrize("n,b,pl", [(16, 4, 10), (16, 8, 8), (32, 16, 5)])
    def test_schedule_confirmed_by_batched_array(self, n, b, pl):
        s = check_block_cycles(n, b, pl)
        assert s.blocks_per_dim == n // b

    def test_stepped_backend_agrees(self):
        batched = check_block_cycles(16, 4, 10, backend="batched")
        stepped = check_block_cycles(16, 4, 10, backend="stepped")
        assert batched == stepped

    def test_rejects_unsplittable_latency(self):
        with pytest.raises(ValueError, match="too shallow"):
            check_block_cycles(16, 4, 1)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown matmul backend"):
            check_block_cycles(16, 4, 10, backend="nope")
