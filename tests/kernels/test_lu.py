"""Unit tests for the LU decomposition kernel extension."""

import numpy as np
import pytest

from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32, FP64
from repro.fp.value import FPValue
from repro.kernels.lu import LUPerformanceModel, functional_lu, split_lu
from repro.power.energy import PEEnergyModel

from tests.conftest import bits_to_f32


def diag_dominant(fmt, n, rng):
    """Random diagonally dominant matrix (LU without pivoting is stable)."""
    vals = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(n)]
    for i in range(n):
        vals[i][i] = n + rng.uniform(1.0, 2.0)
    bits = [[FPValue.from_float(fmt, v).bits for v in row] for row in vals]
    return vals, bits


def numpy_lu_float32(vals):
    """The same Doolittle loop in numpy float32 (bit-comparable)."""
    a = np.array(vals, dtype=np.float32)
    n = a.shape[0]
    for k in range(n):
        for i in range(k + 1, n):
            a[i, k] = np.float32(a[i, k] / a[k, k])
            for j in range(k + 1, n):
                a[i, j] = np.float32(a[i, j] - np.float32(a[i, k] * a[k, j]))
    return a


class TestFunctionalLU:
    def test_bit_identical_to_numpy_float32(self, rng):
        """Our FP ops are IEEE-correct, so running the same elimination
        loop in numpy float32 must give bit-identical factors."""
        n = 6
        vals, bits = diag_dominant(FP32, n, rng)
        lu, flags = functional_lu(FP32, bits)
        expected = numpy_lu_float32(vals)
        got = np.array(
            [[bits_to_f32(lu[i][j]) for j in range(n)] for i in range(n)],
            dtype=np.float32,
        )
        assert np.array_equal(got, expected)
        assert not flags.invalid

    def test_reconstruction_accuracy(self, rng):
        n = 8
        vals, bits = diag_dominant(FP64, n, rng)
        lu, _ = functional_lu(FP64, bits)
        lower_b, upper_b = split_lu(FP64, lu)
        lower = np.array(
            [[FPValue(FP64, b).to_float() for b in row] for row in lower_b]
        )
        upper = np.array(
            [[FPValue(FP64, b).to_float() for b in row] for row in upper_b]
        )
        a = np.array(vals)
        assert np.allclose(lower @ upper, a, rtol=1e-12, atol=1e-12)

    def test_identity_factors_trivially(self):
        n = 4
        eye = [
            [FP32.one() if i == j else FP32.zero() for j in range(n)]
            for i in range(n)
        ]
        lu, flags = functional_lu(FP32, eye)
        assert lu == eye
        assert not flags.any_exception

    def test_zero_pivot_rejected(self):
        n = 2
        singular = [
            [FP32.zero(), FP32.one()],
            [FP32.one(), FP32.one()],
        ]
        with pytest.raises(ZeroDivisionError, match="zero pivot"):
            functional_lu(FP32, singular)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            functional_lu(FP32, [[FP32.one()] * 3, [FP32.one()] * 3])

    def test_split_shapes(self):
        n = 3
        lu = [[FPValue.from_float(FP32, float(i * n + j + 1)).bits
               for j in range(n)] for i in range(n)]
        lower, upper = split_lu(FP32, lu)
        for i in range(n):
            assert lower[i][i] == FP32.one()
            for j in range(i + 1, n):
                assert FP32.is_zero(lower[i][j])
                assert FP32.is_zero(upper[j][i])


def make_lu_model(add_stages=8, mul_stages=6):
    pe = PEEnergyModel(
        FP32,
        synthesize(adder_datapath(FP32), add_stages),
        synthesize(multiplier_datapath(FP32), mul_stages),
        frequency_mhz=150.0,
    )
    return LUPerformanceModel(pe)


class TestLUPerformance:
    def test_schedule_cycle_scaling(self):
        m = make_lu_model()
        c64, _ = m.schedule_cycles(64)
        c128, _ = m.schedule_cycles(128)
        # Step costs are divider-latency + max(m, PL): the quadratic term
        # dominates at large n, so doubling n lands between 2x and 4x.
        assert 2.5 < c128 / c64 < 4.2
        # and the quadratic trend strengthens with n:
        c256, _ = m.schedule_cycles(256)
        assert c256 / c128 > c128 / c64

    def test_padding_tail_always_present_for_deep_pipelines(self):
        """LU's shrinking trailing matrices always re-enter the padded
        regime — even huge problems pay a padding tail."""
        m = make_lu_model(add_stages=18, mul_stages=9)  # PL = 27
        _, padded = m.schedule_cycles(200)
        assert padded > 0

    def test_shallow_pipeline_less_padding(self):
        deep = make_lu_model(18, 9)
        shallow = make_lu_model(4, 3)
        _, pad_deep = deep.schedule_cycles(32)
        _, pad_shallow = shallow.schedule_cycles(32)
        assert pad_deep > pad_shallow

    def test_estimate_fields(self):
        m = make_lu_model()
        est = m.estimate(16)
        assert est.cycles > 0
        assert est.energy_nj > 0
        assert est.slices == 16 * m.pe_model.pe_slices()
        assert 0 <= est.padding_fraction < 1
        assert est.latency_us == pytest.approx(est.cycles / 150.0)
        assert est.gflops > 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            make_lu_model().schedule_cycles(0)
