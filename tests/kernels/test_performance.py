"""Unit tests for kernel-level performance/energy estimation."""

import pytest

from repro.fabric.device import XC2VP125, get_device
from repro.fabric.netlist import adder_datapath, multiplier_datapath
from repro.fabric.synthesis import synthesize
from repro.fp.format import FP32, FP64
from repro.kernels.performance import (
    MatmulPerformanceModel,
    kernel_schedule_cycles,
)


def make_model(fmt=FP32, add_stages=10, mul_stages=7, f=None):
    return MatmulPerformanceModel(
        fmt,
        synthesize(adder_datapath(fmt), add_stages),
        synthesize(multiplier_datapath(fmt), mul_stages),
        frequency_mhz=f,
    )


class TestScheduleCycles:
    def test_small_problem_dominated_by_latency(self):
        assert kernel_schedule_cycles(2, 20) > kernel_schedule_cycles(2, 5)

    def test_large_problem_quadratic(self):
        c1 = kernel_schedule_cycles(50, 10)
        c2 = kernel_schedule_cycles(100, 10)
        assert 3.5 < c2 / c1 < 4.5

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            kernel_schedule_cycles(0, 10)


class TestEstimates:
    def test_default_frequency_respects_unit_clocks(self):
        m = make_model()
        assert m.frequency_mhz <= min(m.adder.clock_mhz, m.multiplier.clock_mhz)
        assert m.frequency_mhz <= 250.0  # fp32 array ceiling

    def test_estimate_fields(self):
        m = make_model()
        e = m.estimate(16)
        assert e.n == e.b == 16
        assert e.pes == 16
        assert e.cycles == kernel_schedule_cycles(16, m.pipeline_latency)
        assert e.energy_nj > 0
        assert e.latency_us == pytest.approx(e.cycles / m.frequency_mhz)
        assert e.slices > 0 and e.brams == 16 and e.mult18 == 16 * 4

    def test_blocked_estimate_uses_b_pes(self):
        m = make_model()
        e = m.estimate(16, b=4)
        assert e.pes == 4
        assert e.brams == 4

    def test_energy_grows_with_problem(self):
        m = make_model()
        energies = [m.estimate(n).energy_nj for n in (8, 16, 32)]
        assert energies == sorted(energies)

    def test_padding_penalty_small_problems(self):
        """A deep pipeline wastes energy on problems below its latency."""
        shallow = make_model(add_stages=4, mul_stages=3)  # PL = 7
        deep = make_model(add_stages=18, mul_stages=9)  # PL = 27
        n = 8  # below deep PL, above shallow PL
        assert deep.pe_energy(n).total_nj > 1.5 * shallow.pe_energy(n).total_nj

    def test_pe_energy_matches_estimate(self):
        m = make_model()
        n = 12
        assert m.estimate(n).energy_nj == pytest.approx(
            m.pe_energy(n).total_nj * n
        )

    def test_gflops_of_run(self):
        m = make_model()
        e = m.estimate(64)
        assert 0 < e.gflops <= 2 * 64 * m.frequency_mhz / 1000.0


class TestDeviceFill:
    def test_fill_respects_all_budgets(self):
        m = make_model()
        fill = m.device_fill(XC2VP125)
        assert fill.pes * fill.pe_slices <= XC2VP125.usable_slices()
        assert fill.pes * fill.pe_mult18 <= XC2VP125.mult18
        assert fill.pes * fill.pe_brams <= XC2VP125.bram
        assert fill.bound_by in ("slices", "mult18", "bram")

    def test_bigger_device_fits_more(self):
        m = make_model()
        small = m.device_fill(get_device("XC2VP30"))
        large = m.device_fill(XC2VP125)
        assert large.pes > small.pes

    def test_double_precision_fits_fewer(self):
        single = make_model(FP32).device_fill(XC2VP125)
        double = make_model(FP64, add_stages=17, mul_stages=11).device_fill(XC2VP125)
        assert double.pes < single.pes

    def test_slice_utilization_sane(self):
        fill = make_model().device_fill(XC2VP125)
        assert 0.0 < fill.slice_utilization <= 0.95


class TestDeviceThroughput:
    def test_gflops_formula(self):
        m = make_model(f=250.0)
        fill = m.device_fill(XC2VP125)
        assert m.peak_gflops(XC2VP125) == pytest.approx(
            2 * fill.pes * 250.0 / 1000.0
        )

    def test_gflops_per_watt_positive(self):
        m = make_model()
        assert m.gflops_per_watt(XC2VP125) > 0

    def test_device_power_includes_static(self):
        m = make_model()
        fill = m.device_fill(XC2VP125)
        dynamic_w = fill.pes * m.pe_model.pe_power_mw() / 1000.0
        assert m.device_power_w(XC2VP125) > dynamic_w
