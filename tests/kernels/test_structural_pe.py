"""Equivalence of the fully structural PE with the behavioural PE."""

import pytest

from repro.fp.adder import fp_add
from repro.fp.format import FP32
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.kernels.pe import AToken, ProcessingElement
from repro.kernels.structural_pe import (
    StructuralMAC,
    StructuralProcessingElement,
    mac_micro_ops,
)


def fbits(x: float) -> int:
    return FPValue.from_float(FP32, x).bits


class TestMacMicroOps:
    def test_matches_chained_scalar(self, rng):
        mac = StructuralMAC(FP32, stages=5)
        for _ in range(400):
            a = rng.randrange(FP32.word_mask + 1)
            b = rng.randrange(FP32.word_mask + 1)
            c = rng.randrange(FP32.word_mask + 1)
            got_bits, got_flags = mac.compute(c, a, b)
            p, f1 = fp_mul(FP32, a, b)
            exp_bits, f2 = fp_add(FP32, c, p)
            assert got_bits == exp_bits, (hex(a), hex(b), hex(c))
            assert got_flags == (f1 | f2)

    def test_truncate_mode(self, rng):
        mode = RoundingMode.TRUNCATE
        mac = StructuralMAC(FP32, stages=3, mode=mode)
        for _ in range(100):
            a = rng.randrange(FP32.word_mask + 1)
            b = rng.randrange(FP32.word_mask + 1)
            c = rng.randrange(FP32.word_mask + 1)
            p, f1 = fp_mul(FP32, a, b, mode)
            exp_bits, f2 = fp_add(FP32, c, p, mode)
            assert mac.compute(c, a, b) == (exp_bits, f1 | f2)

    def test_special_bypass_through_junction(self):
        mac = StructuralMAC(FP32, stages=4)
        # 0 * x + c must produce c (mul bypasses to zero, add passes c).
        c = fbits(3.5)
        bits, _ = mac.compute(c, FP32.zero(0), fbits(7.0))
        assert bits == c
        # NaN propagates through both phases.
        bits, flags = mac.compute(c, FP32.nan(), fbits(1.0))
        assert FP32.is_nan(bits) and flags.invalid

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            StructuralMAC(FP32, 0)

    def test_micro_op_count(self):
        ops = mac_micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        names = [op.name for op in ops]
        assert names[0] == "mac.setup"
        assert "mac.junction" in names
        assert names[-1] == "mac.flags"


class TestStructuralPE:
    def _drive(self, pe, tokens, spacing):
        """Feed tokens with fixed spacing, then drain."""
        for tok in tokens:
            pe.step(tok)
            for _ in range(spacing - 1):
                pe.step(None)
        for _ in range(pe.latency + 4):
            pe.step(None)

    def test_matches_behavioural_pe(self, rng):
        rows, mac_stages = 6, 9
        b_col = [fbits(rng.uniform(-3, 3)) for _ in range(rows)]
        tokens = []
        for k in range(rows):
            for i in range(rows):
                tokens.append(AToken(i=i, k=k, bits=fbits(rng.uniform(-3, 3))))

        behavioural = ProcessingElement(FP32, 0, rows, mul_latency=4, add_latency=5)
        behavioural.load_b(b_col)
        structural = StructuralProcessingElement(FP32, 0, rows, mac_stages=9)
        structural.load_b(b_col)
        assert mac_stages == 9  # same total MAC depth as 4 + 5

        spacing = structural.latency + 1  # generous: no hazards anywhere
        for tok in tokens:
            behavioural.step(tok)
            for _ in range(spacing - 1):
                behavioural.step(None)
        for _ in range(20):
            behavioural.step(None)
        self._drive(structural, tokens, spacing)

        assert structural.c_accum == behavioural.c_accum
        assert structural.hazards == behavioural.hazards == 0

    def test_latency_includes_ram_read(self):
        pe = StructuralProcessingElement(FP32, 0, 4, mac_stages=6)
        assert pe.latency == 7
        pe.load_b([fbits(2.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(3.0)))
        # result lands exactly after `latency` cycles
        for cycle in range(1, pe.latency + 1):
            pe.step(None)
            if cycle < pe.latency:
                assert FP32.is_zero(pe.c_accum[0]), cycle
        assert FPValue(FP32, pe.c_accum[0]).to_float() == 6.0

    def test_forwarding_one_cycle(self):
        pe = StructuralProcessingElement(FP32, 0, 4, mac_stages=3)
        pe.load_b([fbits(1.0)] * 4)
        tok = AToken(i=0, k=1, bits=fbits(1.0))
        assert pe.step(tok) is None
        assert pe.step(None) is tok

    def test_hazard_detection(self):
        pe = StructuralProcessingElement(FP32, 0, 4, mac_stages=8)
        pe.load_b([fbits(1.0)] * 4)
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        pe.step(AToken(i=0, k=1, bits=fbits(1.0)))  # back-to-back: stale c
        pe.step(None)  # second token issues this cycle (after its RAM read)
        assert pe.hazards == 1

    def test_load_b_validates(self):
        pe = StructuralProcessingElement(FP32, 0, 4, mac_stages=3)
        with pytest.raises(ValueError):
            pe.load_b([fbits(1.0)] * 3)

    def test_reset_c(self):
        pe = StructuralProcessingElement(FP32, 0, 2, mac_stages=3)
        pe.load_b([fbits(1.0)] * 2)
        pe.step(AToken(i=0, k=0, bits=fbits(1.0)))
        for _ in range(10):
            pe.step(None)
        pe.reset_c()
        assert all(FP32.is_zero(c) for c in pe.c_accum)


class TestStructuralMatmulArray:
    def test_bit_identical_to_behavioural_array(self, rng):
        from repro.kernels.matmul import MatmulArray, functional_matmul
        from repro.kernels.structural_pe import StructuralMatmulArray

        n, lm, la = 5, 3, 4
        a = [[fbits(rng.uniform(-5, 5)) for _ in range(n)] for _ in range(n)]
        b = [[fbits(rng.uniform(-5, 5)) for _ in range(n)] for _ in range(n)]
        behavioural = MatmulArray(FP32, n, lm, la).run(a, b)
        structural = StructuralMatmulArray(FP32, n, mac_stages=lm + la)
        c, cycles, hazards = structural.run(a, b)
        assert c == behavioural.c == functional_matmul(FP32, a, b)
        assert hazards == 0
        # the RAM-read register costs cycles but never correctness
        assert cycles >= behavioural.cycles

    def test_large_problem_unpadded(self, rng):
        from repro.kernels.matmul import functional_matmul
        from repro.kernels.structural_pe import StructuralMatmulArray

        n = 9  # n >= PL + 1 = 8: no padding needed
        arr = StructuralMatmulArray(FP32, n, mac_stages=7)
        assert arr.hazard_spacing == n
        a = [[fbits(rng.uniform(-2, 2)) for _ in range(n)] for _ in range(n)]
        b = [[fbits(rng.uniform(-2, 2)) for _ in range(n)] for _ in range(n)]
        c, _, hazards = arr.run(a, b)
        assert hazards == 0
        assert c == functional_matmul(FP32, a, b)

    def test_invalid_size(self):
        from repro.kernels.structural_pe import StructuralMatmulArray

        with pytest.raises(ValueError):
            StructuralMatmulArray(FP32, 0, mac_stages=4)
