"""Integration tests: the cycle-accurate array against references."""

import numpy as np
import pytest

from repro.fp.format import FP32, FP64
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.kernels.matmul import MatmulArray, RAWHazard, functional_matmul
from repro.kernels.performance import kernel_schedule_cycles

from tests.conftest import bits_to_f32


def rand_matrix(fmt, n, rng, span=10.0):
    return [
        [FPValue.from_float(fmt, rng.uniform(-span, span)).bits for _ in range(n)]
        for _ in range(n)
    ]


class TestBitExactness:
    @pytest.mark.parametrize(
        "n,lm,la",
        [(1, 2, 3), (2, 1, 1), (4, 7, 10), (6, 3, 5), (9, 2, 2)],
    )
    def test_matches_functional_reference(self, n, lm, la, rng):
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        run = MatmulArray(FP32, n, lm, la).run(a, b)
        assert run.c == functional_matmul(FP32, a, b)

    def test_fp64_matches_reference(self, rng):
        n = 5
        a = rand_matrix(FP64, n, rng)
        b = rand_matrix(FP64, n, rng)
        run = MatmulArray(FP64, n, 4, 6).run(a, b)
        assert run.c == functional_matmul(FP64, a, b)

    def test_truncation_mode_consistent(self, rng):
        n = 4
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        run = MatmulArray(FP32, n, 3, 4, mode=RoundingMode.TRUNCATE).run(a, b)
        assert run.c == functional_matmul(FP32, a, b, mode=RoundingMode.TRUNCATE)

    def test_against_numpy_float32(self, rng):
        """Sequential-k accumulation equals numpy only when every partial
        is exactly representable; use power-of-two values so it is."""
        n = 5
        a_vals = [[float(2 ** rng.randint(-3, 3)) for _ in range(n)] for _ in range(n)]
        b_vals = [[float(2 ** rng.randint(-3, 3)) for _ in range(n)] for _ in range(n)]
        a = [[FPValue.from_float(FP32, v).bits for v in row] for row in a_vals]
        b = [[FPValue.from_float(FP32, v).bits for v in row] for row in b_vals]
        run = MatmulArray(FP32, n, 2, 3).run(a, b)
        expected = np.array(a_vals, dtype=np.float32) @ np.array(
            b_vals, dtype=np.float32
        )
        got = np.array(
            [[bits_to_f32(run.c[i][j]) for j in range(n)] for i in range(n)],
            dtype=np.float32,
        )
        assert np.array_equal(got, expected)

    def test_identity_matrix(self, rng):
        n = 4
        a = rand_matrix(FP32, n, rng)
        eye = [
            [FPValue.from_float(FP32, 1.0 if i == j else 0.0).bits for j in range(n)]
            for i in range(n)
        ]
        run = MatmulArray(FP32, n, 2, 3).run(a, eye)
        assert run.c == a


class TestSchedule:
    @pytest.mark.parametrize("n,pl", [(2, 9), (4, 17), (8, 8), (12, 5), (17, 17)])
    def test_cycles_match_analytic_formula(self, n, pl, rng):
        lm, la = pl // 2, pl - pl // 2
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        run = MatmulArray(FP32, n, lm, la).run(a, b)
        assert run.cycles == kernel_schedule_cycles(n, pl)

    def test_padding_reported(self, rng):
        n, lm, la = 4, 7, 10  # PL = 17 > n
        run = MatmulArray(FP32, n, lm, la).run(
            rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        )
        assert run.padded_cycles == (17 - 4) * 4

    def test_no_padding_when_big_enough(self, rng):
        n = 10
        run = MatmulArray(FP32, n, 3, 5).run(
            rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        )
        assert run.padded_cycles == 0
        assert 0.5 < run.pe_utilization <= 1.0

    def test_issued_macs(self, rng):
        n = 4
        run = MatmulArray(FP32, n, 2, 3).run(
            rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        )
        assert run.issued_macs == n * n * n


class TestHazardRule:
    """Paper: 'read-after-write hazards only if the matrix size is less
    than the number of pipeline stages'."""

    def test_unpadded_small_problem_raises(self, rng):
        n, lm, la = 4, 7, 10
        arr = MatmulArray(FP32, n, lm, la, pad_schedule=False)
        with pytest.raises(RAWHazard, match="read-after-write"):
            arr.run(rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng))

    def test_unpadded_at_exact_latency_is_safe(self, rng):
        n = 9
        arr = MatmulArray(FP32, n, 4, 5, pad_schedule=False)  # PL == n
        a, b = rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        run = arr.run(a, b)
        assert run.hazards == 0
        assert run.c == functional_matmul(FP32, a, b)

    def test_unpadded_large_problem_is_safe(self, rng):
        n = 12
        arr = MatmulArray(FP32, n, 4, 5, pad_schedule=False)
        a, b = rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        run = arr.run(a, b)
        assert run.hazards == 0
        assert run.c == functional_matmul(FP32, a, b)

    def test_padded_schedule_hides_latency(self, rng):
        n, lm, la = 3, 9, 9
        arr = MatmulArray(FP32, n, lm, la, pad_schedule=True)
        a, b = rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        run = arr.run(a, b)
        assert run.hazards == 0
        assert run.c == functional_matmul(FP32, a, b)


class TestValidation:
    def test_rejects_wrong_shape(self, rng):
        arr = MatmulArray(FP32, 3, 2, 3)
        bad = [[FP32.zero()] * 2] * 3
        good = rand_matrix(FP32, 3, rng)
        with pytest.raises(ValueError):
            arr.run(bad, good)

    def test_rejects_out_of_range_words(self):
        arr = MatmulArray(FP32, 2, 2, 3)
        bad = [[1 << 40, 0], [0, 0]]
        good = [[FP32.zero()] * 2] * 2
        with pytest.raises(ValueError):
            arr.run(bad, good)

    def test_rejects_bad_problem_size(self):
        with pytest.raises(ValueError):
            MatmulArray(FP32, 0, 2, 3)

    def test_flags_aggregate_overflow(self, rng):
        n = 2
        big = FP32.max_finite()
        a = [[big, big], [big, big]]
        b = [[big, big], [big, big]]
        run = MatmulArray(FP32, n, 2, 3).run(a, b)
        assert run.flags.overflow
