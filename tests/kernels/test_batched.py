"""Differential tests: wavefront-batched array vs the stepped reference.

The batched simulator's contract is total equivalence with
:class:`MatmulArray` — same bits, same OR-ed flags, same cycle count,
same padding/utilization statistics, same RAW-hazard behaviour — so
every test here runs both and compares fields, never golden values.
"""

import numpy as np
import pytest

from repro.fp.format import FP32, FP48, FP64
from repro.fp.rounding import RoundingMode
from repro.kernels.batched import (
    MATMUL_BACKENDS,
    BatchedMatmulArray,
    FusedMatmulArray,
    array_cycles,
    hazard_count,
    mac_issue_cycle,
    make_matmul_array,
)
from repro.kernels.fast import functional_matmul_fma, functional_matmul_vectorized
from repro.kernels.matmul import MatmulArray, RAWHazard

from tests.kernels.test_matmul import rand_matrix

#: (n, L_mul, L_add) corners: n = 1, PL = 2 minimum, n < PL (deep
#: pipes), n == PL, shallow pipes, and an even split.
CORNERS = [(1, 2, 3), (2, 1, 1), (4, 7, 10), (6, 3, 5), (8, 4, 4), (9, 2, 2)]

FORMATS = (FP32, FP48, FP64)


def run_both(fmt, n, lm, la, rng, mode=RoundingMode.NEAREST_EVEN,
             pad_schedule=True, span=10.0):
    a = rand_matrix(fmt, n, rng, span)
    b = rand_matrix(fmt, n, rng, span)
    stepped = MatmulArray(fmt, n, lm, la, mode=mode,
                          pad_schedule=pad_schedule).run(a, b)
    batched = BatchedMatmulArray(fmt, n, lm, la, mode=mode,
                                 pad_schedule=pad_schedule).run(a, b)
    return stepped, batched


class TestDifferentialMatrix:
    """The satellite matrix: formats x modes x latency corners."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    @pytest.mark.parametrize("n,lm,la", CORNERS)
    def test_run_for_run_identical(self, fmt, mode, n, lm, la, rng):
        stepped, batched = run_both(fmt, n, lm, la, rng, mode=mode)
        assert batched.c == stepped.c
        assert batched.flags == stepped.flags
        assert batched.cycles == stepped.cycles
        assert batched.issued_macs == stepped.issued_macs
        assert batched.padded_cycles == stepped.padded_cycles
        assert batched.hazards == stepped.hazards
        assert batched.pes == stepped.pes
        assert batched.pe_utilization == stepped.pe_utilization

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_raw_word_specials_identical(self, fmt, rng):
        """Uniform raw words make NaN/Inf/zero operands likely; the flag
        sideband and special propagation must still match exactly."""
        n = 6
        a = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)]
             for _ in range(n)]
        b = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)]
             for _ in range(n)]
        stepped = MatmulArray(fmt, n, 3, 5).run(a, b)
        batched = BatchedMatmulArray(fmt, n, 3, 5).run(a, b)
        assert batched.c == stepped.c
        assert batched.flags == stepped.flags

    def test_overflow_flags_identical(self):
        n = 2
        big = FP32.max_finite()
        m = [[big] * n for _ in range(n)]
        stepped = MatmulArray(FP32, n, 2, 3).run(m, m)
        batched = BatchedMatmulArray(FP32, n, 2, 3).run(m, m)
        assert batched.flags == stepped.flags
        assert batched.flags.overflow

    def test_matches_vectorized_functional_at_large_n(self, rng):
        n = 64
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        run = BatchedMatmulArray(FP32, n, 3, 5).run(a, b)
        fast = functional_matmul_vectorized(
            FP32, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64)
        )
        assert run.c == [[int(fast[i][j]) for j in range(n)] for i in range(n)]


class TestHazardEquivalence:
    """pad_schedule=False: both simulators raise identically or not at all."""

    @pytest.mark.parametrize("n,lm,la", [(4, 7, 10), (3, 9, 9), (2, 1, 2)])
    def test_identical_raise(self, n, lm, la, rng):
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        with pytest.raises(RAWHazard) as stepped_exc:
            MatmulArray(FP32, n, lm, la, pad_schedule=False).run(a, b)
        with pytest.raises(RAWHazard) as batched_exc:
            BatchedMatmulArray(FP32, n, lm, la, pad_schedule=False).run(a, b)
        assert str(batched_exc.value) == str(stepped_exc.value)

    @pytest.mark.parametrize("n,lm,la", [(1, 3, 5), (9, 4, 5), (12, 4, 5)])
    def test_identical_safe_runs(self, n, lm, la, rng):
        """n = 1 (single update per accumulator), n == PL, n > PL: no
        hazards on either side, identical results."""
        stepped, batched = run_both(FP32, n, lm, la, rng, pad_schedule=False)
        assert stepped.hazards == batched.hazards == 0
        assert batched.c == stepped.c
        assert batched.cycles == stepped.cycles


class TestAnalyticSchedule:
    """The closed forms the batched simulator reconstructs the run from."""

    def test_issue_cycle_spacing_between_accumulator_reuses(self):
        # Consecutive updates of C[i][j] (wavefronts k-1, k) are exactly
        # `spacing` cycles apart — the paper's hazard rule, analytically.
        spacing = 11
        for pe in (0, 3):
            for i in (0, 4):
                for k in (1, 5):
                    assert (
                        mac_issue_cycle(i, k, pe, spacing)
                        - mac_issue_cycle(i, k - 1, pe, spacing)
                    ) == spacing

    def test_wavefront_dependencies_retired(self):
        # Every wavefront-k MAC issues at least PL cycles after the
        # wavefront-(k-1) MAC on the same accumulator whenever
        # spacing >= PL: the batching is hazard-free by construction.
        n, pl = 5, 9
        spacing = max(n, pl)
        for pe in range(n):
            for i in range(n):
                for k in range(1, n):
                    gap = mac_issue_cycle(i, k, pe, spacing) - mac_issue_cycle(
                        i, k - 1, pe, spacing
                    )
                    assert gap >= pl

    @pytest.mark.parametrize("n,pl", [(2, 9), (4, 17), (8, 8), (12, 5), (17, 17)])
    def test_array_cycles_matches_stepped(self, n, pl, rng):
        lm, la = pl // 2, pl - pl // 2
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        run = MatmulArray(FP32, n, lm, la).run(a, b)
        assert array_cycles(n, pl, max(n, pl)) == run.cycles

    def test_hazard_count_zero_iff_spacing_covers_latency(self):
        assert hazard_count(8, 8, 8) == 0
        assert hazard_count(8, 9, 16) == 0
        assert hazard_count(1, 5, 1) == 0  # single update per accumulator
        assert hazard_count(4, 17, 4) == 4 * 4 * 3

    def test_hazard_count_matches_stepped_exception_message(self, rng):
        n, lm, la = 4, 7, 10
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        with pytest.raises(RAWHazard, match=f"^{hazard_count(n, lm + la, n)} "):
            MatmulArray(FP32, n, lm, la, pad_schedule=False).run(a, b)


class TestConstructionAndFactory:
    def test_rejects_bad_problem_size(self):
        with pytest.raises(ValueError, match="problem size"):
            BatchedMatmulArray(FP32, 0, 2, 3)

    def test_rejects_wrong_shape_like_stepped(self, rng):
        arr = BatchedMatmulArray(FP32, 3, 2, 3)
        bad = [[FP32.zero()] * 2] * 3
        with pytest.raises(ValueError, match="must be 3x3"):
            arr.run(bad, rand_matrix(FP32, 3, rng))

    def test_rejects_out_of_range_words(self):
        arr = BatchedMatmulArray(FP32, 2, 2, 3)
        bad = [[1 << 40, 0], [0, 0]]
        good = [[FP32.zero()] * 2] * 2
        with pytest.raises(ValueError, match="out-of-range"):
            arr.run(bad, good)

    def test_accepts_numpy_input(self, rng):
        n = 4
        a = np.array(rand_matrix(FP32, n, rng), dtype=np.uint64)
        b = np.array(rand_matrix(FP32, n, rng), dtype=np.uint64)
        run = BatchedMatmulArray(FP32, n, 2, 3).run(a, b)
        stepped = MatmulArray(FP32, n, 2, 3).run(a.tolist(), b.tolist())
        assert run.c == stepped.c

    def test_factory_backends(self):
        assert isinstance(
            make_matmul_array(FP32, 4, 2, 3, backend="stepped"), MatmulArray
        )
        assert isinstance(
            make_matmul_array(FP32, 4, 2, 3, backend="batched"), BatchedMatmulArray
        )
        assert isinstance(
            make_matmul_array(FP32, 4, 2, 3, backend="fma"), FusedMatmulArray
        )
        assert set(MATMUL_BACKENDS) == {"stepped", "batched", "fma"}

    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown matmul backend"):
            make_matmul_array(FP32, 4, 2, 3, backend="quantum")

    def test_factory_forwards_schedule_options(self, rng):
        arr = make_matmul_array(
            FP32, 4, 7, 10, mode=RoundingMode.TRUNCATE, pad_schedule=False
        )
        assert arr.mode is RoundingMode.TRUNCATE
        assert not arr.pad_schedule
        with pytest.raises(RAWHazard):
            arr.run(rand_matrix(FP32, 4, rng), rand_matrix(FP32, 4, rng))


class TestFusedBackend:
    """The fma backend: one rounding per MAC, schedule untouched."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", list(RoundingMode))
    def test_bit_identical_to_scalar_fused_pe(self, fmt, mode, rng):
        from repro.fp.mac import fp_fma

        n = 5
        a = rand_matrix(fmt, n, rng)
        b = rand_matrix(fmt, n, rng)
        run = FusedMatmulArray(fmt, n, 3, 5, mode=mode).run(a, b)
        for i in range(n):
            for j in range(n):
                acc = fmt.zero()
                for k in range(n):
                    acc, _ = fp_fma(fmt, a[i][k], b[k][j], acc, mode)
                assert run.c[i][j] == acc, (i, j)

    def test_matches_functional_fma_reference(self, rng):
        n = 6
        a = np.array(rand_matrix(FP32, n, rng), dtype=np.uint64)
        b = np.array(rand_matrix(FP32, n, rng), dtype=np.uint64)
        run = FusedMatmulArray(FP32, n, 3, 5).run(a, b)
        want = functional_matmul_fma(FP32, a, b)
        assert run.c == [[int(want[i][j]) for j in range(n)] for i in range(n)]

    def test_halves_roundings_and_keeps_schedule(self, rng):
        n = 6
        fused = FusedMatmulArray(FP32, n, 3, 5)
        chained = BatchedMatmulArray(FP32, n, 3, 5)
        assert fused.roundings_per_mac == 1
        assert chained.roundings_per_mac == 2
        assert fused.total_roundings == n ** 3
        assert fused.total_roundings < chained.total_roundings
        a = rand_matrix(FP32, n, rng)
        b = rand_matrix(FP32, n, rng)
        frun = fused.run(a, b)
        crun = chained.run(a, b)
        # Fusing changes the PE datapath, never the systolic schedule.
        assert frun.cycles == crun.cycles
        assert frun.issued_macs == crun.issued_macs
        assert frun.padded_cycles == crun.padded_cycles
        assert frun.hazards == crun.hazards
        assert frun.pes == crun.pes

    def test_fused_differs_where_product_rounding_matters(self, rng):
        # With enough random accumulations some product's round-off must
        # show: if the two backends never diverged, fusing would be a
        # no-op and the ablation meaningless.
        diverged = False
        for _ in range(5):
            n = 8
            a = rand_matrix(FP32, n, rng)
            b = rand_matrix(FP32, n, rng)
            frun = FusedMatmulArray(FP32, n, 3, 5).run(a, b)
            crun = BatchedMatmulArray(FP32, n, 3, 5).run(a, b)
            if frun.c != crun.c:
                diverged = True
                break
        assert diverged

    def test_unpadded_hazard_raises_like_chained(self, rng):
        with pytest.raises(RAWHazard):
            FusedMatmulArray(FP32, 4, 7, 10, pad_schedule=False).run(
                rand_matrix(FP32, 4, rng), rand_matrix(FP32, 4, rng)
            )

    def test_fused_matmul_ablation_table(self):
        from repro.experiments.ablations import fused_matmul_ablation

        table = fused_matmul_ablation(n=4, seed=7)
        text = str(table)
        assert "fused MAC" in text and "chained (mul -> add)" in text
        rows = table.rows
        chained_row = next(r for r in rows if r[0].startswith("chained"))
        fused_row = next(r for r in rows if r[0] == "fused MAC")
        assert fused_row[1] * 2 == chained_row[1]  # half the roundings
        assert fused_row[2] <= chained_row[2]  # never less accurate on mean


class TestWavefrontTracing:
    """Traced runs record one kernel.wavefront span per round."""

    def test_vectorized_run_opens_one_span_per_wavefront(self, rng):
        # FP64 words don't pack into 64-bit limbs, so this exercises
        # the unpacked (vectorized) wavefront loop.
        from repro.obs.trace import Trace

        n = 6
        a, b = rand_matrix(FP64, n, rng), rand_matrix(FP64, n, rng)
        array = BatchedMatmulArray(FP64, n, 3, 5)
        assert array.packing_width == 1
        trace = Trace("kernel-test")
        run = array.run(a, b, trace=trace)
        spans = [s for s in trace.spans if s.name == "kernel.wavefront"]
        assert len(spans) == n
        assert [s.tags["k"] for s in spans] == list(range(n))
        assert all(s.tags["path"] == "vectorized" for s in spans)
        assert all(s.t1 >= s.t0 for s in spans)
        # Tracing must not perturb the arithmetic.
        untraced = BatchedMatmulArray(FP64, n, 3, 5).run(a, b)
        assert run.c == untraced.c

    def test_packed_run_tags_width(self, rng):
        from repro.fp.format import FP16
        from repro.obs.trace import Trace

        n = 5
        a, b = rand_matrix(FP16, n, rng), rand_matrix(FP16, n, rng)
        trace = Trace("kernel-test-packed")
        array = BatchedMatmulArray(FP16, n, 3, 5)
        assert array.packing_width > 1, "fp16 should pack"
        run = array.run(a, b, trace=trace)
        spans = [s for s in trace.spans if s.name == "kernel.wavefront"]
        assert len(spans) == n
        assert all(s.tags["path"] == "packed" for s in spans)
        assert all(s.tags["width"] == array.packing_width for s in spans)
        untraced = BatchedMatmulArray(FP16, n, 3, 5).run(a, b)
        assert run.c == untraced.c

    def test_untraced_run_records_nothing(self, rng):
        n = 4
        a, b = rand_matrix(FP32, n, rng), rand_matrix(FP32, n, rng)
        BatchedMatmulArray(FP32, n, 3, 5).run(a, b)  # no trace: no error
