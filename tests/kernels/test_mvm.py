"""Tests for the matrix-vector kernel."""

import numpy as np
import pytest

from repro.fp.format import FP32, FP64
from repro.fp.value import FPValue
from repro.kernels.mvm import MVMArray, functional_mvm


def mat(fmt, rows, cols, rng):
    return [
        [FPValue.from_float(fmt, rng.uniform(-2, 2)).bits for _ in range(cols)]
        for _ in range(rows)
    ]


def vec(fmt, n, rng):
    return [FPValue.from_float(fmt, rng.uniform(-2, 2)).bits for _ in range(n)]


class TestMVM:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (3, 5), (8, 8), (5, 20)])
    def test_matches_functional(self, rows, cols, rng):
        arr = MVMArray(FP32, rows, mul_latency=4, add_latency=7)
        a = mat(FP32, rows, cols, rng)
        x = vec(FP32, cols, rng)
        run = arr.run(a, x)
        expected, _ = functional_mvm(FP32, a, x, lanes=arr.lanes)
        assert run.y == expected

    def test_matches_numpy_closely(self, rng):
        rows, cols = 6, 40
        arr = MVMArray(FP64, rows, 5, 9)
        a = mat(FP64, rows, cols, rng)
        x = vec(FP64, cols, rng)
        run = arr.run(a, x)
        a_np = np.array([[FPValue(FP64, b).to_float() for b in r] for r in a])
        x_np = np.array([FPValue(FP64, b).to_float() for b in x])
        y_np = a_np @ x_np
        got = np.array([FPValue(FP64, b).to_float() for b in run.y])
        assert np.allclose(got, y_np, rtol=1e-13)

    def test_cycle_skew(self, rng):
        arr = MVMArray(FP32, 4, 2, 3)
        a = mat(FP32, 4, 10, rng)
        x = vec(FP32, 10, rng)
        run = arr.run(a, x)
        single = arr.pes[0].run(a[0], x).cycles
        assert run.cycles == (4 - 1) + single  # last PE's skew dominates

    def test_shape_validation(self, rng):
        arr = MVMArray(FP32, 3, 2, 3)
        with pytest.raises(ValueError, match="rows"):
            arr.run(mat(FP32, 2, 4, rng), vec(FP32, 4, rng))
        bad = mat(FP32, 3, 4, rng)
        bad[1] = bad[1][:-1]
        with pytest.raises(ValueError, match="length"):
            arr.run(bad, vec(FP32, 4, rng))

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            MVMArray(FP32, 0, 2, 3)

    def test_gflops_estimate(self):
        arr = MVMArray(FP32, 16, 5, 9)
        g = arr.sustained_gflops(n_cols=256, frequency_mhz=200.0)
        # 16 PEs x 2 FLOP/cycle at 200 MHz = 6.4 GFLOPS ceiling.
        assert 0 < g < 6.4
        # Long vectors approach the ceiling.
        g_long = arr.sustained_gflops(n_cols=10_000, frequency_mhz=200.0)
        assert g_long > 0.95 * 6.4

    def test_short_vectors_waste_throughput(self):
        arr = MVMArray(FP32, 16, 5, 9)
        short = arr.sustained_gflops(n_cols=16, frequency_mhz=200.0)
        long = arr.sustained_gflops(n_cols=1024, frequency_mhz=200.0)
        assert short < 0.5 * long
