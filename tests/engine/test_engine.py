"""Engine orchestration: ordering, memoization, parallel equivalence,
retry/timeout robustness, and metrics."""

import pytest

from repro.engine import Engine, Job, JobFailure, ResultCache
from repro.experiments import experiment_job, experiment_jobs

from tests.engine import helpers


def _add_jobs(n):
    return [Job.create(f"t.add{i}", helpers.add, a=i, b=i) for i in range(n)]


class TestOrdering:
    def test_results_in_submission_order_serial(self):
        results = Engine().run(_add_jobs(5))
        assert results == [0, 2, 4, 6, 8]

    def test_results_in_submission_order_parallel(self):
        # Completion order is scrambled by making early jobs slow.
        jobs = [
            Job.create(f"t.sq{x}", helpers.slow_square, x=x,
                       delay_s=0.3 if x == 0 else 0.0)
            for x in range(4)
        ]
        assert Engine(workers=2).run(jobs) == [0, 1, 4, 9]


class TestMemoAndCache:
    def test_in_process_memo_deduplicates(self):
        engine = Engine()
        job = Job.create("t.add", helpers.add, a=1, b=2)
        assert engine.run([job, job]) == [3, 3]
        assert engine.metrics.computed == 1
        assert engine.metrics.memo_hits == 1

    def test_cold_then_warm_run(self, tmp_path):
        job = Job.create("t.add", helpers.add, a=1, b=2)
        cold = Engine(cache=ResultCache(tmp_path / "c"))
        assert cold.evaluate(job) == 3
        assert cold.metrics.cache_hits == 0 and cold.metrics.computed == 1
        warm = Engine(cache=ResultCache(tmp_path / "c"))
        assert warm.evaluate(job) == 3
        assert warm.metrics.cache_hits == 1 and warm.metrics.computed == 0

    def test_version_bump_forces_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        Engine(cache=cache).evaluate(Job.create("t.add", helpers.add, a=1, b=2))
        bumped = Engine(cache=cache)
        bumped.evaluate(
            Job.create("t.add", helpers.add, a=1, b=2, version="2.0.0/engine-1")
        )
        assert bumped.metrics.cache_hits == 0
        assert bumped.metrics.computed == 1


class TestParallelEquivalence:
    """--parallel must not change a single byte of any experiment."""

    @pytest.mark.parametrize("name", ["fig2a", "table1"])
    def test_parallel_matches_serial(self, name):
        serial = Engine().evaluate(experiment_job(name))
        # Two jobs so the parallel path actually engages the pool.
        other = "table1" if name == "fig2a" else "fig2a"
        par_results = Engine(workers=2).run(
            [experiment_job(name), experiment_job(other)]
        )
        assert str(par_results[0]) == str(serial)
        assert par_results[0].to_csv() == serial.to_csv()

    def test_warm_cache_matches_cold_byte_identically(self, tmp_path):
        names = ["fig2a", "table1"]
        cold = Engine(cache=ResultCache(tmp_path / "c"), workers=2)
        cold_results = cold.run(experiment_jobs(names))
        warm = Engine(cache=ResultCache(tmp_path / "c"))
        warm_results = warm.run(experiment_jobs(names))
        assert warm.metrics.hit_rate == 1.0
        for a, b in zip(cold_results, warm_results):
            assert str(a) == str(b)
            assert a.to_csv() == b.to_csv()


class TestRetryAndTimeout:
    def test_serial_retry_recovers_flaky_job(self, tmp_path):
        marker = tmp_path / "flaky.marker"
        job = Job.create("t.flaky", helpers.fails_first_time, marker=str(marker))
        engine = Engine(retries=1)
        assert engine.evaluate(job) == 42
        assert engine.metrics.retries == 1

    def test_exhausted_retries_raise_job_failure(self):
        engine = Engine(retries=2)
        job = Job.create("t.boom", helpers.always_fails, message="kaput")
        with pytest.raises(JobFailure, match="kaput"):
            engine.evaluate(job)
        assert engine.metrics.failed == 1
        # sibling jobs still complete before the failure surfaces
        engine2 = Engine(retries=0)
        with pytest.raises(JobFailure):
            engine2.run([Job.create("t.boom", helpers.always_fails)] + _add_jobs(2))
        assert engine2.metrics.computed == 2

    def test_parallel_failure_falls_back_to_serial(self, tmp_path):
        # Fails in the worker, succeeds on the in-parent serial retry.
        marker = tmp_path / "flaky.marker"
        jobs = [
            Job.create("t.flaky", helpers.fails_first_time, marker=str(marker)),
            Job.create("t.add", helpers.add, a=1, b=1),
        ]
        engine = Engine(workers=2, retries=1)
        assert engine.run(jobs) == [42, 2]
        record = next(r for r in engine.metrics.records if r.name == "t.flaky")
        assert "serial-fallback" in record.backend

    def test_parallel_timeout_falls_back_to_serial(self, tmp_path):
        # Sleeps past the deadline in the worker; the serial fallback
        # (marker now present) returns promptly.
        marker = tmp_path / "slow.marker"
        jobs = [
            Job.create("t.slow", helpers.sleeps_first_time,
                       marker=str(marker), delay_s=5.0, timeout_s=0.5),
            Job.create("t.add", helpers.add, a=2, b=3),
        ]
        engine = Engine(workers=2)
        assert engine.run(jobs) == [7, 5]
        record = next(r for r in engine.metrics.records if r.name == "t.slow")
        assert "serial-fallback" in record.backend


class TestMetrics:
    def test_summary_reports_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        Engine(cache=cache).run(_add_jobs(3))
        warm = Engine(cache=cache)
        warm.run(_add_jobs(3))
        summary = warm.metrics.summary()
        assert "3 job(s)" in summary
        assert "3 hit(s)" in summary
        assert "100% hit rate" in summary

    def test_per_job_wall_time_recorded(self):
        engine = Engine()
        engine.evaluate(Job.create("t.sq", helpers.slow_square, x=3, delay_s=0.05))
        (record,) = engine.metrics.records
        assert record.wall_s >= 0.05
        assert engine.metrics.total_wall_s >= 0.05

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            Engine(workers=0)
