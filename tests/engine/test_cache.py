"""Persistent cache: round-trips, versioned invalidation, maintenance."""

import json

from repro.engine import Job, ResultCache
from repro.engine.job import CACHE_VERSION
from repro.experiments import experiment_job

from tests.engine import helpers


def _job(**kwargs):
    return Job.create("t.add", helpers.add, **kwargs)


class TestRoundTrip:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        hit, result = cache.get(_job(a=1, b=2))
        assert not hit and result is None

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.put(job, 3, wall_s=0.5)
        hit, result = cache.get(job)
        assert hit and result == 3

    def test_experiment_result_round_trips_byte_identically(self, tmp_path):
        # The acceptance contract: a warm run renders exactly what the
        # cold run rendered, text and CSV alike.
        cache = ResultCache(tmp_path / "c")
        job = experiment_job("table1")
        table = job.run()
        cache.put(job, table)
        hit, restored = cache.get(job)
        assert hit
        assert str(restored) == str(table)
        assert restored.to_csv() == table.to_csv()

    def test_distinct_jobs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        hit, _ = cache.get(_job(a=1, b=3))
        assert not hit


class TestInvalidation:
    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        old = Job.create("t.add", helpers.add, a=1, b=2, version="1.0.0/engine-1")
        cache.put(old, 3)
        new = Job.create("t.add", helpers.add, a=1, b=2, version="2.0.0/engine-1")
        hit, _ = cache.get(new)
        assert not hit
        # the old version is still served to old-version jobs
        assert cache.get(old) == (True, 3)

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.put(job, 3)
        blob = next((tmp_path / "c").glob("*/*.json"))
        blob.write_text("{ not json")
        hit, result = cache.get(job)
        assert not hit and result is None

    def test_torn_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.put(job, 3)
        blob = next((tmp_path / "c").glob("*/*.json"))
        doc = json.loads(blob.read_text())
        doc["payload"] = doc["payload"][: len(doc["payload"]) // 2]
        blob.write_text(json.dumps(doc))
        hit, _ = cache.get(job)
        assert not hit


class TestMaintenance:
    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        cache.put(_job(a=2, b=3), 5)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert dict(stats.by_version) == {CACHE_VERSION: 2}
        assert "entries:     2" in stats.render()

    def test_clear_all(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        cache.put(_job(a=2, b=3), 5)
        assert cache.clear() == 2
        assert cache.stats().entries == 0

    def test_clear_stale_only_keeps_current_version(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)  # current version
        stale = Job.create("t.add", helpers.add, a=9, b=9, version="0.9/engine-0")
        cache.put(stale, 18)
        removed = cache.clear(stale_only=True, current_version=CACHE_VERSION)
        assert removed == 1
        assert cache.get(_job(a=1, b=2)) == (True, 3)
        assert cache.get(stale)[0] is False

    def test_blob_records_job_description(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.put(job, 3)
        doc = json.loads(next((tmp_path / "c").glob("*/*.json")).read_text())
        assert doc["key"] == job.key
        assert doc["version"] == CACHE_VERSION
        assert doc["job"]["name"] == "t.add"
        assert doc["job"]["kwargs"] == {"a": 1, "b": 2}


class TestActivityAccounting:
    """Hit/miss/put/evict counters persist alongside the cache."""

    def test_counters_track_cache_traffic(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.get(job)  # miss
        cache.put(job, 3)
        cache.get(job)  # hit
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.puts == 1
        assert stats.evictions == 0

    def test_counters_round_trip_across_instances(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.get(job)  # miss (persisted at stats time below)
        cache.put(job, 3)  # put (flushes immediately)
        cache.get(job)  # hit
        cache.stats()  # flush everything
        # A fresh instance — a later process — sees the lifetime totals.
        reopened = ResultCache(tmp_path / "c")
        stats = reopened.stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.puts == 1

    def test_clear_counts_evictions(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        cache.put(_job(a=2, b=3), 5)
        cache.clear()
        assert ResultCache(tmp_path / "c").stats().evictions == 2

    def test_by_namespace_byte_totals(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        cache.put(_job(a=2, b=3), 5)
        other = Job.create("verify.diff/fp32/mul", helpers.add, a=1, b=1)
        cache.put(other, 2)
        stats = cache.stats()
        by_ns = dict(stats.by_namespace)
        assert set(by_ns) == {"t", "verify"}
        assert by_ns["t"] > 0 and by_ns["verify"] > 0
        assert sum(by_ns.values()) == stats.total_bytes

    def test_corrupt_sidecar_degrades_to_zero(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        (tmp_path / "c" / "activity.json").write_text("{not json")
        stats = ResultCache(tmp_path / "c").stats()
        assert (stats.hits, stats.misses, stats.puts) == (0, 0, 0)

    def test_sidecar_never_collides_with_blobs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(_job(a=1, b=2), 3)
        cache.stats()
        assert (tmp_path / "c" / "activity.json").is_file()
        # The blob glob (*/*.json) must not pick up the root sidecar.
        assert cache.stats().entries == 1

    def test_lookups_on_absent_cache_create_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "missing")
        for _ in range(40):  # well past the flush batch size
            cache.get(_job(a=1, b=2))
        assert not (tmp_path / "missing").exists()

    def test_render_mentions_activity_and_namespaces(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job(a=1, b=2)
        cache.get(job)
        cache.put(job, 3)
        cache.get(job)
        text = cache.stats().render()
        assert "activity:    1 hit(s), 1 miss(es), 1 put(s), 0 evicted" in text
        assert "ns t:" in text
