"""Job identity: canonicalization and content-addressed keys."""

import pytest

import repro
from repro.engine import Job, canonicalize, job_key
from repro.engine.job import CACHE_VERSION, MODEL_VERSION
from repro.fabric.device import SpeedGrade
from repro.fabric.toolchain import Objective
from repro.fp.format import FP32, FP64
from repro.units.explorer import UnitKind, sweep_job

from tests.engine import helpers


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(True) is True
        assert canonicalize(3) == 3
        assert canonicalize("x") == "x"

    def test_floats_use_shortest_repr(self):
        assert canonicalize(0.1) == {"$float": "0.1"}
        assert canonicalize(1.0) == {"$float": "1.0"}

    def test_enum(self):
        doc = canonicalize(UnitKind.ADDER)
        assert doc["$enum"].endswith("UnitKind")
        assert doc["value"] == "adder"

    def test_dataclass_recurses_fields(self):
        doc = canonicalize(FP32)
        assert doc["$dataclass"].endswith("FPFormat")
        assert doc["fields"]["exp_bits"] == 8
        assert doc["fields"]["man_bits"] == 23

    def test_dict_order_independent(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())

    def test_local_function_rejected(self):
        with pytest.raises(TypeError, match="module-level"):
            canonicalize(lambda: None)


class TestJobKey:
    def test_kwarg_order_does_not_matter(self):
        a = Job.create("t", helpers.add, a=1, b=2)
        b = Job.create("t", helpers.add, b=2, a=1)
        assert a.key == b.key

    def test_key_is_stable_across_instances(self):
        assert (
            Job.create("t", helpers.add, a=1, b=2).key
            == Job.create("t", helpers.add, a=1, b=2).key
        )

    def test_params_change_key(self):
        assert (
            Job.create("t", helpers.add, a=1, b=2).key
            != Job.create("t", helpers.add, a=1, b=3).key
        )

    def test_name_and_fn_change_key(self):
        a = Job.create("t", helpers.add, a=1, b=2)
        assert a.key != Job.create("u", helpers.add, a=1, b=2).key
        assert a.key != Job.create("t", helpers.slow_square, x=1).key

    def test_version_changes_key(self):
        a = Job.create("t", helpers.add, a=1, b=2)
        b = Job.create("t", helpers.add, a=1, b=2, version="999.0/engine-1")
        assert a.version == CACHE_VERSION
        assert a.key != b.key

    def test_timeout_excluded_from_key(self):
        a = Job.create("t", helpers.add, a=1, b=2)
        b = Job.create("t", helpers.add, a=1, b=2, timeout_s=5.0)
        assert a.key == b.key

    def test_rich_config_objects_hash(self):
        key = job_key(
            "sweep",
            helpers.add,
            {
                "fmt": FP64,
                "kind": UnitKind.MULTIPLIER,
                "objective": Objective.BALANCED,
                "grade": SpeedGrade.MINUS_7,
            },
            CACHE_VERSION,
        )
        assert len(key) == 64
        int(key, 16)  # valid hex digest

    def test_run_evaluates_kwargs(self):
        assert Job.create("t", helpers.add, a=2, b=5).run() == 7

    def test_model_version_matches_package(self):
        # job.py spells the version out to stay below repro.__init__ in
        # the import graph; this pin keeps the two from drifting.
        assert MODEL_VERSION == repro.__version__


class TestSweepJob:
    def test_default_max_stages_resolved_before_hashing(self):
        dp = UnitKind.ADDER.datapath(FP32)
        implicit = sweep_job(FP32, UnitKind.ADDER)
        explicit = sweep_job(
            FP32, UnitKind.ADDER, max_stages=dp.natural_max_stages + 4
        )
        assert implicit.key == explicit.key

    def test_distinct_spaces_get_distinct_keys(self):
        assert (
            sweep_job(FP32, UnitKind.ADDER).key
            != sweep_job(FP32, UnitKind.MULTIPLIER).key
        )
        assert (
            sweep_job(FP32, UnitKind.ADDER).key
            != sweep_job(FP64, UnitKind.ADDER).key
        )
