"""Module-level job bodies for the engine tests.

Jobs must wrap importable module-level callables (they cross into
process-pool workers by name), so the failure-injection functions live
here rather than inline in the tests.  State that must survive process
boundaries and retries is carried through marker files.
"""

from __future__ import annotations

import os
import time


def add(a: int, b: int) -> int:
    return a + b


def slow_square(x: int, delay_s: float = 0.0) -> int:
    time.sleep(delay_s)
    return x * x


def always_fails(message: str = "injected failure") -> None:
    raise RuntimeError(message)


def fails_first_time(marker: str, value: int = 42) -> int:
    """Fail on the first invocation, succeed on any retry.

    The marker file makes the flakiness visible across retries and
    across process boundaries.
    """
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("flaky: first attempt fails")
    return value


def sleeps_first_time(marker: str, delay_s: float, value: int = 7) -> int:
    """Sleep past any reasonable timeout once, then return promptly."""
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        time.sleep(delay_s)
    return value
