"""Unit tests for the vendor-core comparison points."""

from repro.baselines.vendor_cores import (
    NALLATECH_ADD32,
    NALLATECH_MUL32,
    NEU_ADD64,
    NEU_MUL64,
    QUIXILICA_ADD32,
    QUIXILICA_MUL32,
    TABLE3_CORES,
    TABLE4_CORES,
)


class TestVendorCores:
    def test_metric_math(self):
        core = QUIXILICA_ADD32
        assert core.freq_per_area == core.clock_mhz / core.slices
        assert core.system_slices == core.slices + core.conversion_slices
        assert core.system_freq_per_area < core.freq_per_area

    def test_custom_format_cores_pay_conversion(self):
        for core in TABLE3_CORES:
            assert not core.ieee_format
            assert core.conversion_slices > 0

    def test_neu_cores_are_ieee(self):
        for core in TABLE4_CORES:
            assert core.ieee_format
            assert core.conversion_slices == 0
            assert core.system_freq_per_area == core.freq_per_area

    def test_neu_cores_are_shallow_and_slow(self):
        """Paper Table 4 narrative: the library cores are far slower."""
        assert NEU_ADD64.stages <= 5
        assert NEU_ADD64.clock_mhz < 100.0
        assert NEU_MUL64.clock_mhz < 100.0

    def test_power_estimate_positive_and_scales(self):
        for core in (NALLATECH_ADD32, NEU_MUL64, QUIXILICA_MUL32):
            p100 = core.power_mw(100.0)
            p200 = core.power_mw(200.0)
            assert p100 > 0
            assert p200 > p100

    def test_multipliers_declare_mult18(self):
        assert NALLATECH_MUL32.mult18 == 4
        assert NEU_MUL64.mult18 == 16
        assert NALLATECH_ADD32.mult18 == 0

    def test_ff_lut_estimates(self):
        core = NALLATECH_ADD32
        assert core.flipflops > 0
        assert core.luts > core.slices
