"""Unit tests for the processor baselines."""

from repro.baselines.processors import (
    ALL_PROCESSORS,
    PENTIUM4_2_53,
    POWERPC_G4_1000,
)


class TestBaselines:
    def test_precision_dispatch(self):
        assert PENTIUM4_2_53.gflops(32) == PENTIUM4_2_53.sgemm_gflops
        assert PENTIUM4_2_53.gflops(64) == PENTIUM4_2_53.dgemm_gflops
        assert PENTIUM4_2_53.gflops(48) == PENTIUM4_2_53.dgemm_gflops

    def test_gflops_per_watt(self):
        assert PENTIUM4_2_53.gflops_per_watt(32) == (
            PENTIUM4_2_53.sgemm_gflops / PENTIUM4_2_53.power_w
        )

    def test_paper_consistency_p4(self):
        """The paper's 19.6 GFLOPS is '6X' the P4 -> P4 ~3.3 sustained."""
        assert 5.5 <= 19.6 / PENTIUM4_2_53.sgemm_gflops <= 6.5

    def test_paper_consistency_g4(self):
        """... and '3X' the G4 -> G4 ~6.5 sustained (AltiVec single)."""
        assert 2.5 <= 19.6 / POWERPC_G4_1000.sgemm_gflops <= 3.5

    def test_g4_double_is_scalar_only(self):
        assert POWERPC_G4_1000.dgemm_gflops < POWERPC_G4_1000.sgemm_gflops / 4

    def test_registry(self):
        assert PENTIUM4_2_53 in ALL_PROCESSORS
        assert POWERPC_G4_1000 in ALL_PROCESSORS
