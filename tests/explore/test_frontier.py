"""Tests for the shared sense-aware Pareto machinery."""

import random

import pytest

from repro.explore.frontier import argbest, dominates, pareto_front, pareto_indices


def brute_force_front(vectors, senses):
    """Reference O(n^2) scalar implementation, for equivalence checks."""
    return tuple(
        i
        for i, v in enumerate(vectors)
        if not any(
            dominates(w, v, senses) for j, w in enumerate(vectors) if j != i
        )
    )


class TestDominates:
    def test_min_sense(self):
        assert dominates((1, 1), (2, 2), ("min", "min"))
        assert dominates((1, 2), (2, 2), ("min", "min"))
        assert not dominates((1, 3), (2, 2), ("min", "min"))

    def test_max_sense(self):
        assert dominates((2, 2), (1, 1), ("max", "max"))
        assert not dominates((1, 1), (2, 2), ("max", "max"))

    def test_mixed_senses(self):
        # (area min, clock max): smaller and faster dominates.
        assert dominates((100, 300), (200, 250), ("min", "max"))
        assert not dominates((100, 200), (200, 250), ("min", "max"))

    def test_equal_vectors_never_dominate(self):
        assert not dominates((1, 2), (1, 2), ("min", "max"))

    def test_irreflexive_antisymmetric(self):
        rng = random.Random(7)
        senses = ("min", "max", "min")
        vs = [tuple(rng.randint(0, 4) for _ in range(3)) for _ in range(40)]
        for a in vs:
            assert not dominates(a, a, senses)
            for b in vs:
                if dominates(a, b, senses):
                    assert not dominates(b, a, senses)

    def test_rejects_unknown_sense(self):
        with pytest.raises(ValueError, match="unknown sense"):
            dominates((1,), (2,), ("down",))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths disagree"):
            dominates((1, 2), (1,), ("min",))


class TestParetoIndices:
    def test_matches_brute_force_on_random_grids(self):
        rng = random.Random(11)
        for trial in range(20):
            n = rng.randint(1, 60)
            k = rng.randint(1, 4)
            senses = tuple(rng.choice(("min", "max")) for _ in range(k))
            # Small value range on purpose: dense ties and duplicates.
            vectors = [
                tuple(float(rng.randint(0, 5)) for _ in range(k))
                for _ in range(n)
            ]
            assert pareto_indices(vectors, senses) == brute_force_front(
                vectors, senses
            ), f"trial {trial}: {senses} {vectors}"

    def test_preserves_enumeration_order(self):
        idx = pareto_indices([(2, 1), (9, 9), (1, 2)], ("min", "min"))
        assert idx == (0, 2)

    def test_duplicates_all_survive(self):
        idx = pareto_indices([(1, 1), (1, 1), (2, 2)], ("min", "min"))
        assert idx == (0, 1)

    def test_empty(self):
        assert pareto_indices([], ("min",)) == ()

    def test_single_point_is_frontier(self):
        assert pareto_indices([(3.0, 4.0)], ("min", "max")) == (0,)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected shape"):
            pareto_indices([(1, 2)], ("min",))

    def test_front_wrapper_returns_items(self):
        items = ["a", "b", "c"]
        front = pareto_front(items, [(1,), (2,), (1,)], ("min",))
        assert front == ["a", "c"]

    def test_front_wrapper_length_mismatch(self):
        with pytest.raises(ValueError, match="items but"):
            pareto_front(["a"], [(1,), (2,)], ("min",))


class TestArgbest:
    def test_min_and_max(self):
        assert argbest([3.0, 1.0, 2.0], "min") == 1
        assert argbest([3.0, 1.0, 2.0], "max") == 0

    def test_tiebreak_columns(self):
        # Primary ties; second column decides.
        assert argbest([1.0, 1.0], "min", tiebreaks=([5.0, 2.0],)) == 1

    def test_ties_fall_to_enumeration_order(self):
        assert argbest([1.0, 1.0], "min") == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            argbest([], "min")

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError, match="unknown sense"):
            argbest([1.0], "best")

    def test_tiebreak_length_mismatch(self):
        with pytest.raises(ValueError, match="tiebreak column length"):
            argbest([1.0, 2.0], "min", tiebreaks=([1.0],))
