"""Tests for constrained recommendation over cached frontiers.

The load-bearing property: a recommendation is provably on the Pareto
frontier — no enumerated design in the queried grid may dominate it
over the full metric table — and it satisfies every constraint.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import CACHE_VERSION, Engine
from repro.explore.catalog import (
    metric_table,
    metric_senses,
    objective_vectors,
    unit_frontier_job,
)
from repro.explore.frontier import dominates
from repro.explore.recommend import (
    QueryError,
    UnsatisfiableError,
    payload_bytes,
    recommend,
)

GRID = {"kinds": ["adder"], "formats": ["fp16"]}


@pytest.fixture(scope="module")
def engine():
    # One shared in-process engine: the frontier job is computed once
    # and every subsequent query in the module is a memo hit.
    return Engine()


@pytest.fixture(scope="module")
def adder_fp16(engine):
    from repro.fp.format import FP16
    from repro.units.explorer import UnitKind

    return engine.evaluate(
        unit_frontier_job(kinds=(UnitKind.ADDER,), formats=(FP16,))
    )


def record_by_id(frontier, rid):
    for r in frontier.records:
        if r.id == rid:
            return r
    raise AssertionError(f"recommended id {rid!r} not in the grid")


class TestRecommendProperty:
    def queries(self, frontier):
        slices = sorted(r.slices for r in frontier.records)
        clocks = sorted(r.clock_mhz for r in frontier.records)
        mid_slices = slices[len(slices) // 2]
        mid_clock = clocks[len(clocks) // 2]
        yield {**GRID}
        yield {**GRID, "objective": "clock_mhz"}
        yield {**GRID, "objective": "slices"}
        yield {**GRID, "objective": "latency_ns"}
        yield {**GRID, "objective": "energy_per_op_nj",
               "constraints": {"min_clock_mhz": mid_clock}}
        yield {**GRID, "objective": "mops_per_watt",
               "constraints": {"max_slices": mid_slices}}
        yield {**GRID, "objective": "clock_mhz",
               "constraints": {"max_slices": mid_slices,
                               "min_throughput_mops": clocks[0]}}

    def test_recommendation_is_never_dominated(self, engine, adder_fp16):
        senses = metric_senses("units")
        vectors = objective_vectors("units", adder_fp16.records)
        frontier_ids = {adder_fp16.records[i].id for i in adder_fp16.frontier}
        for query in self.queries(adder_fp16):
            payload = recommend(query, engine=engine)
            best = record_by_id(adder_fp16, payload["best"]["id"])
            best_vec = [fn(best) for (_s, fn) in metric_table("units").values()]
            dominators = [
                r.id
                for r, vec in zip(adder_fp16.records, vectors)
                if dominates(vec, best_vec, senses)
            ]
            assert not dominators, (
                f"{query}: {payload['best']['id']} dominated by {dominators}"
            )
            assert payload["best"]["id"] in frontier_ids

    def test_constraints_hold_on_best_and_alternatives(self, engine, adder_fp16):
        slices = sorted(r.slices for r in adder_fp16.records)
        bound = slices[len(slices) // 2]
        payload = recommend(
            {**GRID, "constraints": {"max_slices": bound}}, engine=engine
        )
        for point in [payload["best"], *payload["alternatives"]]:
            assert point["slices"] <= bound
        assert payload["constraints"] == {"max_slices": float(bound)}

    def test_objective_ordering_and_caps(self, engine, adder_fp16):
        payload = recommend({**GRID, "objective": "slices"}, engine=engine)
        assert payload["sense"] == "min"
        values = [payload["best"]["objective_value"]] + [
            a["objective_value"] for a in payload["alternatives"]
        ]
        assert values == sorted(values)
        assert len(payload["alternatives"]) <= 5
        assert payload["best"]["id"] not in {
            a["id"] for a in payload["alternatives"]
        }

    def test_payload_shape(self, engine, adder_fp16):
        payload = recommend(dict(GRID), engine=engine)
        assert payload["space"] == "units"
        assert payload["objective"] == "mops_per_watt"
        assert payload["model_version"] == CACHE_VERSION
        grid = payload["grid"]
        assert grid["designs"] == len(adder_fp16.records)
        assert grid["frontier"] == len(adder_fp16.frontier)
        assert 1 <= grid["feasible_frontier"] <= grid["frontier"]

    def test_repeated_queries_byte_identical(self, engine):
        query = {**GRID, "constraints": {"max_slices": 10_000}}
        first = payload_bytes(recommend(query, engine=engine))
        second = payload_bytes(recommend(query, engine=engine))
        assert first == second

    def test_kernel_space(self, engine):
        payload = recommend(
            {"space": "kernel", "constraints": {"max_slices": 50_000}},
            engine=engine,
        )
        assert payload["space"] == "kernel"
        assert payload["objective"] == "energy_nj"
        assert payload["sense"] == "min"
        assert "/b" in payload["best"]["id"]
        assert payload["best"]["slices"] <= 50_000


class TestUnsatisfiable:
    def test_impossible_bound_names_the_achievable_extreme(self, engine):
        with pytest.raises(UnsatisfiableError) as err:
            recommend(
                {**GRID, "constraints": {"min_clock_mhz": 9000}}, engine=engine
            )
        message = str(err.value)
        assert "min_clock_mhz=9000" in message
        assert "grid's best is" in message
        assert err.value.violations
        key, bound, achievable = err.value.violations[0]
        assert key == "min_clock_mhz"
        assert bound == 9000
        assert achievable < 9000

    def test_joint_infeasibility_message(self, engine, adder_fp16):
        # Cheapest-area and fastest-clock bounds that no single design
        # meets at once (in a depth sweep the cheapest point is the
        # slowest, so exact extremes are individually achievable only).
        min_slices = min(r.slices for r in adder_fp16.records)
        max_clock = max(r.clock_mhz for r in adder_fp16.records)
        if any(
            r.slices <= min_slices and r.clock_mhz >= max_clock
            for r in adder_fp16.records
        ):
            pytest.skip("grid has a single simultaneously-optimal design")
        with pytest.raises(UnsatisfiableError, match="jointly"):
            recommend(
                {
                    **GRID,
                    "constraints": {
                        "max_slices": min_slices,
                        "min_clock_mhz": max_clock,
                    },
                },
                engine=engine,
            )


class TestQueryErrors:
    def test_unknown_space(self, engine):
        with pytest.raises(QueryError, match="unknown space 'widgets'"):
            recommend({"space": "widgets"}, engine=engine)

    def test_unknown_objective(self, engine):
        with pytest.raises(QueryError, match="unknown objective 'speed'"):
            recommend({**GRID, "objective": "speed"}, engine=engine)

    def test_unknown_constraint_lists_vocabulary(self, engine):
        with pytest.raises(QueryError) as err:
            recommend({**GRID, "constraints": {"max_beauty": 1}}, engine=engine)
        message = str(err.value)
        assert "unknown constraint 'max_beauty'" in message
        assert "max_slices" in message and "min_clock_mhz" in message

    def test_misaligned_direction_names_the_fix(self, engine):
        with pytest.raises(QueryError, match="use max_slices"):
            recommend({**GRID, "constraints": {"min_slices": 100}}, engine=engine)
        with pytest.raises(QueryError, match="use min_clock_mhz"):
            recommend(
                {**GRID, "constraints": {"max_clock_mhz": 100}}, engine=engine
            )

    def test_non_numeric_bound(self, engine):
        with pytest.raises(QueryError, match="numeric bound"):
            recommend(
                {**GRID, "constraints": {"max_slices": "many"}}, engine=engine
            )
        with pytest.raises(QueryError, match="numeric bound"):
            recommend(
                {**GRID, "constraints": {"max_slices": True}}, engine=engine
            )

    def test_constraints_must_be_object(self, engine):
        with pytest.raises(QueryError, match="must be an object"):
            recommend({**GRID, "constraints": [1, 2]}, engine=engine)

    def test_unknown_kind_and_format(self, engine):
        with pytest.raises(QueryError, match="unknown unit kinds"):
            recommend({"kinds": ["blender"]}, engine=engine)
        with pytest.raises(QueryError, match="unknown formats"):
            recommend({"formats": ["fp12"]}, engine=engine)

    def test_kernel_grid_validation(self, engine):
        with pytest.raises(QueryError, match="does not divide"):
            recommend(
                {"space": "kernel", "n": 16, "block_sizes": [3]}, engine=engine
            )
        with pytest.raises(QueryError, match="n must be"):
            recommend({"space": "kernel", "n": 0}, engine=engine)

    def test_query_must_be_object(self, engine):
        with pytest.raises(QueryError, match="JSON object"):
            recommend(["not", "a", "query"], engine=engine)


class TestCliBitIdentity:
    def test_cli_twin_prints_identical_payload(self, engine):
        query = {
            **GRID,
            "objective": "mops_per_watt",
            "constraints": {"max_slices": 10_000, "min_clock_mhz": 100},
        }
        direct = payload_bytes(recommend(query, engine=engine)) + b"\n"
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "recommend",
                "--kinds", "adder",
                "--formats", "fp16",
                "--objective", "mops_per_watt",
                "--constrain", "max_slices=10000",
                "--constrain", "min_clock_mhz=100",
            ],
            capture_output=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert proc.stdout == direct

    def test_cli_rejects_bad_constraint(self):
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "recommend",
                "--kinds", "adder",
                "--formats", "fp16",
                "--constrain", "min_slices=100",
            ],
            capture_output=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
        assert b"use max_slices" in proc.stderr
