#!/usr/bin/env python3
"""Core generation: emit VHDL pipeline skeletons + verification evidence.

The complete core-generator workflow the paper's infrastructure implies:

1. explore the pipeline design space and pick an implementation;
2. verify the datapath — coverage-directed testbench against the exact
   oracle, plus a mutation campaign proving the flow would catch faults;
3. emit the VHDL skeleton whose stage structure is the optimizer's
   register placement.

Run:  python examples/generate_hdl.py [outdir]
"""

import pathlib
import sys

from repro.fp import FP32, fp_add, fp_mul
from repro.fp.rounding import RoundingMode
from repro.hdl import emit_vhdl
from repro.units.explorer import UnitKind, explore
from repro.units.structural import adder_micro_ops, multiplier_micro_ops
from repro.verify import mutation_campaign, run_testbench


def main() -> None:
    outdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "generated_hdl")
    outdir.mkdir(parents=True, exist_ok=True)

    for kind, micro_ops, golden in (
        (UnitKind.ADDER, adder_micro_ops, fp_add),
        (UnitKind.MULTIPLIER, multiplier_micro_ops, fp_mul),
    ):
        # 1. Design-space choice: the throughput/area-optimal depth.
        space = explore(FP32, kind)
        opt = space.optimal.report
        print(f"{opt.unit}: opt {opt.stages} stages, {opt.slices} slices, "
              f"{opt.clock_mhz:.0f} MHz")

        # 2. Verification evidence.
        tb = run_testbench(FP32, op="add" if kind is UnitKind.ADDER else "mul",
                           samples_per_pair=2)
        ops = micro_ops(FP32, RoundingMode.NEAREST_EVEN)
        mc = mutation_campaign(
            FP32, ops, lambda a, b: golden(FP32, a, b), trials=30
        )
        print(f"  testbench: {tb.summary()}")
        print(f"  mutation campaign: {mc.detected}/{mc.trials} faults "
              f"detected ({mc.coverage:.0%})")
        assert tb.passed, "golden-model mismatch — do not generate!"

        # 3. Emission.
        vhdl = emit_vhdl(kind.datapath(FP32), opt.stages)
        path = outdir / f"{opt.unit}_s{opt.stages}.vhd"
        path.write_text(vhdl)
        print(f"  wrote {path} ({len(vhdl.splitlines())} lines)\n")

    print(f"done; skeletons in {outdir}/")


if __name__ == "__main__":
    main()
