#!/usr/bin/env python3
"""Energy-aware block-size selection for an embedded target (paper §5).

An embedded signal-processing board must multiply 48x48 single-precision
matrices under an area budget (a mid-size XC2VP30) and an energy budget.
The paper's point: block size b and FP-unit pipeline depth interact —
blocks smaller than the MAC latency burn energy on zero-padding, deep
pipelines cost area but finish sooner.  This example sweeps both knobs
with the domain-specific energy model and picks the best feasible design.

Run:  python examples/energy_aware_blocking.py
"""

from repro.analysis.tables import Table
from repro.experiments.configs import kernel_configs
from repro.fabric.device import get_device

PROBLEM_N = 48
BLOCK_SIZES = (4, 8, 12, 16, 24, 48)
DEVICE = get_device("XC2VP30")
AREA_BUDGET = DEVICE.usable_slices()


def main() -> None:
    print(
        f"Problem: {PROBLEM_N}x{PROBLEM_N} fp32 matmul; "
        f"area budget {AREA_BUDGET} slices ({DEVICE.name})\n"
    )

    table = Table(
        "Design space: pipelining config x block size",
        (
            "Config",
            "PL",
            "b",
            "PEs",
            "Slices",
            "Fits?",
            "Energy (uJ)",
            "Latency (us)",
            "Padding waste",
        ),
    )
    feasible = []
    for config in kernel_configs():
        model = config.performance_model()
        for b in BLOCK_SIZES:
            est = model.estimate(PROBLEM_N, b)
            fits = est.slices <= AREA_BUDGET
            from repro.kernels.blocking import blocked_schedule

            waste = blocked_schedule(PROBLEM_N, b, config.pl).wasted_fraction
            table.add_row(
                config.label,
                config.pl,
                b,
                est.pes,
                est.slices,
                "yes" if fits else "NO",
                est.energy_nj / 1000.0,
                est.latency_us,
                f"{waste:.0%}",
            )
            if fits:
                feasible.append((est.energy_nj, est.latency_us, config, b, est))
    print(table)

    best_energy = min(feasible, key=lambda t: t[0])
    best_latency = min(feasible, key=lambda t: t[1])
    for title, (e, lat, config, b, est) in (
        ("Lowest energy", best_energy),
        ("Lowest latency", best_latency),
    ):
        print(
            f"\n{title}: {config.label} with b={b} -> "
            f"{e / 1000.0:.1f} uJ, {lat:.1f} us, {est.slices} slices "
            f"@ {est.frequency_mhz:.0f} MHz"
        )

    print(
        "\nNote how blocks below the MAC latency (b < PL) are dominated: "
        "the schedule zero-pads every accumulation loop, which is exactly "
        "the wasteful dissipation the paper's Figure 6 shows."
    )


if __name__ == "__main__":
    main()
