#!/usr/bin/env python3
"""FIR filtering with the latency-hiding dot-product unit.

The paper's application list opens with "radar/sonar signal processing";
its kernel is the FIR filter, i.e. a sliding dot product of the signal
against the tap weights.  This example runs a 32-tap low-pass filter
through the cycle-accurate dot-product unit (one FP multiplier + one FP
adder with the interleaved-partial-sum accumulation that hides the adder
latency), checks the output against numpy, and shows the throughput
penalty the naive accumulation would pay.

Run:  python examples/fir_filter.py
"""

import math

import numpy as np

from repro import FP32, FPValue
from repro.kernels.dotproduct import DotProductUnit
from repro.units.explorer import UnitKind, explore


def lowpass_taps(n: int, cutoff: float) -> list[float]:
    """Windowed-sinc low-pass taps (Hann window)."""
    taps = []
    for i in range(n):
        k = i - (n - 1) / 2
        sinc = 2 * cutoff * (1.0 if k == 0 else math.sin(2 * math.pi * cutoff * k) / (2 * math.pi * cutoff * k))
        window = 0.5 - 0.5 * math.cos(2 * math.pi * i / (n - 1))
        taps.append(sinc * window)
    scale = sum(taps)
    return [t / scale for t in taps]


def main() -> None:
    n_taps = 32
    taps = lowpass_taps(n_taps, cutoff=0.1)
    # Input: a clean tone + high-frequency interference.
    n_samples = 256
    signal = [
        math.sin(2 * math.pi * 0.02 * t) + 0.8 * math.sin(2 * math.pi * 0.37 * t)
        for t in range(n_samples)
    ]

    # Paper-grade units: optimal fp32 adder/multiplier latencies.
    add = explore(FP32, UnitKind.ADDER).optimal.report
    mul = explore(FP32, UnitKind.MULTIPLIER).optimal.report
    unit = DotProductUnit(FP32, mul_latency=mul.stages, add_latency=add.stages)

    taps_bits = [FPValue.from_float(FP32, t).bits for t in taps]
    signal_bits = [FPValue.from_float(FP32, s).bits for s in signal]

    out = []
    total_cycles = 0
    for t in range(n_taps - 1, n_samples):
        window = signal_bits[t - n_taps + 1 : t + 1][::-1]
        run = unit.run(window, taps_bits)
        out.append(FPValue(FP32, run.result).to_float())
        total_cycles += run.cycles

    expected = np.convolve(
        np.array(signal, dtype=np.float64), np.array(taps), mode="valid"
    )
    err = float(np.max(np.abs(np.array(out) - expected)))

    # Interference rejection: spectral amplitude at the 0.37-cycle/sample
    # interferer, before vs after filtering.
    def tone_amplitude(x: np.ndarray, freq: float) -> float:
        t = np.arange(len(x))
        return 2.0 * abs(np.mean(x * np.exp(-2j * np.pi * freq * t)))

    in_hf = tone_amplitude(np.array(signal), 0.37)
    out_hf = tone_amplitude(np.array(out), 0.37)

    print(f"32-tap FIR on {n_samples} samples, fp32 units "
          f"(mul {mul.stages} st / add {add.stages} st, lanes={unit.lanes})")
    print(f"  max |fp32 - float64 reference| = {err:.3e}")
    print(f"  interferer amplitude @0.37: {in_hf:.2f} in -> {out_hf:.4f} out "
          f"({20 * math.log10(out_hf / in_hf):.0f} dB)")
    print(f"  cycles per output: {total_cycles // len(out)} "
          f"(naive accumulation would need {unit.naive_cycles(n_taps)})")
    print(f"  interleaving speedup at this tap count: "
          f"{unit.speedup_over_naive(n_taps):.1f}x")
    print(
        f"  at {min(add.clock_mhz, mul.clock_mhz):.0f} MHz this single MAC "
        f"pair sustains ~{2 * min(add.clock_mhz, mul.clock_mhz) / 1000:.2f} "
        f"GFLOPS on long dot products"
    )


if __name__ == "__main__":
    main()
