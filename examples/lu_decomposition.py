#!/usr/bin/env python3
"""LU decomposition on the linear array (the authors' follow-on kernel).

Factors a diagonally dominant system with the library's bit-accurate FP
ops (including the divider extension), checks the reconstruction error,
and contrasts the LU schedule's energy behaviour with matmul's: because
LU's trailing submatrices shrink, deep pipelines pay a zero-padding tail
on *every* problem size — the padding never amortizes away.

Run:  python examples/lu_decomposition.py
"""

import random

import numpy as np

from repro import FP64, FPValue
from repro.analysis.tables import Table
from repro.experiments.configs import kernel_configs
from repro.kernels.lu import LUPerformanceModel, functional_lu, split_lu


def main() -> None:
    rng = random.Random(7)
    n = 10
    vals = [[rng.uniform(-1, 1) for _ in range(n)] for _ in range(n)]
    for i in range(n):
        vals[i][i] = n + 1.0
    bits = [[FPValue.from_float(FP64, v).bits for v in row] for row in vals]

    lu, flags = functional_lu(FP64, bits)
    lower_b, upper_b = split_lu(FP64, lu)
    lower = np.array([[FPValue(FP64, b).to_float() for b in r] for r in lower_b])
    upper = np.array([[FPValue(FP64, b).to_float() for b in r] for r in upper_b])
    residual = np.abs(lower @ upper - np.array(vals)).max()
    print(f"{n}x{n} fp64 LU (no pivoting, bit-accurate FP ops)")
    print(f"  max |L@U - A|   = {residual:.3e}")
    print(f"  exception flags = inexact={flags.inexact}, "
          f"overflow={flags.overflow}, div_by_zero={flags.div_by_zero}")

    # Architecture-level schedule/energy: the shrinking-trailing-matrix
    # effect across the three pipelining configurations.
    table = Table(
        "LU schedule vs pipelining (fp32 array model, n=64)",
        ("Config", "PL", "Cycles", "Padding", "Padding %", "Latency (us)",
         "Energy (uJ)", "GFLOPS"),
    )
    for config in kernel_configs():
        model = LUPerformanceModel(config.performance_model().pe_model)
        est = model.estimate(64)
        table.add_row(
            config.label,
            config.pl,
            est.cycles,
            est.padded_cycles,
            f"{est.padding_fraction:.1%}",
            est.latency_us,
            est.energy_nj / 1000.0,
            est.gflops,
        )
    print()
    print(table)
    print(
        "\nUnlike matmul, LU always finishes in the b < PL regime (the "
        "trailing matrix shrinks below any pipeline latency), so deeper "
        "pipelines never fully escape zero-padding — they win on latency "
        "through clock rate alone."
    )


if __name__ == "__main__":
    main()
