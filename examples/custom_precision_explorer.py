#!/usr/bin/env python3
"""Design a custom-precision FP unit for an embedded radar front-end.

The paper's motivation: signal-processing kernels often need more range
than fixed-point but less precision than IEEE double.  This example
builds a custom 40-bit format (8-bit exponent, 31-bit fraction), explores
its adder's pipeline-depth design space exactly as Section 4.1 does for
the standard widths, and compares the resulting optimal core against
fp32 and fp64.

Run:  python examples/custom_precision_explorer.py
"""

from repro import FP32, FP64, FPFormat, FPValue
from repro.analysis.tables import Table
from repro.units.explorer import UnitKind, explore


def main() -> None:
    radar40 = FPFormat(exp_bits=8, man_bits=31, name="radar40")
    print(f"Custom format: {radar40}  (bias={radar40.bias}, "
          f"emin={radar40.emin}, emax={radar40.emax})")

    # Numerics work out of the box for any format.
    x = FPValue.from_float(radar40, 2.0 / 3.0)
    y = FPValue.from_float(radar40, 1.0 / 7.0)
    print(f"  2/3 + 1/7 in radar40 = {(x + y).to_float():.12f} "
          f"(exact: {2 / 3 + 1 / 7:.12f})")

    # Explore the adder design space for the custom width.
    space = explore(radar40, UnitKind.ADDER)
    print(f"\nPipeline sweep ({len(space.reports)} depths):")
    print("  stages  slices   MHz    MHz/slice")
    for r in space.reports[:: max(1, len(space.reports) // 10)]:
        print(
            f"  {r.stages:6d}  {r.slices:6d}  {r.clock_mhz:6.1f}  "
            f"{r.freq_per_area:9.3f}"
        )

    table = Table(
        "Optimal adders: custom 40-bit vs the paper's precisions",
        ("Format", "Stages", "Slices", "Clock (MHz)", "MHz/slice"),
    )
    for fmt in (FP32, radar40, FP64):
        opt = explore(fmt, UnitKind.ADDER).optimal.report
        table.add_row(fmt.name, opt.stages, opt.slices, opt.clock_mhz,
                      opt.freq_per_area)
    print()
    print(table)

    opt40 = space.optimal.report
    opt64 = explore(FP64, UnitKind.ADDER).optimal.report
    saving = 1 - opt40.slices / opt64.slices
    print(
        f"\nThe 40-bit core saves {saving:.0%} of the double-precision "
        f"adder's slices while keeping 31 fraction bits — the kind of "
        f"precision/area trade the paper's parameterized cores enable."
    )


if __name__ == "__main__":
    main()
