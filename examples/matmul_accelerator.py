#!/usr/bin/env python3
"""Size a full-device matrix-multiplication accelerator (paper §4.2).

Given a Virtex-II Pro part and a precision, this selects FP units with
the paper's rule (best MHz/slice meeting the array clock), fills the
device with linear-array PEs, reports sustained GFLOPS and GFLOPS/W
against the Pentium 4 / G4 baselines, and validates the datapath by
running a small cycle-accurate, bit-exact matrix multiply.

Run:  python examples/matmul_accelerator.py [device] [bits]
      python examples/matmul_accelerator.py XC2VP70 64
"""

import random
import sys

from repro import FP32, FP64, FPValue, MatmulArray, functional_matmul, get_device
from repro.baselines.processors import PENTIUM4_2_53, POWERPC_G4_1000
from repro.experiments.sec42_matmul import model_for


def main() -> None:
    device_name = sys.argv[1] if len(sys.argv) > 1 else "XC2VP125"
    bits = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    fmt = {32: FP32, 64: FP64}[bits]
    device = get_device(device_name)

    model = model_for(fmt)
    fill = model.device_fill(device)
    gflops = model.peak_gflops(device)
    power = model.device_power_w(device)

    print(f"Accelerator plan: {fmt.name} matmul on {device.name}")
    print(f"  FP adder      : {model.adder.stages} stages, "
          f"{model.adder.slices} slices, {model.adder.clock_mhz:.0f} MHz")
    print(f"  FP multiplier : {model.multiplier.stages} stages, "
          f"{model.multiplier.slices} slices, "
          f"{model.multiplier.clock_mhz:.0f} MHz")
    print(f"  PE area       : {fill.pe_slices} slices, "
          f"{fill.pe_mult18} MULT18x18, {fill.pe_brams} BRAM")
    print(f"  PEs on device : {fill.pes} (bound by {fill.bound_by}, "
          f"{fill.slice_utilization:.0%} of slices)")
    print(f"  Kernel clock  : {model.frequency_mhz:.0f} MHz")
    print(f"  Sustained     : {gflops:.1f} GFLOPS @ ~{power:.1f} W "
          f"-> {gflops / power:.3f} GFLOPS/W")

    for proc in (PENTIUM4_2_53, POWERPC_G4_1000):
        speed = gflops / proc.gflops(bits)
        eff = (gflops / power) / proc.gflops_per_watt(bits)
        print(f"  vs {proc.name:22s}: {speed:4.1f}x GFLOPS, "
              f"{eff:4.1f}x GFLOPS/W")

    # Validate numerics with a small cycle-accurate run.
    rng = random.Random(42)
    n = 6
    a = [
        [FPValue.from_float(fmt, rng.uniform(-100, 100)).bits for _ in range(n)]
        for _ in range(n)
    ]
    b = [
        [FPValue.from_float(fmt, rng.uniform(-100, 100)).bits for _ in range(n)]
        for _ in range(n)
    ]
    array = MatmulArray(
        fmt, n, model.multiplier.stages, model.adder.stages
    )
    run = array.run(a, b)
    assert run.c == functional_matmul(fmt, a, b), "bit-exactness violated!"
    print(
        f"\nValidation: {n}x{n} cycle-accurate run finished in {run.cycles} "
        f"cycles ({run.padded_cycles} zero-pad slots, PL="
        f"{array.pipeline_latency}); results bit-exact vs schedule-ordered "
        f"reference."
    )


if __name__ == "__main__":
    main()
