#!/usr/bin/env python3
"""Quickstart: build pipelined FP units, do arithmetic, read the reports.

Run:  python examples/quickstart.py
"""

from repro import (
    FP32,
    FP64,
    FPValue,
    MatmulArray,
    PipelinedFPAdder,
    PipelinedFPMultiplier,
    functional_matmul,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Bit-accurate arithmetic through a generated core
    # ------------------------------------------------------------------ #
    adder = PipelinedFPAdder(FP32, stages=14)
    mul = PipelinedFPMultiplier(FP32, stages=8)
    print("Generated cores:")
    print(f"  {adder!r}")
    print(f"  {mul!r}")

    a = FPValue.from_float(FP32, 3.25)
    b = FPValue.from_float(FP32, -1.5)
    total, flags = adder.compute(a.bits, b.bits)
    product, _ = mul.compute(a.bits, b.bits)
    print(f"\n  {a.to_float()} + {b.to_float()} = {FPValue(FP32, total).to_float()}"
          f"   (flags: inexact={flags.inexact})")
    print(f"  {a.to_float()} * {b.to_float()} = {FPValue(FP32, product).to_float()}")

    # ------------------------------------------------------------------ #
    # 2. The same unit, cycle by cycle (latency = stages, II = 1)
    # ------------------------------------------------------------------ #
    print(f"\nClocking the adder ({adder.latency}-cycle latency):")
    adder.step(a.bits, b.bits)
    cycle = 1
    while True:
        result, done = adder.step()
        if done:
            bits, _ = result
            print(f"  DONE at cycle {cycle}: {FPValue(FP32, bits).to_float()}")
            break
        cycle += 1

    # ------------------------------------------------------------------ #
    # 3. Implementation reports: the paper's area/clock numbers
    # ------------------------------------------------------------------ #
    print("\nImplementation (synthesis model, Virtex-II Pro -7):")
    for unit in (adder, mul):
        r = unit.report
        print(
            f"  {r.unit}: {r.stages} stages, {r.slices} slices, "
            f"{r.luts} LUTs, {r.flipflops} FFs, {r.clock_mhz:.1f} MHz, "
            f"{r.freq_per_area:.3f} MHz/slice"
        )

    # ------------------------------------------------------------------ #
    # 4. A small bit-exact matrix multiply on the linear array
    # ------------------------------------------------------------------ #
    n = 4
    mat_a = [
        [FPValue.from_float(FP64, float(i + j)).bits for j in range(n)]
        for i in range(n)
    ]
    mat_b = [
        [FPValue.from_float(FP64, float(1 + (i * j) % 3)).bits for j in range(n)]
        for i in range(n)
    ]
    array = MatmulArray(FP64, n, mul_latency=8, add_latency=12)
    run = array.run(mat_a, mat_b)
    assert run.c == functional_matmul(FP64, mat_a, mat_b)
    print(
        f"\n{n}x{n} fp64 matmul on {n} PEs: {run.cycles} cycles, "
        f"{run.issued_macs} MACs, {run.padded_cycles} zero-pad slots "
        f"(PL={array.pipeline_latency} > n={n}), bit-exact vs reference"
    )
    print("C[0] =", [FPValue(FP64, bits).to_float() for bits in run.c[0]])


if __name__ == "__main__":
    main()
