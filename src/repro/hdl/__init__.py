"""HDL emission: render synthesized datapaths as VHDL skeletons.

The paper's cores are VHDL; this subpackage closes the loop by emitting
a VHDL-93 pipeline skeleton from any :class:`~repro.fabric.netlist.
Datapath` and stage count — entity, stage-boundary registers sized from
the retiming result, and one clocked process per stage instantiating the
subunit quanta that the optimizer assigned to it.
"""

from repro.hdl.emit import emit_vhdl

__all__ = ["emit_vhdl"]
