"""Table 2: analysis of 32-, 48- and 64-bit floating-point multipliers.

Same layout as Table 1; multipliers are smaller (mantissa product lives
in embedded MULT18x18s) and reach their clock ceiling at shallower
depths than the adders.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.experiments import table1_adders
from repro.units.explorer import UnitKind


def run() -> Table:
    """Regenerate Table 2."""
    return table1_adders.run(UnitKind.MULTIPLIER)
