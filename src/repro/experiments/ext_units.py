"""Extension table: divider and square-root units across precisions.

Not in the paper (which analyses adders and multipliers); this applies
the identical min/max/opt methodology to the two digit-recurrence units
the library adds, making the extensions first-class artifacts.  Expected
relations: the recurrence units pipeline far deeper (one row per result
bit), reach comparable clock ceilings, and pay a much larger area — so
their MHz/slice is roughly an order of magnitude below the multiplier's.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.fp.format import PAPER_FORMATS
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Unit",
    "Impl",
    "Stages",
    "Slices",
    "Clock (MHz)",
    "Freq/Area (MHz/slice)",
)


def run() -> Table:
    """Regenerate the extension-unit analysis table."""
    table = Table(
        "Extension: divider and square-root units (paper methodology)",
        columns=COLUMNS,
    )
    for kind in (UnitKind.DIVIDER, UnitKind.SQRT):
        for fmt in PAPER_FORMATS:
            space = explore(fmt, kind)
            for point in (space.minimum, space.maximum, space.optimal):
                r = point.report
                table.add_row(
                    f"{fmt.width}-bit {kind.value}",
                    point.label,
                    r.stages,
                    r.slices,
                    r.clock_mhz,
                    r.freq_per_area,
                )
    return table
