"""Table 1: analysis of 32-, 48- and 64-bit floating-point adders.

For each precision, three implementations — minimal, maximal, optimal
(highest freq/area) — with stage count, slices, LUTs, flip-flops, clock
rate and MHz/slice.  Expected relations, per the paper: clock rises and
area grows with depth; the optimal point maximizes MHz/slice; single
precision exceeds 240 MHz, double exceeds 200 MHz.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.fp.format import PAPER_FORMATS
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Precision",
    "Impl",
    "Stages",
    "Slices",
    "LUTs",
    "FlipFlops",
    "Clock (MHz)",
    "Freq/Area (MHz/slice)",
)


def run(kind: UnitKind = UnitKind.ADDER) -> Table:
    """Regenerate Table 1 (or Table 2 when ``kind`` is MULTIPLIER)."""
    number = 1 if kind is UnitKind.ADDER else 2
    table = Table(
        title=f"Table {number}: Analysis of 32, 48, 64-bit Floating Point "
        f"{kind.value.capitalize()}s",
        columns=COLUMNS,
    )
    for fmt in PAPER_FORMATS:
        space = explore(fmt, kind)
        for point in (space.minimum, space.maximum, space.optimal):
            r = point.report
            table.add_row(
                f"{fmt.width}-bit",
                point.label,
                r.stages,
                r.slices,
                r.luts,
                r.flipflops,
                r.clock_mhz,
                r.freq_per_area,
            )
    return table
