"""Figure 2: frequency/area (MHz/slice) versus pipeline stages.

One curve per precision (32/48/64-bit), separately for the adders
(Fig 2a) and multipliers (Fig 2b).  Expected shape, per the paper: the
curves rise steeply with the first stages, "flatten out towards the end
and may dip for deep pipelining" — diminishing returns once the atomic
logic elements bound the clock while register area keeps growing.
"""

from __future__ import annotations

from repro.analysis.series import SweepResult
from repro.fp.format import PAPER_FORMATS
from repro.units.explorer import UnitKind, explore


def run(kind: UnitKind = UnitKind.ADDER, extra_stages: int = 4) -> SweepResult:
    """Regenerate Fig 2a (adders) or Fig 2b (multipliers)."""
    max_stages = (
        max(kind.datapath(fmt).natural_max_stages for fmt in PAPER_FORMATS)
        + extra_stages
    )
    result = SweepResult(
        title=f"Figure 2{'a' if kind is UnitKind.ADDER else 'b'}: "
        f"Freq/Area vs pipeline stages ({kind.value}s)",
        x_label="stages",
        y_label="MHz/slice",
        x=tuple(float(s) for s in range(1, max_stages + 1)),
    )
    for fmt in PAPER_FORMATS:
        space = explore(fmt, kind, max_stages=max_stages)
        result.add_series(f"{fmt.width}-bit", [r.freq_per_area for r in space.reports])
    return result


def run_both() -> tuple[SweepResult, SweepResult]:
    """Both panels of Figure 2."""
    return run(UnitKind.ADDER), run(UnitKind.MULTIPLIER)
