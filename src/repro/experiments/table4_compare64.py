"""Table 4: 64-bit cores — USC (ours) vs the NEU parameterized library.

Few 64-bit cores existed; the comparison point is the Belanovic–Leeser
library [1].  Expected relations, per the paper: the library cores are
shallow (4-5 stages) and far slower (<100 MHz), so the deeply pipelined
USC cores win decisively on clock and MHz/slice.  The power column is
XPower-style dynamic power at 100 MHz.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.vendor_cores import NEU_ADD64, NEU_MUL64, VendorCore
from repro.fabric.synthesis import ImplementationReport
from repro.fp.format import FP64
from repro.power.xpower import estimate_power
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Unit",
    "Source",
    "Stages",
    "Slices",
    "Clock (MHz)",
    "Freq/Area (MHz/slice)",
    "Power @100MHz (mW)",
)


def _usc_row(table: Table, unit: str, impl: ImplementationReport) -> None:
    table.add_row(
        unit,
        "USC (ours)",
        impl.stages,
        impl.slices,
        impl.clock_mhz,
        impl.freq_per_area,
        estimate_power(impl, 100.0).total_mw,
    )


def _vendor_row(table: Table, unit: str, core: VendorCore) -> None:
    table.add_row(
        unit,
        core.vendor,
        core.stages,
        core.slices,
        core.clock_mhz,
        core.freq_per_area,
        core.power_mw(100.0),
    )


def run() -> Table:
    """Regenerate Table 4."""
    table = Table(
        title="Table 4: Comparison of 64-bit Floating Point Units",
        columns=COLUMNS,
    )
    _usc_row(table, "64-bit adder", explore(FP64, UnitKind.ADDER).optimal.report)
    _vendor_row(table, "64-bit adder", NEU_ADD64)
    _usc_row(
        table, "64-bit multiplier", explore(FP64, UnitKind.MULTIPLIER).optimal.report
    )
    _vendor_row(table, "64-bit multiplier", NEU_MUL64)
    return table
