"""Shared experiment configuration: the three pipelining levels.

Figures 4-6 compare the kernel built from three sets of FP units —
minimum, moderate and maximum pipelined — identified by ``PL``, "the sum
of the latencies of the multiplier and adder".  For single precision the
paper's PL values are 10, 19 and 25; our model reproduces PL = 10 and 19
exactly and lands on 26 for the maximal pair (EXPERIMENTS.md discusses
the one-stage difference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fabric.synthesis import ImplementationReport
from repro.fp.format import FP32, FPFormat
from repro.kernels.performance import MatmulPerformanceModel
from repro.units.explorer import UnitKind, explore


@dataclass(frozen=True)
class PipeliningConfig:
    """One (adder, multiplier) pipeline-depth pairing for the kernel."""

    label: str
    adder: ImplementationReport
    multiplier: ImplementationReport

    @property
    def pl(self) -> int:
        """Sum of the two latencies — the paper's PL parameter."""
        return self.adder.stages + self.multiplier.stages

    def performance_model(
        self, frequency_mhz: float | None = None
    ) -> MatmulPerformanceModel:
        """Kernel model for this unit pairing.

        By default each configuration runs at its own achievable clock
        (min of the unit clocks and the array ceiling) — this is what
        makes deep pipelining win on latency at large problem sizes in
        Figures 5-6.  Energy is clock-independent in a dynamic-power
        model (P scales with f, time scales with 1/f), so the energy
        panels are unaffected by this choice.
        """
        return MatmulPerformanceModel(
            self.adder.fmt, self.adder, self.multiplier, frequency_mhz=frequency_mhz
        )


def kernel_configs(fmt: FPFormat = FP32) -> tuple[PipeliningConfig, ...]:
    """The minimum / moderate / maximum pipelined unit sets for ``fmt``."""
    adders = explore(fmt, UnitKind.ADDER)
    muls = explore(fmt, UnitKind.MULTIPLIER)

    a_min = adders.minimum.stages
    m_min = muls.minimum.stages
    a_max = adders.optimal.stages
    m_max = muls.optimal.stages
    a_mid = math.ceil((a_min + a_max) / 2)
    m_mid = math.ceil((m_min + m_max) / 2)

    configs = []
    for a_s, m_s in ((a_min, m_min), (a_mid, m_mid), (a_max, m_max)):
        add = adders.at(a_s)
        mul = muls.at(m_s)
        configs.append(
            PipeliningConfig(
                label=f"pl={a_s + m_s}",
                adder=add,
                multiplier=mul,
            )
        )
    return tuple(configs)
