"""Ablation studies on the design choices the paper calls out.

These go beyond the paper's tables/figures: each isolates one modelling
or design knob and quantifies its effect.

* :func:`tool_objective_ablation` — the paper stresses that synthesis/P&R
  optimization objectives give "vastly different results"; this sweeps
  speed/balanced/area on the optimal implementations.
* :func:`congestion_ablation` — sensitivity of the §4.2 GFLOPS numbers to
  the full-device P&R congestion factor (our main uncalibrated constant).
* :func:`rounding_mode_ablation` — kernel-level numerical effect of the
  paper's two rounding modes (truncation is biased; RNE is centred),
  measured on cycle-accurate matmul runs against exact arithmetic.
* :func:`fused_mac_ablation` — the chained-PE (paper) vs fused-MAC PE
  (extension): single rounding removes the intermediate error.
* :func:`mixed_precision_matmul_ablation` — fp16/bf16 inputs computed
  in-format (the packed sub-lane path) vs losslessly widened to fp32
  for the multiply-accumulate: what an fp32 accumulator buys back.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.analysis.tables import Table
from repro.baselines.processors import PENTIUM4_2_53
from repro.experiments.sec42_matmul import model_for
from repro.fabric.device import XC2VP125
from repro.fabric.synthesis import synthesize
from repro.fabric.toolchain import Objective
from repro.fp.adder import fp_add
from repro.fp.format import FP32, PAPER_FORMATS
from repro.fp.mac import fp_fma
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.kernels.batched import make_matmul_array
from repro.units.explorer import UnitKind, explore


def tool_objective_ablation() -> Table:
    """Speed vs balanced vs area objectives on the optimal units."""
    table = Table(
        "Ablation: synthesis/P&R optimization objective",
        ("Unit", "Objective", "Stages", "Slices", "Clock (MHz)", "MHz/slice"),
    )
    for fmt in PAPER_FORMATS:
        for kind in (UnitKind.ADDER, UnitKind.MULTIPLIER):
            opt = explore(fmt, kind).optimal.report
            dp = kind.datapath(fmt)
            for objective in (Objective.SPEED, Objective.BALANCED, Objective.AREA):
                r = synthesize(dp, opt.stages, objective=objective)
                table.add_row(
                    f"{fmt.width}-bit {kind.value}",
                    objective.value,
                    r.stages,
                    r.slices,
                    r.clock_mhz,
                    r.freq_per_area,
                )
    return table


def congestion_ablation(
    factors: tuple[float, ...] = (1.0, 1.2, 1.35, 1.5),
) -> Table:
    """GFLOPS sensitivity to the full-device congestion factor."""
    table = Table(
        "Ablation: P&R congestion factor vs device GFLOPS (XC2VP125, fp32)",
        ("Congestion", "PEs", "GFLOPS", "vs Pentium 4"),
    )
    model = model_for(FP32)
    for factor in factors:
        fill = model.device_fill(XC2VP125, congestion=factor)
        gflops = 2.0 * fill.pes * model.frequency_mhz / 1000.0
        table.add_row(
            factor,
            fill.pes,
            gflops,
            gflops / PENTIUM4_2_53.sgemm_gflops,
        )
    return table


def rounding_mode_ablation(n: int = 8, seed: int = 11, backend: str = "batched") -> Table:
    """Numerical effect of RNE vs truncation on a cycle-accurate matmul.

    Errors are measured against exact rational arithmetic.  Truncation
    rounds every partial toward zero, so its error grows systematically;
    RNE errors partially cancel.  Runs on the wavefront-batched
    simulator by default (bit-identical to the stepped model, so the
    emitted table is byte-identical either way); pass
    ``backend="stepped"`` to use the clock-by-clock reference.
    """
    rng = random.Random(seed)
    vals_a = [[rng.uniform(0.5, 2.0) for _ in range(n)] for _ in range(n)]
    vals_b = [[rng.uniform(0.5, 2.0) for _ in range(n)] for _ in range(n)]
    a = [[FPValue.from_float(FP32, v).bits for v in row] for row in vals_a]
    b = [[FPValue.from_float(FP32, v).bits for v in row] for row in vals_b]
    exact_a = [[FPValue(FP32, x).to_fraction() for x in row] for row in a]
    exact_b = [[FPValue(FP32, x).to_fraction() for x in row] for row in b]
    exact_c = [
        [sum(exact_a[i][k] * exact_b[k][j] for k in range(n)) for j in range(n)]
        for i in range(n)
    ]

    table = Table(
        f"Ablation: rounding mode on a {n}x{n} cycle-accurate matmul",
        ("Mode", "Mean rel. error", "Max rel. error", "Signed mean error"),
    )
    for mode in RoundingMode:
        run = make_matmul_array(FP32, n, 3, 5, mode=mode, backend=backend).run(a, b)
        rel = []
        signed = Fraction(0)
        for i in range(n):
            for j in range(n):
                got = FPValue(FP32, run.c[i][j]).to_fraction()
                err = (got - exact_c[i][j]) / exact_c[i][j]
                rel.append(abs(err))
                signed += err
        table.add_row(
            mode.value,
            float(sum(rel) / len(rel)),
            float(max(rel)),
            float(signed / len(rel)),
        )
    return table


def fused_mac_ablation(samples: int = 200, length: int = 32, seed: int = 3) -> Table:
    """Chained multiplier->adder PE vs a fused-MAC PE on dot products."""
    rng = random.Random(seed)
    table = Table(
        "Ablation: chained PE (paper) vs fused-MAC PE (extension)",
        ("PE datapath", "Roundings per MAC", "Mean |rel. error|", "Max |rel. error|"),
    )
    chained_errs: list[Fraction] = []
    fused_errs: list[Fraction] = []
    for _ in range(samples):
        xs = [FPValue.from_float(FP32, rng.uniform(-1, 1)).bits for _ in range(length)]
        ys = [FPValue.from_float(FP32, rng.uniform(-1, 1)).bits for _ in range(length)]
        exact = sum(
            FPValue(FP32, x).to_fraction() * FPValue(FP32, y).to_fraction()
            for x, y in zip(xs, ys)
        )
        if exact == 0:
            continue
        acc_c = FP32.zero()
        acc_f = FP32.zero()
        for x, y in zip(xs, ys):
            p, _ = fp_mul(FP32, x, y)
            acc_c, _ = fp_add(FP32, acc_c, p)
            acc_f, _ = fp_fma(FP32, x, y, acc_f)
        chained_errs.append(
            abs((FPValue(FP32, acc_c).to_fraction() - exact) / exact)
        )
        fused_errs.append(abs((FPValue(FP32, acc_f).to_fraction() - exact) / exact))
    table.add_row(
        "chained (mul -> add)",
        2,
        float(sum(chained_errs) / len(chained_errs)),
        float(max(chained_errs)),
    )
    table.add_row(
        "fused MAC",
        1,
        float(sum(fused_errs) / len(fused_errs)),
        float(max(fused_errs)),
    )
    return table


def fused_matmul_ablation(n: int = 8, seed: int = 7) -> Table:
    """Chained vs fused-MAC PE on full cycle-accurate matmul runs.

    Complements :func:`fused_mac_ablation` (dot products) at the array
    level: the same operand matrices run through the chained
    ``"batched"`` backend and the fused ``"fma"`` backend, and their
    error against exact rational arithmetic is compared.  The fused run
    performs exactly half the roundings (``n^3`` vs ``2 n^3``), which
    the table records alongside the accuracy.  Not in the experiment
    registry (the checked-in ``results/`` set is frozen); run it via
    the API or the kernel test suite.
    """
    rng = random.Random(seed)
    vals_a = [[rng.uniform(-2.0, 2.0) for _ in range(n)] for _ in range(n)]
    vals_b = [[rng.uniform(-2.0, 2.0) for _ in range(n)] for _ in range(n)]
    a = [[FPValue.from_float(FP32, v).bits for v in row] for row in vals_a]
    b = [[FPValue.from_float(FP32, v).bits for v in row] for row in vals_b]
    exact_a = [[FPValue(FP32, x).to_fraction() for x in row] for row in a]
    exact_b = [[FPValue(FP32, x).to_fraction() for x in row] for row in b]
    exact_c = [
        [sum(exact_a[i][k] * exact_b[k][j] for k in range(n)) for j in range(n)]
        for i in range(n)
    ]

    table = Table(
        f"Ablation: chained vs fused-MAC PE on a {n}x{n} matmul",
        ("Backend", "Total roundings", "Mean |rel. error|", "Max |rel. error|"),
    )
    for backend in ("batched", "fma"):
        sim = make_matmul_array(FP32, n, 3, 5, backend=backend)
        run = sim.run(a, b)
        rel = []
        for i in range(n):
            for j in range(n):
                if exact_c[i][j] == 0:
                    continue
                got = FPValue(FP32, run.c[i][j]).to_fraction()
                rel.append(abs((got - exact_c[i][j]) / exact_c[i][j]))
        table.add_row(
            "chained (mul -> add)" if backend == "batched" else "fused MAC",
            sim.total_roundings,
            float(sum(rel) / len(rel)),
            float(max(rel)),
        )
    return table


def mixed_precision_matmul_ablation(n: int = 8, seed: int = 13) -> Table:
    """Small-format inputs with and without an fp32 accumulator.

    The packed sub-lane datapaths make fp16/bf16 matmuls 2-4x cheaper
    per limb pass; this ablation quantifies what the narrow formats
    cost in accuracy — and how much of it an fp32 accumulator buys
    back.  For each small format the same operand matrices (quantized
    to the small format, so encoding error is shared by every row) run
    two ways: entirely in the small format (the packed path), and with
    the inputs losslessly widened to fp32 for fp32 multiply-accumulate
    (the classic mixed-precision recipe).  Error is measured against
    exact rational arithmetic on the small-format inputs.  Not in the
    experiment registry (the checked-in ``results/`` set is frozen),
    same as :func:`fused_matmul_ablation`.
    """
    import numpy as np

    from repro.fp.convert import fp_convert
    from repro.fp.format import SMALL_FORMATS
    from repro.kernels.fast import functional_matmul_vectorized

    mode = RoundingMode.NEAREST_EVEN
    rng = random.Random(seed)
    vals_a = [[rng.uniform(-2.0, 2.0) for _ in range(n)] for _ in range(n)]
    vals_b = [[rng.uniform(-2.0, 2.0) for _ in range(n)] for _ in range(n)]

    table = Table(
        f"Ablation: mixed-precision accumulate on a {n}x{n} matmul",
        ("Inputs", "Accumulator", "Mean |rel. error|", "Max |rel. error|"),
    )
    for fmt in SMALL_FORMATS:
        a = [[FPValue.from_float(fmt, v).bits for v in row] for row in vals_a]
        b = [[FPValue.from_float(fmt, v).bits for v in row] for row in vals_b]
        exact_a = [[FPValue(fmt, x).to_fraction() for x in row] for row in a]
        exact_b = [[FPValue(fmt, x).to_fraction() for x in row] for row in b]
        exact_c = [
            [
                sum(exact_a[i][k] * exact_b[k][j] for k in range(n))
                for j in range(n)
            ]
            for i in range(n)
        ]
        # fp32 subsumes both small formats (wider exponent and
        # fraction), so the widening conversions are exact: the two
        # runs share identical real-valued inputs and differ only in
        # compute precision.
        a32 = [[fp_convert(fmt, FP32, x, mode)[0] for x in row] for row in a]
        b32 = [[fp_convert(fmt, FP32, x, mode)[0] for x in row] for row in b]
        runs = (
            (fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64)),
            (FP32, np.array(a32, dtype=np.uint64),
             np.array(b32, dtype=np.uint64)),
        )
        for acc_fmt, a_np, b_np in runs:
            c = functional_matmul_vectorized(acc_fmt, a_np, b_np, mode)
            rel = []
            for i in range(n):
                for j in range(n):
                    if exact_c[i][j] == 0:
                        continue
                    got = FPValue(acc_fmt, int(c[i][j])).to_fraction()
                    rel.append(abs((got - exact_c[i][j]) / exact_c[i][j]))
            table.add_row(
                fmt.name,
                acc_fmt.name,
                float(sum(rel) / len(rel)),
                float(max(rel)),
            )
    return table


def register_sharing_ablation(
    factors: tuple[float, ...] = (0.0, 0.25, 0.55, 0.8, 1.0),
) -> Table:
    """Sweep the slice-FF sharing discount on pipeline registers.

    The paper's enabling observation is that "pipelining can utilize the
    large number of flipflops already present in the fabric"; this
    quantifies it.  With no sharing (factor 1.0: every latched bit costs
    half a slice), the freq/area-optimal adder retreats to a shallower
    depth and a lower metric; with free registers (0.0) the optimum rides
    the clock ceiling.
    """
    table = Table(
        "Ablation: register slice cost vs the fp32 adder's optimum",
        ("FF cost factor", "Opt stages", "Opt slices", "Opt MHz", "Opt MHz/slice"),
    )
    from repro.fabric.netlist import adder_datapath

    dp = adder_datapath(FP32)
    for factor in factors:
        reports = [
            synthesize(dp, s, ff_sharing=factor)
            for s in range(1, dp.natural_max_stages + 5)
        ]
        best = max(reports, key=lambda r: r.freq_per_area)
        table.add_row(
            factor, best.stages, best.slices, best.clock_mhz, best.freq_per_area
        )
    return table
