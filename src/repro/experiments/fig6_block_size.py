"""Figure 6: kernel energy, resources and latency versus block size.

For a fixed problem size (the paper's n = 16), block matrix multiply
with block size b runs on an array of b PEs.  Expected relations, per
the paper: "there is [a] large amount of wasteful energy dissipation
when the block size is much smaller than the latency of the
floating-point units" — energy falls steeply as b grows toward PL and
flattens beyond; resources (slices) grow linearly in b; latency drops
with b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import SweepResult
from repro.experiments.configs import kernel_configs
from repro.fp.format import FP32, FPFormat

#: The paper's fixed problem size for this figure.
PROBLEM_SIZE = 16
#: Block sizes (must divide the problem size).
BLOCK_SIZES = (2, 4, 8, 16)


@dataclass(frozen=True)
class Figure6:
    energy: SweepResult
    resources: SweepResult
    latency: SweepResult

    def render(self) -> str:
        return "\n\n".join(
            (self.energy.render(), self.resources.render(), self.latency.render())
        )

    def __str__(self) -> str:
        return self.render()


def run(
    fmt: FPFormat = FP32,
    n: int = PROBLEM_SIZE,
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    frequency_mhz: float | None = None,
) -> Figure6:
    """Regenerate Figure 6's three panels."""
    for b in block_sizes:
        if n % b:
            raise ValueError(f"block size {b} does not divide problem size {n}")
    configs = kernel_configs(fmt)
    x = tuple(float(b) for b in block_sizes)
    energy = SweepResult(
        title=f"Figure 6a: Energy vs block size (n={n})",
        x_label="b",
        y_label="nJ",
        x=x,
    )
    resources = SweepResult(
        title=f"Figure 6b: Resources vs block size (n={n})",
        x_label="b",
        y_label="slices / BMults / BRAMs",
        x=x,
    )
    latency = SweepResult(
        title=f"Figure 6c: Latency vs block size (n={n})",
        x_label="b",
        y_label="usec",
        x=x,
    )
    for config in configs:
        model = config.performance_model(frequency_mhz)
        estimates = [model.estimate(n, b) for b in block_sizes]
        energy.add_series(config.label, [e.energy_nj for e in estimates])
        resources.add_series(
            f"slices ({config.label})", [e.slices for e in estimates]
        )
        latency.add_series(config.label, [e.latency_us for e in estimates])
    model = configs[0].performance_model(frequency_mhz)
    estimates = [model.estimate(n, b) for b in block_sizes]
    resources.add_series("BMult (all pl)", [e.mult18 for e in estimates])
    resources.add_series("BRAM (all pl)", [e.brams for e in estimates])
    return Figure6(energy=energy, resources=resources, latency=latency)
