"""Table 3: 32-bit cores — USC (ours) vs Nallatech vs Quixilica.

The commercial cores use custom internal formats, so they are smaller
and their raw MHz/slice is "sometimes better than ours" (paper); charging
them the IEEE-754 conversion shims they need at system interfaces closes
that gap.  Both views are reported.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.vendor_cores import (
    NALLATECH_ADD32,
    NALLATECH_MUL32,
    QUIXILICA_ADD32,
    QUIXILICA_MUL32,
    VendorCore,
)
from repro.fp.format import FP32
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Unit",
    "Source",
    "Pipelines",
    "Slices",
    "Clock (MHz)",
    "Freq/Area (MHz/slice)",
    "System MHz/slice",
)


def _vendor_row(table: Table, unit: str, core: VendorCore) -> None:
    table.add_row(
        unit,
        core.vendor,
        core.stages,
        core.slices,
        core.clock_mhz,
        core.freq_per_area,
        core.system_freq_per_area,
    )


def run() -> Table:
    """Regenerate Table 3."""
    table = Table(
        title="Table 3: Comparison of 32-bit Floating Point Units",
        columns=COLUMNS,
    )
    usc_add = explore(FP32, UnitKind.ADDER).optimal.report
    usc_mul = explore(FP32, UnitKind.MULTIPLIER).optimal.report

    table.add_row(
        "32-bit adder",
        "USC (ours)",
        usc_add.stages,
        usc_add.slices,
        usc_add.clock_mhz,
        usc_add.freq_per_area,
        usc_add.freq_per_area,  # IEEE in/out: no conversion shims needed
    )
    _vendor_row(table, "32-bit adder", NALLATECH_ADD32)
    _vendor_row(table, "32-bit adder", QUIXILICA_ADD32)

    table.add_row(
        "32-bit multiplier",
        "USC (ours)",
        usc_mul.stages,
        usc_mul.slices,
        usc_mul.clock_mhz,
        usc_mul.freq_per_area,
        usc_mul.freq_per_area,
    )
    _vendor_row(table, "32-bit multiplier", NALLATECH_MUL32)
    _vendor_row(table, "32-bit multiplier", QUIXILICA_MUL32)
    return table
