"""Figure 5: kernel energy, resources and latency versus problem size.

Three panels over problem size n, one curve per pipelining configuration
(PL = sum of adder+multiplier latencies).  Expected relations, per the
paper:

* (a) energy — for small n the deep-pipeline configurations pay heavy
  zero-padding energy; at large n all scale as n^3 with the deep
  configuration *not* the most expensive ("even though the deeply
  pipelined architecture consumes a lot of area, it might consume the
  least energy due to less latency" when run at its higher clock);
* (b) resources — slices grow linearly in n and with pipeline depth;
  BMult/BRAM counts are independent of pipelining;
* (c) latency — decreases with pipelining at large n, but small problems
  are latency-bound by padding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import SweepResult
from repro.experiments.configs import kernel_configs
from repro.fp.format import FP32, FPFormat

#: Problem-size sweep (the paper's x-range peaks around a few tens).
PROBLEM_SIZES = (5, 10, 15, 20, 25, 30, 40, 50, 60)


@dataclass(frozen=True)
class Figure5:
    energy: SweepResult
    resources: SweepResult
    latency: SweepResult

    def render(self) -> str:
        return "\n\n".join(
            (self.energy.render(), self.resources.render(), self.latency.render())
        )

    def __str__(self) -> str:
        return self.render()


def run(
    fmt: FPFormat = FP32,
    frequency_mhz: float | None = None,
    problem_sizes: tuple[int, ...] = PROBLEM_SIZES,
) -> Figure5:
    """Regenerate Figure 5's three panels."""
    configs = kernel_configs(fmt)
    x = tuple(float(n) for n in problem_sizes)
    energy = SweepResult(
        title="Figure 5a: Energy vs problem size",
        x_label="n",
        y_label="nJ",
        x=x,
    )
    resources = SweepResult(
        title="Figure 5b: Resources vs problem size",
        x_label="n",
        y_label="slices / BMults / BRAMs",
        x=x,
    )
    latency = SweepResult(
        title="Figure 5c: Latency vs problem size",
        x_label="n",
        y_label="usec",
        x=x,
    )
    for config in configs:
        model = config.performance_model(frequency_mhz)
        estimates = [model.estimate(n) for n in problem_sizes]
        energy.add_series(config.label, [e.energy_nj for e in estimates])
        resources.add_series(
            f"slices ({config.label})", [e.slices for e in estimates]
        )
        latency.add_series(config.label, [e.latency_us for e in estimates])
    # BMult / BRAM counts are identical across pipelining configs (the
    # embedded multipliers and block RAMs do not depend on register
    # depth), which the paper's Fig 5b draws as a single shared line.
    model = configs[0].performance_model(frequency_mhz)
    estimates = [model.estimate(n) for n in problem_sizes]
    resources.add_series("BMult (all pl)", [e.mult18 for e in estimates])
    resources.add_series("BRAM (all pl)", [e.brams for e in estimates])
    return Figure5(energy=energy, resources=resources, latency=latency)
