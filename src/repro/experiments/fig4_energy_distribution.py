"""Figure 4: energy distribution in a PE across pipelining levels.

Per-PE energy split into MAC / storage / misc / I-O for problem sizes
n = 10 and n = 30 (the OCR of the paper dropped the trailing digits;
DESIGN.md documents the restoration) under the three pipelining
configurations.  Expected relations, per the paper: at the small problem
size the deeply pipelined units waste a lot of energy on zero-padding
(the schedule stretches to PL while the work stays n^2); at the large
size the distributions converge and MAC dominates.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.experiments.configs import kernel_configs
from repro.fp.format import FP32, FPFormat

COLUMNS = (
    "Problem n",
    "Config",
    "PL",
    "MAC (nJ)",
    "Storage (nJ)",
    "Misc (nJ)",
    "I/O (nJ)",
    "Total (nJ)",
)

#: Problem sizes of the two panels (paper: "n =1[0] and n =3[0]").
PROBLEM_SIZES = (10, 30)


def run(
    fmt: FPFormat = FP32,
    frequency_mhz: float = 100.0,
    problem_sizes: tuple[int, ...] = PROBLEM_SIZES,
) -> Table:
    """Regenerate Figure 4 as a table (one row per bar group)."""
    table = Table(
        title="Figure 4: Per-PE energy distribution vs pipelining",
        columns=COLUMNS,
    )
    for n in problem_sizes:
        for config in kernel_configs(fmt):
            model = config.performance_model(frequency_mhz)
            e = model.pe_energy(n)
            table.add_row(
                n,
                config.label,
                config.pl,
                e.mac_nj,
                e.storage_nj,
                e.misc_nj,
                e.io_nj,
                e.total_nj,
            )
    return table
