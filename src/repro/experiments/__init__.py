"""Experiment registry: one entry per table/figure of the paper.

Each experiment module exposes ``run(...)`` returning a printable result
(:class:`~repro.analysis.tables.Table` or
:class:`~repro.analysis.series.SweepResult` bundle).  :data:`REGISTRY`
maps CLI names to zero-argument callables with the paper's defaults;
:func:`experiment_job` wraps a registry entry as an engine
:class:`~repro.engine.job.Job` so the CLI can run experiments through
the parallel/cached evaluation engine.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine import Job

from repro.experiments import (
    ablations,
    ext_units,
    fig2_freq_area,
    fig3_power,
    fig4_energy_distribution,
    fig5_problem_size,
    fig6_block_size,
    sec42_matmul,
    table1_adders,
    table2_multipliers,
    table3_compare32,
    table4_compare64,
)
from repro.units.explorer import UnitKind


def _fig2a() -> Any:
    return fig2_freq_area.run(UnitKind.ADDER)


def _fig2b() -> Any:
    return fig2_freq_area.run(UnitKind.MULTIPLIER)


def _fig3a() -> Any:
    return fig3_power.run(UnitKind.ADDER)


def _fig3b() -> Any:
    return fig3_power.run(UnitKind.MULTIPLIER)


#: CLI name -> experiment callable (paper defaults).
REGISTRY: dict[str, Callable[[], Any]] = {
    "fig2a": _fig2a,
    "fig2b": _fig2b,
    "table1": table1_adders.run,
    "table2": table2_multipliers.run,
    "table3": table3_compare32.run,
    "table4": table4_compare64.run,
    "fig3a": _fig3a,
    "fig3b": _fig3b,
    "sec4.2": sec42_matmul.run,
    "fig4": fig4_energy_distribution.run,
    "fig5": fig5_problem_size.run,
    "fig6": fig6_block_size.run,
    "ext-units": ext_units.run,
    "ablation-objective": ablations.tool_objective_ablation,
    "ablation-congestion": ablations.congestion_ablation,
    "ablation-rounding": ablations.rounding_mode_ablation,
    "ablation-fma": ablations.fused_mac_ablation,
    "ablation-registers": ablations.register_sharing_ablation,
}

def experiment_job(name: str) -> Job:
    """The engine job for one registry entry.

    The registry callables are module-level functions of no arguments
    (the paper's defaults are baked in), so the job key reduces to
    (experiment name, callable identity, model version) — exactly the
    inputs that determine the emitted table/figure.
    """
    if name not in REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(REGISTRY)}"
        )
    return Job.create(f"experiment.{name}", REGISTRY[name])


def experiment_jobs(names: list[str] | None = None) -> list[Job]:
    """Jobs for ``names`` (default: every experiment, in REGISTRY order)."""
    return [experiment_job(n) for n in (names if names is not None else REGISTRY)]


__all__ = [
    "REGISTRY",
    "experiment_job",
    "experiment_jobs",
    "ablations",
    "ext_units",
    "fig2_freq_area",
    "fig3_power",
    "fig4_energy_distribution",
    "fig5_problem_size",
    "fig6_block_size",
    "sec42_matmul",
    "table1_adders",
    "table2_multipliers",
    "table3_compare32",
    "table4_compare64",
]
