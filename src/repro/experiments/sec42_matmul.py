"""Section 4.2: full-device matrix-multiplication throughput.

Fills the XC2VP125 with linear-array PEs built from the kernel-selected
FP units (best MHz/slice meeting the array clock: 250 MHz single,
200 MHz double) and reports sustained GFLOPS and GFLOPS/W against the
Pentium 4 and PowerPC G4 baselines.

Paper numbers: ~19.6 GFLOPS for 32-bit (abstract: ~15 sustained single /
~8 double), a 6X GFLOPS advantage over the 2.54 GHz Pentium 4, 3X over
the 1 GHz G4, and "up to 6x improvement (for single precision) in terms
of the GFLOPS/W metric".
"""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.tables import Table
from repro.baselines.processors import PENTIUM4_2_53, POWERPC_G4_1000
from repro.fabric.device import XC2VP125, Device
from repro.fp.format import FP32, FP64, FPFormat
from repro.fp.rounding import RoundingMode
from repro.kernels.performance import ARRAY_CLOCK_MHZ, MatmulPerformanceModel
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Precision",
    "PEs",
    "Clock (MHz)",
    "GFLOPS",
    "Device power (W)",
    "GFLOPS/W",
    "vs P4 (GFLOPS)",
    "vs G4 (GFLOPS)",
    "vs P4 (GFLOPS/W)",
)


def model_for(fmt: FPFormat) -> MatmulPerformanceModel:
    """Kernel performance model with the paper's unit-selection rule."""
    target = ARRAY_CLOCK_MHZ[fmt.name]
    adder = explore(fmt, UnitKind.ADDER).cheapest_at_least(target)
    multiplier = explore(fmt, UnitKind.MULTIPLIER).cheapest_at_least(target)
    return MatmulPerformanceModel(fmt, adder, multiplier, frequency_mhz=target)


def kernel_selfcheck(
    fmt: FPFormat = FP64,
    n: int = 16,
    seed: int = 0,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> dict:
    """Bit-identity check of the fast matmul path at a Section 4.2 precision.

    Multiplies two random ``n x n`` matrices through both the scalar
    reference kernel and the vectorized fast path (which now serves the
    64-bit hot path as well) and reports whether every output word is
    identical.  Pure function of its arguments, so it runs as a cached
    :class:`repro.engine.Job`; it does not feed the ``run()`` table —
    results artifacts stay byte-identical — but gates the fast-path
    routing in the test suite.
    """
    from repro.kernels.fast import functional_matmul_vectorized
    from repro.kernels.matmul import functional_matmul

    rng = random.Random(seed)
    a = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    b = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    scalar = functional_matmul(fmt, a, b, mode)
    fast = functional_matmul_vectorized(
        fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64), mode
    )
    mismatches = sum(
        1
        for i in range(n)
        for j in range(n)
        if scalar[i][j] != int(fast[i][j])
    )
    return {
        "fmt": fmt.name,
        "n": n,
        "seed": seed,
        "mode": mode.value,
        "checked": n * n,
        "mismatches": mismatches,
        "identical": mismatches == 0,
    }


def run(device: Device = XC2VP125) -> Table:
    """Regenerate the Section 4.2 comparison."""
    table = Table(
        title=f"Section 4.2: Matrix multiplication on {device.name}",
        columns=COLUMNS,
    )
    for fmt in (FP32, FP64):
        model = model_for(fmt)
        fill = model.device_fill(device)
        gflops = model.peak_gflops(device)
        power = model.device_power_w(device)
        gpw = gflops / power
        bits = fmt.width
        table.add_row(
            f"{bits}-bit",
            fill.pes,
            model.frequency_mhz,
            gflops,
            power,
            gpw,
            gflops / PENTIUM4_2_53.gflops(bits),
            gflops / POWERPC_G4_1000.gflops(bits),
            gpw / PENTIUM4_2_53.gflops_per_watt(bits),
        )
    return table
