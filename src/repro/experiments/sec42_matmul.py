"""Section 4.2: full-device matrix-multiplication throughput.

Fills the XC2VP125 with linear-array PEs built from the kernel-selected
FP units (best MHz/slice meeting the array clock: 250 MHz single,
200 MHz double) and reports sustained GFLOPS and GFLOPS/W against the
Pentium 4 and PowerPC G4 baselines.

Paper numbers: ~19.6 GFLOPS for 32-bit (abstract: ~15 sustained single /
~8 double), a 6X GFLOPS advantage over the 2.54 GHz Pentium 4, 3X over
the 1 GHz G4, and "up to 6x improvement (for single precision) in terms
of the GFLOPS/W metric".
"""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.tables import Table
from repro.baselines.processors import PENTIUM4_2_53, POWERPC_G4_1000
from repro.fabric.device import XC2VP125, Device
from repro.fp.format import FP32, FP64, FPFormat
from repro.fp.rounding import RoundingMode
from repro.kernels.performance import ARRAY_CLOCK_MHZ, MatmulPerformanceModel
from repro.units.explorer import UnitKind, explore

COLUMNS = (
    "Precision",
    "PEs",
    "Clock (MHz)",
    "GFLOPS",
    "Device power (W)",
    "GFLOPS/W",
    "vs P4 (GFLOPS)",
    "vs G4 (GFLOPS)",
    "vs P4 (GFLOPS/W)",
)


def model_for(fmt: FPFormat) -> MatmulPerformanceModel:
    """Kernel performance model with the paper's unit-selection rule."""
    target = ARRAY_CLOCK_MHZ[fmt.name]
    adder = explore(fmt, UnitKind.ADDER).cheapest_at_least(target)
    multiplier = explore(fmt, UnitKind.MULTIPLIER).cheapest_at_least(target)
    return MatmulPerformanceModel(fmt, adder, multiplier, frequency_mhz=target)


def kernel_selfcheck(
    fmt: FPFormat = FP64,
    n: int = 16,
    seed: int = 0,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    mul_latency: int = 3,
    add_latency: int = 5,
    backend: str = "batched",
) -> dict:
    """Bit-identity check of the cycle-accurate array at a §4.2 precision.

    Multiplies two random ``n x n`` matrices through the selected
    cycle-accurate simulator (``backend="batched"`` by default, so sizes
    in the hundreds stay cheap; ``"stepped"`` selects the clock-by-clock
    reference model) and through the vectorized functional reference,
    and reports whether every output word is identical.  Pure function
    of its arguments, so it runs as a cached :class:`repro.engine.Job`;
    it does not feed the ``run()`` table — results artifacts stay
    byte-identical — but gates the fast-path routing in the test suite.
    """
    from repro.kernels.batched import make_matmul_array
    from repro.kernels.fast import functional_matmul_vectorized

    rng = random.Random(seed)
    a = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    b = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    array = make_matmul_array(fmt, n, mul_latency, add_latency, mode=mode,
                              backend=backend)
    timed = array.run(a, b)
    fast = functional_matmul_vectorized(
        fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64), mode
    )
    mismatches = sum(
        1
        for i in range(n)
        for j in range(n)
        if timed.c[i][j] != int(fast[i][j])
    )
    return {
        "fmt": fmt.name,
        "n": n,
        "seed": seed,
        "mode": mode.value,
        "backend": backend,
        "cycles": timed.cycles,
        "pe_utilization": timed.pe_utilization,
        "checked": n * n,
        "mismatches": mismatches,
        "identical": mismatches == 0,
    }


def scan_point(
    fmt: FPFormat,
    n: int,
    mul_latency: int,
    add_latency: int,
    seed: int = 0,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    backend: str = "batched",
) -> dict:
    """One problem size of the measured kernel scan (module-level, so it
    runs as a cached engine job).  Simulates an actual bit-level run and
    returns the measured schedule statistics alongside the analytic
    throughput at the array clock for this precision."""
    from repro.kernels.batched import make_matmul_array

    rng = random.Random(seed)
    a = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    b = [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]
    run_ = make_matmul_array(fmt, n, mul_latency, add_latency, mode=mode,
                             backend=backend).run(a, b)
    mhz = ARRAY_CLOCK_MHZ.get(fmt.name, 200.0)
    latency_us = run_.cycles / mhz
    return {
        "n": n,
        "cycles": run_.cycles,
        "issued_macs": run_.issued_macs,
        "padded_cycles": run_.padded_cycles,
        "pe_utilization": run_.pe_utilization,
        "flags": run_.flags.to_bits(),
        "latency_us": latency_us,
        "gflops": 2.0 * n**3 / (latency_us * 1000.0),
    }


#: Default problem sizes of the measured scan — Figure 5's x-range
#: extended an order of magnitude past the paper's few tens.
SCAN_SIZES = (8, 16, 32, 64, 128, 256)


def problem_size_scan(
    fmt: FPFormat = FP32,
    sizes: tuple[int, ...] = SCAN_SIZES,
    mul_latency: int = 3,
    add_latency: int = 5,
    seed: int = 0,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    backend: str = "batched",
    engine=None,
) -> Table:
    """Figure 5/6-style problem-size scan on *measured* runs.

    Where Figure 5 sweeps the analytic performance model, this scan
    actually executes every problem size bit-exactly on the selected
    cycle-accurate simulator — one cached :class:`repro.engine.Job` per
    size, evaluated through the shared engine — which the batched
    backend makes affordable up to ``n = 256`` in seconds.
    """
    from repro.engine import Job, default_engine

    jobs = [
        Job.create(
            f"sec42.scan.{fmt.name}.n{n}",
            scan_point,
            fmt=fmt,
            n=n,
            mul_latency=mul_latency,
            add_latency=add_latency,
            seed=seed,
            mode=mode,
            backend=backend,
        )
        for n in sizes
    ]
    points = (engine if engine is not None else default_engine()).run(jobs)
    table = Table(
        title=f"Section 4.2 extension: measured {fmt.name} kernel scan "
        f"(PL={mul_latency + add_latency}, {backend} backend)",
        columns=("n", "Cycles", "Padded cycles", "PE utilization",
                 "Latency (us)", "GFLOPS"),
    )
    for p in points:
        table.add_row(
            p["n"],
            p["cycles"],
            p["padded_cycles"],
            p["pe_utilization"],
            p["latency_us"],
            p["gflops"],
        )
    return table


def run(device: Device = XC2VP125) -> Table:
    """Regenerate the Section 4.2 comparison."""
    table = Table(
        title=f"Section 4.2: Matrix multiplication on {device.name}",
        columns=COLUMNS,
    )
    for fmt in (FP32, FP64):
        model = model_for(fmt)
        fill = model.device_fill(device)
        gflops = model.peak_gflops(device)
        power = model.device_power_w(device)
        gpw = gflops / power
        bits = fmt.width
        table.add_row(
            f"{bits}-bit",
            fill.pes,
            model.frequency_mhz,
            gflops,
            power,
            gpw,
            gflops / PENTIUM4_2_53.gflops(bits),
            gflops / POWERPC_G4_1000.gflops(bits),
            gpw / PENTIUM4_2_53.gflops_per_watt(bits),
        )
    return table
