"""Figure 3: power versus pipeline stages at 100 MHz.

Clock/signal/logic power only (no I/O, no quiescent), per the paper.
Expected shape: power grows monotonically with depth at fixed frequency,
because every added register level adds flip-flops and clock-tree load;
wider formats sit strictly higher.
"""

from __future__ import annotations

from repro.analysis.series import SweepResult
from repro.fp.format import PAPER_FORMATS
from repro.power.xpower import estimate_power
from repro.units.explorer import UnitKind, explore


def run(
    kind: UnitKind = UnitKind.ADDER,
    frequency_mhz: float = 100.0,
    extra_stages: int = 4,
) -> SweepResult:
    """Regenerate Fig 3a (adders) or Fig 3b (multipliers)."""
    max_stages = (
        max(kind.datapath(fmt).natural_max_stages for fmt in PAPER_FORMATS)
        + extra_stages
    )
    result = SweepResult(
        title=f"Figure 3{'a' if kind is UnitKind.ADDER else 'b'}: "
        f"Power vs pipeline stages ({kind.value}s, {frequency_mhz:.0f} MHz)",
        x_label="stages",
        y_label="mW",
        x=tuple(float(s) for s in range(1, max_stages + 1)),
    )
    for fmt in PAPER_FORMATS:
        space = explore(fmt, kind, max_stages=max_stages)
        result.add_series(
            f"{fmt.width}-bit",
            [estimate_power(r, frequency_mhz).total_mw for r in space.reports],
        )
    return result


def run_both(frequency_mhz: float = 100.0) -> tuple[SweepResult, SweepResult]:
    """Both panels of Figure 3."""
    return (
        run(UnitKind.ADDER, frequency_mhz),
        run(UnitKind.MULTIPLIER, frequency_mhz),
    )
