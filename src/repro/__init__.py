"""repro — reproduction of Govindu, Zhuo, Choi & Prasanna,
"Analysis of High-performance Floating-point Arithmetic on FPGAs"
(IPPS/RAW 2004).

The package provides:

* :mod:`repro.fp` — bit-accurate, parameterized floating-point
  adder/subtractor and multiplier datapaths (32/48/64-bit and custom
  formats), denormal-free with round-to-nearest-even and truncation;
* :mod:`repro.rtl` — a small cycle-accurate synchronous modelling kit
  (pipelines, bubbles, DONE sideband);
* :mod:`repro.fabric` — a Virtex-II Pro technology model: device
  catalog, area/delay models for the datapath subunits, optimal pipeline
  register placement, and an ISE-like synthesis flow producing
  slices/LUTs/FFs/clock reports;
* :mod:`repro.units` — pipelined FP unit generators plus the
  pipeline-depth design-space explorer (min/opt/max implementations);
* :mod:`repro.power` — XPower-style power and domain-specific energy
  models;
* :mod:`repro.kernels` — the linear-array matrix-multiplication kernel,
  both cycle-accurate (bit-exact results, hazard detection) and analytic
  (GFLOPS, energy, latency, device fill);
* :mod:`repro.baselines` — Pentium 4 / G4 and vendor-core comparison
  points;
* :mod:`repro.experiments` — one regenerator per table/figure of the
  paper (``repro all`` on the command line).

Quickstart::

    from repro import FP32, FPValue, PipelinedFPAdder

    adder = PipelinedFPAdder(FP32, stages=14)
    a = FPValue.from_float(FP32, 1.5)
    b = FPValue.from_float(FP32, 2.25)
    bits, flags = adder.compute(a.bits, b.bits)
    print(FPValue(FP32, bits).to_float(), adder.report)
"""

from repro.fp import (
    FP32,
    FP48,
    FP64,
    FPAdder,
    FPFlags,
    FPFormat,
    FPMultiplier,
    FPValue,
    RoundingMode,
    fp_add,
    fp_mul,
    fp_sub,
)
from repro.fabric import XC2VP125, Device, get_device
from repro.kernels import MatmulArray, MatmulPerformanceModel, functional_matmul
from repro.units import PipelinedFPAdder, PipelinedFPMultiplier, explore

__version__ = "1.0.0"

__all__ = [
    "FP32",
    "FP48",
    "FP64",
    "FPAdder",
    "FPFlags",
    "FPFormat",
    "FPMultiplier",
    "FPValue",
    "MatmulArray",
    "MatmulPerformanceModel",
    "PipelinedFPAdder",
    "PipelinedFPMultiplier",
    "RoundingMode",
    "XC2VP125",
    "Device",
    "explore",
    "fp_add",
    "fp_mul",
    "fp_sub",
    "functional_matmul",
    "get_device",
    "__version__",
]
