"""Third-party floating-point core baselines (paper Tables 3 and 4).

The paper compares its 32-bit cores against the commercial Nallatech [7]
and Quixilica [8] cores, and its 64-bit cores against the
Belanovic–Leeser parameterized library from Northeastern University [1].
The comparison rows are fixed published operating points, not things we
synthesize — so, like the processor baselines, they are data-backed
constants.  The numeric values are era-correct estimates reconstructed
from the vendors' datasheets scaled to a Virtex-II Pro -7 (the exact
table numbers did not survive the source OCR; EXPERIMENTS.md discusses
the resulting comparisons qualitatively, which is what the paper's own
text does: the custom-format commercial cores are smaller — sometimes
winning on MHz/slice — but need format-conversion shims at system
interfaces; the NEU library cores are much shallower and slower).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power import xpower


@dataclass(frozen=True)
class VendorCore:
    """A published third-party FP core operating point."""

    vendor: str
    kind: str  # "adder" | "multiplier"
    width: int
    stages: int
    slices: int
    clock_mhz: float
    mult18: int = 0
    ieee_format: bool = True
    #: Extra slices required to convert to/from IEEE-754 at system
    #: interfaces when the core uses a custom internal format.
    conversion_slices: int = 0

    @property
    def freq_per_area(self) -> float:
        """MHz/slice as published (excludes conversion shims)."""
        return self.clock_mhz / self.slices

    @property
    def system_slices(self) -> int:
        """Area including any needed format-conversion modules."""
        return self.slices + self.conversion_slices

    @property
    def system_freq_per_area(self) -> float:
        """MHz/slice charged with the conversion shims."""
        return self.clock_mhz / self.system_slices

    @property
    def flipflops(self) -> int:
        """FF estimate for power comparison: one result-width register
        per stage plus sideband."""
        return round(self.stages * (self.width + 6) * 0.9)

    @property
    def luts(self) -> int:
        return round(self.slices * 1.8)

    def power_mw(self, frequency_mhz: float = 100.0) -> float:
        """Dynamic power at a reference clock (Table 4's power column)."""
        return xpower.raw_power_mw(
            flipflops=self.flipflops,
            luts=self.luts,
            frequency_mhz=frequency_mhz,
            mult18=self.mult18,
        )


# --------------------------------------------------------------------- #
# Table 3 comparators: 32-bit commercial cores (custom formats).
# --------------------------------------------------------------------- #
NALLATECH_ADD32 = VendorCore(
    vendor="Nallatech",
    kind="adder",
    width=32,
    stages=5,
    slices=360,
    clock_mhz=180.0,
    ieee_format=False,
    conversion_slices=50,
)
NALLATECH_MUL32 = VendorCore(
    vendor="Nallatech",
    kind="multiplier",
    width=32,
    stages=4,
    slices=120,
    clock_mhz=185.0,
    mult18=4,
    ieee_format=False,
    conversion_slices=50,
)
QUIXILICA_ADD32 = VendorCore(
    vendor="Quixilica",
    kind="adder",
    width=32,
    stages=14,
    slices=291,
    clock_mhz=210.0,
    ieee_format=False,
    conversion_slices=50,
)
QUIXILICA_MUL32 = VendorCore(
    vendor="Quixilica",
    kind="multiplier",
    width=32,
    stages=8,
    slices=135,
    clock_mhz=210.0,
    mult18=4,
    ieee_format=False,
    conversion_slices=50,
)

# --------------------------------------------------------------------- #
# Table 4 comparators: the NEU parameterized library (IEEE formats,
# shallow pipelines, pre-Virtex-II design style).
# --------------------------------------------------------------------- #
NEU_ADD64 = VendorCore(
    vendor="NEU",
    kind="adder",
    width=64,
    stages=4,
    slices=1090,
    clock_mhz=85.0,
)
NEU_MUL64 = VendorCore(
    vendor="NEU",
    kind="multiplier",
    width=64,
    stages=5,
    slices=880,
    clock_mhz=80.0,
    mult18=16,
)

TABLE3_CORES: tuple[VendorCore, ...] = (
    NALLATECH_ADD32,
    QUIXILICA_ADD32,
    NALLATECH_MUL32,
    QUIXILICA_MUL32,
)
TABLE4_CORES: tuple[VendorCore, ...] = (NEU_ADD64, NEU_MUL64)
