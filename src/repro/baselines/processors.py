"""General-purpose processor baselines (paper Section 4.2).

The paper compares its full-device matrix-multiplication throughput
against a 2.54 GHz Pentium 4 and a 1 GHz PowerPC G4, citing vendor
executive summaries [3].  These are comparison *constants*, exactly as the
paper uses them: sustained dense-matmul GFLOPS and the processor's power
draw for the GFLOPS/W metric.

Values (documented model inputs, era-correct):

* Pentium 4 "Northwood" 2.53 GHz: SSE/SSE2 sustained SGEMM ~3.3 GFLOPS,
  DGEMM ~1.7 GFLOPS; TDP 59.8 W.  The paper's "6X improvement ... over
  the 2.54 GHz Pentium 4" at 19.6 GFLOPS implies ~3.3 sustained.
* Motorola PowerPC G4 (MPC7455) 1 GHz: AltiVec single precision sustained
  ~6.5 GFLOPS (the paper's "3X improvement over the 1 GHz G4"); AltiVec
  has no double-precision path, the scalar FPU sustains ~0.8 GFLOPS;
  typical dissipation 21.3 W.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorBaseline:
    """Sustained matmul performance and power of one processor."""

    name: str
    clock_ghz: float
    sgemm_gflops: float
    dgemm_gflops: float
    power_w: float

    def gflops(self, precision_bits: int) -> float:
        """Sustained GFLOPS at the requested precision."""
        if precision_bits <= 32:
            return self.sgemm_gflops
        return self.dgemm_gflops

    def gflops_per_watt(self, precision_bits: int) -> float:
        return self.gflops(precision_bits) / self.power_w


PENTIUM4_2_53 = ProcessorBaseline(
    name="Pentium 4 (2.53 GHz)",
    clock_ghz=2.53,
    sgemm_gflops=3.3,
    dgemm_gflops=1.7,
    power_w=59.8,
)

POWERPC_G4_1000 = ProcessorBaseline(
    name="PowerPC G4 (1 GHz)",
    clock_ghz=1.0,
    sgemm_gflops=6.5,
    dgemm_gflops=0.8,
    power_w=21.3,
)

#: Baselines in the order the paper mentions them.
ALL_PROCESSORS: tuple[ProcessorBaseline, ...] = (PENTIUM4_2_53, POWERPC_G4_1000)
