"""Comparison baselines: general-purpose processors and third-party cores."""

from repro.baselines.processors import PENTIUM4_2_53, POWERPC_G4_1000, ProcessorBaseline
from repro.baselines.vendor_cores import (
    NALLATECH_ADD32,
    NALLATECH_MUL32,
    NEU_ADD64,
    NEU_MUL64,
    QUIXILICA_ADD32,
    QUIXILICA_MUL32,
    VendorCore,
)

__all__ = [
    "NALLATECH_ADD32",
    "NALLATECH_MUL32",
    "NEU_ADD64",
    "NEU_MUL64",
    "PENTIUM4_2_53",
    "POWERPC_G4_1000",
    "QUIXILICA_ADD32",
    "QUIXILICA_MUL32",
    "ProcessorBaseline",
    "VendorCore",
]
