"""Fault injection: mutation coverage of the structural cores.

A verification flow is only as good as its sensitivity: if a randomly
injected datapath fault escapes the testbench, the testbench is too
weak.  This module wraps a structural core's micro-op list with
single-point fault injectors (stuck-at / bit-flip on one state field of
one micro-op) and measures how many injected faults the
golden-model comparison detects — classic mutation analysis, applied to
the RTL-vs-golden flow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.fp.format import FPFormat
from repro.rtl.staged import MicroOp, State


@dataclass(frozen=True)
class Fault:
    """A single-point fault: flip one bit of one field after one op."""

    op_index: int
    field: str
    bit: int

    def describe(self) -> str:
        return f"op[{self.op_index}].{self.field} ^= bit {self.bit}"


def inject(ops: Sequence[MicroOp], fault: Fault) -> list[MicroOp]:
    """Return a copy of ``ops`` with ``fault`` wired in."""
    if not 0 <= fault.op_index < len(ops):
        raise ValueError(f"op_index {fault.op_index} out of range")
    target = ops[fault.op_index]

    def faulty(state: State) -> State:
        out = target.fn(state)
        merged = dict(state)
        merged.update(out)
        if fault.field in merged and isinstance(merged[fault.field], int):
            out = dict(out)
            out[fault.field] = merged[fault.field] ^ (1 << fault.bit)
        return out

    mutated = list(ops)
    mutated[fault.op_index] = MicroOp(f"{target.name}!fault", faulty)
    return mutated


def _integer_fields(ops: Sequence[MicroOp], probe: State) -> list[tuple[int, str]]:
    """Discover (op_index, field) sites by running the chain once."""
    sites = []
    state = dict(probe)
    for i, op in enumerate(ops):
        updates = op.fn(state)
        state.update(updates)
        for key, value in updates.items():
            if isinstance(value, int) and not isinstance(value, bool):
                sites.append((i, key))
    return sites


@dataclass
class MutationReport:
    """Outcome of a mutation campaign."""

    trials: int
    detected: int
    escaped: list[Fault]

    @property
    def coverage(self) -> float:
        return self.detected / self.trials if self.trials else 0.0


#: Operand state keys in issue order (unary reads "a", ternary "a","b","c").
_OPERAND_KEYS = ("a", "b", "c")


def mutation_campaign(
    fmt: FPFormat,
    ops: Sequence[MicroOp],
    golden: Callable[..., tuple],
    trials: int = 50,
    vectors_per_trial: int = 16,
    seed: int = 0,
    arity: int = 2,
    vectors: Callable[[random.Random], tuple[int, ...]] | None = None,
) -> MutationReport:
    """Inject ``trials`` random single-point faults; count detections.

    A fault is *detected* when any of the random operand vectors makes
    the faulty chain's packed result or flag sideband differ from the
    golden function.  Faults in dead corners (e.g. a bit that the
    rounding stage discards) can legitimately escape; the report lists
    the escapees for triage.

    ``arity`` sets how many operands the chain consumes (1 for the sqrt
    recurrence, 3 for the fused MAC); ``golden`` is called with that
    many bit patterns.  ``vectors`` overrides the operand generator —
    the default draws independent uniform normal words, which never hits
    low-observability corners like exact quotients or catastrophic
    cancellation, so recurrence- and wide-product chains should pass a
    corner-biased generator instead.  The two-operand probe and default
    vector stream are unchanged from the original binary campaign, so
    pinned seeds keep their coverage.
    """
    if not 1 <= arity <= len(_OPERAND_KEYS):
        raise ValueError(f"arity must be 1..{len(_OPERAND_KEYS)}, got {arity}")
    rng = random.Random(seed)
    probe_words = (
        fmt.pack(0, fmt.bias, fmt.man_mask // 3),
        fmt.pack(0, fmt.bias + 1, fmt.man_mask // 5),
        fmt.pack(0, fmt.bias - 1, fmt.man_mask // 7),
    )
    probe = dict(zip(_OPERAND_KEYS[:arity], probe_words))
    sites = _integer_fields(ops, probe)
    if not sites:
        raise ValueError("no integer state fields found to fault")

    def run_chain(chain: Sequence[MicroOp], operands: tuple[int, ...]):
        state: State = dict(zip(_OPERAND_KEYS[:arity], operands))
        for op in chain:
            merged = dict(state)
            merged.update(op.fn(state))
            state = merged
        return state["result"], state["flags"]

    def uniform_normals(r: random.Random) -> tuple[int, ...]:
        return tuple(
            fmt.pack(
                r.randint(0, 1),
                r.randint(1, fmt.exp_max - 1),
                r.randrange(fmt.man_mask + 1),
            )
            for _ in range(arity)
        )

    draw = vectors if vectors is not None else uniform_normals

    detected = 0
    escaped: list[Fault] = []
    for _ in range(trials):
        op_index, field = rng.choice(sites)
        fault = Fault(op_index=op_index, field=field, bit=rng.randrange(8))
        chain = inject(ops, fault)
        found = False
        for _ in range(vectors_per_trial):
            operands = draw(rng)
            try:
                mismatch = run_chain(chain, operands) != tuple(golden(*operands))
            except (ValueError, KeyError, OverflowError):
                # A corrupted bundle crashing a downstream stage is a
                # loud detection, not an escape.
                mismatch = True
            if mismatch:
                found = True
                break
        if found:
            detected += 1
        else:
            escaped.append(fault)
    return MutationReport(trials=trials, detected=detected, escaped=escaped)
