"""Golden-vector regression corpus: seed-pinned oracle outputs on disk.

The differential campaign regenerates its operands every run; the golden
corpus is the complement — a small, *checked-in* set of vectors whose
operands and exactly-rounded results (bits **and** flags, both rounding
modes) were produced once from the rational oracle and are replayed
through the scalar and vectorized datapaths on every test run.  If a
future refactor changes any rounding/flag behavior, the corpus diff
shows exactly which operand class pair moved.

Corpus files live in ``tests/vectors/<fmt>_<op>.json``; regenerate them
(only when semantics are *intended* to change) with::

    PYTHONPATH=src python -m repro.verify.golden tests/vectors
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable

from repro.fp.format import (
    FP32,
    FP48,
    FP64,
    FPFormat,
    PAPER_FORMATS,
    SMALL_FORMATS,
)
from repro.fp.reference import (
    ref_add,
    ref_div,
    ref_fma,
    ref_mul,
    ref_sqrt,
    ref_sub,
)
from repro.fp.rounding import RoundingMode
from repro.verify.testbench import OperandClass, OperandGenerator

#: Pinned generator seed — corpus files are reproducible artifacts.
GOLDEN_SEED = 0xD1FF
#: Operand samples drawn per (class, class) pair.
SAMPLES_PER_PAIR = 2
#: Operations covered by the paper-format corpora.
GOLDEN_OPS = ("add", "mul", "div", "sqrt", "fma")
#: Operations covered by the small-format (fp16/bf16) corpora — the ops
#: with packed sub-lane kernels, so every corpus also replays packed.
SMALL_GOLDEN_OPS = ("add", "sub", "mul")

_ORACLE = {
    "add": ref_add,
    "sub": ref_sub,
    "mul": ref_mul,
    "div": ref_div,
    "sqrt": ref_sqrt,
    "fma": ref_fma,
}

#: Operand count per golden op (mirrors verify.differential.OP_ARITY).
GOLDEN_ARITY = {"add": 2, "sub": 2, "mul": 2, "div": 2, "sqrt": 1, "fma": 3}

_OPERAND_KEYS = ("a", "b", "c")


def _directed_cases(fmt: FPFormat, op: str) -> list[tuple[str, tuple[int, ...]]]:
    """Hand-picked operand tuples every corpus must pin, per op.

    The div rows pin the exception-flag corners (``x/0`` raises
    ``div_by_zero``, ``0/0`` and ``Inf/Inf`` raise ``invalid``); the sqrt
    rows pin the parity datapath (odd/even exponents, exact squares, and
    the all-ones mantissa whose root can never be an exact tie); the fma
    rows pin exact cancellation and the 0*Inf invalid.
    """
    one = fmt.one()
    if fmt.width <= 16 and op in ("add", "sub", "mul"):
        # Small-format-only rows (the gate keeps every paper corpus
        # byte-identical): fp16/bf16 sit much closer to both range
        # edges — one max+max overflows to Inf, one min_normal^2 lands
        # deep under the flush threshold, and exponent-0 (denormal)
        # patterns behave as zeros — so the corpora pin those corners
        # explicitly.
        sub_max = fmt.pack(0, 0, fmt.man_mask)  # largest subnormal
        sub_min = fmt.pack(0, 0, 1)  # smallest subnormal
        two = fmt.pack(0, fmt.bias + 1, 0)
        if op == "add":
            return [
                ("subnormal_sum", (sub_max, sub_min)),
                ("subnormal_cancel", (fmt.pack(0, 0, 9), fmt.pack(1, 0, 9))),
                ("subnormal_promotes", (sub_max, fmt.min_normal(0))),
                ("overflow_to_inf", (fmt.max_finite(0), fmt.max_finite(0))),
            ]
        if op == "sub":
            return [
                ("subnormal_diff", (sub_max, sub_min)),
                ("subnormal_cancel", (fmt.pack(0, 0, 9), fmt.pack(0, 0, 9))),
                ("min_normal_step_down", (fmt.min_normal(0), sub_min)),
                ("overflow_to_inf", (fmt.max_finite(0), fmt.max_finite(1))),
            ]
        return [
            ("subnormal_times_two", (sub_max, two)),
            ("underflow_flush", (fmt.min_normal(0), fmt.min_normal(0))),
            ("underflow_to_zero", (sub_min, sub_min)),
            ("overflow_to_inf", (fmt.max_finite(0), fmt.max_finite(0))),
        ]
    if op == "div":
        return [
            ("x_div_zero", (one, fmt.zero(0))),
            ("x_div_neg_zero", (one, fmt.zero(1))),
            ("zero_div_zero", (fmt.zero(0), fmt.zero(0))),
            ("inf_div_inf", (fmt.inf(0), fmt.inf(1))),
            ("overflow", (fmt.max_finite(0), fmt.min_normal(0))),
            ("underflow", (fmt.min_normal(0), fmt.max_finite(0))),
        ]
    if op == "sqrt":
        return [
            ("even_exact_square", (fmt.pack(0, fmt.bias + 2, 0),)),  # 4.0
            ("odd_exponent", (fmt.pack(0, fmt.bias + 1, 0),)),  # 2.0
            ("odd_exponent_neg", (fmt.pack(0, fmt.bias - 1, 0),)),  # 0.5
            ("all_ones_even", (fmt.pack(0, fmt.bias, fmt.man_mask),)),
            ("all_ones_odd", (fmt.pack(0, fmt.bias + 1, fmt.man_mask),)),
            ("min_normal", (fmt.min_normal(0),)),
            ("max_finite", (fmt.max_finite(0),)),
            ("negative", (fmt.one(1),)),
            ("neg_zero", (fmt.zero(1),)),
        ]
    if op == "fma":
        return [
            ("exact_cancel", (one, one, fmt.one(1))),
            ("zero_times_inf", (fmt.zero(0), fmt.inf(0), one)),
            ("all_zero_neg", (fmt.zero(1), one, fmt.zero(1))),
            ("addend_dominates", (fmt.min_normal(0), fmt.min_normal(0), one)),
            ("product_dominates", (fmt.max_finite(0), one, fmt.min_normal(0))),
        ]
    return []


def generate_corpus(
    fmt: FPFormat,
    op: str,
    seed: int = GOLDEN_SEED,
    samples_per_pair: int = SAMPLES_PER_PAIR,
) -> dict:
    """Build one corpus document from the exact rational oracle."""
    if op not in _ORACLE:
        raise ValueError(f"unknown golden op {op!r}; known: {sorted(_ORACLE)}")
    oracle = _ORACLE[op]
    arity = GOLDEN_ARITY[op]
    gen = OperandGenerator(fmt, seed)
    classes = list(OperandClass)
    cases = []

    def emit(labels: list[str], operands: tuple[int, ...]) -> None:
        case: dict = {"classes": labels}
        for key, word in zip(_OPERAND_KEYS, operands):
            case[key] = f"{word:#x}"
        for mode in RoundingMode:
            bits, flags = oracle(fmt, *operands, mode)
            case[mode.value] = {
                "bits": f"{bits:#x}",
                "flags": flags.to_bits(),
            }
        cases.append(case)

    if arity == 1:
        for cls_a in classes:
            for _ in range(samples_per_pair):
                emit([cls_a.value], (gen.sample(cls_a),))
    elif arity == 2:
        for cls_a in classes:
            for cls_b in classes:
                for _ in range(samples_per_pair):
                    a = gen.sample(cls_a)
                    b = gen.sample(cls_b)
                    emit([cls_a.value, cls_b.value], (a, b))
    else:
        # The 13^3 triple grid is too large to check in; cycle the third
        # operand's class across the pair grid so every class appears.
        n_cls = len(classes)
        for ia, cls_a in enumerate(classes):
            for ib, cls_b in enumerate(classes):
                cls_c = classes[(ia + ib) % n_cls]
                for _ in range(samples_per_pair):
                    a = gen.sample(cls_a)
                    b = gen.sample(cls_b)
                    c = gen.sample(cls_c)
                    emit([cls_a.value, cls_b.value, cls_c.value], (a, b, c))
    for label, operands in _directed_cases(fmt, op):
        emit([f"directed:{label}"], operands)
    return {
        "format": fmt.name,
        "exp_bits": fmt.exp_bits,
        "man_bits": fmt.man_bits,
        "op": op,
        "seed": seed,
        "samples_per_pair": samples_per_pair,
        "cases": cases,
    }


def corpus_filename(fmt: FPFormat, op: str) -> str:
    return f"{fmt.name}_{op}.json"


def load_corpus(path: str | Path) -> dict:
    """Load a corpus file, parsing hex words back to integers.

    Each parsed case carries an ``"operands"`` tuple (arity-aware: one
    word for sqrt, three for fma) alongside the legacy ``"a"``/``"b"``
    keys kept for the binary-op consumers.
    """
    doc = json.loads(Path(path).read_text())
    fmt = FPFormat(doc["exp_bits"], doc["man_bits"], doc["format"])
    cases = []
    for case in doc["cases"]:
        operands = tuple(
            int(case[key], 16) for key in _OPERAND_KEYS if key in case
        )
        parsed = {
            "classes": tuple(case["classes"]),
            "operands": operands,
        }
        for key, word in zip(_OPERAND_KEYS, operands):
            parsed[key] = word
        for mode in RoundingMode:
            entry = case[mode.value]
            parsed[mode.value] = (int(entry["bits"], 16), int(entry["flags"]))
        cases.append(parsed)
    return {
        "fmt": fmt,
        "op": doc["op"],
        "arity": GOLDEN_ARITY[doc["op"]],
        "seed": doc["seed"],
        "cases": cases,
    }


def write_corpora(
    outdir: str | Path,
    formats: Iterable[FPFormat] = (FP32, FP48, FP64),
    ops: Iterable[str] = GOLDEN_OPS,
) -> list[Path]:
    """Write every (format, op) corpus file under ``outdir``."""
    root = Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for fmt in formats:
        for op in ops:
            doc = generate_corpus(fmt, op)
            path = root / corpus_filename(fmt, op)
            path.write_text(json.dumps(doc, indent=1) + "\n")
            written.append(path)
    return written


if __name__ == "__main__":  # pragma: no cover - regeneration utility
    target = sys.argv[1] if len(sys.argv) > 1 else "tests/vectors"
    for p in write_corpora(target, formats=PAPER_FORMATS):
        print(p)
    for p in write_corpora(target, formats=SMALL_FORMATS, ops=SMALL_GOLDEN_OPS):
        print(p)
