"""Golden-vector regression corpus: seed-pinned oracle outputs on disk.

The differential campaign regenerates its operands every run; the golden
corpus is the complement — a small, *checked-in* set of vectors whose
operands and exactly-rounded results (bits **and** flags, both rounding
modes) were produced once from the rational oracle and are replayed
through the scalar and vectorized datapaths on every test run.  If a
future refactor changes any rounding/flag behavior, the corpus diff
shows exactly which operand class pair moved.

Corpus files live in ``tests/vectors/<fmt>_<op>.json``; regenerate them
(only when semantics are *intended* to change) with::

    PYTHONPATH=src python -m repro.verify.golden tests/vectors
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable

from repro.fp.format import FP32, FP48, FP64, FPFormat, PAPER_FORMATS
from repro.fp.reference import ref_add, ref_mul
from repro.fp.rounding import RoundingMode
from repro.verify.testbench import OperandClass, OperandGenerator

#: Pinned generator seed — corpus files are reproducible artifacts.
GOLDEN_SEED = 0xD1FF
#: Operand samples drawn per (class, class) pair.
SAMPLES_PER_PAIR = 2
#: Operations covered by the corpus.
GOLDEN_OPS = ("add", "mul")

_ORACLE = {"add": ref_add, "mul": ref_mul}


def generate_corpus(
    fmt: FPFormat,
    op: str,
    seed: int = GOLDEN_SEED,
    samples_per_pair: int = SAMPLES_PER_PAIR,
) -> dict:
    """Build one corpus document from the exact rational oracle."""
    if op not in _ORACLE:
        raise ValueError(f"unknown golden op {op!r}; known: {sorted(_ORACLE)}")
    oracle = _ORACLE[op]
    gen = OperandGenerator(fmt, seed)
    cases = []
    for cls_a in OperandClass:
        for cls_b in OperandClass:
            for _ in range(samples_per_pair):
                a = gen.sample(cls_a)
                b = gen.sample(cls_b)
                case = {
                    "classes": [cls_a.value, cls_b.value],
                    "a": f"{a:#x}",
                    "b": f"{b:#x}",
                }
                for mode in RoundingMode:
                    bits, flags = oracle(fmt, a, b, mode)
                    case[mode.value] = {
                        "bits": f"{bits:#x}",
                        "flags": flags.to_bits(),
                    }
                cases.append(case)
    return {
        "format": fmt.name,
        "exp_bits": fmt.exp_bits,
        "man_bits": fmt.man_bits,
        "op": op,
        "seed": seed,
        "samples_per_pair": samples_per_pair,
        "cases": cases,
    }


def corpus_filename(fmt: FPFormat, op: str) -> str:
    return f"{fmt.name}_{op}.json"


def load_corpus(path: str | Path) -> dict:
    """Load a corpus file, parsing hex words back to integers."""
    doc = json.loads(Path(path).read_text())
    fmt = FPFormat(doc["exp_bits"], doc["man_bits"], doc["format"])
    cases = []
    for case in doc["cases"]:
        parsed = {
            "classes": tuple(case["classes"]),
            "a": int(case["a"], 16),
            "b": int(case["b"], 16),
        }
        for mode in RoundingMode:
            entry = case[mode.value]
            parsed[mode.value] = (int(entry["bits"], 16), int(entry["flags"]))
        cases.append(parsed)
    return {"fmt": fmt, "op": doc["op"], "seed": doc["seed"], "cases": cases}


def write_corpora(
    outdir: str | Path,
    formats: Iterable[FPFormat] = (FP32, FP48, FP64),
    ops: Iterable[str] = GOLDEN_OPS,
) -> list[Path]:
    """Write every (format, op) corpus file under ``outdir``."""
    root = Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for fmt in formats:
        for op in ops:
            doc = generate_corpus(fmt, op)
            path = root / corpus_filename(fmt, op)
            path.write_text(json.dumps(doc, indent=1) + "\n")
            written.append(path)
    return written


if __name__ == "__main__":  # pragma: no cover - regeneration utility
    target = sys.argv[1] if len(sys.argv) > 1 else "tests/vectors"
    for p in write_corpora(target, formats=PAPER_FORMATS):
        print(p)
