"""Coverage-directed random testbench for the FP datapaths.

:func:`run_testbench` exercises one operation over *every pair of operand
classes* with randomized members, checking each result bit-for-bit
against the exact rational oracle, and returns a :class:`CoverageReport`
with per-pair counts, the exception-flag histogram and any mismatches
(there must be none — the suite asserts it).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.fp.adder import fp_add, fp_sub
from repro.fp.divider import fp_div
from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.multiplier import fp_mul
from repro.fp.reference import ref_add, ref_div, ref_mul, ref_sqrt, ref_sub
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt


class OperandClass(enum.Enum):
    """Operand equivalence classes the testbench must cover."""

    POS_ZERO = "pos_zero"
    NEG_ZERO = "neg_zero"
    ONE = "one"
    MIN_NORMAL = "min_normal"
    MAX_FINITE = "max_finite"
    NEAR_UNDERFLOW = "near_underflow"
    NEAR_OVERFLOW = "near_overflow"
    RANDOM_NORMAL = "random_normal"
    TIE_PRONE = "tie_prone"
    DENORMAL_PATTERN = "denormal_pattern"
    POS_INF = "pos_inf"
    NEG_INF = "neg_inf"
    NAN = "nan"


#: Binary operation name -> (implementation, oracle).
OPERATIONS: dict[str, tuple[Callable, Callable]] = {
    "add": (fp_add, ref_add),
    "sub": (fp_sub, ref_sub),
    "mul": (fp_mul, ref_mul),
    "div": (fp_div, ref_div),
}

#: Unary operation name -> (implementation, oracle).
UNARY_OPERATIONS: dict[str, tuple[Callable, Callable]] = {
    "sqrt": (fp_sqrt, ref_sqrt),
}


class OperandGenerator:
    """Draws random members of each operand class for a format."""

    def __init__(self, fmt: FPFormat, seed: int = 0) -> None:
        self.fmt = fmt
        self.rng = random.Random(seed)

    def sample(self, cls: OperandClass) -> int:
        fmt = self.fmt
        rng = self.rng
        if cls is OperandClass.POS_ZERO:
            return fmt.zero(0)
        if cls is OperandClass.NEG_ZERO:
            return fmt.zero(1)
        if cls is OperandClass.ONE:
            return fmt.one(rng.randint(0, 1))
        if cls is OperandClass.MIN_NORMAL:
            return fmt.pack(rng.randint(0, 1), 1, 0)
        if cls is OperandClass.MAX_FINITE:
            return fmt.max_finite(rng.randint(0, 1))
        if cls is OperandClass.NEAR_UNDERFLOW:
            # The upper bound clamps so tiny exponent fields (e.g. 2-bit
            # formats, where exp_max - 1 < 4) stay in range; for every
            # paper/small format the bounds — and therefore the rng
            # stream — are unchanged.
            return fmt.pack(
                rng.randint(0, 1),
                rng.randint(1, min(4, fmt.exp_max - 1)),
                rng.randrange(fmt.man_mask + 1),
            )
        if cls is OperandClass.NEAR_OVERFLOW:
            return fmt.pack(
                rng.randint(0, 1),
                rng.randint(max(1, fmt.exp_max - 4), fmt.exp_max - 1),
                rng.randrange(fmt.man_mask + 1),
            )
        if cls is OperandClass.RANDOM_NORMAL:
            return fmt.pack(
                rng.randint(0, 1),
                rng.randint(1, fmt.exp_max - 1),
                rng.randrange(fmt.man_mask + 1),
            )
        if cls is OperandClass.TIE_PRONE:
            # All-ones / single-bit mantissas near a shared exponent are
            # the patterns that exercise rounding ties and carries.
            man = rng.choice(
                [fmt.man_mask, 1, fmt.man_mask - 1, 1 << (fmt.man_bits - 1), 0]
            )
            # Clamp after the draw (not in the bounds) so the rng stream
            # is identical for formats whose bias +/- 2 already fits.
            exp = min(max(fmt.bias + rng.randint(-2, 2), 1), fmt.exp_max - 1)
            return fmt.pack(rng.randint(0, 1), exp, man)
        if cls is OperandClass.DENORMAL_PATTERN:
            return fmt.pack(
                rng.randint(0, 1), 0, rng.randrange(1, fmt.man_mask + 1)
            )
        if cls is OperandClass.POS_INF:
            return fmt.inf(0)
        if cls is OperandClass.NEG_INF:
            return fmt.inf(1)
        if cls is OperandClass.NAN:
            return fmt.pack(
                rng.randint(0, 1),
                fmt.exp_max,
                rng.randrange(1, fmt.man_mask + 1),
            )
        raise ValueError(f"unknown operand class {cls}")  # pragma: no cover


@dataclass
class Mismatch:
    """One disagreement between implementation and oracle."""

    op: str
    a: int
    b: int
    got: int
    expected: int
    mode: RoundingMode


@dataclass
class CoverageReport:
    """Outcome of one testbench run."""

    fmt: FPFormat
    op: str
    arity: int = 2
    cases: int = 0
    pair_counts: dict[tuple[OperandClass, ...], int] = field(
        default_factory=dict
    )
    flag_histogram: dict[str, int] = field(default_factory=dict)
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def covered_pairs(self) -> int:
        return sum(1 for v in self.pair_counts.values() if v > 0)

    @property
    def total_pairs(self) -> int:
        return len(OperandClass) ** self.arity

    @property
    def full_coverage(self) -> bool:
        return self.covered_pairs == self.total_pairs

    @property
    def passed(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.mismatches)})"
        return (
            f"{self.op} on {self.fmt.name}: {self.cases} cases, "
            f"{self.covered_pairs}/{self.total_pairs} class pairs, "
            f"flags={dict(sorted(self.flag_histogram.items()))} -> {status}"
        )


def run_testbench(
    fmt: FPFormat,
    op: str = "add",
    samples_per_pair: int = 3,
    seed: int = 0,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> CoverageReport:
    """Sweep all operand-class tuples against the exact oracle."""
    if op in UNARY_OPERATIONS:
        return _run_unary(fmt, op, samples_per_pair, seed, mode)
    if op not in OPERATIONS:
        known = sorted(OPERATIONS) + sorted(UNARY_OPERATIONS)
        raise ValueError(f"unknown op {op!r}; known: {known}")
    impl, oracle = OPERATIONS[op]
    gen = OperandGenerator(fmt, seed)
    report = CoverageReport(fmt=fmt, op=op)
    for cls_a in OperandClass:
        for cls_b in OperandClass:
            report.pair_counts[(cls_a, cls_b)] = 0
            for _ in range(samples_per_pair):
                a = gen.sample(cls_a)
                b = gen.sample(cls_b)
                got_bits, got_flags = impl(fmt, a, b, mode)
                exp_bits, _ = oracle(fmt, a, b, mode)
                report.cases += 1
                report.pair_counts[(cls_a, cls_b)] += 1
                for name, raised in (
                    ("overflow", got_flags.overflow),
                    ("underflow", got_flags.underflow),
                    ("inexact", got_flags.inexact),
                    ("invalid", got_flags.invalid),
                    ("zero", got_flags.zero),
                    ("div_by_zero", got_flags.div_by_zero),
                ):
                    if raised:
                        report.flag_histogram[name] = (
                            report.flag_histogram.get(name, 0) + 1
                        )
                if got_bits != exp_bits:
                    report.mismatches.append(
                        Mismatch(op, a, b, got_bits, exp_bits, mode)
                    )
    return report


def _record_flags(report: CoverageReport, flags: FPFlags) -> None:
    for name, raised in (
        ("overflow", flags.overflow),
        ("underflow", flags.underflow),
        ("inexact", flags.inexact),
        ("invalid", flags.invalid),
        ("zero", flags.zero),
        ("div_by_zero", flags.div_by_zero),
    ):
        if raised:
            report.flag_histogram[name] = report.flag_histogram.get(name, 0) + 1


def _run_unary(
    fmt: FPFormat,
    op: str,
    samples_per_pair: int,
    seed: int,
    mode: RoundingMode,
) -> CoverageReport:
    impl, oracle = UNARY_OPERATIONS[op]
    gen = OperandGenerator(fmt, seed)
    report = CoverageReport(fmt=fmt, op=op, arity=1)
    for cls_a in OperandClass:
        report.pair_counts[(cls_a,)] = 0
        for _ in range(samples_per_pair):
            a = gen.sample(cls_a)
            got_bits, got_flags = impl(fmt, a, mode)
            exp_bits, _ = oracle(fmt, a, mode)
            report.cases += 1
            report.pair_counts[(cls_a,)] += 1
            _record_flags(report, got_flags)
            if got_bits != exp_bits:
                report.mismatches.append(Mismatch(op, a, 0, got_bits, exp_bits, mode))
    return report
