"""Differential verification: batched wavefront array vs stepped array.

The wavefront-batched simulator (:mod:`repro.kernels.batched`) claims to
be bit-, flag-, cycle- and hazard-count-identical to the clock-by-clock
:class:`~repro.kernels.matmul.MatmulArray`.  This module proves it the
same way :mod:`repro.verify.differential` proves the vectorized
datapaths: a matrix of corner configurations — every paper format, both
rounding modes, latency corners on both sides of the ``n < PL`` hazard
boundary, padded and unpadded schedules — each evaluated as a pure,
cacheable :class:`repro.engine.Job` and compared field by field.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine import Engine, Job, default_engine
from repro.fp.flags import FPFlags
from repro.fp.format import PAPER_FORMATS, FPFormat
from repro.fp.mac import fp_fma
from repro.fp.rounding import RoundingMode
from repro.kernels.batched import BatchedMatmulArray, FusedMatmulArray
from repro.kernels.matmul import MatmulArray, RAWHazard

#: (n, L_mul, L_add) corners: minimum sizes, n < PL (padded schedule /
#: unpadded hazards), n == PL, and n > PL steady state.
KERNEL_CORNERS = (
    (1, 2, 3),
    (2, 1, 1),
    (3, 9, 9),
    (4, 7, 10),
    (6, 3, 5),
    (8, 4, 4),
    (9, 2, 2),
    (12, 4, 5),
)


def _rand_matrix(fmt: FPFormat, n: int, rng: random.Random) -> list[list[int]]:
    # Uniform raw words cover specials, extremes and both signs densely.
    return [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]


def _run(cls, fmt, n, lm, la, mode, pad_schedule, a, b):
    """Run one simulator; fold a RAWHazard into the comparable record."""
    try:
        r = cls(fmt, n, lm, la, mode=mode, pad_schedule=pad_schedule).run(a, b)
    except RAWHazard as exc:
        return {"raised": str(exc)}
    return {
        "raised": None,
        "c": r.c,
        "flags": r.flags.to_bits(),
        "cycles": r.cycles,
        "issued_macs": r.issued_macs,
        "padded_cycles": r.padded_cycles,
        "hazards": r.hazards,
        "pes": r.pes,
        "pe_utilization": r.pe_utilization,
    }


def matmul_case(
    fmt: FPFormat,
    n: int,
    mul_latency: int,
    add_latency: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    pad_schedule: bool = True,
    seed: int = 0,
) -> dict:
    """One differential case: stepped vs batched, compared field by field.

    Pure function of its arguments (module-level, picklable), so the
    campaign can run it as a cached engine job.  Returns a report dict
    whose ``"ok"`` key is the verdict; on mismatch the differing fields
    are listed under ``"mismatched"``.
    """
    # Seed from the case description itself (string seeding is stable
    # across processes, unlike hash()), so the job stays a pure function
    # of its arguments and cached results are reproducible.
    rng = random.Random(
        f"{seed}:{fmt.name}:{n}:{mul_latency}:{add_latency}:"
        f"{mode.value}:{pad_schedule}"
    )
    a = _rand_matrix(fmt, n, rng)
    b = _rand_matrix(fmt, n, rng)
    stepped = _run(MatmulArray, fmt, n, mul_latency, add_latency, mode,
                   pad_schedule, a, b)
    batched = _run(BatchedMatmulArray, fmt, n, mul_latency, add_latency, mode,
                   pad_schedule, a, b)
    mismatched = sorted(
        key
        for key in set(stepped) | set(batched)
        if stepped.get(key) != batched.get(key)
    )
    return {
        "fmt": fmt.name,
        "n": n,
        "mul_latency": mul_latency,
        "add_latency": add_latency,
        "mode": mode.value,
        "pad_schedule": pad_schedule,
        "raised": stepped.get("raised"),
        "mismatched": mismatched,
        "ok": not mismatched,
    }


def _scalar_fused_matmul(fmt, n, mode, a, b):
    """Scalar fused-PE reference: ascending-k fp_fma accumulation."""
    flags = FPFlags()
    c = []
    for i in range(n):
        row = []
        for j in range(n):
            acc = fmt.zero()
            for k in range(n):
                acc, fl = fp_fma(fmt, a[i][k], b[k][j], acc, mode)
                flags = flags | fl
            row.append(acc)
        c.append(row)
    return c, flags


def fused_matmul_case(
    fmt: FPFormat,
    n: int,
    mul_latency: int,
    add_latency: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    pad_schedule: bool = True,
    seed: int = 0,
) -> dict:
    """One fused-backend differential case.

    The ``"fma"`` array backend has no stepped twin, so its contract is
    split: results and flags must be bit-identical to a **scalar**
    fused-PE accumulation (one :func:`~repro.fp.mac.fp_fma` per MAC,
    ascending ``k``), while every schedule statistic — cycles, issued
    MACs, padding, hazards, PE count — must match the chained batched
    run on the same operands (fusing changes the PE datapath, never the
    systolic schedule).  The case also asserts the fused run performs
    strictly fewer total roundings than the chained one.
    """
    rng = random.Random(
        f"fused:{seed}:{fmt.name}:{n}:{mul_latency}:{add_latency}:"
        f"{mode.value}:{pad_schedule}"
    )
    a = _rand_matrix(fmt, n, rng)
    b = _rand_matrix(fmt, n, rng)
    fused = _run(FusedMatmulArray, fmt, n, mul_latency, add_latency, mode,
                 pad_schedule, a, b)
    chained = _run(BatchedMatmulArray, fmt, n, mul_latency, add_latency, mode,
                   pad_schedule, a, b)
    mismatched = []
    if fused.get("raised") is not None or chained.get("raised") is not None:
        # Hazard behaviour is schedule-determined: both backends must
        # raise together (the fused PE never changes the schedule).
        if (fused.get("raised") is None) != (chained.get("raised") is None):
            mismatched.append("raised")
    else:
        want_c, want_flags = _scalar_fused_matmul(fmt, n, mode, a, b)
        if fused["c"] != want_c:
            mismatched.append("c")
        if fused["flags"] != want_flags.to_bits():
            mismatched.append("flags")
        for key in ("cycles", "issued_macs", "padded_cycles", "hazards",
                    "pes", "pe_utilization"):
            if fused[key] != chained[key]:
                mismatched.append(key)
        fused_sim = FusedMatmulArray(fmt, n, mul_latency, add_latency,
                                     mode=mode, pad_schedule=pad_schedule)
        chained_sim = BatchedMatmulArray(fmt, n, mul_latency, add_latency,
                                         mode=mode, pad_schedule=pad_schedule)
        if not fused_sim.total_roundings < chained_sim.total_roundings:
            mismatched.append("total_roundings")
    return {
        "fmt": fmt.name,
        "n": n,
        "mul_latency": mul_latency,
        "add_latency": add_latency,
        "mode": mode.value,
        "pad_schedule": pad_schedule,
        "raised": fused.get("raised"),
        "mismatched": sorted(mismatched),
        "ok": not mismatched,
    }


@dataclass(frozen=True)
class KernelMatrixReport:
    """Outcome of one stepped-vs-batched differential matrix."""

    cases: tuple[dict, ...]

    @property
    def passed(self) -> bool:
        return all(case["ok"] for case in self.cases)

    @property
    def hazard_cases(self) -> int:
        return sum(1 for case in self.cases if case["raised"] is not None)

    def failures(self) -> list[dict]:
        return [case for case in self.cases if not case["ok"]]

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"kernel differential matrix: {verdict} — {len(self.cases)} "
            f"case(s), {len(self.failures())} mismatch(es), "
            f"{self.hazard_cases} identical RAW-hazard raise(s)"
        )


def matrix_jobs(
    formats: tuple[FPFormat, ...] = PAPER_FORMATS,
    modes: tuple[RoundingMode, ...] = tuple(RoundingMode),
    corners: tuple[tuple[int, int, int], ...] = KERNEL_CORNERS,
    seed: int = 0,
) -> list[Job]:
    """The campaign as engine jobs: padded everywhere, plus unpadded at
    every corner (where ``n < PL`` both simulators must raise the same
    :class:`RAWHazard`, elsewhere both must complete identically).  Each
    corner also carries a fused-backend case proving the ``"fma"`` array
    against the scalar fused-PE accumulation."""
    jobs = []
    for fmt in formats:
        for mode in modes:
            for n, lm, la in corners:
                for pad in (True, False):
                    jobs.append(
                        Job.create(
                            f"verify.kernels.{fmt.name}.{mode.value}."
                            f"n{n}pl{lm + la}.{'pad' if pad else 'nopad'}",
                            matmul_case,
                            fmt=fmt,
                            n=n,
                            mul_latency=lm,
                            add_latency=la,
                            mode=mode,
                            pad_schedule=pad,
                            seed=seed,
                        )
                    )
                    jobs.append(
                        Job.create(
                            f"verify.kernels.fma.{fmt.name}.{mode.value}."
                            f"n{n}pl{lm + la}.{'pad' if pad else 'nopad'}",
                            fused_matmul_case,
                            fmt=fmt,
                            n=n,
                            mul_latency=lm,
                            add_latency=la,
                            mode=mode,
                            pad_schedule=pad,
                            seed=seed,
                        )
                    )
    return jobs


def run_matrix(
    formats: tuple[FPFormat, ...] = PAPER_FORMATS,
    modes: tuple[RoundingMode, ...] = tuple(RoundingMode),
    corners: tuple[tuple[int, int, int], ...] = KERNEL_CORNERS,
    seed: int = 0,
    engine: Engine | None = None,
) -> KernelMatrixReport:
    """Run the full differential matrix through the evaluation engine."""
    jobs = matrix_jobs(formats=formats, modes=modes, corners=corners, seed=seed)
    eng = engine if engine is not None else default_engine()
    return KernelMatrixReport(cases=tuple(eng.run(jobs)))
