"""Engine-driven differential verification of the vectorized datapaths.

The proof obligation for :mod:`repro.fp.vectorized` is *element-wise
bit-and-flag equality* with the scalar datapaths over millions of
coverage-directed operand pairs, plus a strided cross-check against the
exact rational oracles — the full equivalence chain::

    fp.reference (exact Fraction/isqrt oracles)
        == fp.adder / fp.multiplier / fp.divider / fp.sqrt / fp.mac
        == fp.vectorized (NumPy limb pipelines)

All six ops are covered: add/sub/mul/div binary, sqrt unary, fma
ternary (:data:`OP_ARITY` records the operand count per op; ``pairs``
counts operand *tuples* for the non-binary ops).

A campaign is sliced into :func:`diff_chunk` jobs — pure, picklable
functions of ``(fmt, op, mode, seed, pairs)`` — and fanned out through
:mod:`repro.engine`, so it parallelizes across cores and caches like any
other sweep: re-running a green campaign is a 100% hit-rate no-op.
Operands are drawn from :class:`repro.verify.testbench.OperandClass`
members cycled over every class tuple, so specials, tie-prone patterns
and range extremes are all hit within the first 169 pairs of every
chunk (13 samples for sqrt, the first 2197 triples for fma).

Run it from the CLI::

    repro verify --pairs 1000000 --parallel 8 --cache-dir .repro-cache
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.engine import Engine, Job, default_engine
from repro.fp.adder import fp_add, fp_sub
from repro.fp.divider import fp_div
from repro.fp.format import ALL_FORMATS, FPFormat
from repro.fp.mac import fp_fma
from repro.fp.multiplier import fp_mul
from repro.fp.packing import (
    PACK_WIDTHS,
    PACKED_OPS,
    packed_call,
    supports_packing,
)
from repro.fp.reference import (
    ref_add,
    ref_div,
    ref_fma,
    ref_mul,
    ref_sqrt,
    ref_sub,
)
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt
from repro.fp.vectorized import (
    vec_add,
    vec_div,
    vec_fma,
    vec_mul,
    vec_sqrt,
    vec_sub,
)
from repro.verify.testbench import OperandClass, OperandGenerator

#: Operations covered by the campaign: vectorized, scalar, oracle.
CAMPAIGN_OPS = ("add", "sub", "mul", "div", "sqrt", "fma")

#: Ops with packed sub-lane kernels (the packed campaign's op set).
PACKED_CAMPAIGN_OPS = tuple(sorted(PACKED_OPS))

_VEC = {
    "add": vec_add,
    "sub": vec_sub,
    "mul": vec_mul,
    "div": vec_div,
    "sqrt": vec_sqrt,
    "fma": vec_fma,
}
_SCALAR = {
    "add": fp_add,
    "sub": fp_sub,
    "mul": fp_mul,
    "div": fp_div,
    "sqrt": fp_sqrt,
    "fma": fp_fma,
}
_ORACLE = {
    "add": ref_add,
    "sub": ref_sub,
    "mul": ref_mul,
    "div": ref_div,
    "sqrt": ref_sqrt,
    "fma": ref_fma,
}

#: Operand count per campaign op: sqrt is unary, fma ternary.
OP_ARITY = {
    "add": 2,
    "sub": 2,
    "mul": 2,
    "div": 2,
    "sqrt": 1,
    "fma": 3,
}

#: Check every k-th pair against the Fraction oracle as well (the oracle
#: is orders of magnitude slower than the scalar datapath, so the full
#: sweep is scalar-vs-vectorized and the oracle samples the chain).
ORACLE_STRIDE = 101

#: At most this many concrete counterexamples are carried per chunk.
MAX_EXAMPLES = 10


@dataclass(frozen=True)
class DiffExample:
    """One concrete divergence, small enough to print in a failure."""

    op: str
    mode: str
    a: int
    b: int
    got_bits: int
    want_bits: int
    got_flags: int
    want_flags: int
    against: str  # "scalar" or "oracle"
    c: Optional[int] = None  # third operand (fma chunks only)


@dataclass(frozen=True)
class ChunkReport:
    """Outcome of one differential chunk (one engine job)."""

    fmt_name: str
    op: str
    mode: str
    seed: int
    pairs: int
    bit_mismatches: int
    flag_mismatches: int
    oracle_checked: int
    oracle_mismatches: int
    covered_class_pairs: int
    examples: tuple[DiffExample, ...] = ()

    @property
    def mismatches(self) -> int:
        return self.bit_mismatches + self.flag_mismatches + self.oracle_mismatches

    @property
    def passed(self) -> bool:
        return self.mismatches == 0


def diff_chunk(
    fmt: FPFormat,
    op: str,
    mode: RoundingMode,
    seed: int,
    pairs: int,
) -> ChunkReport:
    """Run one coverage-directed differential chunk.

    Pure function of its arguments (module-level, picklable) so it can be
    content-addressed, cached and dispatched to pool workers by the
    engine.
    """
    if op not in _VEC:
        raise ValueError(f"unknown campaign op {op!r}; known: {sorted(_VEC)}")
    arity = OP_ARITY[op]
    gen = OperandGenerator(fmt, seed)
    classes = list(OperandClass)
    n_cls = len(classes)
    a_words = np.empty(pairs, dtype=np.uint64)
    b_words = np.empty(pairs, dtype=np.uint64) if arity >= 2 else None
    c_words = np.empty(pairs, dtype=np.uint64) if arity >= 3 else None
    covered: set[int] = set()
    grid = n_cls**arity
    for i in range(pairs):
        pair_idx = i % grid
        covered.add(pair_idx)
        a_words[i] = gen.sample(classes[pair_idx % n_cls])
        if b_words is not None:
            b_words[i] = gen.sample(classes[(pair_idx // n_cls) % n_cls])
        if c_words is not None:
            c_words[i] = gen.sample(classes[pair_idx // (n_cls * n_cls)])

    if arity == 1:
        vec_bits, vec_flags = _VEC[op](fmt, a_words, mode, with_flags=True)
    elif arity == 2:
        vec_bits, vec_flags = _VEC[op](
            fmt, a_words, b_words, mode, with_flags=True
        )
    else:
        vec_bits, vec_flags = _VEC[op](
            fmt, a_words, b_words, c_words, mode, with_flags=True
        )

    scalar = _SCALAR[op]
    oracle = _ORACLE[op]
    bit_bad = 0
    flag_bad = 0
    oracle_checked = 0
    oracle_bad = 0
    examples: list[DiffExample] = []

    def note(operands, gb: int, wb: int, gf: int, wf: int, against: str):
        if len(examples) < MAX_EXAMPLES:
            a = operands[0]
            b = operands[1] if len(operands) > 1 else 0
            c = operands[2] if len(operands) > 2 else None
            examples.append(
                DiffExample(op, mode.value, a, b, gb, wb, gf, wf, against, c)
            )

    for i in range(pairs):
        operands = [int(a_words[i])]
        if b_words is not None:
            operands.append(int(b_words[i]))
        if c_words is not None:
            operands.append(int(c_words[i]))
        got_b = int(vec_bits[i])
        got_f = int(vec_flags[i])
        want_b, want_flags = scalar(fmt, *operands, mode)
        want_f = want_flags.to_bits()
        if got_b != want_b:
            bit_bad += 1
            note(operands, got_b, want_b, got_f, want_f, "scalar")
        elif got_f != want_f:
            flag_bad += 1
            note(operands, got_b, want_b, got_f, want_f, "scalar")
        if i % ORACLE_STRIDE == 0:
            oracle_checked += 1
            ref_b, ref_flags = oracle(fmt, *operands, mode)
            if ref_b != want_b or ref_flags != want_flags:
                oracle_bad += 1
                note(
                    operands, want_b, ref_b, want_f, ref_flags.to_bits(),
                    "oracle",
                )

    return ChunkReport(
        fmt_name=fmt.name,
        op=op,
        mode=mode.value,
        seed=seed,
        pairs=pairs,
        bit_mismatches=bit_bad,
        flag_mismatches=flag_bad,
        oracle_checked=oracle_checked,
        oracle_mismatches=oracle_bad,
        covered_class_pairs=len(covered),
        examples=tuple(examples),
    )


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate of every chunk in a differential campaign."""

    chunks: tuple[ChunkReport, ...]

    @property
    def total_pairs(self) -> int:
        return sum(c.pairs for c in self.chunks)

    @property
    def total_mismatches(self) -> int:
        return sum(c.mismatches for c in self.chunks)

    @property
    def oracle_checked(self) -> int:
        return sum(c.oracle_checked for c in self.chunks)

    @property
    def passed(self) -> bool:
        return self.total_mismatches == 0

    def pairs_by_format(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.chunks:
            out[c.fmt_name] = out.get(c.fmt_name, 0) + c.pairs
        return out

    def examples(self) -> list[DiffExample]:
        out: list[DiffExample] = []
        for c in self.chunks:
            out.extend(c.examples)
        return out

    def summary(self) -> str:
        lines = ["differential campaign (vectorized vs scalar vs oracle)"]
        per_fmt: dict[str, list[ChunkReport]] = {}
        for c in self.chunks:
            per_fmt.setdefault(c.fmt_name, []).append(c)
        for name in sorted(per_fmt):
            chunks = per_fmt[name]
            pairs = sum(c.pairs for c in chunks)
            bad = sum(c.mismatches for c in chunks)
            checked = sum(c.oracle_checked for c in chunks)
            ops = sorted({c.op for c in chunks})
            modes = sorted({c.mode for c in chunks})
            status = "PASS" if bad == 0 else f"FAIL ({bad} mismatches)"
            lines.append(
                f"  {name}: {pairs} pairs over {'/'.join(ops)} "
                f"[{','.join(modes)}], {checked} oracle-checked -> {status}"
            )
        lines.append(
            f"  total: {self.total_pairs} pairs, "
            f"{self.total_mismatches} mismatches"
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


def supported_packings(
    formats: Sequence[FPFormat] = ALL_FORMATS,
) -> list[tuple[FPFormat, int]]:
    """Every supported ``(format, packing width)`` combination.

    Widths are listed widest-first per format (a 4-way-capable format is
    also checked 2-way — the 2-way datapath is a distinct code path with
    its own lane dtype and widening rules).
    """
    return [
        (fmt, width)
        for fmt in formats
        for width in sorted(PACK_WIDTHS, reverse=True)
        if supports_packing(fmt, width)
    ]


@dataclass(frozen=True)
class PackedChunkReport:
    """Outcome of one packed-vs-unpacked chunk (one engine job)."""

    fmt_name: str
    op: str
    mode: str
    width: int
    seed: int
    pairs: int
    bit_mismatches: int
    flag_mismatches: int
    covered_class_pairs: int
    examples: tuple[DiffExample, ...] = ()

    @property
    def mismatches(self) -> int:
        return self.bit_mismatches + self.flag_mismatches

    @property
    def passed(self) -> bool:
        return self.mismatches == 0


def packed_chunk(
    fmt: FPFormat,
    op: str,
    mode: RoundingMode,
    seed: int,
    pairs: int,
    width: int,
) -> PackedChunkReport:
    """Compare one packed sub-lane datapath against the unpacked oracle.

    The unpacked vectorized path is itself proven against the scalar
    datapaths and the rational oracles by :func:`diff_chunk`, so
    element-wise bit-and-flag equality here extends the equivalence
    chain one more link::

        fp.reference == fp.adder/... == fp.vectorized == fp.packing

    Same coverage-directed operand classes as :func:`diff_chunk`, same
    purity/picklability contract (cacheable engine job).
    """
    if op not in PACKED_OPS:
        raise ValueError(
            f"unknown packed op {op!r}; known: {sorted(PACKED_OPS)}"
        )
    gen = OperandGenerator(fmt, seed)
    classes = list(OperandClass)
    n_cls = len(classes)
    a_words = np.empty(pairs, dtype=np.uint64)
    b_words = np.empty(pairs, dtype=np.uint64)
    covered: set[int] = set()
    grid = n_cls * n_cls
    for i in range(pairs):
        pair_idx = i % grid
        covered.add(pair_idx)
        a_words[i] = gen.sample(classes[pair_idx % n_cls])
        b_words[i] = gen.sample(classes[pair_idx // n_cls])

    want_bits, want_flags = _VEC[op](fmt, a_words, b_words, mode, with_flags=True)
    got_bits, got_flags = packed_call(
        op, fmt, a_words, b_words, mode, width=width, with_flags=True
    )

    bit_bad_idx = np.flatnonzero(got_bits != want_bits)
    flag_bad_idx = np.flatnonzero(
        (got_bits == want_bits) & (got_flags != want_flags)
    )
    examples: list[DiffExample] = []
    for i in (*bit_bad_idx[:MAX_EXAMPLES], *flag_bad_idx[:MAX_EXAMPLES]):
        if len(examples) >= MAX_EXAMPLES:
            break
        examples.append(
            DiffExample(
                op,
                mode.value,
                int(a_words[i]),
                int(b_words[i]),
                int(got_bits[i]),
                int(want_bits[i]),
                int(got_flags[i]),
                int(want_flags[i]),
                "unpacked",
            )
        )

    return PackedChunkReport(
        fmt_name=fmt.name,
        op=op,
        mode=mode.value,
        width=width,
        seed=seed,
        pairs=pairs,
        bit_mismatches=int(bit_bad_idx.size),
        flag_mismatches=int(flag_bad_idx.size),
        covered_class_pairs=len(covered),
        examples=tuple(examples),
    )


@dataclass(frozen=True)
class PackedCampaignReport:
    """Aggregate of every chunk in a packed-vs-unpacked campaign."""

    chunks: tuple[PackedChunkReport, ...]

    @property
    def total_pairs(self) -> int:
        return sum(c.pairs for c in self.chunks)

    @property
    def total_mismatches(self) -> int:
        return sum(c.mismatches for c in self.chunks)

    @property
    def passed(self) -> bool:
        return self.total_mismatches == 0

    def examples(self) -> list[DiffExample]:
        out: list[DiffExample] = []
        for c in self.chunks:
            out.extend(c.examples)
        return out

    def summary(self) -> str:
        lines = ["packed campaign (sub-lane datapaths vs unpacked vectorized)"]
        per_lane: dict[tuple[str, int], list[PackedChunkReport]] = {}
        for c in self.chunks:
            per_lane.setdefault((c.fmt_name, c.width), []).append(c)
        for (name, width), chunks in sorted(per_lane.items()):
            pairs = sum(c.pairs for c in chunks)
            bad = sum(c.mismatches for c in chunks)
            ops = sorted({c.op for c in chunks})
            modes = sorted({c.mode for c in chunks})
            status = "PASS" if bad == 0 else f"FAIL ({bad} mismatches)"
            lines.append(
                f"  {name} x{width}: {pairs} pairs over {'/'.join(ops)} "
                f"[{','.join(modes)}] -> {status}"
            )
        lines.append(
            f"  total: {self.total_pairs} pairs, "
            f"{self.total_mismatches} mismatches"
        )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


def packed_campaign_jobs(
    formats: Sequence[FPFormat] = ALL_FORMATS,
    ops: Iterable[str] = PACKED_CAMPAIGN_OPS,
    modes: Iterable[RoundingMode] = tuple(RoundingMode),
    pairs_per_lane: int = 100_000,
    chunk_pairs: int = 50_000,
    seed: int = 0,
) -> list[Job]:
    """Slice a packed campaign into engine jobs.

    One lane is one supported ``(format, width)`` pair; formats with no
    supported packing contribute no jobs.  ``pairs_per_lane`` spreads
    evenly over the (op, mode) grid of each lane.
    """
    ops = tuple(ops)
    modes = tuple(modes)
    if not ops or not modes:
        raise ValueError("campaign needs at least one op and one mode")
    if pairs_per_lane < 1 or chunk_pairs < 1:
        raise ValueError("pairs_per_lane and chunk_pairs must be >= 1")
    bad = [op for op in ops if op not in PACKED_OPS]
    if bad:
        raise ValueError(
            f"no packed kernel for: {', '.join(bad)} "
            f"(packed ops: {', '.join(sorted(PACKED_OPS))})"
        )
    per_cell = -(-pairs_per_lane // (len(ops) * len(modes)))  # ceil
    jobs: list[Job] = []
    for fmt, width in supported_packings(formats):
        chunk_index = 0
        for op in ops:
            for mode in modes:
                remaining = per_cell
                while remaining > 0:
                    count = min(chunk_pairs, remaining)
                    remaining -= count
                    jobs.append(
                        Job.create(
                            f"verify.packed/{fmt.name}/x{width}/{op}"
                            f"/{mode.value}/{chunk_index}",
                            packed_chunk,
                            fmt=fmt,
                            op=op,
                            mode=mode,
                            seed=seed + 0x9E3779B1 * chunk_index,
                            pairs=count,
                            width=width,
                        )
                    )
                    chunk_index += 1
    return jobs


def run_packed_campaign(
    formats: Sequence[FPFormat] = ALL_FORMATS,
    ops: Iterable[str] = PACKED_CAMPAIGN_OPS,
    modes: Iterable[RoundingMode] = tuple(RoundingMode),
    pairs_per_lane: int = 100_000,
    chunk_pairs: int = 50_000,
    seed: int = 0,
    engine: Optional[Engine] = None,
) -> PackedCampaignReport:
    """Run a packed-vs-unpacked differential campaign through the engine."""
    eng = engine if engine is not None else default_engine()
    jobs = packed_campaign_jobs(
        formats=formats,
        ops=ops,
        modes=modes,
        pairs_per_lane=pairs_per_lane,
        chunk_pairs=chunk_pairs,
        seed=seed,
    )
    chunks = eng.run(jobs)
    return PackedCampaignReport(chunks=tuple(chunks))


def campaign_jobs(
    formats: Sequence[FPFormat] = ALL_FORMATS,
    ops: Iterable[str] = CAMPAIGN_OPS,
    modes: Iterable[RoundingMode] = tuple(RoundingMode),
    pairs_per_format: int = 1_000_000,
    chunk_pairs: int = 50_000,
    seed: int = 0,
) -> list[Job]:
    """Slice a campaign into engine jobs.

    ``pairs_per_format`` is distributed evenly across the (op, mode)
    grid, then split into chunks of at most ``chunk_pairs`` so the
    engine has enough parallel grain.  Chunk seeds are derived
    deterministically, so identical parameters always address identical
    cached results.
    """
    ops = tuple(ops)
    modes = tuple(modes)
    if not ops or not modes:
        raise ValueError("campaign needs at least one op and one mode")
    if pairs_per_format < 1 or chunk_pairs < 1:
        raise ValueError("pairs_per_format and chunk_pairs must be >= 1")
    per_cell = -(-pairs_per_format // (len(ops) * len(modes)))  # ceil
    jobs: list[Job] = []
    for fmt in formats:
        chunk_index = 0
        for op in ops:
            for mode in modes:
                remaining = per_cell
                while remaining > 0:
                    count = min(chunk_pairs, remaining)
                    remaining -= count
                    jobs.append(
                        Job.create(
                            f"verify.diff/{fmt.name}/{op}/{mode.value}"
                            f"/{chunk_index}",
                            diff_chunk,
                            fmt=fmt,
                            op=op,
                            mode=mode,
                            seed=seed + 0x9E3779B1 * chunk_index,
                            pairs=count,
                        )
                    )
                    chunk_index += 1
    return jobs


def run_campaign(
    formats: Sequence[FPFormat] = ALL_FORMATS,
    ops: Iterable[str] = CAMPAIGN_OPS,
    modes: Iterable[RoundingMode] = tuple(RoundingMode),
    pairs_per_format: int = 1_000_000,
    chunk_pairs: int = 50_000,
    seed: int = 0,
    engine: Optional[Engine] = None,
) -> CampaignReport:
    """Run a full differential campaign through the engine."""
    eng = engine if engine is not None else default_engine()
    jobs = campaign_jobs(
        formats=formats,
        ops=ops,
        modes=modes,
        pairs_per_format=pairs_per_format,
        chunk_pairs=chunk_pairs,
        seed=seed,
    )
    chunks = eng.run(jobs)
    return CampaignReport(chunks=tuple(chunks))
