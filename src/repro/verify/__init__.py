"""Self-checking verification harness for the FP cores.

The 1995 Shirazi/Walters/Athanas tradition the paper cites began with
"quantitative analysis" of FPGA floating point; this subpackage carries
the quantitative discipline into verification: coverage-directed random
testbenches that sweep all operand-class pairs (zeros, minima, maxima,
tie-prone patterns, specials, ...) against the exact rational oracle and
report coverage plus mismatch counts.
"""

from repro.verify.differential import (
    CampaignReport,
    ChunkReport,
    campaign_jobs,
    diff_chunk,
    run_campaign,
)
from repro.verify.faults import Fault, MutationReport, inject, mutation_campaign
from repro.verify.kernels import (
    KERNEL_CORNERS,
    KernelMatrixReport,
    matmul_case,
    matrix_jobs,
    run_matrix,
)
from repro.verify.testbench import (
    CoverageReport,
    OperandClass,
    OperandGenerator,
    run_testbench,
)

__all__ = [
    "CampaignReport",
    "ChunkReport",
    "CoverageReport",
    "Fault",
    "KERNEL_CORNERS",
    "KernelMatrixReport",
    "MutationReport",
    "OperandClass",
    "OperandGenerator",
    "campaign_jobs",
    "diff_chunk",
    "inject",
    "matmul_case",
    "matrix_jobs",
    "mutation_campaign",
    "run_campaign",
    "run_matrix",
]
