"""Kernel micro-benchmarks as data: the ``repro bench`` snapshot.

The benchmark suite under ``benchmarks/`` gates relative performance in
CI, but its numbers die in the job log.  This module runs the kernel
micro-benchmarks — stepped vs wavefront-batched array simulation at
small sizes, batched-only scaling at Fig 5/6-style sizes — and emits one
machine-readable JSON snapshot, so the repo's perf trajectory can
accumulate over time (``repro bench --json BENCH_kernel.json``).

Timings are wall-clock and machine-dependent by design; the *speedups*
are the portable quantity, and the batched-vs-stepped ratio at n = 32 is
the one the benchmark suite asserts (>= 10x).
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from typing import Callable

from repro.fp.format import FP32, FPFormat
from repro.fp.rounding import RoundingMode
from repro.kernels.batched import make_matmul_array

#: Snapshot schema identifier; bump when the JSON layout changes.
SCHEMA = "repro-bench/1"

#: Stepped-vs-batched comparison sizes (stepped is O(n^3) scalar ops,
#: so these stay small) and batched-only scaling sizes.
DEFAULT_SIZES = (16, 32)
DEFAULT_SCAN_SIZES = (64, 128, 256)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` runs (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rand_matrix(fmt: FPFormat, n: int, rng: random.Random) -> list[list[int]]:
    return [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]


def kernel_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    scan_sizes: tuple[int, ...] = DEFAULT_SCAN_SIZES,
    fmt: FPFormat = FP32,
    mul_latency: int = 3,
    add_latency: int = 5,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Run the kernel micro-benchmarks; return the snapshot dict.

    For each n in ``sizes`` both simulators run on the same matrices
    (results cross-checked bit-for-bit, so a benchmark run doubles as an
    equivalence check); for each n in ``scan_sizes`` only the batched
    simulator runs.
    """
    import numpy as np

    rng = random.Random(seed)
    benchmarks: list[dict] = []
    speedups: dict[str, float] = {}
    for n in sizes:
        a = _rand_matrix(fmt, n, rng)
        b = _rand_matrix(fmt, n, rng)
        stepped = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="stepped")
        batched = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="batched")
        runs = {}
        t_stepped = _best_of(lambda: runs.__setitem__("s", stepped.run(a, b)), 1)
        t_batched = _best_of(lambda: runs.__setitem__("b", batched.run(a, b)),
                             repeats)
        if runs["s"] != runs["b"]:
            raise AssertionError(
                f"batched run diverged from stepped at n={n} ({fmt.name})"
            )
        benchmarks.append({"name": f"matmul.stepped.{fmt.name}.n{n}",
                           "seconds": t_stepped})
        benchmarks.append({"name": f"matmul.batched.{fmt.name}.n{n}",
                           "seconds": t_batched})
        speedups[f"batched_vs_stepped.{fmt.name}.n{n}"] = t_stepped / t_batched
    for n in scan_sizes:
        a = _rand_matrix(fmt, n, rng)
        b = _rand_matrix(fmt, n, rng)
        batched = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="batched")
        t = _best_of(lambda: batched.run(a, b), 1)
        benchmarks.append({"name": f"matmul.batched.{fmt.name}.n{n}",
                           "seconds": t})
    return {
        "schema": SCHEMA,
        "suite": "kernel",
        "config": {
            "fmt": fmt.name,
            "mul_latency": mul_latency,
            "add_latency": add_latency,
            "mode": mode.value,
            "sizes": list(sizes),
            "scan_sizes": list(scan_sizes),
            "repeats": repeats,
            "seed": seed,
        },
        "context": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "benchmarks": benchmarks,
        "speedups": speedups,
    }


def render(snapshot: dict) -> str:
    """Human-readable summary of a snapshot (stdout companion to JSON)."""
    lines = [f"kernel bench ({snapshot['config']['fmt']}, "
             f"PL={snapshot['config']['mul_latency'] + snapshot['config']['add_latency']})"]
    for entry in snapshot["benchmarks"]:
        lines.append(f"  {entry['name']:<32} {entry['seconds'] * 1000.0:>10.2f} ms")
    for name, ratio in snapshot["speedups"].items():
        lines.append(f"  {name:<32} {ratio:>9.1f}x")
    return "\n".join(lines)


def write_snapshot(snapshot: dict, path: str) -> None:
    """Write one snapshot as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
