"""Kernel micro-benchmarks as data: the ``repro bench`` snapshot.

The benchmark suite under ``benchmarks/`` gates relative performance in
CI, but its numbers die in the job log.  This module runs the kernel
micro-benchmarks — stepped vs wavefront-batched array simulation at
small sizes, batched-only scaling at Fig 5/6-style sizes — and emits one
machine-readable JSON snapshot, so the repo's perf trajectory can
accumulate over time (``repro bench --json BENCH_kernel.json``).

Timings are wall-clock and machine-dependent by design; the *speedups*
are the portable quantity, and the batched-vs-stepped ratio at n = 32 is
the one the benchmark suite asserts (>= 10x).
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from typing import Callable

from repro.fp.format import FP32, FPFormat
from repro.fp.rounding import RoundingMode
from repro.kernels.batched import make_matmul_array

#: Snapshot schema identifier; bump when the JSON layout changes.
SCHEMA = "repro-bench/1"

#: Stepped-vs-batched comparison sizes (stepped is O(n^3) scalar ops,
#: so these stay small) and batched-only scaling sizes.
DEFAULT_SIZES = (16, 32)
DEFAULT_SCAN_SIZES = (64, 128, 256)

#: Element count for the packed-vs-unpacked comparison.  Large on
#: purpose: at 2^20 elements both paths are far past NumPy dispatch
#: overhead and the ratio is stable on noisy hosts, which is what the
#: benchmark suite gates.
DEFAULT_PACKED_N = 1 << 20
#: Ops with packed sub-lane kernels, benchmarked per supported format.
PACKED_BENCH_OPS = ("add", "sub", "mul")


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` runs (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rand_matrix(fmt: FPFormat, n: int, rng: random.Random) -> list[list[int]]:
    return [[rng.randrange(fmt.word_mask + 1) for _ in range(n)] for _ in range(n)]


def kernel_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    scan_sizes: tuple[int, ...] = DEFAULT_SCAN_SIZES,
    fmt: FPFormat = FP32,
    mul_latency: int = 3,
    add_latency: int = 5,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Run the kernel micro-benchmarks; return the snapshot dict.

    For each n in ``sizes`` all three backends run on the same matrices
    (stepped/batched results cross-checked bit-for-bit against each
    other and the fused backend against its functional twin, so a
    benchmark run doubles as an equivalence check); for each n in
    ``scan_sizes`` only the batched simulator runs.
    """
    import numpy as np

    from repro.kernels.fast import functional_matmul_fma

    rng = random.Random(seed)
    benchmarks: list[dict] = []
    speedups: dict[str, float] = {}
    for n in sizes:
        a = _rand_matrix(fmt, n, rng)
        b = _rand_matrix(fmt, n, rng)
        stepped = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="stepped")
        batched = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="batched")
        fused = make_matmul_array(fmt, n, mul_latency, add_latency,
                                  mode=mode, backend="fma")
        runs = {}
        t_stepped = _best_of(lambda: runs.__setitem__("s", stepped.run(a, b)), 1)
        t_batched = _best_of(lambda: runs.__setitem__("b", batched.run(a, b)),
                             repeats)
        t_fused = _best_of(lambda: runs.__setitem__("f", fused.run(a, b)),
                           repeats)
        if runs["s"] != runs["b"]:
            raise AssertionError(
                f"batched run diverged from stepped at n={n} ({fmt.name})"
            )
        # The fused backend rounds once per MAC, so it cannot match the
        # chained runs; its reference is the functional fused twin.
        want_fused = functional_matmul_fma(
            fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64),
            mode,
        )
        if runs["f"].c != want_fused.tolist():
            raise AssertionError(
                f"fma run diverged from fused functional twin at n={n} "
                f"({fmt.name})"
            )
        benchmarks.append({"name": f"matmul.stepped.{fmt.name}.n{n}",
                           "seconds": t_stepped})
        benchmarks.append({"name": f"matmul.batched.{fmt.name}.n{n}",
                           "seconds": t_batched})
        benchmarks.append({"name": f"matmul.fma.{fmt.name}.n{n}",
                           "seconds": t_fused})
        speedups[f"batched_vs_stepped.{fmt.name}.n{n}"] = t_stepped / t_batched
        speedups[f"fma_vs_batched.{fmt.name}.n{n}"] = t_batched / t_fused
    for n in scan_sizes:
        a = _rand_matrix(fmt, n, rng)
        b = _rand_matrix(fmt, n, rng)
        batched = make_matmul_array(fmt, n, mul_latency, add_latency,
                                    mode=mode, backend="batched")
        t = _best_of(lambda: batched.run(a, b), 1)
        benchmarks.append({"name": f"matmul.batched.{fmt.name}.n{n}",
                           "seconds": t})
    return {
        "schema": SCHEMA,
        "suite": "kernel",
        "config": {
            "fmt": fmt.name,
            "mul_latency": mul_latency,
            "add_latency": add_latency,
            "mode": mode.value,
            "sizes": list(sizes),
            "scan_sizes": list(scan_sizes),
            "repeats": repeats,
            "seed": seed,
        },
        "context": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "benchmarks": benchmarks,
        "speedups": speedups,
    }


def packed_bench(
    n: int = DEFAULT_PACKED_N,
    ops: tuple[str, ...] = PACKED_BENCH_OPS,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Benchmark the packed sub-lane datapaths; return the snapshot dict.

    For every format with a supported packing (fp16/bf16 4-way, fp32
    2-way) and every packed op, times one unpacked vectorized pass and
    one packed pass over the same ``n`` random operand pairs — flags
    on, the full service contract — and records the ratio as
    ``packed_vs_unpacked.{op}.{fmt}.k{width}``.  Every timed pair is
    also cross-checked element-wise (bits and flags), so a benchmark
    run doubles as an equivalence check exactly like
    :func:`kernel_bench`.
    """
    import numpy as np

    from repro.fp.format import ALL_FORMATS
    from repro.fp.packing import packed_call, packing_width
    from repro.fp.vectorized import vec_add, vec_mul, vec_sub

    vec_fns = {"add": vec_add, "sub": vec_sub, "mul": vec_mul}
    rng = np.random.default_rng(seed)
    benchmarks: list[dict] = []
    speedups: dict[str, float] = {}
    lanes: list[dict] = []
    for fmt in ALL_FORMATS:
        width = packing_width(fmt)
        if width == 1:
            continue
        lanes.append({"fmt": fmt.name, "width": width})
        a = rng.integers(0, fmt.word_mask + 1, size=n, dtype=np.uint64)
        b = rng.integers(0, fmt.word_mask + 1, size=n, dtype=np.uint64)
        for op in ops:
            vec_fn = vec_fns[op]
            want_bits, want_flags = vec_fn(fmt, a, b, mode, with_flags=True)
            got_bits, got_flags = packed_call(
                op, fmt, a, b, mode, width=width, with_flags=True
            )
            if not (
                np.array_equal(got_bits, want_bits)
                and np.array_equal(got_flags, want_flags)
            ):
                bad = int(np.flatnonzero(
                    (got_bits != want_bits) | (got_flags != want_flags)
                )[0])
                raise AssertionError(
                    f"packed {op}/{fmt.name} x{width} diverged from "
                    f"unpacked at element {bad}: a={int(a[bad]):#x} "
                    f"b={int(b[bad]):#x}"
                )
            t_unpacked = _best_of(
                lambda: vec_fn(fmt, a, b, mode, with_flags=True), repeats
            )
            t_packed = _best_of(
                lambda: packed_call(
                    op, fmt, a, b, mode, width=width, with_flags=True
                ),
                repeats,
            )
            benchmarks.append({
                "name": f"unpacked.{op}.{fmt.name}.n{n}",
                "seconds": t_unpacked,
            })
            benchmarks.append({
                "name": f"packed.{op}.{fmt.name}.k{width}.n{n}",
                "seconds": t_packed,
            })
            speedups[f"packed_vs_unpacked.{op}.{fmt.name}.k{width}"] = (
                t_unpacked / t_packed
            )
    return {
        "schema": SCHEMA,
        "suite": "packed",
        "config": {
            "n": n,
            "ops": list(ops),
            "mode": mode.value,
            "repeats": repeats,
            "seed": seed,
            "lanes": lanes,
        },
        "context": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "benchmarks": benchmarks,
        "speedups": speedups,
    }


def render_packed(snapshot: dict) -> str:
    """Human-readable summary of a packed snapshot."""
    cfg = snapshot["config"]
    lanes = ", ".join(f"{l['fmt']} x{l['width']}" for l in cfg["lanes"])
    lines = [f"packed bench (n={cfg['n']}, {cfg['mode']}; lanes: {lanes})"]
    for entry in snapshot["benchmarks"]:
        lines.append(
            f"  {entry['name']:<32} {entry['seconds'] * 1000.0:>10.2f} ms"
        )
    for name, ratio in snapshot["speedups"].items():
        lines.append(f"  {name:<36} {ratio:>9.2f}x")
    return "\n".join(lines)


def dispatch_rps(
    max_batch: int,
    *,
    concurrency: int = 64,
    requests: int = 4096,
    seed: int = 0,
    trace_sample: float = 1.0,
) -> tuple[float, float, dict]:
    """Requests/s of the in-process dispatch path at one batch policy.

    Drives :meth:`repro.service.server.ReproService.dispatch_op` — the
    exact coroutine the HTTP handler awaits: admit → batch → vectorized
    execute → scatter — with ``concurrency`` closed-loop workers, no
    sockets.  Self-relative by construction: the same path at
    ``max_batch=1`` is the unbatched baseline, so the ratio isolates
    what micro-batching buys.  ``trace_sample`` sets the tracing rate
    (0.0 measures the untraced fast path for the overhead gate).
    Returns ``(rps, mean_batch_size, stage_summary)`` where the stage
    summary is :meth:`Telemetry.stage_summary` — per-stage mean/p99
    from the spans the run recorded (empty when tracing is off).
    """
    import asyncio

    from repro.service import ReproService, ServiceConfig

    config = ServiceConfig(
        max_batch=max_batch,
        linger_ms=2.0,
        queue_depth=max(256, 4 * concurrency),
        trace_sample=trace_sample,
    )

    async def _run() -> tuple[float, float, dict]:
        service = ReproService(config)
        rng = random.Random(seed)
        words = [rng.randrange(FP32.word_mask + 1) for _ in range(4096)]
        mode = RoundingMode.NEAREST_EVEN
        statuses: dict[int, int] = {}
        per_worker = [
            requests // concurrency
            + (1 if i < requests % concurrency else 0)
            for i in range(concurrency)
        ]

        async def worker(index: int, quota: int) -> None:
            pos = index
            for _ in range(quota):
                status, _body, _ctype, _extra = await service.dispatch_op(
                    "mul",
                    FP32,
                    mode,
                    words[pos % 4096],
                    words[(pos * 131 + 1) % 4096],
                )
                statuses[status] = statuses.get(status, 0) + 1
                pos += concurrency
        t0 = time.perf_counter()
        await asyncio.gather(
            *(worker(i, quota) for i, quota in enumerate(per_worker))
        )
        duration = time.perf_counter() - t0
        mean_batch = service.telemetry.batch_size.mean
        stages = service.telemetry.stage_summary()
        await service.batcher.close()
        service.compute_pool.shutdown(wait=False)
        service.sweep_pool.shutdown(wait=False)
        if statuses.get(200, 0) != requests:
            raise AssertionError(
                f"dispatch bench expected {requests} 200s, got {statuses}"
            )
        return requests / duration, mean_batch, stages

    return asyncio.run(_run())


def service_bench(
    *,
    concurrency: int = 64,
    requests: int = 4096,
    max_batch: int = 64,
    http_requests: int = 2048,
    http_concurrency: int = 64,
    seed: int = 0,
) -> dict:
    """Benchmark the serving layer; return the snapshot dict.

    Two measurements: the gated one — batched vs unbatched dispatch on
    the in-process request lifecycle (machine-independent because it is
    self-relative) — and an informational full-stack number, a loopback
    HTTP loadgen run against a live server (wall-clock, machine- and
    loopback-dependent, recorded for trajectory only).
    """
    from repro.service import ServiceConfig, ServiceThread, run_load_blocking

    batched_rps, mean_batch, stages = dispatch_rps(
        max_batch, concurrency=concurrency, requests=requests, seed=seed
    )
    solo_rps, _, _ = dispatch_rps(
        1, concurrency=concurrency, requests=requests, seed=seed
    )
    # Tracing overhead: the same batched workload with sampling off.
    # The batched_rps run above traces every request, so the pair bounds
    # what default-on tracing costs (the 10% gate lives in benchmarks/).
    # The overhead ratio is computed on process CPU time — tracing's
    # cost is extra Python work per request, which CPU time measures
    # directly and a loaded host's wall clock does not.
    c0 = time.process_time()
    untraced_rps, _, _ = dispatch_rps(
        max_batch, concurrency=concurrency, requests=requests, seed=seed,
        trace_sample=0.0,
    )
    untraced_cpu_rps = requests / (time.process_time() - c0)
    c0 = time.process_time()
    dispatch_rps(
        max_batch, concurrency=concurrency, requests=requests, seed=seed
    )
    traced_cpu_rps = requests / (time.process_time() - c0)

    config = ServiceConfig(port=0, max_batch=max_batch,
                           queue_depth=max(256, 4 * http_concurrency))
    with ServiceThread(config) as server:
        report = run_load_blocking(
            config.host,
            server.port,
            concurrency=http_concurrency,
            requests=http_requests,
            seed=seed,
        )

    return {
        "schema": SCHEMA,
        "suite": "service",
        "config": {
            "op": "mul",
            "fmt": FP32.name,
            "mode": RoundingMode.NEAREST_EVEN.value,
            "concurrency": concurrency,
            "requests": requests,
            "max_batch": max_batch,
            "http_concurrency": http_concurrency,
            "http_requests": http_requests,
            "seed": seed,
        },
        "context": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "dispatch": {
            "batched_rps": round(batched_rps, 1),
            "batch1_rps": round(solo_rps, 1),
            "mean_batch_size": round(mean_batch, 2),
        },
        "stages": stages,
        "tracing": {
            "traced_rps": round(batched_rps, 1),
            "untraced_rps": round(untraced_rps, 1),
            "traced_cpu_rps": round(traced_cpu_rps, 1),
            "untraced_cpu_rps": round(untraced_cpu_rps, 1),
            "overhead_ratio": round(traced_cpu_rps / untraced_cpu_rps, 4),
        },
        "http": report.to_json(),
        "speedups": {
            f"dispatch.batch{max_batch}_vs_batch1.fp32.mul":
                batched_rps / solo_rps,
        },
    }


def render_service(snapshot: dict) -> str:
    """Human-readable summary of a service snapshot."""
    cfg = snapshot["config"]
    dispatch = snapshot["dispatch"]
    http = snapshot["http"]
    lines = [
        f"service bench ({cfg['concurrency']}-way {cfg['op']}/{cfg['fmt']}"
        f"/{cfg['mode']}, max_batch={cfg['max_batch']})",
        f"  dispatch batched                 {dispatch['batched_rps']:>10.0f} req/s"
        f" (mean batch {dispatch['mean_batch_size']:.1f})",
        f"  dispatch batch=1                 {dispatch['batch1_rps']:>10.0f} req/s",
        f"  {'http loopback ' + str(cfg['http_concurrency']) + '-way':<33}"
        f"{http['achieved_rps']:>10.0f} req/s"
        f" (p50 {http['p50_ms']:.2f} ms, p99 {http['p99_ms']:.2f} ms)",
    ]
    for stage, row in snapshot.get("stages", {}).items():
        lines.append(
            f"  stage {stage:<27}"
            f"{row['mean_ms']:>10.3f} ms mean, p99 {row['p99_ms']:.3f} ms"
        )
    tracing = snapshot.get("tracing")
    if tracing:
        lines.append(
            f"  tracing on vs off (cpu-time)     {tracing['overhead_ratio']:>9.2f}x"
            f" ({tracing['traced_cpu_rps']:.0f} vs "
            f"{tracing['untraced_cpu_rps']:.0f} req/s)"
        )
    for name, ratio in snapshot["speedups"].items():
        lines.append(f"  {name:<32} {ratio:>9.1f}x")
    return "\n".join(lines)


#: The Table-2-style recommendation query the explore bench times: the
#: best efficiency point under area and clock floors over the full grid.
EXPLORE_BENCH_QUERY = {
    "objective": "mops_per_watt",
    "constraints": {"max_slices": 1000, "min_clock_mhz": 200},
}


def explore_bench(repeats: int = 3) -> dict:
    """Benchmark cold vs warm frontier computation; return the snapshot.

    Cold: a fresh :class:`~repro.engine.Engine` evaluates the full
    unit-grid frontier job (every pipeline depth of every kind x format
    pair, annotated and frontier-extracted).  Warm: the same engine
    answers again from its memo — the regime a running ``repro serve``
    instance is in after its first ``/v1/recommend``.  The portable
    quantity is the warm-vs-cold ratio; the benchmark suite gates it at
    >= 20x.
    """
    from repro.engine import Engine
    from repro.explore.catalog import unit_frontier_job
    from repro.explore.recommend import recommend

    job = unit_frontier_job()

    engine = Engine()
    t0 = time.perf_counter()
    frontier = engine.evaluate(job)
    t_frontier_cold = time.perf_counter() - t0
    t_frontier_warm = _best_of(lambda: engine.evaluate(job), repeats)

    cold_engine = Engine()
    t0 = time.perf_counter()
    payload = recommend(EXPLORE_BENCH_QUERY, engine=cold_engine)
    t_recommend_cold = time.perf_counter() - t0
    t_recommend_warm = _best_of(
        lambda: recommend(EXPLORE_BENCH_QUERY, engine=cold_engine), repeats
    )

    return {
        "schema": SCHEMA,
        "suite": "explore",
        "config": {
            "query": EXPLORE_BENCH_QUERY,
            "repeats": repeats,
        },
        "context": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "grid": {
            "designs": len(frontier.records),
            "frontier": len(frontier.frontier),
            "best": payload["best"]["id"],
        },
        "benchmarks": [
            {"name": "frontier.units.cold", "seconds": t_frontier_cold},
            {"name": "frontier.units.warm", "seconds": t_frontier_warm},
            {"name": "recommend.units.cold", "seconds": t_recommend_cold},
            {"name": "recommend.units.warm", "seconds": t_recommend_warm},
        ],
        "speedups": {
            "frontier.warm_vs_cold.units": t_frontier_cold / t_frontier_warm,
            "recommend.warm_vs_cold.units": t_recommend_cold / t_recommend_warm,
        },
    }


def render_explore(snapshot: dict) -> str:
    """Human-readable summary of an explore snapshot."""
    grid = snapshot["grid"]
    lines = [
        f"explore bench ({grid['designs']} designs, "
        f"{grid['frontier']} on the frontier; best: {grid['best']})"
    ]
    for entry in snapshot["benchmarks"]:
        lines.append(
            f"  {entry['name']:<32} {entry['seconds'] * 1000.0:>10.3f} ms"
        )
    for name, ratio in snapshot["speedups"].items():
        lines.append(f"  {name:<32} {ratio:>9.1f}x")
    return "\n".join(lines)


def render(snapshot: dict) -> str:
    """Human-readable summary of a snapshot (stdout companion to JSON)."""
    lines = [f"kernel bench ({snapshot['config']['fmt']}, "
             f"PL={snapshot['config']['mul_latency'] + snapshot['config']['add_latency']})"]
    for entry in snapshot["benchmarks"]:
        lines.append(f"  {entry['name']:<32} {entry['seconds'] * 1000.0:>10.2f} ms")
    for name, ratio in snapshot["speedups"].items():
        lines.append(f"  {name:<32} {ratio:>9.1f}x")
    return "\n".join(lines)


def write_snapshot(snapshot: dict, path: str) -> None:
    """Write one snapshot as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
