"""repro.service — async micro-batching evaluation service.

The serving front door for the reproduction: a stdlib-only asyncio HTTP
server (``repro serve``) that exposes the FP evaluation surface and
keeps it fast and observable under load.  Concurrent scalar op requests
are coalesced into single vectorized datapath calls (amortizing the
~150µs fixed NumPy dispatch cost exactly the way the paper's pipelined
units amortize issue overhead across a burst of operands), with bounded
admission, per-request deadlines, graceful drain, and live metrics.

Layering::

    config.py     ServiceConfig: every knob, env-overridable, validated
    telemetry.py  counters / gauges / histograms, /healthz + /metrics
    admission.py  bounded in-flight work, 429 backpressure, drain
    batcher.py    per-lane micro-batching onto vec_add/vec_sub/vec_mul
    http.py       minimal HTTP/1.1 wire layer over asyncio streams
    handlers.py   endpoint implementations and routing
    server.py     ReproService wiring, lifecycle, SIGTERM drain
    loadgen.py    closed-loop load generator (``repro loadgen``)

Endpoints::

    POST /v1/op/{add,sub,mul}   batched FP ops, bit-exact vs scalar
    GET  /v1/unit               pipeline-depth characterisation (cached)
    GET  /v1/explore            chunked NDJSON design-point stream + frontier
    POST /v1/recommend          constrained Pareto-optimal recommendation
    GET  /v1/kernel/matmul      analytic array-schedule closed forms
    GET  /v1/experiment/{name}  experiment artifacts via the engine cache
    GET  /healthz               liveness + version + key gauges (JSON)
    GET  /metrics               Prometheus text exposition
"""

from repro.service.admission import AdmissionController
from repro.service.batcher import BatchIntegrityError, MicroBatcher, execute_batch
from repro.service.config import ServiceConfig
from repro.service.loadgen import LoadReport, run_load, run_load_blocking
from repro.service.server import ReproService, ServiceThread, serve
from repro.service.telemetry import Telemetry

__all__ = [
    "AdmissionController",
    "BatchIntegrityError",
    "LoadReport",
    "MicroBatcher",
    "ReproService",
    "ServiceConfig",
    "ServiceThread",
    "Telemetry",
    "execute_batch",
    "run_load",
    "run_load_blocking",
    "serve",
]
