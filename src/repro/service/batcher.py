"""Micro-batching: coalesce concurrent scalar op requests into vector calls.

A single :func:`~repro.fp.vectorized.vec_mul` call costs ~150µs of NumPy
dispatch whether it multiplies 1 pair or 64 — the service's whole
throughput story is amortizing that fixed cost.  Concurrent requests for
the *same* (op, format, rounding mode) lane are queued and flushed as
one vectorized call under a max-batch-size / max-linger policy:

* a batch flushes as soon as ``max_batch`` requests are waiting;
* a non-full batch flushes ``linger_ms`` after its first request, so a
  lone request never waits longer than the linger;
* a burst larger than ``max_batch`` splits into consecutive full
  batches (the lane worker just keeps draining);
* requests for different formats or rounding modes **never** share a
  batch — lanes are keyed by the exact datapath configuration.

Each request gets its own element of the result array and its own
element of the ``with_flags=True`` exception sideband, so responses are
bit- and flag-identical to scalar :func:`~repro.fp.adder.fp_add` /
:func:`~repro.fp.multiplier.fp_mul` calls on the same operands — one
neighbour's overflow cannot leak into another's flags.  As an integrity
guard, every batch optionally replays one sampled element through the
scalar datapath and fails the whole batch on any mismatch (cost
amortized across the batch, like the bit cross-checks in
``repro.bench``).

Batch execution runs on a dedicated single worker thread
(``run_in_executor``) so a 300µs+ wide-format vector call never blocks
the event loop's accept/parse work.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fp.adder import fp_add, fp_sub
from repro.fp.divider import fp_div
from repro.fp.format import FPFormat
from repro.fp.mac import fp_fma
from repro.fp.multiplier import fp_mul
from repro.fp.packing import PACKED_OPS, packed_call, packing_width
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import fp_sqrt
from repro.fp.vectorized import (
    vec_add,
    vec_div,
    vec_fma,
    vec_mul,
    vec_sqrt,
    vec_sub,
)
from repro.obs.trace import NULL_TRACE, Span
from repro.service.config import ServiceConfig
from repro.service.telemetry import Telemetry

#: Servable op name -> (scalar reference, vectorized implementation,
#: operand count).  The arity travels with the table so every layer —
#: handler validation, submit, batch execution — agrees on how many
#: operand columns a lane carries (sqrt is the unary lane, fma the
#: ternary one).
OPS = {
    "add": (fp_add, vec_add, 2),
    "sub": (fp_sub, vec_sub, 2),
    "mul": (fp_mul, vec_mul, 2),
    "div": (fp_div, vec_div, 2),
    "sqrt": (fp_sqrt, vec_sqrt, 1),
    "fma": (fp_fma, vec_fma, 3),
}

#: Op name -> operand count, derived from :data:`OPS`.
OP_ARITY = {op: arity for op, (_, _, arity) in OPS.items()}

#: Lane identity: exact datapath configuration.  Formats hash by
#: geometry (``name`` is compare=False), so only bit-identical datapaths
#: can ever share a batch.
LaneKey = Tuple[str, FPFormat, RoundingMode]

#: Shared tag dict for flush-synthesized ``admission.wait`` spans (the
#: admitted hot path defers its span to the flush — one constant dict
#: for every member instead of one allocation per request).  Treated as
#: immutable by every reader.
_OK_ADMIT_TAGS = {"verdict": "ok"}


class BatchIntegrityError(Exception):
    """A batch's sampled element disagreed with the scalar datapath."""


def lane_packing_width(op: str, fmt: FPFormat) -> int:
    """Sub-lane packing degree of one service lane (1 = unpacked).

    A lane packs when its op has a packed kernel (add/sub/mul) **and**
    its format fits a sub-lane (:func:`repro.fp.packing.packing_width`):
    fp16/bf16 run 4-way, fp32 2-way, everything else unpacked.
    """
    if op not in PACKED_OPS:
        return 1
    return packing_width(fmt)


def execute_batch(
    op: str,
    fmt: FPFormat,
    mode: RoundingMode,
    requests: List[Tuple[int, ...]],
    spot_check: bool = True,
) -> List[Tuple[int, int]]:
    """Run one homogeneous batch through the vectorized datapath.

    ``requests`` is one operand tuple per request (arity words each).
    Returns one ``(bits, flags)`` pair per request, in request order.
    Runs on the executor thread; everything it touches is local.

    Lanes whose (op, format) qualify run on the packed sub-lane
    datapaths (2-4 logical ops per limb pass); the scatter contract is
    unchanged — per-request ``(bits, flags)``, bit- and flag-identical
    to the unpacked path, with tail pad lanes never surfacing.
    """
    scalar_fn, vec_fn, arity = OPS[op]
    n = len(requests)
    columns = [
        np.fromiter((t[j] for t in requests), dtype=np.uint64, count=n)
        for j in range(arity)
    ]
    width = lane_packing_width(op, fmt)
    if width > 1:
        bits, flags = packed_call(
            op, fmt, *columns, mode, width=width, with_flags=True
        )
    else:
        bits, flags = vec_fn(fmt, *columns, mode, with_flags=True)
    if spot_check:
        # One sampled element per batch, replayed through the scalar
        # datapath: a cheap, always-on differential probe whose cost the
        # batch amortizes.  Rotate the sample with the batch size so
        # repeated identical batches don't pin one index forever.
        i = n // 2
        want_bits, want_flags = scalar_fn(fmt, *requests[i], mode)
        if int(bits[i]) != want_bits or int(flags[i]) != want_flags.to_bits():
            operands = " ".join(f"{w:#x}" for w in requests[i])
            raise BatchIntegrityError(
                f"{op}/{fmt.name}/{mode.value}: batch element {i} "
                f"({operands}) got "
                f"{int(bits[i]):#x}/{int(flags[i]):#04x}, scalar says "
                f"{want_bits:#x}/{want_flags.to_bits():#04x}"
            )
    return list(zip(bits.tolist(), flags.tolist()))


#: One queued request: operand words, result future, trace, and the
#: monotonic enqueue timestamp the flush turns into a ``batch.linger``
#: span (a raw float in the tuple instead of an open Span keeps the
#: per-request submit path allocation-free).
_QueueItem = Tuple[Tuple[int, ...], asyncio.Future, object, float]


@dataclass
class _Lane:
    queue: "asyncio.Queue[_QueueItem]"
    worker: asyncio.Task = field(repr=False, default=None)  # type: ignore[assignment]


class MicroBatcher:
    """Per-lane queues plus one coalescing worker task per lane."""

    def __init__(
        self,
        config: ServiceConfig,
        telemetry: Optional[Telemetry] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self.executor = executor
        self._lanes: Dict[LaneKey, _Lane] = {}
        self._closed = False
        # Stage latency folds in at the flush, not at trace finish.
        # Lingers differ per member so each sampled member observes its
        # own; admission waits on the admitted path are structurally
        # zero (shed-don't-queue) and dispatch/scatter spans are shared
        # across a flush's members, so those three land as ONE weighted
        # observation per flush (weight = sampled members).
        if telemetry is not None:
            stage = telemetry.stage_latency_s
            self._stage_wait = stage.child(("admission.wait",))
            self._stage_linger = stage.child(("batch.linger",))
            self._stage_dispatch = stage.child(("batch.dispatch",))
            self._stage_scatter = stage.child(("scatter",))
        else:
            self._stage_wait = self._stage_linger = None
            self._stage_dispatch = self._stage_scatter = None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        op: str,
        fmt: FPFormat,
        mode: RoundingMode,
        *operands: int,
        trace=None,
    ) -> Tuple[int, int]:
        """Queue one request; resolves to its ``(bits, flags)``.

        ``operands`` must match the op's arity exactly — one word for
        sqrt, two for the binary ops, three for fma.  Admission control
        (and the per-request deadline) live with the caller; the batcher
        itself never rejects for load.  ``trace`` (a
        :class:`repro.obs.trace.Trace`) receives the request's
        ``admission.wait`` / ``batch.linger`` / ``batch.dispatch`` /
        ``scatter`` spans, all recorded at flush time.
        """
        if op not in OPS:
            raise KeyError(f"unknown op {op!r}; known: {', '.join(OPS)}")
        arity = OP_ARITY[op]
        if len(operands) != arity:
            raise ValueError(
                f"op {op!r} takes exactly {arity} operand"
                f"{'s' if arity != 1 else ''}, got {len(operands)}"
            )
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        lane = self._lanes.get((op, fmt, mode))
        if lane is None:
            lane = _Lane(queue=asyncio.Queue())
            lane.worker = loop.create_task(
                self._run_lane((op, fmt, mode), lane.queue)
            )
            self._lanes[(op, fmt, mode)] = lane
        future: asyncio.Future = loop.create_future()
        if trace is None:
            trace = NULL_TRACE
        lane.queue.put_nowait((operands, future, trace, time.perf_counter()))
        return await future

    # ------------------------------------------------------------------ #
    # lane worker
    # ------------------------------------------------------------------ #
    async def _run_lane(self, key: LaneKey, queue: asyncio.Queue) -> None:
        op, fmt, mode = key
        max_batch = self.config.max_batch
        linger_s = self.config.linger_s
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            batch = [first]
            # Drain whatever is already waiting — no timers involved.
            while len(batch) < max_batch and not queue.empty():
                batch.append(queue.get_nowait())
            # Linger for stragglers, re-draining after each arrival.
            if len(batch) < max_batch and linger_s > 0:
                deadline = loop.time() + linger_s
                while len(batch) < max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
                    while len(batch) < max_batch and not queue.empty():
                        batch.append(queue.get_nowait())
            await self._flush(op, fmt, mode, batch)

    async def _flush(
        self,
        op: str,
        fmt: FPFormat,
        mode: RoundingMode,
        batch: List[_QueueItem],
    ) -> None:
        requests = [operands for operands, _, _, _ in batch]
        width = lane_packing_width(op, fmt)
        if self.telemetry is not None:
            labels = (op, fmt.name, mode.value)
            self.telemetry.batch_size.observe(len(batch))
            self.telemetry.batches_total.inc(labels)
            self.telemetry.lane_packing_width.set(labels, width)
            if width > 1:
                self.telemetry.packed_batches_total.inc(labels)
            if self.config.spot_check:
                self.telemetry.spot_checks_total.inc()
        # Per-member span work happens once, after execution: each
        # sampled member's admission.wait (structurally zero — the
        # admitted path defers it here) and batch.linger spans are
        # synthesized from its enqueue timestamp as bare tuples, and
        # appended together with the shared batch-wide spans in ONE
        # Trace.extend call.  Unsampled members pay one attribute check.
        t_dispatch = time.perf_counter()
        sampled = sum(1 for _, _, trace, _ in batch if trace.sampled)
        # The dispatch span is batch-wide: when any member is sampled,
        # ONE Span object is shared across every sampled member trace.
        dispatch_span = None
        if sampled:
            dispatch_span = Span(
                "batch.dispatch",
                t_dispatch,
                tags={
                    "lane": f"{op}/{fmt.name}/{mode.value}",
                    "batch_size": len(batch),
                    "packing_width": width,
                    "path": "packed" if width > 1 else "vectorized",
                },
            )
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self.executor,
                execute_batch,
                op,
                fmt,
                mode,
                requests,
                self.config.spot_check,
            )
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            if dispatch_span is not None:
                dispatch_span.finish(tags={"error": type(exc).__name__})
            linger_h = self._stage_linger
            for _, future, trace, t_enq in batch:
                if trace.sampled:
                    trace.extend((
                        ("admission.wait", t_enq, t_enq, -1, _OK_ADMIT_TAGS),
                        ("batch.linger", t_enq, t_dispatch, -1, None),
                        dispatch_span,
                    ))
                    if linger_h is not None:
                        linger_h.observe(t_dispatch - t_enq)
                if not future.done():
                    future.set_exception(exc)
            if sampled and self._stage_wait is not None:
                self._stage_wait.observe_n(0.0, sampled)
                self._stage_dispatch.observe_n(
                    dispatch_span.duration_s, sampled
                )
            return
        if dispatch_span is None:
            # Fully unsampled batch: pure scatter, no tracing work.
            for (_, future, _, _), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
            return
        dispatch_span.finish()
        scatter_span = Span("scatter", time.perf_counter())
        linger_h = self._stage_linger
        for (_, future, trace, t_enq), result in zip(batch, results):
            if trace.sampled:
                trace.extend((
                    ("admission.wait", t_enq, t_enq, -1, _OK_ADMIT_TAGS),
                    ("batch.linger", t_enq, t_dispatch, -1, None),
                    dispatch_span,
                    scatter_span,
                ))
                if linger_h is not None:
                    linger_h.observe(t_dispatch - t_enq)
            # A future may already be cancelled by the caller's
            # per-request deadline; its slot was still computed (the
            # batch was in flight), we just have nobody to tell.
            if not future.done():
                future.set_result(result)
        scatter_span.finish()
        if self._stage_wait is not None:
            self._stage_wait.observe_n(0.0, sampled)
            self._stage_dispatch.observe_n(dispatch_span.duration_s, sampled)
            self._stage_scatter.observe_n(scatter_span.duration_s, sampled)

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    async def close(self) -> None:
        """Cancel lane workers.  Call after admission has drained."""
        self._closed = True
        workers = [lane.worker for lane in self._lanes.values() if lane.worker]
        for worker in workers:
            worker.cancel()
        for worker in workers:
            try:
                await worker
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._lanes.clear()
