"""Minimal HTTP/1.1 wire layer over asyncio streams (stdlib only).

Just enough protocol for the service: request line, headers,
``Content-Length`` bodies, keep-alive.  Parsing is deliberately tight —
the op endpoints sit on the latency path, so the parser does one
``readuntil`` for the head, splits on CRLF, and only lower-cases the
few header names it reads.  No chunked encoding, no continuations, no
multipart: a request the parser does not understand is a clean ``400``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote

#: Protocol bounds: generous for JSON op payloads, small enough that a
#: misbehaving client cannot balloon memory.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed request; carries the status the server should answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query_string: str
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool = True
    #: The request's trace (set by the server once admission to the
    #: connection loop mints it; ``None`` when handlers are driven
    #: directly, e.g. from unit tests).
    trace: Optional[object] = field(default=None, repr=False)
    _query: Optional[Dict[str, str]] = field(default=None, repr=False)

    @property
    def query(self) -> Dict[str, str]:
        """Query params, last-wins, decoded lazily (off the hot path)."""
        if self._query is None:
            parsed = parse_qs(self.query_string, keep_blank_values=True)
            self._query = {k: v[-1] for k, v in parsed.items()}
        return self._query

    def json(self) -> dict:
        """Parse the body as a JSON object; :class:`ProtocolError` on junk."""
        if not self.body:
            raise ProtocolError(400, "expected a JSON body")
        try:
            doc = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise ProtocolError(400, "JSON body must be an object")
        return doc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request; ``None`` on clean end-of-stream (client done)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(413, "request head too large") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(413, "request head too large")

    lines = head[:-4].split(b"\r\n")
    try:
        method_b, target_b, version_b = lines[0].split(b" ", 2)
    except ValueError as exc:
        raise ProtocolError(400, "malformed request line") from exc
    if version_b not in (b"HTTP/1.1", b"HTTP/1.0"):
        raise ProtocolError(400, f"unsupported protocol {version_b!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(b":")
        if not sep:
            raise ProtocolError(400, "malformed header line")
        headers[name.strip().lower().decode("latin-1")] = (
            value.strip().decode("latin-1")
        )

    length = 0
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise ProtocolError(400, "malformed Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
    elif "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked bodies are not supported")

    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated request body") from exc

    target = target_b.decode("latin-1")
    path, _, query_string = target.partition("?")
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version_b == b"HTTP/1.1"
        else connection == "keep-alive"
    )
    return Request(
        method=method_b.decode("latin-1").upper(),
        path=unquote(path),
        query_string=query_string,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def build_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Sequence[Tuple[str, str]] = (),
    keep_alive: bool = True,
) -> bytes:
    """Assemble a full response as one bytes blob (single ``write``)."""
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


#: Terminates a chunked response body (zero-length chunk, no trailers).
LAST_CHUNK = b"0\r\n\r\n"


def build_stream_head(
    status: int,
    content_type: str = "application/x-ndjson",
    extra_headers: Sequence[Tuple[str, str]] = (),
    keep_alive: bool = True,
) -> bytes:
    """Response head for a ``Transfer-Encoding: chunked`` body.

    Streaming responses (``/v1/explore``) cannot know their length up
    front — each design point is written as its own chunk the moment
    the engine produces it — so the body is delimited by the chunked
    framing instead of ``Content-Length``, and the connection stays
    usable afterwards because the terminator is explicit.
    """
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """One chunked-encoding frame: hex length, CRLF, payload, CRLF."""
    return b"%x\r\n%s\r\n" % (len(data), data)


def json_body(payload: dict) -> bytes:
    """Compact JSON encoding for response bodies."""
    return json.dumps(payload, separators=(",", ":")).encode()


def error_body(status: int, message: str) -> bytes:
    return json_body({"error": REASONS.get(status, "Unknown"), "detail": message})
