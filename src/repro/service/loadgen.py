"""Closed-loop concurrent load generator (``repro loadgen``).

``concurrency`` workers each hold one keep-alive connection and issue
requests back-to-back — a *closed loop*: a worker's next request departs
only when its previous response lands, so offered load adapts to what
the server sustains and the achieved rate **is** the throughput
measurement.  Operands are drawn from a seeded RNG per worker, so runs
are reproducible.

Status codes are tallied rather than treated as failures: a ``429``
from admission control is the server working as designed (the burst
tests drive the queue past capacity on purpose).  Transport errors
count separately as ``errors``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fp.format import ALL_FORMATS, FP32, FPFormat
from repro.fp.rounding import RoundingMode
from repro.service.batcher import OP_ARITY

#: Operand keys in request-body order; an op of arity k sends the
#: first k (mirrors the handler's validation table).
_OPERAND_KEYS = ("a", "b", "c")


@dataclass
class LoadReport:
    """What one load run achieved."""

    requests: int
    duration_s: float
    concurrency: int
    op: str
    format: str
    mode: str
    statuses: Dict[int, int] = field(default_factory=dict)
    errors: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    #: Requests that sent an explicit X-Repro-Trace-Id and saw the
    #: server echo exactly that ID back (0 when trace_ids is off).
    trace_echoed: int = 0
    trace_ids: bool = False

    @property
    def achieved_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def ok(self) -> int:
        return sum(n for code, n in self.statuses.items() if 200 <= code < 300)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    def to_json(self) -> dict:
        return {
            "schema": "repro-loadgen/1",
            "requests": self.requests,
            "duration_s": round(self.duration_s, 4),
            "achieved_rps": round(self.achieved_rps, 1),
            "concurrency": self.concurrency,
            "op": self.op,
            "format": self.format,
            "mode": self.mode,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "errors": self.errors,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "trace_ids": self.trace_ids,
            "trace_echoed": self.trace_echoed,
        }

    def render(self) -> str:
        statuses = " ".join(
            f"{code}:{n}" for code, n in sorted(self.statuses.items())
        )
        text = (
            f"loadgen: {self.requests} requests in {self.duration_s:.2f}s "
            f"({self.achieved_rps:.0f} req/s, {self.concurrency}-way "
            f"{self.op}/{self.format}/{self.mode})\n"
            f"  statuses: {statuses or '-'} | errors: {self.errors}\n"
            f"  latency: p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms"
        )
        if self.trace_ids:
            text += f"\n  trace ids echoed: {self.trace_echoed}/{self.requests}"
        return text


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Optional[bytes]]:
    """Read one response; returns ``(status, echoed trace ID or None)``."""
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    trace_id = None
    for line in head[:-4].split(b"\r\n")[1:]:
        lowered = line[:17].lower()
        if lowered[:15] == b"content-length:":
            length = int(line[15:])
        elif lowered == b"x-repro-trace-id:":
            trace_id = line[17:].strip()
    if length:
        await reader.readexactly(length)
    return status, trace_id


def _request_bytes(
    op: str,
    fmt: FPFormat,
    mode: str,
    *operands: int,
    trace_id: Optional[str] = None,
) -> bytes:
    words = ",".join(
        f'"{key}":"{word:#x}"'
        for key, word in zip(_OPERAND_KEYS, operands)
    )
    body = (
        f'{{{words},"format":"{fmt.name}","mode":"{mode}"}}'
    ).encode()
    trace_header = (
        f"X-Repro-Trace-Id: {trace_id}\r\n" if trace_id is not None else ""
    )
    return (
        f"POST /v1/op/{op} HTTP/1.1\r\nHost: loadgen\r\n"
        f"Content-Type: application/json\r\n{trace_header}"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


async def run_load(
    host: str,
    port: int,
    *,
    concurrency: int = 16,
    requests: int = 1000,
    op: str = "mul",
    fmt: FPFormat = FP32,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    seed: int = 0,
    timeout_s: float = 120.0,
    trace_ids: bool = False,
) -> LoadReport:
    """Drive the server and measure achieved throughput and latency.

    With ``trace_ids`` each request carries an explicit (seeded,
    unique) ``X-Repro-Trace-Id`` header and the report counts how many
    responses echoed it back verbatim — the propagation contract the
    CI smoke asserts end to end.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    errors = 0
    trace_echoed = 0
    per_worker = [
        requests // concurrency + (1 if i < requests % concurrency else 0)
        for i in range(concurrency)
    ]

    arity = OP_ARITY.get(op, 2)

    async def worker(index: int, quota: int) -> None:
        nonlocal errors, trace_echoed
        rng = random.Random((seed << 8) ^ index)
        word_max = fmt.word_mask
        reader = writer = None
        try:
            reader, writer = await asyncio.open_connection(host, port)
            for seq in range(quota):
                sent_id = (
                    f"lg{seed:x}.{index:x}.{seq:x}" if trace_ids else None
                )
                payload = _request_bytes(
                    op,
                    fmt,
                    mode.value,
                    *(rng.randrange(word_max + 1) for _ in range(arity)),
                    trace_id=sent_id,
                )
                t0 = time.perf_counter()
                writer.write(payload)
                await writer.drain()
                status, echoed = await _read_response(reader)
                latencies.append(time.perf_counter() - t0)
                statuses[status] = statuses.get(status, 0) + 1
                if sent_id is not None and echoed == sent_id.encode():
                    trace_echoed += 1
        except (OSError, asyncio.IncompleteReadError, ValueError):
            errors += 1
        finally:
            if writer is not None:
                writer.close()

    t0 = time.perf_counter()
    await asyncio.wait_for(
        asyncio.gather(
            *(worker(i, quota) for i, quota in enumerate(per_worker))
        ),
        timeout_s,
    )
    duration = time.perf_counter() - t0

    report = LoadReport(
        requests=sum(statuses.values()),
        duration_s=duration,
        concurrency=concurrency,
        op=op,
        format=fmt.name,
        mode=mode.value,
        statuses=statuses,
        errors=errors,
        trace_echoed=trace_echoed,
        trace_ids=trace_ids,
    )
    if latencies:
        ordered = sorted(latencies)
        report.p50_ms = ordered[len(ordered) // 2] * 1e3
        report.p99_ms = ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)] * 1e3
    return report


def run_load_blocking(host: str, port: int, **kwargs) -> LoadReport:
    """Synchronous wrapper: run the load on a private event loop."""
    return asyncio.run(run_load(host, port, **kwargs))


def resolve_load_format(name: str) -> Optional[FPFormat]:
    return {f.name: f for f in ALL_FORMATS}.get(name)


def write_report(report: LoadReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
