"""Closed-loop concurrent load generator (``repro loadgen``).

``concurrency`` workers each hold one keep-alive connection and issue
requests back-to-back — a *closed loop*: a worker's next request departs
only when its previous response lands, so offered load adapts to what
the server sustains and the achieved rate **is** the throughput
measurement.  Operands are drawn from a seeded RNG per worker, so runs
are reproducible.

Status codes are tallied rather than treated as failures: a ``429``
from admission control is the server working as designed (the burst
tests drive the queue past capacity on purpose).  Transport errors
count separately as ``errors``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fp.format import ALL_FORMATS, FP32, FPFormat
from repro.fp.rounding import RoundingMode
from repro.service.batcher import OP_ARITY

#: Operand keys in request-body order; an op of arity k sends the
#: first k (mirrors the handler's validation table).
_OPERAND_KEYS = ("a", "b", "c")


@dataclass
class LoadReport:
    """What one load run achieved."""

    requests: int
    duration_s: float
    concurrency: int
    op: str
    format: str
    mode: str
    statuses: Dict[int, int] = field(default_factory=dict)
    errors: int = 0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def achieved_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def ok(self) -> int:
        return sum(n for code, n in self.statuses.items() if 200 <= code < 300)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    def to_json(self) -> dict:
        return {
            "schema": "repro-loadgen/1",
            "requests": self.requests,
            "duration_s": round(self.duration_s, 4),
            "achieved_rps": round(self.achieved_rps, 1),
            "concurrency": self.concurrency,
            "op": self.op,
            "format": self.format,
            "mode": self.mode,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "errors": self.errors,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }

    def render(self) -> str:
        statuses = " ".join(
            f"{code}:{n}" for code, n in sorted(self.statuses.items())
        )
        return (
            f"loadgen: {self.requests} requests in {self.duration_s:.2f}s "
            f"({self.achieved_rps:.0f} req/s, {self.concurrency}-way "
            f"{self.op}/{self.format}/{self.mode})\n"
            f"  statuses: {statuses or '-'} | errors: {self.errors}\n"
            f"  latency: p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms"
        )


async def _read_response(reader: asyncio.StreamReader) -> int:
    """Read one response off the wire; returns its status code."""
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head[:-4].split(b"\r\n")[1:]:
        if line[:15].lower() == b"content-length:":
            length = int(line[15:])
            break
    if length:
        await reader.readexactly(length)
    return status


def _request_bytes(op: str, fmt: FPFormat, mode: str, *operands: int) -> bytes:
    words = ",".join(
        f'"{key}":"{word:#x}"'
        for key, word in zip(_OPERAND_KEYS, operands)
    )
    body = (
        f'{{{words},"format":"{fmt.name}","mode":"{mode}"}}'
    ).encode()
    return (
        f"POST /v1/op/{op} HTTP/1.1\r\nHost: loadgen\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


async def run_load(
    host: str,
    port: int,
    *,
    concurrency: int = 16,
    requests: int = 1000,
    op: str = "mul",
    fmt: FPFormat = FP32,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    seed: int = 0,
    timeout_s: float = 120.0,
) -> LoadReport:
    """Drive the server and measure achieved throughput and latency."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    errors = 0
    per_worker = [
        requests // concurrency + (1 if i < requests % concurrency else 0)
        for i in range(concurrency)
    ]

    arity = OP_ARITY.get(op, 2)

    async def worker(index: int, quota: int) -> None:
        nonlocal errors
        rng = random.Random((seed << 8) ^ index)
        word_max = fmt.word_mask
        reader = writer = None
        try:
            reader, writer = await asyncio.open_connection(host, port)
            for _ in range(quota):
                payload = _request_bytes(
                    op,
                    fmt,
                    mode.value,
                    *(rng.randrange(word_max + 1) for _ in range(arity)),
                )
                t0 = time.perf_counter()
                writer.write(payload)
                await writer.drain()
                status = await _read_response(reader)
                latencies.append(time.perf_counter() - t0)
                statuses[status] = statuses.get(status, 0) + 1
        except (OSError, asyncio.IncompleteReadError, ValueError):
            errors += 1
        finally:
            if writer is not None:
                writer.close()

    t0 = time.perf_counter()
    await asyncio.wait_for(
        asyncio.gather(
            *(worker(i, quota) for i, quota in enumerate(per_worker))
        ),
        timeout_s,
    )
    duration = time.perf_counter() - t0

    report = LoadReport(
        requests=sum(statuses.values()),
        duration_s=duration,
        concurrency=concurrency,
        op=op,
        format=fmt.name,
        mode=mode.value,
        statuses=statuses,
        errors=errors,
    )
    if latencies:
        ordered = sorted(latencies)
        report.p50_ms = ordered[len(ordered) // 2] * 1e3
        report.p99_ms = ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)] * 1e3
    return report


def run_load_blocking(host: str, port: int, **kwargs) -> LoadReport:
    """Synchronous wrapper: run the load on a private event loop."""
    return asyncio.run(run_load(host, port, **kwargs))


def resolve_load_format(name: str) -> Optional[FPFormat]:
    return {f.name: f for f in ALL_FORMATS}.get(name)


def write_report(report: LoadReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
