"""Admission control: bounded in-flight work, backpressure, drain.

The server admits at most ``queue_depth`` requests at a time — queued in
a batcher lane or executing.  Beyond that it *sheds* load: the HTTP
layer answers ``429 Too Many Requests`` with a ``Retry-After`` hint
instead of queueing unboundedly, so a burst past capacity degrades into
fast, explicit rejections rather than collapsing tail latency for
everyone (the paper's fixed-issue-rate pipelines refuse tokens the same
way: backpressure at the input, never silent loss in flight).

Draining (SIGTERM) flips admission into reject-everything mode
(``503``), while everything already admitted runs to completion;
:meth:`AdmissionController.wait_drained` resolves once the last admitted
request releases its slot.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.service.telemetry import Telemetry

#: Admission verdicts.
ADMIT_OK = "ok"
ADMIT_FULL = "full"
ADMIT_DRAINING = "draining"


class AdmissionController:
    """Counting semaphore with shed-don't-queue semantics."""

    def __init__(self, limit: int, telemetry: Optional[Telemetry] = None) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.telemetry = telemetry
        self.in_flight = 0
        self.draining = False
        self._idle: Optional[asyncio.Event] = None  # created lazily in-loop
        # Pre-resolved stage histogram so sampled admissions fold their
        # wait straight in, without a per-label lookup per request.
        self._stage_wait = (
            telemetry.stage_latency_s.child(("admission.wait",))
            if telemetry is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def admit(self, trace=None, record: bool = True) -> str:
        """Try to claim a slot; returns an ``ADMIT_*`` verdict.

        Callers that receive :data:`ADMIT_OK` own a slot and must call
        :meth:`release` exactly once (use ``try/finally``).  When a
        sampled ``trace`` is passed, the decision is recorded as a
        zero-duration ``admission.wait`` span tagged with the verdict
        and the queue occupancy it saw — shed-don't-queue means there
        is nothing to wait *in*, and the span exists so a 429'd
        request's trace says *why*.  The batcher path passes
        ``record=False``: an OK verdict's span is synthesized at flush
        time from the member's enqueue timestamp instead, so the hot
        path records nothing here.  Rejections are always recorded.
        """
        if self.draining:
            verdict = ADMIT_DRAINING
        elif self.in_flight >= self.limit:
            if self.telemetry is not None:
                self.telemetry.shed_total.inc()
            verdict = ADMIT_FULL
        else:
            self.in_flight += 1
            if self.telemetry is not None:
                self.telemetry.queue_depth.set(self.in_flight)
            verdict = ADMIT_OK
        if (
            (record or verdict is not ADMIT_OK)
            and trace is not None
            and trace.sampled
        ):
            t_now = time.perf_counter()
            trace.add(
                "admission.wait", t_now, t_now,
                tags={"verdict": verdict, "in_flight": self.in_flight},
            )
            if self._stage_wait is not None:
                self._stage_wait.observe(0.0)
        return verdict

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`admit`."""
        assert self.in_flight > 0, "release without matching admit"
        self.in_flight -= 1
        if self.telemetry is not None:
            self.telemetry.queue_depth.set(self.in_flight)
        if self.draining and self.in_flight == 0 and self._idle is not None:
            self._idle.set()

    @property
    def retry_after_s(self) -> int:
        """Client back-off hint for the ``Retry-After`` header.

        The queue turns over in well under a second for any realistic
        configuration, so a constant 1 s is an honest, conservative hint
        (RFC 7231 allows only integral seconds).
        """
        return 1

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests keep their slots."""
        self.draining = True

    async def wait_drained(self, timeout_s: float) -> bool:
        """Wait for in-flight work to finish; True when fully drained."""
        if not self.draining:
            self.begin_drain()
        if self.in_flight == 0:
            return True
        if self._idle is None:
            self._idle = asyncio.Event()
        if self.in_flight == 0:  # re-check after the await point above
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return self.in_flight == 0
