"""Live service metrics: counters, gauges and bucketed histograms.

Everything here is mutated from the event loop and the batch-executor
thread without locks — "lock-free-ish": each mutation is a single
integer add on a dict slot, atomic under the GIL, and readers tolerate
being a request behind.  That keeps the hot path at ~1µs per
observation, which matters because every request observes latency and
every batch observes its size.

Rendering follows the Prometheus text exposition format at ``/metrics``
(counters, gauges, cumulative histogram buckets) and a JSON snapshot at
``/healthz``; quantiles (p50/p99) are interpolated from the histogram
buckets the same way a Prometheus ``histogram_quantile`` would, so the
numbers agree between the two views.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from typing import Dict, Iterable, Optional, Sequence, Tuple

Labels = Tuple[str, ...]

#: Request latency buckets (seconds) — sub-millisecond to 10 s.
LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: Batch-size buckets (requests per vectorized call).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
#: Pipeline-stage buckets (seconds) — stages live in the tens of
#: microseconds to low milliseconds, below the request buckets' floor.
STAGE_BUCKETS_S = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.5, 1.0,
)


class Counter:
    """Monotonic counter with optional labels."""

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: Dict[Labels, int] = {}

    def inc(self, labels: Labels = (), n: int = 1) -> None:
        self._series[labels] = self._series.get(labels, 0) + n

    def value(self, labels: Labels = ()) -> int:
        return self._series.get(labels, 0)

    @property
    def total(self) -> int:
        return sum(self._series.values())

    def series(self) -> Iterable[Tuple[Labels, int]]:
        return sorted(self._series.items())


class Gauge:
    """Point-in-time value, tracking its high-water mark."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.max_seen = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_seen:
            self.max_seen = value


class LabeledGauge:
    """Point-in-time value per label set (e.g. one value per lane)."""

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: Dict[Labels, float] = {}

    def set(self, labels: Labels, value: float) -> None:
        self._series[labels] = value

    def value(self, labels: Labels, default: float = 0.0) -> float:
        return self._series.get(labels, default)

    def series(self) -> Iterable[Tuple[Labels, float]]:
        return sorted(self._series.items())


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``buckets`` are inclusive upper bounds; an implicit +Inf bucket
    catches the tail.  ``quantile_estimate`` linearly interpolates
    inside the winning (non-empty) bucket, which is exactly the
    estimate Prometheus makes — good to a bucket width, plenty for
    p50/p99 health reporting.  When the requested rank falls in the
    +Inf overflow bucket the estimate *saturates*: the true quantile is
    somewhere above the largest finite bound, so the estimate returns
    that bound with ``saturated=True`` instead of clamping silently.

    ``observe`` optionally carries a ``trace_id``: the histogram keeps
    an exemplar-style record of its largest observation per
    ``exemplar_window_s`` window, so ``/metrics`` can point a human at
    the exact trace behind the current worst latency.
    """

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        exemplar_window_s: float = 60.0,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self.total = 0.0
        self.count = 0
        self.exemplar_window_s = exemplar_window_s
        self._exemplar: Optional[Tuple[float, str]] = None  # (value, trace_id)
        self._exemplar_t0 = time.monotonic()

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        # bisect_left finds the first bound >= value — the inclusive
        # upper bucket — in C, which beats a Python scan even for the
        # short bucket lists used here.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if trace_id is not None:
            now = time.monotonic()
            if now - self._exemplar_t0 > self.exemplar_window_s:
                self._exemplar = None
                self._exemplar_t0 = now
            if self._exemplar is None or value > self._exemplar[0]:
                self._exemplar = (value, trace_id)

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in one update.

        Batch-wide spans (``batch.dispatch``, ``scatter``) apply to
        every member of a flush; folding them in with a single weighted
        update keeps the per-request tracing cost flat in batch size.
        """
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n

    @property
    def exemplar(self) -> Optional[Tuple[float, str]]:
        """``(value, trace_id)`` of the window's max, if any."""
        if (
            self._exemplar is not None
            and time.monotonic() - self._exemplar_t0 > self.exemplar_window_s
        ):
            return None
        return self._exemplar

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile_estimate(self, q: float) -> Tuple[float, bool]:
        """``(estimate, saturated)`` for the ``q``-quantile.

        ``saturated`` is True when the rank lands in the +Inf overflow
        bucket: the returned value is the largest finite bound — a
        *floor* on the true quantile, not an estimate of it.  Empty
        leading buckets are skipped so a rank at the very bottom of the
        distribution (q → 0) interpolates inside the first bucket that
        actually holds observations rather than reporting the empty
        bucket's edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0, False
        rank = q * self.count
        cumulative = 0
        for i, upper in enumerate(self.bounds):
            prev_cumulative = cumulative
            cumulative += self.counts[i]
            if cumulative >= rank and self.counts[i] > 0:
                lower = self.bounds[i - 1] if i else 0.0
                frac = (rank - prev_cumulative) / self.counts[i]
                return lower + (upper - lower) * min(max(frac, 0.0), 1.0), False
        return self.bounds[-1], True  # rank in the +Inf overflow bucket

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        return self.quantile_estimate(q)[0]


class LabeledHistogram:
    """A histogram per label set (e.g. one per pipeline stage)."""

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float],
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._series: Dict[Labels, Histogram] = {}

    def child(self, labels: Labels) -> Histogram:
        """The sub-histogram for ``labels`` (created on first use).

        Hot callers should resolve their child once and call
        ``observe`` on it directly — that skips the dict lookup.
        """
        sub = self._series.get(labels)
        if sub is None:
            sub = Histogram(self.name, self.help, self.buckets)
            self._series[labels] = sub
        return sub

    def observe(self, labels: Labels, value: float) -> None:
        self.child(labels).observe(value)

    def series(self) -> Iterable[Tuple[Labels, Histogram]]:
        return sorted(self._series.items())


class Telemetry:
    """The service's metric registry.

    One instance per server; handlers and the batcher mutate it
    directly.  ``render()`` produces the ``/metrics`` exposition,
    ``snapshot()`` the ``/healthz`` JSON body.
    """

    def __init__(self, version: str = "") -> None:
        self.version = version
        self.started_unix = time.time()
        self.started_monotonic = time.monotonic()
        self.requests_total = Counter(
            "repro_requests_total",
            "Requests by route and status code.",
            ("route", "status"),
        )
        self.request_latency_s = Histogram(
            "repro_request_latency_seconds",
            "Server-side request latency (admit to response ready).",
            LATENCY_BUCKETS_S,
        )
        self.batch_size = Histogram(
            "repro_batch_size",
            "FP op requests coalesced per vectorized call.",
            BATCH_BUCKETS,
        )
        self.stage_latency_s = LabeledHistogram(
            "repro_stage_latency_seconds",
            "Per-request pipeline stage latency, by span name.",
            ("stage",),
            STAGE_BUCKETS_S,
        )
        self.batches_total = Counter(
            "repro_batches_total",
            "Executed vectorized batches by lane.",
            ("op", "format", "mode"),
        )
        self.packed_batches_total = Counter(
            "repro_packed_batches_total",
            "Batches executed on the packed sub-lane datapaths, by lane.",
            ("op", "format", "mode"),
        )
        self.lane_packing_width = LabeledGauge(
            "repro_lane_packing_width",
            "Sub-lane packing degree of each executed lane (1 = unpacked).",
            ("op", "format", "mode"),
        )
        self.queue_depth = Gauge(
            "repro_queue_depth", "Admitted requests currently in flight."
        )
        self.shed_total = Counter(
            "repro_shed_total", "Requests rejected with 429 (queue full)."
        )
        self.timeout_total = Counter(
            "repro_timeout_total", "Requests that hit the per-request deadline."
        )
        self.spot_checks_total = Counter(
            "repro_spot_checks_total",
            "Sampled scalar cross-checks executed against batches.",
        )
        self.engine_jobs = Counter(
            "repro_engine_jobs_total",
            "Characterisation engine jobs by resolution.",
            ("status",),
        )
        self.explore_points_total = Counter(
            "repro_explore_points_total",
            "Design points streamed by /v1/explore.",
        )

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def engine_hit_rate(self) -> float:
        """Cache/memo fraction of engine jobs (EngineMetrics-style)."""
        total = self.engine_jobs.total
        if not total:
            return 0.0
        served = self.engine_jobs.value(("hit",)) + self.engine_jobs.value(("memo",))
        return served / total

    def record_engine(self, status: str) -> None:
        self.engine_jobs.inc((status,))

    def snapshot(self) -> dict:
        """The ``/healthz`` payload (minus the status field)."""
        p99, p99_saturated = self.request_latency_s.quantile_estimate(0.99)
        return {
            "version": self.version,
            "uptime_s": round(self.uptime_s, 3),
            "requests": self.requests_total.total,
            "in_flight": self.queue_depth.value,
            "queue_depth_max": self.queue_depth.max_seen,
            "batches": self.batches_total.total,
            "packed_batches": self.packed_batches_total.total,
            "mean_batch_size": round(self.batch_size.mean, 3),
            "shed": self.shed_total.total,
            "timeouts": self.timeout_total.total,
            "latency_p50_ms": round(self.request_latency_s.quantile(0.5) * 1e3, 3),
            "latency_p99_ms": round(p99 * 1e3, 3),
            "latency_p99_saturated": p99_saturated,
            "engine_hit_rate": round(self.engine_hit_rate(), 4),
        }

    def stage_summary(self) -> dict:
        """Mean/p99 per pipeline stage (the bench's stage breakdown)."""
        stages: dict = {}
        for labels, sub in self.stage_latency_s.series():
            if sub.count == 0:
                # Children are pre-resolved at server startup; a stage
                # with no observations (tracing off) is absent, not 0.
                continue
            p99, saturated = sub.quantile_estimate(0.99)
            stages[labels[0]] = {
                "count": sub.count,
                "mean_ms": round(sub.mean * 1e3, 6),
                "p99_ms": round(p99 * 1e3, 6),
                "p99_saturated": saturated,
            }
        return stages

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Prometheus text exposition of every instrument."""
        out: list[str] = []

        def counter(c: Counter) -> None:
            out.append(f"# HELP {c.name} {c.help}")
            out.append(f"# TYPE {c.name} counter")
            if not c.label_names:
                out.append(f"{c.name} {c.total}")
                return
            if not c._series:
                out.append(f"{c.name} 0")
            for labels, value in c.series():
                pairs = ",".join(
                    f'{k}="{v}"' for k, v in zip(c.label_names, labels)
                )
                out.append(f"{c.name}{{{pairs}}} {value}")

        def gauge(g: Gauge) -> None:
            out.append(f"# HELP {g.name} {g.help}")
            out.append(f"# TYPE {g.name} gauge")
            out.append(f"{g.name} {g.value}")
            # The high-water mark is its own metric family and needs its
            # own HELP/TYPE lines (exposition-format conformance).
            out.append(f"# HELP {g.name}_max High-water mark of {g.name}.")
            out.append(f"# TYPE {g.name}_max gauge")
            out.append(f"{g.name}_max {g.max_seen}")

        def labeled_gauge(g: LabeledGauge) -> None:
            out.append(f"# HELP {g.name} {g.help}")
            out.append(f"# TYPE {g.name} gauge")
            if not g._series:
                out.append(f"{g.name} 0")
            for labels, value in g.series():
                pairs = ",".join(
                    f'{k}="{v}"' for k, v in zip(g.label_names, labels)
                )
                out.append(f"{g.name}{{{pairs}}} {value:g}")

        def histogram(h: Histogram) -> None:
            out.append(f"# HELP {h.name} {h.help}")
            out.append(f"# TYPE {h.name} histogram")
            cumulative = 0
            for i, upper in enumerate(h.bounds):
                cumulative += h.counts[i]
                bound = f"{upper:g}"
                out.append(f'{h.name}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += h.counts[-1]
            out.append(f'{h.name}_bucket{{le="+Inf"}} {cumulative}')
            out.append(f"{h.name}_sum {h.total:g}")
            out.append(f"{h.name}_count {h.count}")
            exemplar = h.exemplar
            if exemplar is not None:
                # Exemplar-style attribution: the window's largest
                # observation, labelled with the trace that caused it.
                value, trace_id = exemplar
                out.append(
                    f"# HELP {h.name}_slowest Largest observation in the "
                    "current exemplar window, by trace ID."
                )
                out.append(f"# TYPE {h.name}_slowest gauge")
                out.append(
                    f'{h.name}_slowest{{trace_id="{trace_id}"}} {value:g}'
                )

        def labeled_histogram(h: LabeledHistogram) -> None:
            out.append(f"# HELP {h.name} {h.help}")
            out.append(f"# TYPE {h.name} histogram")
            for labels, sub in h.series():
                pairs = ",".join(
                    f'{k}="{v}"' for k, v in zip(h.label_names, labels)
                )
                cumulative = 0
                for i, upper in enumerate(sub.bounds):
                    cumulative += sub.counts[i]
                    out.append(
                        f'{h.name}_bucket{{{pairs},le="{upper:g}"}} {cumulative}'
                    )
                cumulative += sub.counts[-1]
                out.append(f'{h.name}_bucket{{{pairs},le="+Inf"}} {cumulative}')
                out.append(f"{h.name}_sum{{{pairs}}} {sub.total:g}")
                out.append(f"{h.name}_count{{{pairs}}} {sub.count}")

        counter(self.requests_total)
        histogram(self.request_latency_s)
        histogram(self.batch_size)
        labeled_histogram(self.stage_latency_s)
        counter(self.batches_total)
        counter(self.packed_batches_total)
        labeled_gauge(self.lane_packing_width)
        gauge(self.queue_depth)
        counter(self.shed_total)
        counter(self.timeout_total)
        counter(self.spot_checks_total)
        counter(self.engine_jobs)
        counter(self.explore_points_total)
        out.append("# HELP repro_uptime_seconds Seconds since server start.")
        out.append("# TYPE repro_uptime_seconds gauge")
        out.append(f"repro_uptime_seconds {self.uptime_s:.3f}")
        out.append(
            "# HELP repro_engine_hit_rate Cache/memo fraction of engine jobs."
        )
        out.append("# TYPE repro_engine_hit_rate gauge")
        out.append(f"repro_engine_hit_rate {self.engine_hit_rate():.4f}")
        return "\n".join(out) + "\n"


def _finite(x: float) -> bool:  # pragma: no cover - helper for callers
    return math.isfinite(x)
