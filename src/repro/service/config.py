"""Service configuration: every serving knob in one validated dataclass.

The batching/admission/timeout knobs all live here so the CLI, the
tests and the benchmarks configure the server the same way.  Each knob
has a documented default, an environment-variable override
(``REPRO_SERVE_<KNOB>``), and a validation error that names the
offending knob and its environment variable.

Precedence: explicit keyword overrides (the CLI flags) beat environment
variables, which beat the defaults below.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Any, Optional

#: Prefix of every serving environment variable.
ENV_PREFIX = "REPRO_SERVE_"


def _env_name(knob: str) -> str:
    return ENV_PREFIX + knob.upper()


def _parse_bool(raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {raw!r}")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one ``repro serve`` instance.

    Attributes
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (the server
        prints the resolved one on startup, which the CI smoke and the
        benchmarks parse).
    max_batch:
        Largest number of FP op requests coalesced into one vectorized
        call.  ``1`` degenerates to sequential per-request dispatch —
        the self-relative baseline the service benchmark compares
        against.
    linger_ms:
        How long a non-full batch waits for companions before it is
        flushed.  ``0`` flushes immediately (whatever is queued when the
        lane worker wakes still shares a batch).
    queue_depth:
        Admission bound: maximum requests in flight (queued + executing)
        before the server sheds load with ``429 Retry-After``.
    request_timeout_s:
        Per-request deadline for the FP op endpoints; expiring requests
        answer ``504``.
    sweep_timeout_s:
        Deadline for the slow characterisation endpoints (``/v1/unit``,
        ``/v1/experiment/*``), which may run multi-second design-space
        sweeps on a cold cache.
    drain_timeout_s:
        On SIGTERM, how long to wait for admitted requests to finish
        before exiting anyway.
    spot_check:
        When True every executed batch replays one sampled element
        through the scalar datapath and fails the batch on any bit or
        flag mismatch — an always-on integrity guard whose cost is
        amortized across the batch.
    cache_dir:
        Persistent result cache for the experiment/unit endpoints
        (``REPRO_SERVE_CACHE_DIR``, falling back to ``$REPRO_CACHE_DIR``
        so the server shares the CLI's cache).
    trace_sample:
        Head-sampling probability for request tracing in [0, 1].  The
        default 1.0 traces everything (the bench gate holds the cost to
        within 10% of tracing disabled); 0 disables span recording but
        still mints and echoes trace IDs.
    trace_buffer:
        Capacity of the finished-trace ring buffer behind
        ``/v1/trace/{id}`` — oldest traces are evicted first, so memory
        never grows with uptime.
    log_json:
        When True, emit NDJSON structured logs to stderr: one line per
        span (trace ID, lane, duration) plus one per trace.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 64
    linger_ms: float = 2.0
    queue_depth: int = 256
    request_timeout_s: float = 10.0
    sweep_timeout_s: float = 120.0
    drain_timeout_s: float = 5.0
    spot_check: bool = True
    cache_dir: Optional[str] = None
    trace_sample: float = 1.0
    trace_buffer: int = 512
    log_json: bool = False

    def __post_init__(self) -> None:
        self._require(self.port >= 0, "port", "must be >= 0 (0 = ephemeral)", self.port)
        self._require(self.max_batch >= 1, "max_batch", "must be >= 1", self.max_batch)
        self._require(self.linger_ms >= 0, "linger_ms", "must be >= 0", self.linger_ms)
        self._require(
            self.queue_depth >= 1, "queue_depth", "must be >= 1", self.queue_depth
        )
        self._require(
            self.request_timeout_s > 0,
            "request_timeout_s",
            "must be > 0",
            self.request_timeout_s,
        )
        self._require(
            self.sweep_timeout_s > 0,
            "sweep_timeout_s",
            "must be > 0",
            self.sweep_timeout_s,
        )
        self._require(
            self.drain_timeout_s >= 0,
            "drain_timeout_s",
            "must be >= 0",
            self.drain_timeout_s,
        )
        self._require(
            0.0 <= self.trace_sample <= 1.0,
            "trace_sample",
            "must be in [0, 1]",
            self.trace_sample,
        )
        self._require(
            self.trace_buffer >= 1,
            "trace_buffer",
            "must be >= 1",
            self.trace_buffer,
        )

    @staticmethod
    def _require(ok: bool, knob: str, rule: str, got: Any) -> None:
        if not ok:
            raise ValueError(
                f"{knob} ({_env_name(knob)}) {rule}, got {got!r}"
            )

    @property
    def linger_s(self) -> float:
        return self.linger_ms / 1000.0

    @classmethod
    def from_env(cls, environ: Optional[dict] = None, **overrides: Any) -> "ServiceConfig":
        """Build a config from the environment plus explicit overrides.

        ``overrides`` entries whose value is ``None`` are ignored, so CLI
        code can pass every flag unconditionally and let unset flags fall
        through to the environment/defaults.  Malformed environment
        values raise a :class:`ValueError` naming the variable.
        """
        env = os.environ if environ is None else environ
        values: dict[str, Any] = {}
        for f in fields(cls):
            raw = env.get(_env_name(f.name))
            if raw is None:
                continue
            try:
                if f.name in ("host", "cache_dir"):
                    values[f.name] = raw
                elif f.name in ("spot_check", "log_json"):
                    values[f.name] = _parse_bool(raw)
                elif f.name in ("port", "max_batch", "queue_depth", "trace_buffer"):
                    values[f.name] = int(raw)
                else:
                    values[f.name] = float(raw)
            except ValueError as exc:
                raise ValueError(
                    f"invalid {_env_name(f.name)}={raw!r} for knob "
                    f"{f.name}: {exc}"
                ) from exc
        if "cache_dir" not in values:
            fallback = env.get("REPRO_CACHE_DIR")
            if fallback:
                values["cache_dir"] = fallback
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)
