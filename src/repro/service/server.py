"""The asyncio HTTP server: wiring, lifecycle, graceful drain.

:class:`ReproService` owns every serving component — admission
controller, micro-batcher, telemetry, the characterisation engine and
its worker threads — and exposes the request lifecycle as
:meth:`ReproService.dispatch_op` (admit → batch → vectorized execute →
scatter), which both the HTTP connection handler and the in-process
service benchmark drive.

Lifecycle: ``repro serve`` runs :func:`serve`, which installs
SIGTERM/SIGINT handlers and, on signal, performs a graceful drain:
stop accepting, answer new requests on live connections with ``503``,
wait up to ``drain_timeout_s`` for everything admitted to finish, then
exit 0.  The CI smoke job asserts exactly this contract.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from time import monotonic
from typing import Optional, Set

from repro import __version__
from repro.engine import Engine, ResultCache
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.obs.trace import Tracer
from repro.service.admission import (
    ADMIT_DRAINING,
    ADMIT_OK,
    AdmissionController,
)
from repro.service.batcher import BatchIntegrityError, MicroBatcher
from repro.service.config import ServiceConfig
from repro.service.handlers import Handlers, Reply, StreamReply, _error_reply
from repro.service.http import (
    LAST_CHUNK,
    ProtocolError,
    build_response,
    build_stream_head,
    encode_chunk,
    read_request,
)
from repro.service.telemetry import Telemetry


def route_label(path: str) -> str:
    """Low-cardinality route family for the request counter."""
    if path.startswith("/v1/op/"):
        return path  # op names are a closed set
    if path.startswith("/v1/experiment/"):
        return "/v1/experiment/*"
    if path.startswith("/v1/trace/"):
        return "/v1/trace/*"  # trace IDs are unbounded
    return path


class ReproService:
    """One configured server instance (not yet listening)."""

    def __init__(
        self, config: ServiceConfig, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.config = config
        self.telemetry = telemetry or Telemetry(version=__version__)
        self.admission = AdmissionController(config.queue_depth, self.telemetry)
        #: Single-threaded pool for batch execution: vectorized calls
        #: run off the event loop so accept/parse continues during a
        #: 300µs+ wide-format batch.
        self.compute_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-batch"
        )
        #: Separate single thread for multi-second characterisation
        #: sweeps, so they can never starve op batches.
        self.sweep_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-sweep"
        )
        self.batcher = MicroBatcher(config, self.telemetry, self.compute_pool)
        cache = ResultCache(config.cache_dir) if config.cache_dir else None
        self.engine = Engine(cache=cache)
        # Stage latencies fold into telemetry at the point each stage
        # is recorded (admission folds its wait, the batcher folds
        # linger per member and dispatch/scatter as one weighted
        # observation per flush) — there is no trace-finish pass over
        # the span list, which keeps tracing overhead flat.
        self.tracer = Tracer(
            sample=config.trace_sample,
            capacity=config.trace_buffer,
            log_stream=sys.stderr if config.log_json else None,
        )
        self.handlers = Handlers(self)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # the request lifecycle (also driven directly by the benchmark)
    # ------------------------------------------------------------------ #
    async def dispatch_op(
        self,
        op: str,
        fmt: FPFormat,
        mode: RoundingMode,
        *operands: int,
        trace=None,
    ) -> Reply:
        """admit → batch → vectorized execute → scatter → reply.

        ``trace`` is the request's span sink; callers without one (the
        in-process benchmark) get a tracer-owned trace so the bench
        path measures exactly what serving measures.
        """
        own_trace = trace is None
        if own_trace:
            trace = self.tracer.start(route=f"/v1/op/{op}")
        t0 = monotonic()
        # record=False: for admitted requests the batcher synthesizes
        # the admission.wait span at flush time; rejections still
        # record theirs here (their trace must say why).
        verdict = self.admission.admit(trace, record=False)
        if verdict is not ADMIT_OK:
            if verdict is ADMIT_DRAINING:
                reply = _error_reply(503, "server is draining")
            else:
                reply = _error_reply(
                    429,
                    "queue full; retry later",
                    (("Retry-After", str(self.admission.retry_after_s)),),
                )
            if own_trace:
                self.tracer.finish(trace, status=reply[0])
            return reply
        try:
            bits, flags = await asyncio.wait_for(
                self.batcher.submit(op, fmt, mode, *operands, trace=trace),
                self.config.request_timeout_s,
            )
            body = b'{"bits":"0x%x","flags":%d}' % (bits, flags)
            reply = (200, body, "application/json", ())
        except asyncio.TimeoutError:
            self.telemetry.timeout_total.inc()
            reply = _error_reply(
                504,
                f"request missed its {self.config.request_timeout_s}s deadline",
            )
        except BatchIntegrityError as exc:
            reply = _error_reply(500, f"batch integrity check failed: {exc}")
        finally:
            self.admission.release()
        self.telemetry.request_latency_s.observe(
            monotonic() - t0, trace_id=trace.trace_id
        )
        if own_trace:
            self.tracer.finish(trace, status=reply[0])
        return reply

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        build_response(
                            exc.status,
                            b'{"error":"protocol"}',
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                route = route_label(request.path)
                trace = self.tracer.start(
                    request.headers.get("x-repro-trace-id"), route=route
                )
                request.trace = trace
                reply = await self._safe_handle(request)
                if isinstance(reply, StreamReply):
                    done = await self._write_stream(
                        reply, request, route, trace, writer
                    )
                    if not done:
                        break
                    continue
                status, body, content_type, extra = reply
                keep_alive = request.keep_alive and not self._stopping
                writer.write(
                    build_response(
                        status,
                        body,
                        content_type,
                        # The trace ID is echoed on every response —
                        # sampled or not — so callers can always
                        # correlate, and sampled ones can fetch the
                        # span tree from /v1/trace/{id}.
                        extra + (("X-Repro-Trace-Id", trace.trace_id),),
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                self.tracer.finish(trace, status=status)
                self.telemetry.requests_total.inc((route, str(status)))
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown cancelled us mid-read; fall through to close
        finally:
            writer.close()

    async def _write_stream(
        self, reply: StreamReply, request, route: str, trace, writer
    ) -> bool:
        """Write one chunked streaming response; True to keep the
        connection alive for the next request.

        Each yielded NDJSON line becomes its own chunk with an explicit
        drain, so a slow client exerts backpressure on the producer
        instead of ballooning the write buffer, and a disconnect
        surfaces here as a connection error.  The generator is always
        closed — its ``finally`` blocks (admission release) run whether
        the stream completed, the client hung up mid-body, or shutdown
        cancelled us.
        """
        keep_alive = request.keep_alive and not self._stopping
        writer.write(
            build_stream_head(
                reply.status,
                reply.content_type,
                reply.extra + (("X-Repro-Trace-Id", trace.trace_id),),
                keep_alive=keep_alive,
            )
        )
        completed = False
        try:
            async for chunk in reply.chunks:
                writer.write(encode_chunk(chunk))
                await writer.drain()
            writer.write(LAST_CHUNK)
            await writer.drain()
            completed = True
        finally:
            await reply.chunks.aclose()
            self.tracer.finish(trace, status=reply.status)
            self.telemetry.requests_total.inc((route, str(reply.status)))
        return completed and keep_alive

    async def _safe_handle(self, request) -> Reply:
        try:
            return await self.handlers.handle(request)
        except ProtocolError as exc:
            extra = (
                (("Retry-After", str(self.admission.retry_after_s)),)
                if exc.status == 429
                else ()
            )
            return _error_reply(exc.status, str(exc), extra)
        except asyncio.TimeoutError:
            self.telemetry.timeout_total.inc()
            return _error_reply(504, "request deadline exceeded")
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            return _error_reply(500, f"internal error: {exc}")

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    async def shutdown(self) -> bool:
        """Graceful drain; returns True when no work was abandoned."""
        self._stopping = True
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.admission.wait_drained(self.config.drain_timeout_s)
        # Connections finish writing their final responses and close
        # (keep-alive is withdrawn once stopping); give them a beat, then
        # cancel idle ones blocked in read.
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=0.5)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.batcher.close()
        self.compute_pool.shutdown(wait=False)
        self.sweep_pool.shutdown(wait=False)
        return drained


async def _serve_async(config: ServiceConfig) -> int:
    service = ReproService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    # Parsed by the CI smoke job and the benchmarks: keep the format.
    print(
        f"repro-serve {__version__} listening on "
        f"http://{config.host}:{service.port}",
        flush=True,
    )
    await stop.wait()
    print("repro-serve: draining", file=sys.stderr, flush=True)
    drained = await service.shutdown()
    if not drained:
        print(
            "repro-serve: drain timeout; abandoned in-flight work",
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


def serve(config: ServiceConfig) -> int:
    """Blocking entry point for ``repro serve``."""
    return asyncio.run(_serve_async(config))


class ServiceThread:
    """A server running on a background thread (tests and benchmarks).

    Starts the service on its own event loop, exposes the bound port,
    and performs the same graceful shutdown as the signal path on
    :meth:`stop`.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[ReproService] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("service thread failed") from self._error
        return self

    async def _main(self) -> None:
        self.service = ReproService(self.config)
        try:
            await self.service.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = self.service.port
        self._ready.set()
        await self._stop.wait()
        await self.service.shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
