"""Endpoint implementations and routing.

Request lifecycle: **accept → admit → batch → vectorized execute →
scatter** (see ``docs/ARCHITECTURE.md``).  The handlers split into two
tiers:

* **hot** — ``POST /v1/op/{add,sub,mul,div,sqrt,fma}``: parse, admit,
  hand to the micro-batcher, await the scattered ``(bits, flags)``,
  respond.  These are the requests the batching layer exists for.
  Operand keys follow the op's arity: ``a`` alone for the unary sqrt,
  ``a``/``b`` for the binary ops, ``a``/``b``/``c`` for fma.
* **slow** — ``GET /v1/unit``, ``GET /v1/kernel/matmul``,
  ``GET /v1/experiment/{name}``: unit characterisation sweeps, analytic
  kernel schedules and full experiment artifacts.  Sweeps and
  experiments evaluate on a dedicated thread through the server's
  :class:`repro.engine.Engine`, so repeat queries are in-process memo or
  disk-cache hits; results are serialized by one lock (the engine is
  single-threaded by design).

Plus the operational pair: ``GET /healthz`` (JSON liveness + version)
and ``GET /metrics`` (Prometheus text exposition).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import monotonic
from typing import AsyncIterator, Dict, Optional, Tuple

from repro.engine.metrics import JobRecord
from repro.experiments import REGISTRY, experiment_job
from repro.explore import catalog as explore_catalog
from repro.explore.recommend import (
    QueryError,
    UnsatisfiableError,
    payload_bytes,
    recommend as recommend_query,
    _resolve_formats,
    _resolve_kinds,
)
from repro.obs.trace import NULL_TRACE
from repro.service.admission import ADMIT_DRAINING, ADMIT_OK
from repro.fp.format import ALL_FORMATS, FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import check_vectorized_format
from repro.kernels.batched import array_cycles, hazard_count
from repro.service.batcher import OP_ARITY, OPS
from repro.service.http import (
    ProtocolError,
    Request,
    build_response,
    error_body,
    json_body,
)
from repro.units.explorer import UnitKind, explore

#: (status, body, content-type, extra headers) — what a handler returns.
Reply = Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]


@dataclass
class StreamReply:
    """A chunked streaming response: the server writes one chunk per
    yielded bytes value and the terminating zero-length chunk after the
    iterator is exhausted.  Produced by ``/v1/explore``; the generator
    owns the request's admission slot and releases it in its
    ``finally``, which the server guarantees runs by always closing the
    iterator."""

    status: int
    content_type: str
    chunks: AsyncIterator[bytes]
    extra: Tuple[Tuple[str, str], ...] = field(default=())

_FORMATS_BY_NAME: Dict[str, FPFormat] = {f.name: f for f in ALL_FORMATS}
_MODES = {m.value: m for m in RoundingMode}
_CUSTOM_FORMATS: Dict[Tuple[int, int], FPFormat] = {}
#: Request-body operand keys in positional order; an op of arity k
#: takes exactly the first k of these.
_OPERAND_KEYS = ("a", "b", "c")


def resolve_format(spec: object) -> FPFormat:
    """A format from its request spelling: name or explicit geometry."""
    if isinstance(spec, str):
        fmt = _FORMATS_BY_NAME.get(spec)
        if fmt is None:
            raise ProtocolError(
                400,
                f"unknown format {spec!r} (named formats: "
                f"{', '.join(_FORMATS_BY_NAME)}; or pass "
                '{"exp_bits": E, "man_bits": M})',
            )
        return fmt
    if isinstance(spec, dict):
        try:
            key = (int(spec["exp_bits"]), int(spec["man_bits"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                400, "custom format needs integer exp_bits and man_bits"
            ) from exc
        fmt = _CUSTOM_FORMATS.get(key)
        if fmt is None:
            try:
                fmt = FPFormat(*key)
                check_vectorized_format(fmt)
            except ValueError as exc:
                raise ProtocolError(400, str(exc)) from exc
            _CUSTOM_FORMATS[key] = fmt
        return fmt
    raise ProtocolError(400, "format must be a name or a geometry object")


def resolve_mode(spec: object) -> RoundingMode:
    mode = _MODES.get(spec if isinstance(spec, str) else "")
    if mode is None:
        raise ProtocolError(
            400, f"unknown rounding mode {spec!r} (known: {', '.join(_MODES)})"
        )
    return mode


def parse_word(fmt: FPFormat, value: object, name: str) -> int:
    """An operand word from its request spelling: int or 0x-string."""
    if isinstance(value, bool):
        raise ProtocolError(400, f"operand {name!r} must be an integer word")
    if isinstance(value, int):
        word = value
    elif isinstance(value, str):
        try:
            word = int(value, 0)
        except ValueError as exc:
            raise ProtocolError(
                400, f"operand {name!r} is not a valid integer: {value!r}"
            ) from exc
    else:
        raise ProtocolError(400, f"operand {name!r} must be an integer word")
    if not 0 <= word <= fmt.word_mask:
        raise ProtocolError(
            400,
            f"operand {name!r} ({word:#x}) outside {fmt.name} "
            f"({fmt.width} bits)",
        )
    return word


def _json_reply(status: int, payload: dict, extra=()) -> Reply:
    return status, json_body(payload), "application/json", tuple(extra)


def _error_reply(status: int, message: str, extra=()) -> Reply:
    return status, error_body(status, message), "application/json", tuple(extra)


class Handlers:
    """Routing table bound to one server instance."""

    def __init__(self, service) -> None:
        self.service = service
        self._sweep_lock = asyncio.Lock()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def handle(self, request: Request) -> Reply:
        path = request.path
        if path.startswith("/v1/op/"):
            if request.method != "POST":
                return _error_reply(405, "op endpoints are POST")
            return await self.handle_op(path[len("/v1/op/"):], request)
        if path == "/healthz":
            return self.handle_healthz(request)
        if path == "/metrics":
            return self.handle_metrics(request)
        if path == "/v1/batch-stats":
            if request.method != "GET":
                return _error_reply(405, "/v1/batch-stats is GET")
            return self.handle_batch_stats(request)
        if path.startswith("/v1/trace/"):
            if request.method != "GET":
                return _error_reply(405, "trace endpoints are GET")
            return self.handle_trace(path[len("/v1/trace/"):])
        if path == "/v1/debug/traces":
            if request.method != "GET":
                return _error_reply(405, "/v1/debug/traces is GET")
            return self.handle_debug_traces(request)
        if path == "/v1/unit":
            if request.method != "GET":
                return _error_reply(405, "/v1/unit is GET")
            return await self.handle_unit(request)
        if path == "/v1/explore":
            if request.method != "GET":
                return _error_reply(405, "/v1/explore is GET")
            return await self.handle_explore(request)
        if path == "/v1/recommend":
            if request.method != "POST":
                return _error_reply(405, "/v1/recommend is POST")
            return await self.handle_recommend(request)
        if path == "/v1/kernel/matmul":
            if request.method != "GET":
                return _error_reply(405, "/v1/kernel/matmul is GET")
            return self.handle_kernel_matmul(request)
        if path.startswith("/v1/experiment/"):
            if request.method != "GET":
                return _error_reply(405, "experiment endpoints are GET")
            return await self.handle_experiment(
                path[len("/v1/experiment/"):], request
            )
        return _error_reply(404, f"no route for {path}")

    # ------------------------------------------------------------------ #
    # hot path: FP ops
    # ------------------------------------------------------------------ #
    async def handle_op(self, op: str, request: Request) -> Reply:
        if op not in OPS:
            return _error_reply(
                404, f"unknown op {op!r} (known: {', '.join(OPS)})"
            )
        doc = request.json()
        fmt = resolve_format(doc.get("format", "fp32"))
        mode = resolve_mode(doc.get("mode", RoundingMode.NEAREST_EVEN.value))
        # Arity comes from the op table: sqrt is unary ('a' only), fma
        # ternary ('a','b','c').  Reject both missing *and* surplus
        # operands precisely — a unary op posted with 'b' is a caller
        # bug the error message should name, not a silent ignore.
        arity = OP_ARITY[op]
        keys = _OPERAND_KEYS[:arity]
        wants = " and ".join(f"'{k}'" for k in keys)
        missing = [k for k in keys if k not in doc]
        if missing:
            raise ProtocolError(
                400,
                f"op {op!r} takes {arity} operand"
                f"{'s' if arity != 1 else ''} ({wants}); missing "
                + ", ".join(f"'{k}'" for k in missing),
            )
        surplus = [k for k in _OPERAND_KEYS if k in doc and k not in keys]
        if surplus:
            raise ProtocolError(
                400,
                f"op {op!r} takes {arity} operand"
                f"{'s' if arity != 1 else ''} ({wants}); unexpected "
                + ", ".join(f"'{k}'" for k in surplus),
            )
        operands = tuple(parse_word(fmt, doc[k], k) for k in keys)
        return await self.service.dispatch_op(
            op, fmt, mode, *operands, trace=request.trace
        )

    # ------------------------------------------------------------------ #
    # operational endpoints
    # ------------------------------------------------------------------ #
    def handle_healthz(self, request: Request) -> Reply:
        service = self.service
        payload = {
            "status": "draining" if service.admission.draining else "ok",
            **service.telemetry.snapshot(),
        }
        return _json_reply(200, payload)

    def handle_metrics(self, request: Request) -> Reply:
        text = self.service.telemetry.render().encode()
        return 200, text, "text/plain; version=0.0.4", ()

    def handle_batch_stats(self, request: Request) -> Reply:
        """Per-lane batching view: one row per executed (op, format,
        mode) lane with its batch count and sub-lane packing degree."""
        telemetry = self.service.telemetry
        lanes = []
        for labels, batches in telemetry.batches_total.series():
            op, fmt_name, mode = labels
            lanes.append(
                {
                    "op": op,
                    "format": fmt_name,
                    "mode": mode,
                    "batches": batches,
                    "packed_batches": telemetry.packed_batches_total.value(
                        labels
                    ),
                    "packing_width": int(
                        telemetry.lane_packing_width.value(labels, 1)
                    ),
                }
            )
        return _json_reply(
            200,
            {
                "lanes": lanes,
                "batches": telemetry.batches_total.total,
                "packed_batches": telemetry.packed_batches_total.total,
                "mean_batch_size": round(telemetry.batch_size.mean, 3),
            },
        )

    # ------------------------------------------------------------------ #
    # tracing endpoints
    # ------------------------------------------------------------------ #
    def handle_trace(self, trace_id: str) -> Reply:
        """One finished trace's span tree, by ID."""
        doc = self.service.tracer.get(trace_id)
        if doc is None:
            return _error_reply(
                404,
                f"unknown trace {trace_id!r} (never seen, sampled out, "
                "or evicted from the ring buffer)",
            )
        return _json_reply(200, doc)

    def handle_debug_traces(self, request: Request) -> Reply:
        """Tracer stats plus the N slowest buffered traces.

        ``?slowest=N`` bounds the list (default 10);
        ``?export=chrome`` returns those traces as a Chrome
        trace-event JSON object instead (load in ``chrome://tracing``
        or Perfetto).
        """
        from repro.obs.chrome import chrome_trace

        query = request.query
        try:
            n = int(query.get("slowest", "10"))
        except ValueError:
            return _error_reply(400, "slowest must be an integer")
        if n < 0:
            return _error_reply(400, "slowest must be >= 0")
        traces = self.service.tracer.slowest(n)
        if query.get("export") == "chrome":
            return _json_reply(
                200, chrome_trace(t.to_dict() for t in traces)
            )
        return _json_reply(
            200,
            {
                **self.service.tracer.stats(),
                "traces": [t.summary() for t in traces],
            },
        )

    # ------------------------------------------------------------------ #
    # slow path: characterisation and experiments
    # ------------------------------------------------------------------ #
    async def handle_unit(self, request: Request) -> Reply:
        query = request.query
        kinds = {k.value: k for k in UnitKind}
        kind = kinds.get(query.get("kind", "adder"))
        if kind is None:
            return _error_reply(
                400, f"unknown unit kind (known: {', '.join(kinds)})"
            )
        try:
            fmt = resolve_format(query.get("format", "fp32"))
        except ProtocolError as exc:
            return _error_reply(exc.status, str(exc))
        space, _ = await self._run_sweep(
            lambda: explore(fmt, kind, engine=self.service.engine),
            request.trace,
        )
        points = [
            {
                "label": point.label,
                "stages": point.report.stages,
                "slices": point.report.slices,
                "luts": point.report.luts,
                "flipflops": point.report.flipflops,
                "mult18": point.report.mult18,
                "clock_mhz": round(point.report.clock_mhz, 2),
                "mhz_per_slice": round(point.report.freq_per_area, 4),
                "latency_ns": round(point.report.latency_ns, 2),
            }
            for point in space.table_rows()
        ]
        return _json_reply(
            200,
            {
                "kind": kind.value,
                "format": fmt.name,
                "peak_clock_mhz": round(space.peak_clock_mhz, 2),
                "points": points,
            },
        )

    def handle_kernel_matmul(self, request: Request) -> Reply:
        query = request.query

        def _int(name: str, default: int, floor: int) -> int:
            raw = query.get(name)
            if raw is None:
                return default
            try:
                value = int(raw, 0)
            except ValueError as exc:
                raise ProtocolError(400, f"{name} must be an integer") from exc
            if value < floor:
                raise ProtocolError(400, f"{name} must be >= {floor}")
            return value

        n = _int("n", 64, 1)
        mul_latency = _int("mul_latency", 3, 1)
        add_latency = _int("add_latency", 5, 1)
        padded = query.get("pad", "1") not in ("0", "false", "no")
        pl = mul_latency + add_latency
        spacing = max(n, pl) if padded else n
        cycles = array_cycles(n, pl, spacing)
        issued = n * n * n
        return _json_reply(
            200,
            {
                "n": n,
                "pipeline_latency": pl,
                "pad_schedule": padded,
                "hazard_spacing": spacing,
                "cycles": cycles,
                "issued_macs": issued,
                "hazards": hazard_count(n, pl, spacing),
                "pe_utilization": round(issued / (n * cycles), 6),
            },
        )

    async def handle_experiment(
        self, name: str, request: Optional[Request] = None
    ) -> Reply:
        if name not in REGISTRY:
            return _error_reply(
                404,
                f"unknown experiment {name!r} (known: {', '.join(REGISTRY)})",
            )
        engine = self.service.engine
        result, records = await self._run_sweep(
            lambda: engine.evaluate(experiment_job(name)),
            None if request is None else request.trace,
        )
        source = records[-1].status if records else "memo"
        return _json_reply(
            200,
            {
                "name": name,
                "source": source,  # hit | memo | computed
                "rendered": str(result),
            },
        )

    # ------------------------------------------------------------------ #
    # exploration: streaming sweeps and constrained recommendation
    # ------------------------------------------------------------------ #
    async def handle_explore(self, request: Request):
        """``GET /v1/explore`` — chunked NDJSON stream of the unit grid.

        One ``{"type": "point", ...}`` line per implementation, written
        as each (kind, format) sweep lands on the engine (warm sweeps
        burst straight from cache; the ``source`` field says which), and
        one ``{"type": "frontier", ...}`` trailer naming the Pareto-
        optimal point IDs over the full metric table.
        """
        query = request.query
        try:
            kinds = _resolve_kinds(
                [k for k in query["kinds"].split(",") if k]
                if "kinds" in query else None
            )
            formats = _resolve_formats(
                [f for f in query["formats"].split(",") if f]
                if "formats" in query else None
            )
        except QueryError as exc:
            return _error_reply(400, str(exc))
        service = self.service
        trace = request.trace
        span_trace = trace if trace is not None else NULL_TRACE
        # The stream holds its admission slot for its whole lifetime:
        # admitted here (so shedding/draining answer with a proper
        # status before any body bytes), released by the generator.
        verdict = service.admission.admit(trace)
        if verdict is not ADMIT_OK:
            if verdict is ADMIT_DRAINING:
                raise ProtocolError(503, "server is draining")
            raise ProtocolError(429, "queue full; retry later")

        async def stream() -> AsyncIterator[bytes]:
            try:
                records = []
                for kind in kinds:
                    for fmt in formats:
                        t0 = monotonic()
                        space, recs = await self._run_sweep_admitted(
                            lambda k=kind, f=fmt: explore(
                                f, k, engine=service.engine
                            ),
                            trace,
                        )
                        source = recs[-1].status if recs else "memo"
                        span_trace.add(
                            "explore.sweep",
                            t0,
                            monotonic(),
                            tags={
                                "kind": kind.value,
                                "format": fmt.name,
                                "source": source,
                            },
                        )
                        for report in space.reports:
                            record = explore_catalog.unit_record(
                                kind, fmt, report
                            )
                            records.append(record)
                            line = {
                                "type": "point",
                                "source": source,
                                **explore_catalog.record_payload(record),
                            }
                            yield json_body(line) + b"\n"
                        service.telemetry.explore_points_total.inc(
                            n=len(space.reports)
                        )
                t0 = monotonic()
                front = explore_catalog.compute_frontier("units", records)
                span_trace.add(
                    "frontier.compute",
                    t0,
                    monotonic(),
                    tags={
                        "designs": len(records),
                        "frontier": len(front.frontier),
                    },
                )
                yield json_body(explore_catalog.frontier_payload(front)) + b"\n"
            finally:
                service.admission.release()

        return StreamReply(200, "application/x-ndjson", stream())

    async def handle_recommend(self, request: Request) -> Reply:
        """``POST /v1/recommend`` — the constrained optimum, as JSON.

        The body is a query object (space, objective, constraints,
        grid axes); the answer is byte-identical to ``repro recommend``
        and a direct :func:`repro.explore.recommend` call.  Malformed
        and unsatisfiable queries get 400s naming the offending bound.
        """
        doc = request.json()
        trace = request.trace
        span_trace = trace if trace is not None else NULL_TRACE
        engine = self.service.engine
        try:
            payload, records = await self._run_sweep(
                lambda: recommend_query(
                    doc, engine=engine, trace=span_trace
                ),
                trace,
            )
        except (QueryError, UnsatisfiableError) as exc:
            raise ProtocolError(400, str(exc)) from exc
        source = records[-1].status if records else "memo"
        return (
            200,
            payload_bytes(payload),
            "application/json",
            (("X-Repro-Source", source),),
        )

    async def _run_sweep(self, fn, trace=None):
        """Evaluate a sweep on the slow-path thread, engine-serialized.

        Sweeps occupy an admission slot like any other request — a
        drain waits for them, and a full queue sheds them — but are
        serialized on their own thread so they can never starve op
        batches.  Returns ``(result, new_records)`` — the engine
        :class:`~repro.engine.metrics.JobRecord` entries this evaluation
        added, already mirrored into the service telemetry so
        ``/metrics`` reports the characterisation cache hit rate.
        ``trace`` propagates to the engine, whose ``cache.lookup`` /
        ``execute`` spans land in the request's trace.
        """
        service = self.service
        verdict = service.admission.admit(trace)
        if verdict is not ADMIT_OK:
            if verdict is ADMIT_DRAINING:
                raise ProtocolError(503, "server is draining")
            raise ProtocolError(429, "queue full; retry later")
        try:
            return await self._run_sweep_admitted(fn, trace)
        finally:
            service.admission.release()

    async def _run_sweep_admitted(self, fn, trace=None):
        service = self.service
        async with self._sweep_lock:
            # The sweep lock also serializes the engine's active trace:
            # exactly one sweep evaluates at a time, so binding the
            # trace for the duration of this evaluation is race-free.
            def evaluate():
                with service.engine.tracing(trace):
                    return fn()

            before = len(service.engine.metrics.records)
            result = await asyncio.wait_for(
                asyncio.get_running_loop().run_in_executor(
                    service.sweep_pool, evaluate
                ),
                service.config.sweep_timeout_s,
            )
            records: list[JobRecord] = service.engine.metrics.records[before:]
            for record in records:
                service.telemetry.record_engine(record.status)
            return result, records
