"""Exception flags carried stage-to-stage through the datapaths.

The hardware detects exceptions at every pipeline stage and forwards them
with the data (paper §3: "At every stage exceptions are detected and
carried forward into the next stage").  :class:`FPFlags` is the software
equivalent of that sideband bundle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPFlags:
    """Sticky exception flags produced by one operation.

    Attributes
    ----------
    overflow:
        Result exceeded the largest finite magnitude; saturated to ±Inf.
    underflow:
        Non-zero exact result was flushed to zero (denormal-free system).
    inexact:
        Rounding discarded non-zero bits.
    invalid:
        NaN operand, Inf − Inf, 0 × Inf, 0/0 or Inf/Inf.
    zero:
        The result is (a signed) zero — the DONE-stage zero detect.
    div_by_zero:
        Finite non-zero dividend divided by zero (extension: the divider
        unit; always False for the paper's adder/multiplier).
    """

    overflow: bool = False
    underflow: bool = False
    inexact: bool = False
    invalid: bool = False
    zero: bool = False
    div_by_zero: bool = False

    def __or__(self, other: "FPFlags") -> "FPFlags":
        """Merge two flag bundles (sticky OR), as an accumulator would."""
        if not isinstance(other, FPFlags):
            return NotImplemented
        return FPFlags(
            overflow=self.overflow or other.overflow,
            underflow=self.underflow or other.underflow,
            inexact=self.inexact or other.inexact,
            invalid=self.invalid or other.invalid,
            zero=self.zero or other.zero,
            div_by_zero=self.div_by_zero or other.div_by_zero,
        )

    @property
    def any_exception(self) -> bool:
        """True when any non-informational flag is raised."""
        return (
            self.overflow
            or self.underflow
            or self.inexact
            or self.invalid
            or self.div_by_zero
        )

    def to_bits(self) -> int:
        """Pack into the 6-bit sideband word used by the RTL models."""
        return (
            (int(self.div_by_zero) << 5)
            | (int(self.overflow) << 4)
            | (int(self.underflow) << 3)
            | (int(self.inexact) << 2)
            | (int(self.invalid) << 1)
            | int(self.zero)
        )

    @classmethod
    def from_bits(cls, bits: int) -> "FPFlags":
        """Unpack the 6-bit sideband word."""
        if not 0 <= bits < 64:
            raise ValueError(f"flag word out of range: {bits}")
        return cls(
            div_by_zero=bool(bits & 0b100000),
            overflow=bool(bits & 0b010000),
            underflow=bool(bits & 0b001000),
            inexact=bool(bits & 0b000100),
            invalid=bool(bits & 0b000010),
            zero=bool(bits & 0b000001),
        )


#: Convenience constant: no exceptions.
CLEAR = FPFlags()
