"""Parameterized floating-point format descriptions.

A format is a sign bit, ``exp_bits`` biased-exponent bits and ``man_bits``
stored fraction bits (the hidden leading one is *not* stored).  The paper
studies 32-, 48- and 64-bit precisions; 32 and 64 follow IEEE 754 single
and double layouts, while the 48-bit format uses a double-width exponent
(11 bits) with a 36-bit fraction, following the Belanovic–Leeser
parameterized-library convention the paper's Table 4 comparison is drawn
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FPFormat:
    """A floating-point bit layout.

    Parameters
    ----------
    exp_bits:
        Width of the biased exponent field ``e``.
    man_bits:
        Width of the stored fraction field ``m`` (excluding the hidden bit).
    name:
        Optional human-readable name; defaults to ``fp<width>``.

    The encoding is the usual ``[sign | exponent | fraction]`` packing with
    bias ``2**(exp_bits-1) - 1``.  Because the datapaths flush denormals,
    a biased exponent of zero always denotes (signed) zero.
    """

    exp_bits: int
    man_bits: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.exp_bits < 2:
            raise ValueError(f"exp_bits must be >= 2, got {self.exp_bits}")
        if self.man_bits < 1:
            raise ValueError(f"man_bits must be >= 1, got {self.man_bits}")
        if not self.name:
            object.__setattr__(self, "name", f"fp{self.width}")

    # ------------------------------------------------------------------ #
    # Derived geometry
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Total stored width in bits (sign + exponent + fraction)."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def sig_bits(self) -> int:
        """Significand width including the hidden bit."""
        return self.man_bits + 1

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def exp_max(self) -> int:
        """Largest biased exponent encoding (reserved for Inf/NaN)."""
        return (1 << self.exp_bits) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        return self.exp_max - 1 - self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number.

        Biased exponent 0 denotes zero in this denormal-free system, so the
        smallest normal uses biased exponent 1.
        """
        return 1 - self.bias

    # ------------------------------------------------------------------ #
    # Field masks and extraction
    # ------------------------------------------------------------------ #
    @property
    def man_mask(self) -> int:
        return (1 << self.man_bits) - 1

    @property
    def exp_mask(self) -> int:
        return (1 << self.exp_bits) - 1

    @property
    def word_mask(self) -> int:
        return (1 << self.width) - 1

    def pack(self, sign: int, exp: int, man: int) -> int:
        """Pack fields into a word; fields must already be in range."""
        if sign not in (0, 1):
            raise ValueError(f"sign must be 0 or 1, got {sign}")
        if not 0 <= exp <= self.exp_mask:
            raise ValueError(f"biased exponent {exp} out of range for {self.name}")
        if not 0 <= man <= self.man_mask:
            raise ValueError(f"fraction {man} out of range for {self.name}")
        return (sign << (self.width - 1)) | (exp << self.man_bits) | man

    def unpack(self, bits: int) -> tuple[int, int, int]:
        """Split a word into ``(sign, biased exponent, fraction)``."""
        if not 0 <= bits <= self.word_mask:
            raise ValueError(f"bit pattern {bits:#x} out of range for {self.name}")
        sign = (bits >> (self.width - 1)) & 1
        exp = (bits >> self.man_bits) & self.exp_mask
        man = bits & self.man_mask
        return sign, exp, man

    # ------------------------------------------------------------------ #
    # Canonical encodings
    # ------------------------------------------------------------------ #
    def zero(self, sign: int = 0) -> int:
        return self.pack(sign, 0, 0)

    def inf(self, sign: int = 0) -> int:
        return self.pack(sign, self.exp_max, 0)

    def nan(self) -> int:
        """Canonical quiet NaN (sign 0, all-ones exponent, MSB of fraction)."""
        return self.pack(0, self.exp_max, 1 << (self.man_bits - 1))

    def max_finite(self, sign: int = 0) -> int:
        return self.pack(sign, self.exp_max - 1, self.man_mask)

    def min_normal(self, sign: int = 0) -> int:
        return self.pack(sign, 1, 0)

    def one(self, sign: int = 0) -> int:
        return self.pack(sign, self.bias, 0)

    # ------------------------------------------------------------------ #
    # Classification of raw words
    # ------------------------------------------------------------------ #
    def is_zero(self, bits: int) -> bool:
        """True when the word denotes zero.

        The denormalizer treats biased exponent 0 as zero regardless of the
        fraction bits (denormals are flushed), mirroring the hardware's
        exponent-is-zero comparator.
        """
        _, exp, _ = self.unpack(bits)
        return exp == 0

    def is_inf(self, bits: int) -> bool:
        _, exp, man = self.unpack(bits)
        return exp == self.exp_max and man == 0

    def is_nan(self, bits: int) -> bool:
        _, exp, man = self.unpack(bits)
        return exp == self.exp_max and man != 0

    def is_finite(self, bits: int) -> bool:
        _, exp, _ = self.unpack(bits)
        return exp != self.exp_max

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(1+{self.exp_bits}+{self.man_bits})"


#: IEEE 754 half precision layout (4-way packable sub-lane format).
FP16 = FPFormat(exp_bits=5, man_bits=10, name="fp16")

#: bfloat16: fp32's exponent range with a 7-bit fraction (4-way packable).
BF16 = FPFormat(exp_bits=8, man_bits=7, name="bf16")

#: IEEE 754 single precision layout (paper's "32-bit").
FP32 = FPFormat(exp_bits=8, man_bits=23, name="fp32")

#: 48-bit format: 11-bit exponent, 36-bit fraction (paper's "48-bit").
FP48 = FPFormat(exp_bits=11, man_bits=36, name="fp48")

#: IEEE 754 double precision layout (paper's "64-bit").
FP64 = FPFormat(exp_bits=11, man_bits=52, name="fp64")

#: The three precisions studied in the paper, in presentation order.
PAPER_FORMATS: tuple[FPFormat, ...] = (FP32, FP48, FP64)

#: First-class small formats (beyond the paper): half precision and
#: bfloat16, the sub-lane formats of the packed SIMD-within-a-lane
#: datapaths (:mod:`repro.fp.packing`).
SMALL_FORMATS: tuple[FPFormat, ...] = (FP16, BF16)

#: Every named format the verification campaigns and the service know.
ALL_FORMATS: tuple[FPFormat, ...] = SMALL_FORMATS + PAPER_FORMATS
