"""Floating-point square root datapath (extension beyond the paper).

Square root completes the classic FP library quartet.  Like the divider
it is a digit-recurrence unit — one result bit per row, quadratic area —
and it shares the denormalize / normalize / round infrastructure:

Stage 1: denormalizer + exponent halving (an even/odd select: the
    significand is pre-doubled when the unbiased exponent is odd so the
    remaining exponent divides exactly by two).
Stage 2: the square-root recurrence — one row per result bit, each a
    short subtract/compare against the partial result.
Stage 3: rounding (the result of a square root of a normal number is
    always in [1, 2), so no normalization shift is ever needed; overflow
    and underflow are impossible).

The recurrence remainder feeds the sticky bit, so both rounding modes
are exact; moreover a square root is never an exact tie (an odd
``q^2 = N`` parity argument), which the tests exercise.

Negative non-zero operands raise ``invalid`` (NaN); ``sqrt(±0) = ±0``;
``sqrt(+Inf) = +Inf``.
"""

from __future__ import annotations

import math

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, round_significand
from repro.fp.subunits import denormalize

#: Guard bits produced beyond the significand (guard/round + sticky).
_EXTRA = 3


def _special_sqrt(fmt: FPFormat, a: int) -> tuple[int, FPFlags] | None:
    if fmt.is_nan(a):
        return fmt.nan(), FPFlags(invalid=True)
    sign, exp, _ = fmt.unpack(a)
    if exp == 0:  # signed zero passes through (IEEE)
        return fmt.zero(sign), FPFlags(zero=True)
    if sign:
        return fmt.nan(), FPFlags(invalid=True)
    if fmt.is_inf(a):
        return fmt.inf(0), FPFlags()
    return None


def fp_sqrt(
    fmt: FPFormat,
    a: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Square root of ``a``; returns ``(result bits, flags)``."""
    special = _special_sqrt(fmt, a)
    if special is not None:
        return special

    _, e, f = fmt.unpack(a)
    m = denormalize(fmt, e, f)

    # value = u * 2^E with u = m / 2^wm in [1, 2) and E = e - bias.  Make
    # the exponent even by pre-doubling the significand when E is odd:
    # sqrt(value) = sqrt(u * 2^p) * 2^((E - p) / 2).
    e_unbiased = e - fmt.bias
    parity = e_unbiased % 2
    m_adj = m << parity  # u * 2^p scaled by 2^wm, in [2^wm, 2^(wm+2))
    half_exp = (e_unbiased - parity) // 2

    # Scale so the integer square root carries sig_bits + _EXTRA bits:
    # q = sqrt(m_adj / 2^wm) * 2^t lies in [2^t, 2^(t+1)).
    t = fmt.man_bits + _EXTRA
    radicand = m_adj << (2 * t - fmt.man_bits)
    q = math.isqrt(radicand)
    remainder = radicand - q * q

    # q in [2^t, 2^(t+1)): significand plus guard/round; remainder -> sticky.
    grs = (q & 0b110) | (1 if (q & 1) or remainder else 0)
    sig, inexact = round_significand(q >> _EXTRA, grs, mode)
    exp_out = half_exp + fmt.bias
    if sig >> fmt.sig_bits:  # rounding carry (sqrt < 2 so at most once)
        sig >>= 1
        exp_out += 1

    # Normal inputs give exponents strictly inside the normal range.
    return fmt.pack(0, exp_out, sig & fmt.man_mask), FPFlags(inexact=inexact)


def sqrt_recurrence(radicand: int, result_bits: int) -> tuple[int, int]:
    """The hardware bit-serial square-root recurrence.

    Processes the radicand two bits per row, maintaining the invariant
    partial remainder; returns ``(q, remainder)`` identical to
    ``math.isqrt`` — the structural core uses this row form and the test
    suite pins the equivalence.
    """
    q = 0
    r = 0
    for i in reversed(range(result_bits)):
        two = (radicand >> (2 * i)) & 0b11
        r = (r << 2) | two
        trial = (q << 2) | 1
        if r >= trial:
            r -= trial
            q = (q << 1) | 1
        else:
            q <<= 1
    return q, r


class FPSqrt:
    """Combinational square root bound to a format and rounding mode."""

    def __init__(
        self,
        fmt: FPFormat,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.mode = mode

    def sqrt(self, a: int) -> tuple[int, FPFlags]:
        return fp_sqrt(self.fmt, a, self.mode)

    def __call__(self, a: int) -> tuple[int, FPFlags]:
        return self.sqrt(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPSqrt({self.fmt.name}, {self.mode.value})"
