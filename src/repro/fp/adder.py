"""Floating-point adder/subtractor datapath (paper Figure 1a).

The implementation follows the standard three-stage algorithm the paper
uses — denormalization/pre-shifting, mantissa addition/subtraction, and
normalization/rounding — composed from the subunits in
:mod:`repro.fp.subunits`:

Stage 1 (denormalization / pre-shifting)
    * denormalizer (hidden bit via exponent-is-zero comparators)
    * exponent comparator + mantissa swapper
    * exponent subtractor (alignment distance)
    * alignment barrel shifter with sticky collection

Stage 2 (fixed-point add/sub)
    * mantissa adder/subtractor (carry-save sticky-borrow trick)
    * pre-normalizer (1-bit right shift on carry-out, exponent increment)

Stage 3 (normalize / round)
    * priority encoder + left shifter + exponent subtractor
    * rounding constant-adders (round-to-nearest-even or truncate)

Rounding is exact (correctly rounded) for both modes: the alignment keeps
three guard/round/sticky bits and the subtraction folds the residual of
the saturating shifter into a sticky borrow, which is sufficient because a
far-path subtraction normalizes by at most one position.

Denormals are flushed to zero on input and output; overflow saturates to
±Inf; NaN/Inf operands raise ``invalid``/propagate per IEEE conventions so
results stay interpretable even though the hardware spends no datapath on
them (paper §3).
"""

from __future__ import annotations

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, round_significand
from repro.fp.subunits import (
    align_shift,
    denormalize,
    exponent_compare,
    mantissa_compare,
    normalize_shift_amount,
    swap,
)

#: Number of guard/round/sticky bits kept through the datapath.
GRS_BITS = 3


def _special_add(
    fmt: FPFormat,
    a: int,
    b: int,
) -> tuple[int, FPFlags] | None:
    """Resolve NaN/Inf operand cases; return None for the normal path."""
    a_nan, b_nan = fmt.is_nan(a), fmt.is_nan(b)
    if a_nan or b_nan:
        return fmt.nan(), FPFlags(invalid=True)
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    if a_inf and b_inf:
        sa, _, _ = fmt.unpack(a)
        sb, _, _ = fmt.unpack(b)
        if sa != sb:  # (+Inf) + (-Inf)
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(sa), FPFlags()
    if a_inf:
        sa, _, _ = fmt.unpack(a)
        return fmt.inf(sa), FPFlags()
    if b_inf:
        sb, _, _ = fmt.unpack(b)
        return fmt.inf(sb), FPFlags()
    return None


def fp_add(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Add two words of format ``fmt``; returns ``(result bits, flags)``."""
    special = _special_add(fmt, a, b)
    if special is not None:
        return special

    s1, e1, f1 = fmt.unpack(a)
    s2, e2, f2 = fmt.unpack(b)

    # --- Stage 1: denormalize ------------------------------------------ #
    m1 = denormalize(fmt, e1, f1)
    m2 = denormalize(fmt, e2, f2)

    # Zero operands (biased exponent 0 means zero in this system).
    if e1 == 0 and e2 == 0:
        # IEEE: equal-signed zeros keep the sign; opposite-signed give +0.
        sign = s1 if s1 == s2 else 0
        return fmt.zero(sign), FPFlags(zero=True)
    if e1 == 0:
        return fmt.pack(s2, e2, f2), FPFlags()
    if e2 == 0:
        return fmt.pack(s1, e1, f1), FPFlags()

    # --- Stage 1: compare / swap / align -------------------------------- #
    swap_exp, diff = exponent_compare(e1, e2)
    if not swap_exp and e1 == e2 and mantissa_compare(m1, m2):
        swap_exp = True
    (m1, m2) = swap(m1, m2, swap_exp)
    (s1, s2) = swap(s1, s2, swap_exp)
    exp = e2 if swap_exp else e1

    wide = fmt.sig_bits + GRS_BITS  # significand + GRS working width
    big = m1 << GRS_BITS
    small, sticky = align_shift(m2 << GRS_BITS, diff, wide)

    # --- Stage 2: fixed-point add/subtract ------------------------------ #
    subtract = s1 != s2
    if subtract:
        # Residual of the saturating shifter becomes a sticky borrow; the
        # post-normalization parity argument keeps RNE exact (module doc).
        total = big - small - sticky
        if total == 0:
            # Exact cancellation: +0 in both rounding modes.
            return fmt.zero(0), FPFlags(zero=True)
    else:
        total = big + small
        if total >> wide:  # carry out: pre-normalizer right shift
            sticky |= total & 1
            total >>= 1
            exp += 1

    # --- Stage 3: normalize --------------------------------------------- #
    lsh = normalize_shift_amount(total, wide)
    if lsh > 0:
        total <<= lsh
        exp -= lsh
        if exp <= 0:
            # Result fell below the normal range: flush to zero.
            return fmt.zero(s1), FPFlags(underflow=True, inexact=True, zero=True)

    # --- Stage 3: round -------------------------------------------------- #
    grs = (total & 0b111) | sticky
    sig, inexact = round_significand(total >> GRS_BITS, grs, mode)
    if sig >> fmt.sig_bits:  # rounding carry: 1.11..1 -> 10.00..0
        sig >>= 1
        exp += 1

    if exp >= fmt.exp_max:
        return fmt.inf(s1), FPFlags(overflow=True, inexact=True)
    return fmt.pack(s1, exp, sig & fmt.man_mask), FPFlags(inexact=inexact)


def fp_sub(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Subtract ``b`` from ``a``: sign-flip feeding the same datapath."""
    sb, eb, fb = fmt.unpack(b)
    if fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    return fp_add(fmt, a, fmt.pack(sb ^ 1, eb, fb), mode)


class FPAdder:
    """Combinational adder/subtractor bound to a format and rounding mode.

    This is the zero-latency functional model; :class:`repro.units.fpadd.
    PipelinedFPAdder` wraps it with a cycle-accurate pipeline and an
    area/frequency implementation report.
    """

    def __init__(
        self,
        fmt: FPFormat,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.mode = mode

    def add(self, a: int, b: int) -> tuple[int, FPFlags]:
        return fp_add(self.fmt, a, b, self.mode)

    def sub(self, a: int, b: int) -> tuple[int, FPFlags]:
        return fp_sub(self.fmt, a, b, self.mode)

    def __call__(self, a: int, b: int, subtract: bool = False) -> tuple[int, FPFlags]:
        return self.sub(a, b) if subtract else self.add(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPAdder({self.fmt.name}, {self.mode.value})"
