"""Bit-level subunits mirroring the hardware blocks of paper Figure 1.

Each function here corresponds to a named block in the adder/multiplier
block diagrams (denormalizer, swapper, shifter, priority encoder, ...).
Keeping them as standalone, individually-tested primitives serves two
purposes: the datapaths in :mod:`repro.fp.adder` / :mod:`repro.fp.multiplier`
compose them exactly as the hardware does, and the area/timing models in
:mod:`repro.fabric` attribute slices and delay to the same named blocks.
"""

from __future__ import annotations

from repro.fp.format import FPFormat


def denormalize(fmt: FPFormat, exp: int, man: int) -> int:
    """Make the hidden bit explicit (the paper's *denormalizer*).

    Uses an exponent-is-zero comparator: a zero exponent means the operand
    is (flushed-to-)zero, so the hidden bit is 0; otherwise it is 1.
    Returns the ``man_bits + 1``-wide significand.
    """
    hidden = 0 if exp == 0 else 1
    return (hidden << fmt.man_bits) | man


def exponent_compare(e1: int, e2: int) -> tuple[bool, int]:
    """Exponent comparator + subtractor.

    Returns ``(swap, diff)`` where ``swap`` is True when operand 2 has the
    larger exponent and ``diff`` is the absolute exponent difference (the
    alignment shift amount).
    """
    if e2 > e1:
        return True, e2 - e1
    return False, e1 - e2


def mantissa_compare(m1: int, m2: int) -> bool:
    """Mantissa comparator used by the swapper when exponents are equal.

    Returns True when ``m2 > m1`` (operands must be swapped so the larger
    magnitude sits on port 1 and the subtraction never goes negative).
    """
    return m2 > m1


def swap(a: int, b: int, do_swap: bool) -> tuple[int, int]:
    """The swapper's output multiplexers."""
    return (b, a) if do_swap else (a, b)


def align_shift(sig: int, shift: int, width: int) -> tuple[int, int]:
    """Right-shift ``sig`` by ``shift`` for mantissa alignment.

    The hardware shifter is ``width`` bits wide with guard/round positions
    appended by the caller; bits shifted beyond the bottom are OR-collapsed
    into a sticky bit, and shift amounts larger than the width saturate
    (large-exponent-difference operands contribute only sticky), exactly
    like a barrel shifter with a sticky-collection tree.

    Returns ``(shifted, sticky)``.
    """
    if shift < 0:
        raise ValueError("alignment shift must be non-negative")
    if shift >= width:
        return 0, (1 if sig else 0)
    dropped_mask = (1 << shift) - 1
    sticky = 1 if (sig & dropped_mask) else 0
    return sig >> shift, sticky


def normalize_shift_amount(value: int, width: int) -> int:
    """Priority encoder: distance of the leading one from the MSB.

    For a ``width``-bit ``value`` this is the left-shift needed to bring
    the first one to the MSB.  An all-zero input returns ``width`` (the
    downstream logic flushes the result to zero).
    """
    if value == 0:
        return width
    return width - value.bit_length()


def split_priority_encoder(value: int, width: int, parts: int = 2) -> int:
    """Priority encoder built from ``parts`` smaller encoders + an adder.

    This mirrors the paper's note that the 54-bit priority encoder "has to
    be broken into two smaller priority encoders and a 3-bit adder" to reach
    200 MHz.  Functionally identical to :func:`normalize_shift_amount`;
    implemented segment-wise to mirror (and cross-check) the hardware
    decomposition.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    seg = (width + parts - 1) // parts
    for i in range(parts):
        hi = width - i * seg
        lo = max(hi - seg, 0)
        segment = (value >> lo) & ((1 << (hi - lo)) - 1)
        if segment:
            return (i * seg) + ((hi - lo) - segment.bit_length())
    return width


def fixed_add(a: int, b: int, width: int) -> tuple[int, int]:
    """Fixed-point adder: returns ``(sum mod 2**width, carry_out)``."""
    total = a + b
    return total & ((1 << width) - 1), total >> width


def fixed_sub(a: int, b: int, width: int) -> tuple[int, int]:
    """Fixed-point subtractor: returns ``(a - b mod 2**width, borrow)``."""
    diff = a - b
    if diff < 0:
        return diff + (1 << width), 1
    return diff & ((1 << width) - 1), 0


def fixed_mul(a: int, b: int) -> int:
    """Fixed-point mantissa multiplier (the MULT18x18 array + adder tree)."""
    return a * b


def sign_xor(s1: int, s2: int) -> int:
    """The multiplier's sign XOR gate."""
    return (s1 ^ s2) & 1


def leading_bits(value: int, width: int, count: int) -> int:
    """Top ``count`` bits of a ``width``-bit value (helper for normalizers)."""
    if count > width:
        raise ValueError("count exceeds width")
    return value >> (width - count)
