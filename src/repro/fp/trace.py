"""Stage-by-stage datapath traces — the library's "waveform view".

:func:`fp_add_trace` and :func:`fp_mul_trace` re-walk the Figure 1
datapaths recording every named subunit's intermediate value, the way a
simulator waveform would show them.  They are intended for debugging and
teaching; the test suite pins their results bit-for-bit to the production
datapaths, so the traces cannot silently diverge from the real
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fp.adder import GRS_BITS, fp_add
from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.multiplier import fp_mul
from repro.fp.rounding import RoundingMode, extract_grs, round_significand
from repro.fp.subunits import (
    align_shift,
    denormalize,
    exponent_compare,
    fixed_mul,
    mantissa_compare,
    normalize_shift_amount,
    sign_xor,
    swap,
)


@dataclass
class StageTrace:
    """A stage's recorded signals, in subunit order."""

    name: str
    signals: dict[str, int] = field(default_factory=dict)

    def record(self, signal: str, value: int) -> None:
        self.signals[signal] = value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:#x}" for k, v in self.signals.items())
        return f"{self.name}: {inner}"


@dataclass
class DatapathTrace:
    """Everything one operation did, stage by stage."""

    op: str
    fmt: FPFormat
    stages: list[StageTrace] = field(default_factory=list)
    result: int = 0
    flags: FPFlags = field(default_factory=FPFlags)
    special: Optional[str] = None  # short-circuit reason, if any

    def stage(self, name: str) -> StageTrace:
        s = StageTrace(name)
        self.stages.append(s)
        return s

    def find(self, stage: str, signal: str) -> int:
        for s in self.stages:
            if s.name == stage and signal in s.signals:
                return s.signals[signal]
        raise KeyError(f"no signal {signal!r} in stage {stage!r}")

    def render(self) -> str:
        lines = [f"{self.op} ({self.fmt.name})"]
        if self.special:
            lines.append(f"  special case: {self.special}")
        for s in self.stages:
            lines.append(f"  {s}")
        lines.append(f"  result = {self.result:#x}  flags = {self.flags}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def fp_add_trace(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> DatapathTrace:
    """Trace the adder datapath; ``trace.result`` equals ``fp_add``'s."""
    trace = DatapathTrace(op="fp_add", fmt=fmt)
    expected_bits, expected_flags = fp_add(fmt, a, b, mode)
    trace.result, trace.flags = expected_bits, expected_flags

    s1, e1, f1 = fmt.unpack(a)
    s2, e2, f2 = fmt.unpack(b)
    if not (fmt.is_finite(a) and fmt.is_finite(b)):
        trace.special = "NaN/Inf operand"
        return trace

    st = trace.stage("denorm")
    m1 = denormalize(fmt, e1, f1)
    m2 = denormalize(fmt, e2, f2)
    st.record("m1", m1)
    st.record("m2", m2)
    if e1 == 0 or e2 == 0:
        trace.special = "zero operand"
        return trace

    st = trace.stage("swap")
    swap_exp, diff = exponent_compare(e1, e2)
    if not swap_exp and e1 == e2 and mantissa_compare(m1, m2):
        swap_exp = True
    (m1, m2) = swap(m1, m2, swap_exp)
    (s1, s2) = swap(s1, s2, swap_exp)
    exp = e2 if swap_exp else e1
    st.record("swapped", int(swap_exp))
    st.record("exp_diff", diff)
    st.record("exp", exp)

    st = trace.stage("align")
    wide = fmt.sig_bits + GRS_BITS
    big = m1 << GRS_BITS
    small, sticky = align_shift(m2 << GRS_BITS, diff, wide)
    st.record("big", big)
    st.record("small", small)
    st.record("sticky", sticky)

    st = trace.stage("add_sub")
    subtract = s1 != s2
    if subtract:
        total = big - small - sticky
    else:
        total = big + small
        if total >> wide:
            sticky |= total & 1
            total >>= 1
            exp += 1
    st.record("subtract", int(subtract))
    st.record("sum", total)
    st.record("exp", exp)
    if total == 0:
        trace.special = "exact cancellation"
        return trace

    st = trace.stage("normalize")
    lsh = normalize_shift_amount(total, wide)
    if lsh > 0:
        total <<= lsh
        exp -= lsh
    st.record("left_shift", lsh)
    st.record("normalized", total)
    st.record("exp", max(exp, 0))
    if exp <= 0:
        trace.special = "underflow flush"
        return trace

    st = trace.stage("round")
    grs = (total & 0b111) | sticky
    sig, _inexact = round_significand(total >> GRS_BITS, grs, mode)
    if sig >> fmt.sig_bits:
        sig >>= 1
        exp += 1
    st.record("grs", grs)
    st.record("sig", sig)
    st.record("exp", min(exp, fmt.exp_max))
    if exp >= fmt.exp_max:
        trace.special = "overflow saturate"
    return trace


def fp_mul_trace(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> DatapathTrace:
    """Trace the multiplier datapath; ``trace.result`` equals ``fp_mul``'s."""
    trace = DatapathTrace(op="fp_mul", fmt=fmt)
    expected_bits, expected_flags = fp_mul(fmt, a, b, mode)
    trace.result, trace.flags = expected_bits, expected_flags

    s1, e1, f1 = fmt.unpack(a)
    s2, e2, f2 = fmt.unpack(b)
    if not (fmt.is_finite(a) and fmt.is_finite(b)):
        trace.special = "NaN/Inf operand"
        return trace
    if e1 == 0 or e2 == 0:
        trace.special = "zero operand"
        return trace

    st = trace.stage("denorm")
    m1 = denormalize(fmt, e1, f1)
    m2 = denormalize(fmt, e2, f2)
    st.record("m1", m1)
    st.record("m2", m2)

    st = trace.stage("multiply")
    product = fixed_mul(m1, m2)
    exp = e1 + e2 - fmt.bias
    sign = sign_xor(s1, s2)
    st.record("product", product)
    st.record("exp", max(0, min(exp, fmt.exp_max)))
    st.record("sign", sign)

    st = trace.stage("normalize")
    prod_bits = 2 * fmt.sig_bits
    if product >> (prod_bits - 1):
        exp += 1
        sig, grs = extract_grs(product, fmt.sig_bits, prod_bits)
        st.record("shift", 1)
    else:
        sig, grs = extract_grs(product, fmt.sig_bits, prod_bits - 1)
        st.record("shift", 0)
    st.record("sig", sig)
    st.record("grs", grs)

    st = trace.stage("round")
    sig, _inexact = round_significand(sig, grs, mode)
    if sig >> fmt.sig_bits:
        sig >>= 1
        exp += 1
    st.record("sig", sig)
    st.record("exp", max(0, min(exp, fmt.exp_max)))
    if exp >= fmt.exp_max:
        trace.special = "overflow saturate"
    elif exp <= 0:
        trace.special = "underflow flush"
    return trace
