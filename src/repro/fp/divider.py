"""Floating-point divider datapath (extension beyond the paper).

The paper's Table 3 comparator (Quixilica) ships a divider core; this
module extends the library with one built with the same methodology as
the paper's adder/multiplier:

Stage 1 (denormalization)
    * the shared denormalizer inserts the implied 1.

Stage 2 (fixed-point core)
    * a digit-recurrence mantissa divider (one subtract/compare row per
      quotient bit — the deeply pipelinable array that dominates area)
    * exponent subtractor + bias adder
    * sign XOR

Stage 3 (normalize / round)
    * the quotient of two normalized significands lies in (1/2, 2), so
      normalization is at most one position (plus a possible
      rounding-carry shift), like the multiplier
    * the shared rounding module; the recurrence remainder feeds the
      sticky bit, so both rounding modes are exact.

Special cases follow IEEE conventions within the denormal-free system:
x/0 raises ``div_by_zero`` (±Inf), 0/0 and Inf/Inf raise ``invalid``
(NaN), x/Inf gives signed zero.
"""

from __future__ import annotations

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, round_significand
from repro.fp.subunits import denormalize, sign_xor


def _special_div(fmt: FPFormat, a: int, b: int) -> tuple[int, FPFlags] | None:
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sign = sign_xor(sa, sb)
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    a_zero, b_zero = fmt.is_zero(a), fmt.is_zero(b)
    if a_inf and b_inf:
        return fmt.nan(), FPFlags(invalid=True)
    if a_zero and b_zero:
        return fmt.nan(), FPFlags(invalid=True)
    if a_inf:
        return fmt.inf(sign), FPFlags()
    if b_inf:
        return fmt.zero(sign), FPFlags(zero=True)
    if b_zero:  # finite non-zero / 0
        return fmt.inf(sign), FPFlags(div_by_zero=True)
    if a_zero:
        return fmt.zero(sign), FPFlags(zero=True)
    return None


def fp_div(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Divide ``a`` by ``b``; returns ``(result bits, flags)``."""
    special = _special_div(fmt, a, b)
    if special is not None:
        return special

    s1, e1, f1 = fmt.unpack(a)
    s2, e2, f2 = fmt.unpack(b)
    sign = sign_xor(s1, s2)

    # --- Stage 1: denormalize ------------------------------------------- #
    m1 = denormalize(fmt, e1, f1)
    m2 = denormalize(fmt, e2, f2)

    # --- Stage 2: digit recurrence ---------------------------------------#
    # The hardware array produces one quotient bit per row; arithmetically
    # that is exactly the integer quotient below, with the final partial
    # remainder collapsing into the sticky bit.
    num = m1 << (fmt.man_bits + 3)
    quotient, remainder = divmod(num, m2)
    exp = e1 - e2 + fmt.bias

    # --- Stage 3: normalize ----------------------------------------------#
    # quotient in (2^(wm+2), 2^(wm+4)): ratio in [1,2) gives wm+4 bits,
    # ratio in (1/2,1) gives wm+3 bits (one-position normalization).
    high = fmt.man_bits + 3
    if quotient >> high:  # ratio >= 1
        sig = quotient >> 3
        grs = (quotient & 0b110) | (1 if (quotient & 0b1) or remainder else 0)
    else:  # ratio in (1/2, 1)
        exp -= 1
        sig = quotient >> 2
        grs = ((quotient << 1) & 0b110) | (1 if remainder else 0)

    # --- Stage 3: round ----------------------------------------------------#
    sig, inexact = round_significand(sig, grs, mode)
    if sig >> fmt.sig_bits:  # rounding carry
        sig >>= 1
        exp += 1

    if exp >= fmt.exp_max:
        return fmt.inf(sign), FPFlags(overflow=True, inexact=True)
    if exp <= 0:
        return fmt.zero(sign), FPFlags(underflow=True, inexact=True, zero=True)
    return fmt.pack(sign, exp, sig & fmt.man_mask), FPFlags(inexact=inexact)


class FPDivider:
    """Combinational divider bound to a format and rounding mode."""

    def __init__(
        self,
        fmt: FPFormat,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.mode = mode

    def div(self, a: int, b: int) -> tuple[int, FPFlags]:
        return fp_div(self.fmt, a, b, self.mode)

    def __call__(self, a: int, b: int) -> tuple[int, FPFlags]:
        return self.div(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPDivider({self.fmt.name}, {self.mode.value})"
