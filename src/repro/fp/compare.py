"""Floating-point comparison, min and max.

Comparators are the cheap-but-everywhere blocks of FP kernels (the paper
prices them at n/2 slices).  The trick hardware uses — and this module
mirrors — is that IEEE encodings compare like sign-magnitude integers:
for positive operands the raw bit patterns order correctly, and for
negatives the order flips.  Zeros compare equal regardless of sign, and
any NaN makes the comparison unordered.

``fp_min`` / ``fp_max`` follow the IEEE-754 ``minNum``/``maxNum``
convention: a quiet NaN operand loses to a number (both NaN gives NaN).
"""

from __future__ import annotations

import enum

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat


class Ordering(enum.Enum):
    LESS = "lt"
    EQUAL = "eq"
    GREATER = "gt"
    UNORDERED = "un"


def _order_key(fmt: FPFormat, bits: int) -> int:
    """Sign-magnitude comparison key: the hardware comparator's trick.

    The magnitude field of an IEEE encoding orders correctly as an
    unsigned integer; negating it for negative operands (and collapsing
    all zeros to 0) yields a totally ordered key.
    """
    if fmt.is_zero(bits):
        return 0
    sign = fmt.unpack(bits)[0]
    magnitude = bits & (fmt.word_mask >> 1)
    return -magnitude if sign else magnitude


def fp_compare(fmt: FPFormat, a: int, b: int) -> Ordering:
    """Totally compare two words (IEEE semantics, NaN -> unordered)."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return Ordering.UNORDERED
    ka, kb = _order_key(fmt, a), _order_key(fmt, b)
    if ka == kb:
        return Ordering.EQUAL
    return Ordering.LESS if ka < kb else Ordering.GREATER


def fp_lt(fmt: FPFormat, a: int, b: int) -> bool:
    return fp_compare(fmt, a, b) is Ordering.LESS


def fp_le(fmt: FPFormat, a: int, b: int) -> bool:
    return fp_compare(fmt, a, b) in (Ordering.LESS, Ordering.EQUAL)


def fp_eq(fmt: FPFormat, a: int, b: int) -> bool:
    return fp_compare(fmt, a, b) is Ordering.EQUAL


def fp_min(fmt: FPFormat, a: int, b: int) -> tuple[int, FPFlags]:
    """IEEE minNum: the smaller operand; NaN loses to a number."""
    a_nan, b_nan = fmt.is_nan(a), fmt.is_nan(b)
    if a_nan and b_nan:
        return fmt.nan(), FPFlags(invalid=True)
    if a_nan:
        return b, FPFlags(invalid=True)
    if b_nan:
        return a, FPFlags(invalid=True)
    order = fp_compare(fmt, a, b)
    if order is Ordering.EQUAL:
        # -0 < +0 for min purposes (IEEE recommends distinguishing).
        if fmt.is_zero(a) and fmt.is_zero(b):
            return (a if fmt.unpack(a)[0] else b), FPFlags()
        return a, FPFlags()
    return (a if order is Ordering.LESS else b), FPFlags()


def fp_max(fmt: FPFormat, a: int, b: int) -> tuple[int, FPFlags]:
    """IEEE maxNum: the larger operand; NaN loses to a number."""
    a_nan, b_nan = fmt.is_nan(a), fmt.is_nan(b)
    if a_nan and b_nan:
        return fmt.nan(), FPFlags(invalid=True)
    if a_nan:
        return b, FPFlags(invalid=True)
    if b_nan:
        return a, FPFlags(invalid=True)
    order = fp_compare(fmt, a, b)
    if order is Ordering.EQUAL:
        if fmt.is_zero(a) and fmt.is_zero(b):
            return (a if not fmt.unpack(a)[0] else b), FPFlags()
        return a, FPFlags()
    return (a if order is Ordering.GREATER else b), FPFlags()
