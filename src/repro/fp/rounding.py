"""Rounding modes and the rounding primitive shared by the datapaths.

The paper implements exactly two modes: round-to-nearest (even) and
truncation.  Rounding operates on a significand extended with the classic
guard/round/sticky (GRS) triple produced by the alignment and
normalization shifters.
"""

from __future__ import annotations

import enum


class RoundingMode(enum.Enum):
    """Rounding modes supported by the cores (paper §3)."""

    #: IEEE round-to-nearest, ties to even.
    NEAREST_EVEN = "rne"
    #: Truncate toward zero (drop the GRS bits).
    TRUNCATE = "rtz"


def round_significand(
    sig: int,
    grs: int,
    mode: RoundingMode,
) -> tuple[int, bool]:
    """Round a significand given its 3-bit guard/round/sticky tail.

    Parameters
    ----------
    sig:
        The kept significand bits (integer, any width).
    grs:
        The 3-bit tail ``(guard << 2) | (round << 1) | sticky``.
    mode:
        Rounding mode.

    Returns
    -------
    (rounded, inexact):
        ``rounded`` may be one wider than ``sig`` (carry out of the
        increment); callers must renormalize.  ``inexact`` is True when any
        discarded bit was set.
    """
    if not 0 <= grs <= 0b111:
        raise ValueError(f"grs must be a 3-bit value, got {grs}")
    inexact = grs != 0
    if mode is RoundingMode.TRUNCATE:
        return sig, inexact
    if mode is not RoundingMode.NEAREST_EVEN:  # pragma: no cover - exhaustive
        raise ValueError(f"unsupported rounding mode {mode}")
    guard = (grs >> 2) & 1
    rest = grs & 0b011
    if guard and (rest != 0 or (sig & 1)):
        return sig + 1, inexact
    return sig, inexact


def collapse_sticky(value: int, dropped_bits: int) -> int:
    """OR-reduce the low ``dropped_bits`` of ``value`` into one sticky bit."""
    if dropped_bits <= 0:
        return 0
    mask = (1 << dropped_bits) - 1
    return 1 if (value & mask) else 0


def extract_grs(value: int, keep_bits: int, total_bits: int) -> tuple[int, int]:
    """Split ``value`` (``total_bits`` wide) into kept significand and GRS.

    Returns ``(sig, grs)`` where ``sig`` is the top ``keep_bits`` and ``grs``
    compresses everything below into guard/round/sticky.
    """
    dropped = total_bits - keep_bits
    if dropped < 0:
        raise ValueError("keep_bits exceeds total_bits")
    if dropped == 0:
        return value, 0
    sig = value >> dropped
    if dropped == 1:
        guard = value & 1
        return sig, guard << 2
    if dropped == 2:
        guard = (value >> 1) & 1
        rnd = value & 1
        return sig, (guard << 2) | (rnd << 1)
    guard = (value >> (dropped - 1)) & 1
    rnd = (value >> (dropped - 2)) & 1
    sticky = collapse_sticky(value, dropped - 2)
    return sig, (guard << 2) | (rnd << 1) | sticky
