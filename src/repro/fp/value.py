"""Typed floating-point values: bit patterns bound to a format.

:class:`FPValue` wraps an integer word together with its :class:`FPFormat`
and provides exact conversions to and from Python ``float``/``Fraction``.
Conversions *into* a format implement the same denormal-free,
two-rounding-mode semantics as the hardware datapaths, so tests can use
``FPValue.from_float`` as the golden encoder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, round_significand


def _floor_log2(x: Fraction) -> int:
    """Exact floor(log2(x)) for a positive Fraction."""
    if x <= 0:
        raise ValueError("x must be positive")
    p, q = x.numerator, x.denominator
    e = p.bit_length() - q.bit_length()
    # e is within 1 of the true value; correct it exactly.
    while not _pow2_le(e, p, q):
        e -= 1
    while _pow2_le(e + 1, p, q):
        e += 1
    return e


def _pow2_le(e: int, p: int, q: int) -> bool:
    """True when 2**e <= p/q (p, q positive integers)."""
    if e >= 0:
        return (q << e) <= p
    return q <= (p << (-e))


def encode_fraction(
    fmt: FPFormat,
    value: Fraction,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Encode an exact rational into ``fmt`` with hardware semantics.

    Overflow saturates to ±Inf (raising ``overflow``); results below the
    normal range flush to (signed) zero (raising ``underflow``), exactly as
    the denormal-free datapaths behave.
    """
    if value == 0:
        return fmt.zero(0), FPFlags(zero=True)
    sign = 1 if value < 0 else 0
    mag = -value if sign else value
    e = _floor_log2(mag)
    # Scale so the integer part carries man_bits+1 significand bits plus two
    # explicit guard/round bits; the division remainder becomes sticky.
    shift = fmt.man_bits + 2 - e
    p, q = mag.numerator, mag.denominator
    if shift >= 0:
        num, den = p << shift, q
    else:
        num, den = p, q << (-shift)
    t, rem = divmod(num, den)
    sticky = 1 if rem else 0
    sig = t >> 2
    grs = ((t & 0b11) << 1) | sticky
    sig, inexact = round_significand(sig, grs, mode)
    if sig >> (fmt.man_bits + 1):
        sig >>= 1
        e += 1
    if e > fmt.emax:
        return fmt.inf(sign), FPFlags(overflow=True, inexact=True)
    if e < fmt.emin:
        return fmt.zero(sign), FPFlags(underflow=True, inexact=True, zero=True)
    man = sig & fmt.man_mask
    bits = fmt.pack(sign, e + fmt.bias, man)
    return bits, FPFlags(inexact=inexact)


@dataclass(frozen=True)
class FPValue:
    """An immutable floating-point value: a bit pattern plus its format."""

    fmt: FPFormat
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= self.fmt.word_mask:
            raise ValueError(
                f"bit pattern {self.bits:#x} out of range for {self.fmt.name}"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_float(
        cls,
        fmt: FPFormat,
        value: float,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> "FPValue":
        """Encode a Python float (exactly represented, then rounded)."""
        if math.isnan(value):
            return cls(fmt, fmt.nan())
        if math.isinf(value):
            return cls(fmt, fmt.inf(1 if value < 0 else 0))
        if value == 0.0:
            sign = 1 if math.copysign(1.0, value) < 0 else 0
            return cls(fmt, fmt.zero(sign))
        bits, _ = encode_fraction(fmt, Fraction(value), mode)
        return cls(fmt, bits)

    @classmethod
    def from_fraction(
        cls,
        fmt: FPFormat,
        value: Fraction,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> "FPValue":
        bits, _ = encode_fraction(fmt, value, mode)
        return cls(fmt, bits)

    @classmethod
    def from_fields(cls, fmt: FPFormat, sign: int, exp: int, man: int) -> "FPValue":
        return cls(fmt, fmt.pack(sign, exp, man))

    # ------------------------------------------------------------------ #
    # Field access / classification
    # ------------------------------------------------------------------ #
    @property
    def sign(self) -> int:
        return self.fmt.unpack(self.bits)[0]

    @property
    def exp(self) -> int:
        """Biased exponent field."""
        return self.fmt.unpack(self.bits)[1]

    @property
    def man(self) -> int:
        """Stored fraction field."""
        return self.fmt.unpack(self.bits)[2]

    @property
    def is_zero(self) -> bool:
        return self.fmt.is_zero(self.bits)

    @property
    def is_inf(self) -> bool:
        return self.fmt.is_inf(self.bits)

    @property
    def is_nan(self) -> bool:
        return self.fmt.is_nan(self.bits)

    @property
    def is_finite(self) -> bool:
        return self.fmt.is_finite(self.bits)

    @property
    def significand(self) -> int:
        """Significand with the hidden bit made explicit (denormalizer)."""
        sign, exp, man = self.fmt.unpack(self.bits)
        del sign
        hidden = 0 if exp == 0 else 1
        return (hidden << self.fmt.man_bits) | man

    # ------------------------------------------------------------------ #
    # Conversions out
    # ------------------------------------------------------------------ #
    def to_fraction(self) -> Fraction:
        """Exact rational value; NaN/Inf raise ``ValueError``."""
        sign, exp, man = self.fmt.unpack(self.bits)
        if exp == self.fmt.exp_max:
            raise ValueError("NaN/Inf has no rational value")
        if exp == 0:
            return Fraction(0)
        sig = (1 << self.fmt.man_bits) | man
        mag = Fraction(sig, 1 << self.fmt.man_bits) * Fraction(2) ** (
            exp - self.fmt.bias
        )
        return -mag if sign else mag

    def to_float(self) -> float:
        """Convert to Python float (exact for all paper formats)."""
        sign, exp, man = self.fmt.unpack(self.bits)
        if exp == self.fmt.exp_max:
            if man:
                return math.nan
            return -math.inf if sign else math.inf
        if exp == 0:
            return -0.0 if sign else 0.0
        mag = math.ldexp(
            ((1 << self.fmt.man_bits) | man), exp - self.fmt.bias - self.fmt.man_bits
        )
        return -mag if sign else mag

    # ------------------------------------------------------------------ #
    # Operators (conveniences over the datapaths)
    # ------------------------------------------------------------------ #
    def __neg__(self) -> "FPValue":
        sign, exp, man = self.fmt.unpack(self.bits)
        return FPValue(self.fmt, self.fmt.pack(sign ^ 1, exp, man))

    def __abs__(self) -> "FPValue":
        _, exp, man = self.fmt.unpack(self.bits)
        return FPValue(self.fmt, self.fmt.pack(0, exp, man))

    def __add__(self, other: "FPValue") -> "FPValue":
        from repro.fp.adder import fp_add

        bits, _ = fp_add(self.fmt, self.bits, other.bits)
        return FPValue(self.fmt, bits)

    def __sub__(self, other: "FPValue") -> "FPValue":
        from repro.fp.adder import fp_sub

        bits, _ = fp_sub(self.fmt, self.bits, other.bits)
        return FPValue(self.fmt, bits)

    def __mul__(self, other: "FPValue") -> "FPValue":
        from repro.fp.multiplier import fp_mul

        bits, _ = fp_mul(self.fmt, self.bits, other.bits)
        return FPValue(self.fmt, bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            shown = self.to_float()
        except ValueError:  # unreachable, to_float handles specials
            shown = math.nan
        return f"FPValue({self.fmt.name}, {self.bits:#0{2 + (self.fmt.width + 3) // 4}x} ~ {shown!r})"
