"""Bit-accurate parameterized floating-point arithmetic.

This subpackage is the numeric core of the reproduction: it implements the
floating-point adder/subtractor and multiplier datapaths of Govindu et al.
(IPPS 2004, Figure 1) at the bit level, for arbitrary exponent/mantissa
widths.  The three formats studied in the paper are exported as
:data:`FP32`, :data:`FP48` and :data:`FP64`.

Semantics follow the paper's Section 3:

* no denormal support — denormal inputs and results are flushed to zero;
* no NaN *handling* datapath — NaN/Inf operands are detected as exceptions
  and propagated (the library still produces canonical IEEE encodings so
  results remain interpretable);
* rounding is round-to-nearest-even or truncation (round-toward-zero);
* exceptions (overflow, underflow, invalid, inexact) are detected at every
  stage and carried forward, matching the hardware's per-stage flag chain.

The datapaths are written subunit-by-subunit (:mod:`repro.fp.subunits`) so
that the same building blocks drive both the numeric simulation and the
area/timing models in :mod:`repro.fabric`.
"""

from repro.fp.adder import FPAdder, fp_add, fp_sub
from repro.fp.compare import Ordering, fp_compare, fp_eq, fp_le, fp_lt, fp_max, fp_min
from repro.fp.convert import fp_convert, is_lossless
from repro.fp.divider import FPDivider, fp_div
from repro.fp.flags import FPFlags
from repro.fp.format import FP32, FP48, FP64, FPFormat
from repro.fp.mac import FPMac, fp_fma
from repro.fp.multiplier import FPMultiplier, fp_mul
from repro.fp.rounding import RoundingMode
from repro.fp.sqrt import FPSqrt, fp_sqrt
from repro.fp.trace import fp_add_trace, fp_mul_trace
from repro.fp.value import FPValue

__all__ = [
    "FP32",
    "FP48",
    "FP64",
    "FPAdder",
    "FPDivider",
    "FPFlags",
    "FPFormat",
    "FPMac",
    "FPMultiplier",
    "FPSqrt",
    "FPValue",
    "Ordering",
    "RoundingMode",
    "fp_add",
    "fp_add_trace",
    "fp_compare",
    "fp_convert",
    "fp_div",
    "fp_eq",
    "fp_fma",
    "fp_le",
    "fp_lt",
    "fp_max",
    "fp_min",
    "fp_mul",
    "fp_mul_trace",
    "fp_sqrt",
    "fp_sub",
    "is_lossless",
]
