"""Format-to-format conversion (the Table 3 "conversion modules").

The commercial cores the paper compares against use custom internal
formats and "require additional modules to perform format conversions at
interfaces to other resources in the system".  This module implements
that operation for arbitrary format pairs: exact when the destination
subsumes the source (wider exponent *and* fraction), correctly rounded
(RNE or truncation) otherwise, with the usual denormal-free
overflow/underflow saturation semantics.
"""

from __future__ import annotations

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue, encode_fraction


def is_lossless(src: FPFormat, dst: FPFormat) -> bool:
    """True when every finite ``src`` value is exactly representable in
    ``dst`` (wider-or-equal exponent and fraction fields)."""
    return dst.exp_bits >= src.exp_bits and dst.man_bits >= src.man_bits


def fp_convert(
    src: FPFormat,
    dst: FPFormat,
    bits: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Convert a ``src``-format word into ``dst`` format."""
    sign, exp, man = src.unpack(bits)
    if src.is_nan(bits):
        return dst.nan(), FPFlags(invalid=True)
    if src.is_inf(bits):
        return dst.inf(sign), FPFlags()
    if exp == 0:  # zero (denormal encodings flush on the way in)
        return dst.zero(sign), FPFlags(zero=True)
    del man
    return encode_fraction(dst, FPValue(src, bits).to_fraction(), mode)


def round_trip_exact(src: FPFormat, dst: FPFormat, bits: int) -> bool:
    """True when ``bits`` survives a src -> dst -> src round trip."""
    there, flags = fp_convert(src, dst, bits)
    if dst.is_nan(there):
        return src.is_nan(bits)
    back, _ = fp_convert(dst, src, there)
    del flags
    return back == bits
