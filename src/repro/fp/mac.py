"""Fused multiply-add datapath (extension beyond the paper).

A fused MAC computes ``round(a*b + c)`` with a *single* rounding, unlike
the paper's PE which chains the multiplier into the adder (two
roundings).  Fusion was an obvious next step for the paper's PE design
(it removes the intermediate normalize/round stage and halves the
accumulation error), so the library ships one and the ablation benchmarks
compare chained vs fused PEs.

The arithmetic here is computed exactly (the product and the aligned
addend are held at full precision before the single rounding), which is
bit-identical to a hardware FMA whose alignment datapath keeps
``3*sig_bits + 2`` bits plus sticky; Python integers play the role of
that wide datapath.  Exactness is cross-checked against a rational oracle
in the tests.
"""

from __future__ import annotations

from fractions import Fraction

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.subunits import sign_xor
from repro.fp.value import FPValue, encode_fraction


def _special_fma(
    fmt: FPFormat, a: int, b: int, c: int
) -> tuple[int, FPFlags] | None:
    if fmt.is_nan(a) or fmt.is_nan(b) or fmt.is_nan(c):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sc = fmt.unpack(c)[0]
    psign = sign_xor(sa, sb)
    a_inf, b_inf, c_inf = fmt.is_inf(a), fmt.is_inf(b), fmt.is_inf(c)
    if (a_inf or b_inf) and (fmt.is_zero(a) or fmt.is_zero(b)):
        return fmt.nan(), FPFlags(invalid=True)  # 0 x Inf
    if a_inf or b_inf:
        if c_inf and sc != psign:
            return fmt.nan(), FPFlags(invalid=True)  # Inf - Inf
        return fmt.inf(psign), FPFlags()
    if c_inf:
        return fmt.inf(sc), FPFlags()
    return None


def fp_fma(
    fmt: FPFormat,
    a: int,
    b: int,
    c: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Fused ``a*b + c`` with a single rounding; returns ``(bits, flags)``."""
    special = _special_fma(fmt, a, b, c)
    if special is not None:
        return special

    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sc = fmt.unpack(c)[0]
    psign = sign_xor(sa, sb)

    product = (
        Fraction(0)
        if (fmt.is_zero(a) or fmt.is_zero(b))
        else FPValue(fmt, a).to_fraction() * FPValue(fmt, b).to_fraction()
    )
    addend = Fraction(0) if fmt.is_zero(c) else FPValue(fmt, c).to_fraction()
    exact = product + addend

    if exact == 0:
        # IEEE zero-sign rules: if both contributions are zero, equal signs
        # keep the sign, opposite give +0; exact cancellation gives +0.
        if product == 0 and addend == 0:
            sign = psign if psign == sc else 0
        else:
            sign = 0
        return fmt.zero(sign), FPFlags(zero=True)
    return encode_fraction(fmt, exact, mode)


class FPMac:
    """Combinational fused MAC bound to a format and rounding mode."""

    def __init__(
        self,
        fmt: FPFormat,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.mode = mode

    def fma(self, a: int, b: int, c: int) -> tuple[int, FPFlags]:
        return fp_fma(self.fmt, a, b, c, self.mode)

    def __call__(self, a: int, b: int, c: int) -> tuple[int, FPFlags]:
        return self.fma(a, b, c)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPMac({self.fmt.name}, {self.mode.value})"
