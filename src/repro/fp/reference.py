"""Exact rational reference implementations used as test oracles.

These compute the mathematically exact result with :class:`fractions.
Fraction` and then encode it into the target format with the shared
denormal-free encoder, so any divergence from :func:`repro.fp.adder.fp_add`
or :func:`repro.fp.multiplier.fp_mul` is a genuine datapath bug rather
than a modelling difference.  They intentionally reuse the *same* special-
value conventions (zero signs, Inf/NaN propagation) so results are
comparable bit-for-bit.
"""

from __future__ import annotations

from fractions import Fraction

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue, encode_fraction


def _decode(fmt: FPFormat, bits: int) -> Fraction:
    return FPValue(fmt, bits).to_fraction()


def ref_add(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference addition."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    if a_inf and b_inf:
        if sa != sb:
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(sa), FPFlags()
    if a_inf:
        return fmt.inf(sa), FPFlags()
    if b_inf:
        return fmt.inf(sb), FPFlags()
    if fmt.is_zero(a) and fmt.is_zero(b):
        return fmt.zero(sa if sa == sb else 0), FPFlags(zero=True)
    if fmt.is_zero(a):
        return fmt.pack(sb, fmt.unpack(b)[1], fmt.unpack(b)[2]), FPFlags()
    if fmt.is_zero(b):
        return fmt.pack(sa, fmt.unpack(a)[1], fmt.unpack(a)[2]), FPFlags()
    exact = _decode(fmt, a) + _decode(fmt, b)
    return encode_fraction(fmt, exact, mode)


def ref_sub(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference subtraction."""
    if fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sb, eb, fb = fmt.unpack(b)
    return ref_add(fmt, a, fmt.pack(sb ^ 1, eb, fb), mode)


def ref_div(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference division."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sign = sa ^ sb
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    a_zero, b_zero = fmt.is_zero(a), fmt.is_zero(b)
    if (a_inf and b_inf) or (a_zero and b_zero):
        return fmt.nan(), FPFlags(invalid=True)
    if a_inf:
        return fmt.inf(sign), FPFlags()
    if b_inf:
        return fmt.zero(sign), FPFlags(zero=True)
    if b_zero:
        return fmt.inf(sign), FPFlags(div_by_zero=True)
    if a_zero:
        return fmt.zero(sign), FPFlags(zero=True)
    exact = _decode(fmt, a) / _decode(fmt, b)
    return encode_fraction(fmt, exact, mode)


def ref_mul(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference multiplication."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sign = sa ^ sb
    if fmt.is_inf(a) or fmt.is_inf(b):
        if fmt.is_zero(a) or fmt.is_zero(b):
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(sign), FPFlags()
    if fmt.is_zero(a) or fmt.is_zero(b):
        return fmt.zero(sign), FPFlags(zero=True)
    exact = _decode(fmt, a) * _decode(fmt, b)
    bits, flags = encode_fraction(fmt, exact, mode)
    # encode_fraction derives the sign from the exact value, which is
    # already correct here; nothing to patch.
    return bits, flags
