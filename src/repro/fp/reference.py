"""Exact rational reference implementations used as test oracles.

These compute the mathematically exact result with :class:`fractions.
Fraction` and then encode it into the target format with the shared
denormal-free encoder, so any divergence from :func:`repro.fp.adder.fp_add`
or :func:`repro.fp.multiplier.fp_mul` is a genuine datapath bug rather
than a modelling difference.  They intentionally reuse the *same* special-
value conventions (zero signs, Inf/NaN propagation) so results are
comparable bit-for-bit.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, round_significand
from repro.fp.value import FPValue, encode_fraction


def _decode(fmt: FPFormat, bits: int) -> Fraction:
    return FPValue(fmt, bits).to_fraction()


def ref_add(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference addition."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    if a_inf and b_inf:
        if sa != sb:
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(sa), FPFlags()
    if a_inf:
        return fmt.inf(sa), FPFlags()
    if b_inf:
        return fmt.inf(sb), FPFlags()
    if fmt.is_zero(a) and fmt.is_zero(b):
        return fmt.zero(sa if sa == sb else 0), FPFlags(zero=True)
    if fmt.is_zero(a):
        return fmt.pack(sb, fmt.unpack(b)[1], fmt.unpack(b)[2]), FPFlags()
    if fmt.is_zero(b):
        return fmt.pack(sa, fmt.unpack(a)[1], fmt.unpack(a)[2]), FPFlags()
    exact = _decode(fmt, a) + _decode(fmt, b)
    return encode_fraction(fmt, exact, mode)


def ref_sub(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference subtraction."""
    if fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sb, eb, fb = fmt.unpack(b)
    return ref_add(fmt, a, fmt.pack(sb ^ 1, eb, fb), mode)


def ref_div(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference division."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sign = sa ^ sb
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    a_zero, b_zero = fmt.is_zero(a), fmt.is_zero(b)
    if (a_inf and b_inf) or (a_zero and b_zero):
        return fmt.nan(), FPFlags(invalid=True)
    if a_inf:
        return fmt.inf(sign), FPFlags()
    if b_inf:
        return fmt.zero(sign), FPFlags(zero=True)
    if b_zero:
        return fmt.inf(sign), FPFlags(div_by_zero=True)
    if a_zero:
        return fmt.zero(sign), FPFlags(zero=True)
    exact = _decode(fmt, a) / _decode(fmt, b)
    return encode_fraction(fmt, exact, mode)


def ref_mul(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference multiplication."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sign = sa ^ sb
    if fmt.is_inf(a) or fmt.is_inf(b):
        if fmt.is_zero(a) or fmt.is_zero(b):
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(sign), FPFlags()
    if fmt.is_zero(a) or fmt.is_zero(b):
        return fmt.zero(sign), FPFlags(zero=True)
    exact = _decode(fmt, a) * _decode(fmt, b)
    bits, flags = encode_fraction(fmt, exact, mode)
    # encode_fraction derives the sign from the exact value, which is
    # already correct here; nothing to patch.
    return bits, flags


def ref_fma(
    fmt: FPFormat,
    a: int,
    b: int,
    c: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference fused multiply-add ``a*b + c``.

    The product and the sum are formed as exact rationals, so exactly
    one rounding happens — the defining property of a fused MAC — and
    the special/zero-sign conventions mirror the scalar datapath.
    """
    if fmt.is_nan(a) or fmt.is_nan(b) or fmt.is_nan(c):
        return fmt.nan(), FPFlags(invalid=True)
    sa = fmt.unpack(a)[0]
    sb = fmt.unpack(b)[0]
    sc = fmt.unpack(c)[0]
    psign = sa ^ sb
    a_inf, b_inf, c_inf = fmt.is_inf(a), fmt.is_inf(b), fmt.is_inf(c)
    if (a_inf or b_inf) and (fmt.is_zero(a) or fmt.is_zero(b)):
        return fmt.nan(), FPFlags(invalid=True)
    if a_inf or b_inf:
        if c_inf and sc != psign:
            return fmt.nan(), FPFlags(invalid=True)
        return fmt.inf(psign), FPFlags()
    if c_inf:
        return fmt.inf(sc), FPFlags()
    product = (
        Fraction(0)
        if (fmt.is_zero(a) or fmt.is_zero(b))
        else _decode(fmt, a) * _decode(fmt, b)
    )
    addend = Fraction(0) if fmt.is_zero(c) else _decode(fmt, c)
    exact = product + addend
    if exact == 0:
        if product == 0 and addend == 0:
            sign = psign if psign == sc else 0
        else:
            sign = 0
        return fmt.zero(sign), FPFlags(zero=True)
    return encode_fraction(fmt, exact, mode)


def ref_sqrt(
    fmt: FPFormat,
    a: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Exactly-rounded reference square root.

    Unlike a fixed-precision approximation, this is *provably* correctly
    rounded: the operand is written as ``M * 2^E`` with ``E`` even, and
    ``math.isqrt(M << 2t)`` with a remainder-driven sticky bit is an
    exact truncation of the true root on a grid strictly finer than the
    round bit — truncation plus honest sticky decides RNE ties and RTZ
    exactly, for rational and irrational roots alike.
    """
    if fmt.is_nan(a):
        return fmt.nan(), FPFlags(invalid=True)
    sign, exp, man = fmt.unpack(a)
    if exp == 0:  # signed zero (denormal patterns read as zero)
        return fmt.zero(sign), FPFlags(zero=True)
    if sign:
        return fmt.nan(), FPFlags(invalid=True)
    if fmt.is_inf(a):
        return fmt.inf(0), FPFlags()

    # a = M * 2^E exactly; force E even so the exponent halves cleanly.
    m_int = (1 << fmt.man_bits) | man
    e_int = exp - fmt.bias - fmt.man_bits
    if e_int & 1:
        m_int <<= 1
        e_int -= 1
    t = fmt.man_bits + 2
    scaled = m_int << (2 * t)
    root = math.isqrt(scaled)
    sticky = 1 if root * root != scaled else 0

    # Reduce the root to significand + guard/round, folding the dropped
    # low bits into sticky; the leading-bit position fixes the exponent.
    rb = root.bit_length()
    sh = rb - (fmt.man_bits + 3)
    if sh > 0:
        if root & ((1 << sh) - 1):
            sticky = 1
        root >>= sh
    elif sh < 0:  # pragma: no cover - t is chosen large enough
        root <<= -sh
    e_res = (e_int >> 1) - t + rb - 1
    sig = root >> 2
    grs = ((root & 0b11) << 1) | sticky
    sig, inexact = round_significand(sig, grs, mode)
    if sig >> fmt.sig_bits:  # rounding carry
        sig >>= 1
        e_res += 1
    # The square root of a normal number is always strictly normal.
    return fmt.pack(0, e_res + fmt.bias, sig & fmt.man_mask), FPFlags(
        inexact=inexact
    )
