"""NumPy-vectorized floating-point operations (bit-exact, array-scale).

Simulating large kernels one scalar op at a time is the bottleneck of
the cycle-accurate models; this module re-implements the adder and
multiplier datapaths as vectorized NumPy pipelines over ``uint64``
arrays, bit-for-bit identical to the scalar datapaths (the test suite
and the :mod:`repro.verify.differential` campaign prove it element-wise,
specials included).

Supported formats: total width <= 64 bits with 3..59 fraction bits —
every format the paper studies (fp32, fp48, fp64) plus fp16-style and
custom DSP formats.  Narrow formats (double-width product <= 64 bits)
run on a single ``uint64`` limb; wide formats split the mantissa product
across two 64-bit limbs, exactly as a 128-bit datapath would.  The
GRS-extended adder path needs ``man_bits + 5`` bits and therefore always
fits one limb.

Semantics match :mod:`repro.fp.adder` / :mod:`repro.fp.multiplier`
exactly: denormal-free (flush to zero), round-to-nearest-even or
truncation, IEEE special handling, canonical NaN.  With
``with_flags=True`` each op also returns the per-element exception
sideband in the 6-bit :meth:`repro.fp.flags.FPFlags.to_bits` layout,
bit-identical to the scalar datapaths' flags.
"""

from __future__ import annotations

import numpy as np

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode

_U = np.uint64

#: Widest total format width the vectorized datapaths accept.
MAX_WIDTH = 64
#: Fraction-bit bounds: >= 3 so GRS extraction is well-defined, <= 59 so
#: the GRS-extended sum (``man_bits + 5`` bits) fits one uint64 limb and
#: the double-width product fits two.
MIN_MAN_BITS = 3
MAX_MAN_BITS = 59

# FPFlags.to_bits() bit positions (the 6-bit RTL sideband layout).
_FL_ZERO = 1
_FL_INVALID = 2
_FL_INEXACT = 4
_FL_UNDERFLOW = 8
_FL_OVERFLOW = 16
_FL_DIV_BY_ZERO = 32


def supports_vectorized(fmt: FPFormat) -> bool:
    """True when ``fmt`` can run on the vectorized datapaths."""
    return fmt.width <= MAX_WIDTH and MIN_MAN_BITS <= fmt.man_bits <= MAX_MAN_BITS


def check_vectorized_format(fmt: FPFormat) -> None:
    """Shared format guard for every vectorized op and kernel.

    Raises one precise :class:`ValueError` naming the supported bounds,
    so callers of :func:`vec_add`/:func:`vec_mul` and of the fast kernels
    in :mod:`repro.kernels.fast` all see the same message.
    """
    if not supports_vectorized(fmt):
        raise ValueError(
            f"vectorized ops support total width <= {MAX_WIDTH} bits with "
            f"{MIN_MAN_BITS} <= fraction bits <= {MAX_MAN_BITS}; got "
            f"{fmt.name} (width {fmt.width}, {fmt.man_bits} fraction bits)"
            " — use the scalar datapaths for unsupported formats"
        )


# Backwards-compatible internal alias (historically three slightly
# different guards lived here and in kernels/fast.py).
_check_format = check_vectorized_format


def reduce_flags(*flag_words) -> FPFlags:
    """OR-reduce vectorized exception sidebands into one flag bundle.

    Accepts any number of ``uint8`` arrays (or scalars) in the
    :meth:`FPFlags.to_bits` layout — the ``with_flags=True`` output of
    :func:`vec_add`/:func:`vec_sub`/:func:`vec_mul` — and returns the
    sticky OR over every element as an :class:`FPFlags`, exactly what a
    hardware accumulator's sticky flag register would hold after the
    same sequence of operations.
    """
    word = 0
    for arr in flag_words:
        a = np.asarray(arr)
        if a.size:
            word |= int(np.bitwise_or.reduce(a, axis=None))
    return FPFlags.from_bits(word)


def _as_u64(fmt: FPFormat, a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype.kind not in "ui":
        raise TypeError(f"{name} must be an unsigned integer array")
    arr = arr.astype(np.uint64)
    if arr.size and int(arr.max()) > fmt.word_mask:
        raise ValueError(f"{name} contains words outside {fmt.name}")
    return arr


def _unpack(fmt: FPFormat, bits: np.ndarray):
    sign = (bits >> _U(fmt.width - 1)) & _U(1)
    exp = (bits >> _U(fmt.man_bits)) & _U(fmt.exp_mask)
    man = bits & _U(fmt.man_mask)
    return sign, exp, man


def _classify(fmt: FPFormat, exp: np.ndarray, man: np.ndarray):
    is_zero = exp == 0
    is_max = exp == fmt.exp_max
    is_inf = is_max & (man == 0)
    is_nan = is_max & (man != 0)
    return is_zero, is_inf, is_nan


def _round_vec(
    sig: np.ndarray,
    guard: np.ndarray,
    rnd: np.ndarray,
    sticky: np.ndarray,
    mode: RoundingMode,
):
    """Vector rounding; returns (sig, inexact)."""
    inexact = (guard | rnd | sticky) != 0
    if mode is RoundingMode.TRUNCATE:
        return sig, inexact
    round_up = (guard != 0) & ((rnd != 0) | (sticky != 0) | ((sig & _U(1)) != 0))
    return sig + round_up.astype(np.uint64), inexact


def _pack_result(
    fmt: FPFormat,
    sign: np.ndarray,
    exp: np.ndarray,  # int64, may be out of range
    sig: np.ndarray,  # includes hidden bit
):
    """Saturate/flush out-of-range exponents and pack.

    Returns ``(bits, overflow, underflow)`` so callers can raise the
    matching exception flags.
    """
    overflow = exp >= fmt.exp_max
    underflow = exp <= 0
    exp_c = np.clip(exp, 1, fmt.exp_max - 1).astype(np.uint64)
    out = (
        (sign << _U(fmt.width - 1))
        | (exp_c << _U(fmt.man_bits))
        | (sig & _U(fmt.man_mask))
    )
    inf = (sign << _U(fmt.width - 1)) | _U(fmt.inf(0))
    zero = sign << _U(fmt.width - 1)
    out = np.where(overflow, inf, out)
    out = np.where(underflow, zero, out)
    return out, overflow, underflow


def _wide_mul_grs(fmt: FPFormat, m1: np.ndarray, m2: np.ndarray):
    """Double-width mantissa product reduced to (sig, guard, rnd, sticky, top).

    For products wider than 64 bits the multiply runs on two uint64
    limbs: each significand splits at bit 32, the four 32x32 partial
    products are recombined with an explicit carry, and the GRS
    extraction indexes into the (hi, lo) limb pair.  Bit-exact with the
    scalar ``fixed_mul`` + ``extract_grs`` composition.
    """
    prod_bits = 2 * fmt.sig_bits
    mask32 = _U(0xFFFFFFFF)
    if prod_bits <= 64:
        product = m1 * m2
        top = (product >> _U(prod_bits - 1)) & _U(1)
        dropped = _U(fmt.sig_bits - 1) + top
        sig = product >> dropped
        guard = (product >> (dropped - _U(1))) & _U(1)
        rnd = (product >> (dropped - _U(2))) & _U(1)
        sticky_mask = (_U(1) << (dropped - _U(2))) - _U(1)
        sticky = ((product & sticky_mask) != 0).astype(np.uint64)
        return sig, guard, rnd, sticky, top

    a_lo, a_hi = m1 & mask32, m1 >> _U(32)
    b_lo, b_hi = m2 & mask32, m2 >> _U(32)
    ll = a_lo * b_lo
    mid = a_lo * b_hi + a_hi * b_lo  # < 2^(sig_bits+1) <= 2^61: no overflow
    hh = a_hi * b_hi
    p_lo = ll + (mid << _U(32))  # wraps mod 2^64 by construction
    carry = ((ll >> _U(32)) + (mid & mask32)) >> _U(32)
    p_hi = hh + (mid >> _U(32)) + carry

    # Leading product bit lives in the high limb (prod_bits - 1 >= 64).
    top = (p_hi >> _U(prod_bits - 1 - 64)) & _U(1)
    # Kept significand boundary: sig_bits - 1 + top bits are dropped.
    # 33 <= dropped <= 60 for supported formats, so guard/round/sticky
    # all index into the low limb while the significand straddles both.
    dropped = _U(fmt.sig_bits - 1) + top
    sig = (p_lo >> dropped) | (p_hi << (_U(64) - dropped))
    guard = (p_lo >> (dropped - _U(1))) & _U(1)
    rnd = (p_lo >> (dropped - _U(2))) & _U(1)
    sticky_mask = (_U(1) << (dropped - _U(2))) - _U(1)
    sticky = ((p_lo & sticky_mask) != 0).astype(np.uint64)
    return sig, guard, rnd, sticky, top


def vec_mul(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise FP multiply; returns the result bit patterns.

    With ``with_flags=True`` returns ``(bits, flags)`` where ``flags`` is
    a ``uint8`` array in the :meth:`FPFlags.to_bits` layout, element-wise
    identical to the scalar :func:`repro.fp.multiplier.fp_mul` flags.
    """
    check_vectorized_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)
    sign = s1 ^ s2

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = np.where(z1, _U(0), f1 | hidden)
    m2 = np.where(z2, _U(0), f2 | hidden)

    sig, guard, rnd, sticky, top = _wide_mul_grs(fmt, m1, m2)
    exp = e1.astype(np.int64) + e2.astype(np.int64) - fmt.bias + top.astype(np.int64)

    sig, inexact = _round_vec(sig, guard, rnd, sticky, mode)
    carry = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry != 0, sig >> _U(1), sig)
    exp = exp + carry.astype(np.int64)

    out, overflow, underflow = _pack_result(fmt, sign, exp, sig)

    # Specials, in priority order (NaN > 0*Inf > Inf > zero).
    any_nan = n1 | n2
    zero_times_inf = (z1 & i2) | (z2 & i1)
    any_inf = i1 | i2
    any_zero = z1 | z2
    signed_inf = (sign << _U(fmt.width - 1)) | _U(fmt.inf(0))
    signed_zero = sign << _U(fmt.width - 1)
    out = np.where(any_zero, signed_zero, out)
    out = np.where(any_inf, signed_inf, out)
    out = np.where(zero_times_inf | any_nan, _U(fmt.nan()), out)
    if not with_flags:
        return out

    flags = np.where(inexact, _FL_INEXACT, 0)
    flags = np.where(overflow, _FL_OVERFLOW | _FL_INEXACT, flags)
    flags = np.where(underflow, _FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO, flags)
    flags = np.where(any_zero, _FL_ZERO, flags)
    flags = np.where(any_inf, 0, flags)
    flags = np.where(zero_times_inf | any_nan, _FL_INVALID, flags)
    return out, flags.astype(np.uint8)


def vec_add(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise FP add; returns the result bit patterns.

    With ``with_flags=True`` returns ``(bits, flags)``, flags being the
    scalar :func:`repro.fp.adder.fp_add` sideband per element.
    """
    check_vectorized_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = f1 | hidden
    m2 = f2 | hidden

    # Swap so operand 1 has the larger magnitude (exponent, then mantissa).
    swap = (e2 > e1) | ((e2 == e1) & (m2 > m1))
    e_big = np.where(swap, e2, e1)
    e_small = np.where(swap, e1, e2)
    m_big = np.where(swap, m2, m1)
    m_small = np.where(swap, m1, m2)
    s_big = np.where(swap, s2, s1)
    s_small = np.where(swap, s1, s2)

    wide = fmt.sig_bits + 3  # <= 63 for supported formats: one uint64 limb
    diff = e_big - e_small
    shift = np.minimum(diff, _U(wide))
    big = m_big << _U(3)
    small_full = m_small << _U(3)
    small = np.where(diff >= wide, _U(0), small_full >> shift)
    drop_mask = np.where(
        diff >= wide, ~_U(0) >> _U(1), (_U(1) << shift) - _U(1)
    )
    sticky = ((small_full & drop_mask) != 0).astype(np.uint64)

    subtract = s_big != s_small
    total_add = big + small
    carry = (total_add >> _U(wide)) & _U(1)
    sticky_add = np.where(carry != 0, sticky | (total_add & _U(1)), sticky)
    total_add = np.where(carry != 0, total_add >> _U(1), total_add)
    exp_add = e_big.astype(np.int64) + carry.astype(np.int64)

    total_sub = big - small - sticky
    total = np.where(subtract, total_sub, total_add)
    sticky = np.where(subtract, sticky, sticky_add)
    exp = np.where(subtract, e_big.astype(np.int64), exp_add)

    cancel = subtract & (total == 0)

    # Normalize left: distance of the leading one from bit (wide-1).
    safe_total = np.where(total == 0, _U(1), total)
    # bit_length via float log2 is unsafe; use a shift loop over the
    # fixed, small width instead (wide <= 63 for supported formats).
    lz = np.zeros_like(total, dtype=np.int64)
    probe = safe_total
    for step in (32, 16, 8, 4, 2, 1):
        if step >= wide:
            continue
        mask = probe < (_U(1) << _U(wide - step))
        lz = lz + np.where(mask, step, 0)
        probe = np.where(mask, probe << _U(step), probe)
    total_n = safe_total << lz.astype(np.uint64)
    exp = exp - lz

    guard = (total_n >> _U(2)) & _U(1)
    rnd = (total_n >> _U(1)) & _U(1)
    st_bit = (total_n & _U(1)) | sticky
    sig = total_n >> _U(3)
    sig, inexact = _round_vec(sig, guard, rnd, st_bit, mode)
    carry2 = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry2 != 0, sig >> _U(1), sig)
    exp = exp + carry2.astype(np.int64)

    result_sign = s_big
    out, overflow, underflow = _pack_result(fmt, result_sign, exp, sig)
    out = np.where(cancel, _U(0), out)  # exact cancellation -> +0

    # Zero-operand fast paths (the denormal-free zero semantics).
    both_zero = z1 & z2
    one_zero = z1 ^ z2
    zero_sign = np.where(s1 == s2, s1, _U(0)) << _U(fmt.width - 1)
    pass_b = (s2 << _U(fmt.width - 1)) | (e2 << _U(fmt.man_bits)) | f2
    pass_a = (s1 << _U(fmt.width - 1)) | (e1 << _U(fmt.man_bits)) | f1
    out = np.where(z1 & ~z2, pass_b, out)
    out = np.where(z2 & ~z1, pass_a, out)
    out = np.where(both_zero, zero_sign, out)

    # Specials.
    inf_conflict = i1 & i2 & (s1 != s2)
    signed_inf1 = (s1 << _U(fmt.width - 1)) | _U(fmt.inf(0))
    signed_inf2 = (s2 << _U(fmt.width - 1)) | _U(fmt.inf(0))
    out = np.where(i1, signed_inf1, out)
    out = np.where(i2 & ~i1, signed_inf2, out)
    any_nan = n1 | n2
    out = np.where(inf_conflict | any_nan, _U(fmt.nan()), out)
    if not with_flags:
        return out

    flags = np.where(inexact, _FL_INEXACT, 0)
    flags = np.where(underflow, _FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO, flags)
    flags = np.where(overflow, _FL_OVERFLOW | _FL_INEXACT, flags)
    flags = np.where(cancel, _FL_ZERO, flags)
    flags = np.where(one_zero, 0, flags)
    flags = np.where(both_zero, _FL_ZERO, flags)
    flags = np.where(i1 | i2, 0, flags)
    flags = np.where(inf_conflict | any_nan, _FL_INVALID, flags)
    return out, flags.astype(np.uint8)


def vec_sub(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise FP subtract: sign-flip feeding :func:`vec_add`."""
    check_vectorized_format(fmt)
    b = _as_u64(fmt, b, "b")
    _, eb, fb = _unpack(fmt, b)
    nan_b = (eb == fmt.exp_max) & (fb != 0)
    flipped = b ^ (_U(1) << _U(fmt.width - 1))
    if not with_flags:
        out = vec_add(fmt, a, flipped, mode)
        return np.where(nan_b, _U(fmt.nan()), out)
    out, flags = vec_add(fmt, a, flipped, mode, with_flags=True)
    return np.where(nan_b, _U(fmt.nan()), out), flags


def vec_div(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise FP divide; bit- and flag-identical to ``fp_div``.

    The scalar datapath computes ``divmod(m1 << (man_bits + 3), m2)``,
    whose numerator exceeds 64 bits for wide formats; here the same
    quotient comes from a fixed-iteration restoring division — one
    compare/subtract per quotient bit, exactly the hardware recurrence —
    whose partial remainder always fits one ``uint64`` limb and whose
    final remainder drives the honest sticky bit.
    """
    check_vectorized_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)
    sign = s1 ^ s2

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = f1 | hidden
    m2 = f2 | hidden

    # Restoring division: q = floor((m1 << man_bits+3) / m2) with final
    # remainder r.  The pre-step keeps the invariant r < m2, so every
    # row's shifted remainder stays below 2^(man_bits+2) — one limb.
    ge = m1 >= m2
    q = ge.astype(np.uint64)
    r = m1 - m2 * q
    for _ in range(fmt.man_bits + 3):
        r = r << _U(1)
        ge = r >= m2
        geu = ge.astype(np.uint64)
        r = r - m2 * geu
        q = (q << _U(1)) | geu

    exp = e1.astype(np.int64) - e2.astype(np.int64) + fmt.bias
    rem_nz = (r != 0).astype(np.uint64)
    # Ratio >= 1 gives man_bits+4 quotient bits; ratio in (1/2, 1) gives
    # man_bits+3 bits and a one-position normalization.
    ge1 = (q >> _U(fmt.man_bits + 3)) != 0
    sig = np.where(ge1, q >> _U(3), q >> _U(2))
    guard = np.where(ge1, q >> _U(2), q >> _U(1)) & _U(1)
    rnd = np.where(ge1, q >> _U(1), q) & _U(1)
    sticky = np.where(ge1, (q & _U(1)) | rem_nz, rem_nz)
    exp = exp - np.where(ge1, 0, 1)

    sig, inexact = _round_vec(sig, guard, rnd, sticky, mode)
    carry = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry != 0, sig >> _U(1), sig)
    exp = exp + carry.astype(np.int64)

    out, overflow, underflow = _pack_result(fmt, sign, exp, sig)

    # Specials, lowest priority first (scalar checks NaN > Inf/Inf,0/0 >
    # Inf/x > x/Inf > x/0 > 0/x).
    signed_inf = (sign << _U(fmt.width - 1)) | _U(fmt.inf(0))
    signed_zero = sign << _U(fmt.width - 1)
    nan_case = n1 | n2 | (i1 & i2) | (z1 & z2)
    out = np.where(z1, signed_zero, out)
    out = np.where(z2, signed_inf, out)
    out = np.where(i2, signed_zero, out)
    out = np.where(i1, signed_inf, out)
    out = np.where(nan_case, _U(fmt.nan()), out)
    if not with_flags:
        return out

    flags = np.where(inexact, _FL_INEXACT, 0)
    flags = np.where(overflow, _FL_OVERFLOW | _FL_INEXACT, flags)
    flags = np.where(underflow, _FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO, flags)
    flags = np.where(z1, _FL_ZERO, flags)
    flags = np.where(z2, _FL_DIV_BY_ZERO, flags)
    flags = np.where(i2, _FL_ZERO, flags)
    flags = np.where(i1, 0, flags)
    flags = np.where(nan_case, _FL_INVALID, flags)
    return out, flags.astype(np.uint8)


def vec_sqrt(
    fmt: FPFormat,
    a: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise FP square root; bit- and flag-identical to ``fp_sqrt``.

    Runs the hardware two-bits-per-row restoring root recurrence (the
    same row form as :func:`repro.fp.sqrt.sqrt_recurrence`) with the
    partial remainder split across two base-2^32 limbs, because the
    widest formats push the intermediate ``(r << 2) | two`` past 64
    bits.  The radicand is never materialized: each row's two bits are
    read straight out of the adjusted significand.
    """
    check_vectorized_format(fmt)
    a = _as_u64(fmt, a, "a")
    s, e, f = _unpack(fmt, a)
    is_zero, is_inf, is_nan = _classify(fmt, e, f)

    hidden = _U(1) << _U(fmt.man_bits)
    m = f | hidden
    e_unb = e.astype(np.int64) - fmt.bias
    parity = e_unb % 2  # floor semantics: always 0 or 1
    m_adj = m << parity.astype(np.uint64)
    half_exp = (e_unb - parity) // 2

    # q = isqrt(m_adj << (man_bits + 6)) carries man_bits + 4 bits; the
    # recurrence consumes the radicand two bits per row from the top.
    wm = fmt.man_bits
    mask32 = _U(0xFFFFFFFF)
    q = np.zeros_like(m)
    rh = np.zeros_like(m)
    rl = np.zeros_like(m)
    for row in reversed(range(wm + 4)):
        sh = 2 * row - (wm + 6)
        if sh >= 0:
            two = (m_adj >> _U(sh)) & _U(3)
        elif sh == -1:
            two = (m_adj & _U(1)) << _U(1)
        else:
            two = _U(0)
        rl4 = (rl << _U(2)) | two
        rh = (rh << _U(2)) | (rl4 >> _U(32))
        rl = rl4 & mask32
        # trial = (q << 2) | 1, split into base-2^32 limbs
        th = q >> _U(30)
        tl = ((q << _U(2)) | _U(1)) & mask32
        ge = (rh > th) | ((rh == th) & (rl >= tl))
        geu = ge.astype(np.uint64)
        borrow = ((rl < tl) & ge).astype(np.uint64)
        rl = np.where(ge, (rl - tl) & mask32, rl)
        rh = np.where(ge, rh - th - borrow, rh)
        q = (q << _U(1)) | geu

    rem_nz = ((rh | rl) != 0).astype(np.uint64)
    guard = (q >> _U(2)) & _U(1)
    rnd = (q >> _U(1)) & _U(1)
    sticky = (q & _U(1)) | rem_nz
    sig, inexact = _round_vec(q >> _U(3), guard, rnd, sticky, mode)
    carry = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry != 0, sig >> _U(1), sig)
    exp_out = half_exp + fmt.bias + carry.astype(np.int64)

    # Normal inputs give strictly in-range exponents; special lanes pack
    # garbage here and are overridden below.
    out, _, _ = _pack_result(fmt, np.zeros_like(s), exp_out, sig)

    pos_inf = is_inf & (s == 0)
    negative = (s != 0) & ~is_zero & ~is_nan
    signed_zero = s << _U(fmt.width - 1)
    out = np.where(pos_inf, _U(fmt.inf(0)), out)
    out = np.where(negative, _U(fmt.nan()), out)
    out = np.where(is_zero, signed_zero, out)
    out = np.where(is_nan, _U(fmt.nan()), out)
    if not with_flags:
        return out

    flags = np.where(inexact, _FL_INEXACT, 0)
    flags = np.where(pos_inf, 0, flags)
    flags = np.where(negative, _FL_INVALID, flags)
    flags = np.where(is_zero, _FL_ZERO, flags)
    flags = np.where(is_nan, _FL_INVALID, flags)
    return out, flags.astype(np.uint8)


# --------------------------------------------------------------------- #
# fused multiply-add: a 6-limb base-2^32 windowed accumulator
# --------------------------------------------------------------------- #

_MASK32 = _U(0xFFFFFFFF)
_FMA_LIMBS = 6  # 192 bits: holds the 3*sig_bits+2-bit alignment window


def _bitlen32(x: np.ndarray) -> np.ndarray:
    """Per-element bit length of a < 2^32 value (0 for 0); int64."""
    n = np.zeros(x.shape, dtype=np.int64)
    probe = x.astype(np.uint64)
    for step in (16, 8, 4, 2, 1):
        big = probe >= (_U(1) << _U(step))
        n = n + np.where(big, step, 0)
        probe = np.where(big, probe >> _U(step), probe)
    return n + (probe != 0)


def _limbs_from_shift(value: np.ndarray, sh: np.ndarray) -> list:
    """``value << sh`` (value < 2^61, sh >= 0 per element) as base-2^32
    limbs, least significant first."""
    limbs = []
    for j in range(_FMA_LIMBS):
        d = np.int64(32 * j) - sh
        dl = np.clip(-d, 0, 63).astype(np.uint64)
        dr = np.clip(d, 0, 63).astype(np.uint64)
        piece = np.where(d >= 0, value >> dr, value << dl) & _MASK32
        piece = np.where((d >= 64) | (d <= -32), _U(0), piece)
        limbs.append(piece)
    return limbs


def vec_fma(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    with_flags: bool = False,
):
    """Element-wise fused ``a*b + c`` with a single rounding.

    Bit- and flag-identical to the scalar :func:`repro.fp.mac.fp_fma`
    for every supported format and both rounding modes.  The exact
    product (two-limb 32x32 recombination, as in :func:`_wide_mul_grs`)
    and the aligned addend meet in a 192-bit base-2^32 window anchored
    two guard positions below the product LSB; an addend entirely below
    the window folds into an honest sticky borrow, an addend entirely
    above it swaps the anchor to the addend side with the product as
    sticky — so the single rounding sees exactly the value a hardware
    FMA with a ``3*sig_bits+2``-bit alignment datapath would.
    """
    check_vectorized_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    c = _as_u64(fmt, c, "c")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    s3, e3, f3 = _unpack(fmt, c)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)
    z3, i3, n3 = _classify(fmt, e3, f3)
    ps = s1 ^ s2

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = f1 | hidden
    m2 = f2 | hidden
    mc = f3 | hidden
    wm = fmt.man_bits
    sb = fmt.sig_bits

    # Exact double-width product as base-2^32 limbs (cf. _wide_mul_grs).
    a0, a1 = m1 & _MASK32, m1 >> _U(32)
    b0, b1 = m2 & _MASK32, m2 >> _U(32)
    pp00 = a0 * b0
    pp01 = a0 * b1
    pp10 = a1 * b0
    pp11 = a1 * b1
    acc1 = (pp00 >> _U(32)) + (pp01 & _MASK32) + (pp10 & _MASK32)
    acc2 = (acc1 >> _U(32)) + (pp01 >> _U(32)) + (pp10 >> _U(32)) + (pp11 & _MASK32)
    acc3 = (acc2 >> _U(32)) + (pp11 >> _U(32))
    p_limbs = [pp00 & _MASK32, acc1 & _MASK32, acc2 & _MASK32, acc3 & _MASK32]
    # Window W = product << 2 (two guard positions below the product LSB).
    w = []
    prev = _U(0)
    for limb in p_limbs:
        w.append(((limb << _U(2)) | prev) & _MASK32)
        prev = limb >> _U(30)
    w.append(prev)
    w.append(np.zeros_like(m1))

    # LSB scales: product at Ep, addend at Ec; window LSB at Ep - 2.
    ep = e1.astype(np.int64) + e2.astype(np.int64) - 2 * fmt.bias - 2 * wm
    ec = e3.astype(np.int64) - fmt.bias - wm
    sh_raw = ec - ep + 2  # addend LSB position within the window

    czero = z3
    sub = (ps != s3) & ~czero
    # Case split: below-window addend (sticky borrow), in-window exact
    # alignment, above-window addend (anchor swap, product as sticky).
    case1 = (sh_raw < 0) | czero
    case3 = ~case1 & (sh_raw > 2 * sb + 6)
    case2 = ~case1 & ~case3

    # Case 1: A = mc >> rs with the dropped bits as sticky.
    rs = np.clip(-sh_raw, 0, 63).astype(np.uint64)
    a_small = np.where(czero, _U(0), mc >> rs)
    sticky_a = case1 & ~czero & ((mc & ((_U(1) << rs) - _U(1))) != 0)
    # Case 2: A = mc << sh_raw, exact in the 192-bit window.
    val = np.where(case1, a_small, np.where(case2, mc, _U(0)))
    shv = np.where(case2, sh_raw, 0)
    al = _limbs_from_shift(val, shv)

    # W - A - sticky_borrow, W + A, and A - W, all exact; select later.
    borrow = sticky_a.astype(np.uint64)
    base = _U(1) << _U(32)
    diff = []
    br = borrow
    for j in range(_FMA_LIMBS):
        t = w[j] + base - al[j] - br
        diff.append(t & _MASK32)
        br = (t >> _U(32)) ^ _U(1)
    neg = br != 0  # |addend| > |product| (case 2 only)
    rdiff = []
    br = _U(0)
    for j in range(_FMA_LIMBS):
        t = al[j] + base - w[j] - br
        rdiff.append(t & _MASK32)
        br = (t >> _U(32)) ^ _U(1)
    sadd = []
    cy = _U(0)
    for j in range(_FMA_LIMBS):
        t = w[j] + al[j] + cy
        sadd.append(t & _MASK32)
        cy = t >> _U(32)

    # Case 3: the product is a pure sticky below the addend's window,
    # anchored at Ec - 3; the classic (X << 3) - 1 keeps the floor exact.
    c3 = (mc << _U(3)) - np.where(sub, _U(1), _U(0))
    s_limbs = []
    for j in range(_FMA_LIMBS):
        limb = np.where(sub, np.where(neg, rdiff[j], diff[j]), sadd[j])
        if j == 0:
            limb = np.where(case3, c3 & _MASK32, limb)
        elif j == 1:
            limb = np.where(case3, c3 >> _U(32), limb)
        else:
            limb = np.where(case3, _U(0), limb)
        s_limbs.append(limb)
    sticky_extra = np.where(case3, True, sticky_a)
    anchor = np.where(case3, ec - 3, ep - 2)
    res_sign = np.where(case3, s3, np.where(sub & neg, s3, ps))

    nz = s_limbs[0]
    for limb in s_limbs[1:]:
        nz = nz | limb
    cancel = (nz == 0) & sub & case2

    # Leading-bit index across the limbs (0 for the all-zero lanes,
    # which are overridden below).
    msb = np.full(nz.shape, -1, dtype=np.int64)
    for j in reversed(range(_FMA_LIMBS)):
        hit = (msb < 0) & (s_limbs[j] != 0)
        msb = np.where(hit, 32 * j + _bitlen32(s_limbs[j]) - 1, msb)
    msb = np.maximum(msb, 0)

    # encode_fraction keeps sig_bits + 2 bits: gather them across limbs
    # and fold everything below into sticky.
    k = msb - (sb + 1)  # may be negative: small cancellation results
    t_bits = np.zeros_like(nz)
    for j in range(_FMA_LIMBS):
        d = np.int64(32 * j) - k
        dl = np.clip(d, 0, 63).astype(np.uint64)
        dr = np.clip(-d, 0, 63).astype(np.uint64)
        piece = np.where(d >= 0, s_limbs[j] << dl, s_limbs[j] >> dr)
        piece = np.where((d >= 64) | (d <= -32), _U(0), piece)
        t_bits = t_bits | piece
    t_bits = t_bits & ((_U(1) << _U(sb + 2)) - _U(1))
    st_low = sticky_extra.copy()
    for j in range(_FMA_LIMBS):
        lo = np.clip(k - 32 * j, 0, 32).astype(np.uint64)
        st_low = st_low | ((s_limbs[j] & ((_U(1) << lo) - _U(1))) != 0)

    sig = t_bits >> _U(2)
    guard = (t_bits >> _U(1)) & _U(1)
    rnd = t_bits & _U(1)
    sig, inexact = _round_vec(sig, guard, rnd, st_low.astype(np.uint64), mode)
    carry = (sig >> _U(sb)) & _U(1)
    sig = np.where(carry != 0, sig >> _U(1), sig)
    exp_b = anchor + msb + fmt.bias + carry.astype(np.int64)

    out, overflow, underflow = _pack_result(fmt, res_sign, exp_b, sig)
    flags = np.where(inexact, _FL_INEXACT, 0)
    flags = np.where(overflow, _FL_OVERFLOW | _FL_INEXACT, flags)
    flags = np.where(underflow, _FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO, flags)

    # Zero layer: exact cancellation -> +0; zero product passes the
    # addend through untouched; all-zero keeps the IEEE sign rule.
    pzero = z1 | z2
    out = np.where(cancel, _U(0), out)
    flags = np.where(cancel, _FL_ZERO, flags)
    out = np.where(pzero & ~czero, c, out)
    flags = np.where(pzero & ~czero, 0, flags)
    all_zero_sign = np.where(ps == s3, ps, _U(0))
    out = np.where(pzero & czero, all_zero_sign << _U(fmt.width - 1), out)
    flags = np.where(pzero & czero, _FL_ZERO, flags)

    # Specials, lowest priority first (scalar checks NaN > 0*Inf >
    # Inf-Inf conflict > product Inf > addend Inf).
    p_inf = i1 | i2
    inf_ps = (ps << _U(fmt.width - 1)) | _U(fmt.inf(0))
    inf_sc = (s3 << _U(fmt.width - 1)) | _U(fmt.inf(0))
    conflict = p_inf & i3 & (s3 != ps)
    zero_times_inf = p_inf & pzero
    any_nan = n1 | n2 | n3
    out = np.where(i3, inf_sc, out)
    flags = np.where(i3, 0, flags)
    out = np.where(p_inf, inf_ps, out)
    flags = np.where(p_inf, 0, flags)
    nan_case = conflict | zero_times_inf | any_nan
    out = np.where(nan_case, _U(fmt.nan()), out)
    flags = np.where(nan_case, _FL_INVALID, flags)
    if not with_flags:
        return out
    return out, flags.astype(np.uint8)
