"""NumPy-vectorized floating-point operations (bit-exact, array-scale).

Simulating large kernels one scalar op at a time is the bottleneck of
the cycle-accurate models; this module re-implements the adder and
multiplier datapaths as vectorized NumPy pipelines over ``uint64``
arrays, bit-for-bit identical to the scalar datapaths (the test suite
proves it element-wise, specials included).

Supported formats: total width <= 32 bits and at least 3 fraction bits
(intermediates — double-width products, GRS-extended sums — must fit in
``uint64``).  That covers fp32, fp16-style custom formats and every
narrow DSP format; fp48/fp64 stay on the scalar path.

Semantics match :mod:`repro.fp.adder` / :mod:`repro.fp.multiplier`
exactly: denormal-free (flush to zero), round-to-nearest-even or
truncation, IEEE special handling, canonical NaN.
"""

from __future__ import annotations

import numpy as np

from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode

_U = np.uint64


def _check_format(fmt: FPFormat) -> None:
    if fmt.width > 32:
        raise ValueError(
            f"vectorized ops support widths <= 32 bits, got {fmt.width} "
            f"({fmt.name}); use the scalar datapaths for wide formats"
        )
    if fmt.man_bits < 3:
        raise ValueError("vectorized ops require at least 3 fraction bits")


def _as_u64(fmt: FPFormat, a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype.kind not in "ui":
        raise TypeError(f"{name} must be an unsigned integer array")
    arr = arr.astype(np.uint64)
    if arr.size and int(arr.max()) > fmt.word_mask:
        raise ValueError(f"{name} contains words outside {fmt.name}")
    return arr


def _unpack(fmt: FPFormat, bits: np.ndarray):
    sign = (bits >> _U(fmt.width - 1)) & _U(1)
    exp = (bits >> _U(fmt.man_bits)) & _U(fmt.exp_mask)
    man = bits & _U(fmt.man_mask)
    return sign, exp, man


def _classify(fmt: FPFormat, exp: np.ndarray, man: np.ndarray):
    is_zero = exp == 0
    is_max = exp == fmt.exp_max
    is_inf = is_max & (man == 0)
    is_nan = is_max & (man != 0)
    return is_zero, is_inf, is_nan


def _round_vec(
    sig: np.ndarray,
    guard: np.ndarray,
    rnd: np.ndarray,
    sticky: np.ndarray,
    mode: RoundingMode,
):
    """Vector rounding; returns (sig, inexact)."""
    inexact = (guard | rnd | sticky) != 0
    if mode is RoundingMode.TRUNCATE:
        return sig, inexact
    round_up = (guard != 0) & ((rnd != 0) | (sticky != 0) | ((sig & _U(1)) != 0))
    return sig + round_up.astype(np.uint64), inexact


def _pack_result(
    fmt: FPFormat,
    sign: np.ndarray,
    exp: np.ndarray,  # int64, may be out of range
    sig: np.ndarray,  # includes hidden bit
) -> np.ndarray:
    """Saturate/flush out-of-range exponents and pack."""
    overflow = exp >= fmt.exp_max
    underflow = exp <= 0
    exp_c = np.clip(exp, 1, fmt.exp_max - 1).astype(np.uint64)
    out = (
        (sign << _U(fmt.width - 1))
        | (exp_c << _U(fmt.man_bits))
        | (sig & _U(fmt.man_mask))
    )
    inf = (sign << _U(fmt.width - 1)) | _U(fmt.inf(0))
    zero = sign << _U(fmt.width - 1)
    out = np.where(overflow, inf, out)
    out = np.where(underflow, zero, out)
    return out


def vec_mul(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Element-wise FP multiply; returns the result bit patterns."""
    _check_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)
    sign = s1 ^ s2

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = np.where(z1, _U(0), f1 | hidden)
    m2 = np.where(z2, _U(0), f2 | hidden)

    product = m1 * m2
    exp = e1.astype(np.int64) + e2.astype(np.int64) - fmt.bias

    prod_bits = 2 * fmt.sig_bits
    top = ((product >> _U(prod_bits - 1)) & _U(1)).astype(np.int64)
    exp = exp + top
    dropped = (np.int64(fmt.man_bits) + top).astype(np.uint64)  # sig_bits-1+top
    dropped = dropped + _U(fmt.sig_bits - 1 - fmt.man_bits)  # == sig-1+top
    sig = product >> dropped
    guard = (product >> (dropped - _U(1))) & _U(1)
    rnd = (product >> (dropped - _U(2))) & _U(1)
    sticky_mask = (_U(1) << (dropped - _U(2))) - _U(1)
    sticky = (product & sticky_mask) != 0

    sig, _ = _round_vec(sig, guard, rnd, sticky.astype(np.uint64), mode)
    carry = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry != 0, sig >> _U(1), sig)
    exp = exp + carry.astype(np.int64)

    out = _pack_result(fmt, sign, exp, sig)

    # Specials, in priority order (NaN > 0*Inf > Inf > zero).
    any_nan = n1 | n2
    zero_times_inf = (z1 & i2) | (z2 & i1)
    any_inf = i1 | i2
    any_zero = z1 | z2
    signed_inf = (sign << _U(fmt.width - 1)) | _U(fmt.inf(0))
    signed_zero = sign << _U(fmt.width - 1)
    out = np.where(any_zero, signed_zero, out)
    out = np.where(any_inf, signed_inf, out)
    out = np.where(zero_times_inf | any_nan, _U(fmt.nan()), out)
    return out


def vec_add(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Element-wise FP add; returns the result bit patterns."""
    _check_format(fmt)
    a = _as_u64(fmt, a, "a")
    b = _as_u64(fmt, b, "b")
    s1, e1, f1 = _unpack(fmt, a)
    s2, e2, f2 = _unpack(fmt, b)
    z1, i1, n1 = _classify(fmt, e1, f1)
    z2, i2, n2 = _classify(fmt, e2, f2)

    hidden = _U(1) << _U(fmt.man_bits)
    m1 = f1 | hidden
    m2 = f2 | hidden

    # Swap so operand 1 has the larger magnitude (exponent, then mantissa).
    swap = (e2 > e1) | ((e2 == e1) & (m2 > m1))
    e_big = np.where(swap, e2, e1)
    e_small = np.where(swap, e1, e2)
    m_big = np.where(swap, m2, m1)
    m_small = np.where(swap, m1, m2)
    s_big = np.where(swap, s2, s1)
    s_small = np.where(swap, s1, s2)

    wide = fmt.sig_bits + 3
    diff = e_big - e_small
    shift = np.minimum(diff, _U(wide))
    big = m_big << _U(3)
    small_full = m_small << _U(3)
    small = np.where(diff >= wide, _U(0), small_full >> shift)
    drop_mask = np.where(
        diff >= wide, ~_U(0) >> _U(1), (_U(1) << shift) - _U(1)
    )
    sticky = ((small_full & drop_mask) != 0).astype(np.uint64)

    subtract = s_big != s_small
    total_add = big + small
    carry = (total_add >> _U(wide)) & _U(1)
    sticky_add = np.where(carry != 0, sticky | (total_add & _U(1)), sticky)
    total_add = np.where(carry != 0, total_add >> _U(1), total_add)
    exp_add = e_big.astype(np.int64) + carry.astype(np.int64)

    total_sub = big - small - sticky
    total = np.where(subtract, total_sub, total_add)
    sticky = np.where(subtract, sticky, sticky_add)
    exp = np.where(subtract, e_big.astype(np.int64), exp_add)

    cancel = subtract & (total == 0)

    # Normalize left: distance of the leading one from bit (wide-1).
    safe_total = np.where(total == 0, _U(1), total)
    # bit_length via float log2 is unsafe; use a shift loop over the
    # fixed, small width instead (wide <= 35 for 32-bit formats).
    lz = np.zeros_like(total, dtype=np.int64)
    probe = safe_total
    for step in (16, 8, 4, 2, 1):
        if step >= wide:
            continue
        mask = probe < (_U(1) << _U(wide - step))
        lz = lz + np.where(mask, step, 0)
        probe = np.where(mask, probe << _U(step), probe)
    total_n = safe_total << lz.astype(np.uint64)
    exp = exp - lz

    guard = (total_n >> _U(2)) & _U(1)
    rnd = (total_n >> _U(1)) & _U(1)
    st_bit = (total_n & _U(1)) | sticky
    sig = total_n >> _U(3)
    sig, _ = _round_vec(sig, guard, rnd, st_bit, mode)
    carry2 = (sig >> _U(fmt.sig_bits)) & _U(1)
    sig = np.where(carry2 != 0, sig >> _U(1), sig)
    exp = exp + carry2.astype(np.int64)

    result_sign = s_big
    out = _pack_result(fmt, result_sign, exp, sig)
    out = np.where(cancel, _U(0), out)  # exact cancellation -> +0

    # Zero-operand fast paths (the denormal-free zero semantics).
    both_zero = z1 & z2
    zero_sign = np.where(s1 == s2, s1, _U(0)) << _U(fmt.width - 1)
    pass_b = (s2 << _U(fmt.width - 1)) | (e2 << _U(fmt.man_bits)) | f2
    pass_a = (s1 << _U(fmt.width - 1)) | (e1 << _U(fmt.man_bits)) | f1
    out = np.where(z1 & ~z2, pass_b, out)
    out = np.where(z2 & ~z1, pass_a, out)
    out = np.where(both_zero, zero_sign, out)

    # Specials.
    inf_conflict = i1 & i2 & (s1 != s2)
    signed_inf1 = (s1 << _U(fmt.width - 1)) | _U(fmt.inf(0))
    signed_inf2 = (s2 << _U(fmt.width - 1)) | _U(fmt.inf(0))
    out = np.where(i1, signed_inf1, out)
    out = np.where(i2 & ~i1, signed_inf2, out)
    out = np.where(inf_conflict | n1 | n2, _U(fmt.nan()), out)
    return out


def vec_sub(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Element-wise FP subtract: sign-flip feeding :func:`vec_add`."""
    _check_format(fmt)
    b = _as_u64(fmt, b, "b")
    _, eb, fb = _unpack(fmt, b)
    nan_b = (eb == fmt.exp_max) & (fb != 0)
    flipped = b ^ (_U(1) << _U(fmt.width - 1))
    out = vec_add(fmt, a, flipped, mode)
    return np.where(nan_b, _U(fmt.nan()), out)
