"""Packed SIMD-within-a-lane execution over uint64 limbs.

FPGA multi-precision multipliers (CIVP-style) partition one wide
datapath into independent sub-lanes — 2x(<=32-bit) or 4x(<=16-bit)
operands per word — so the same hardware pass computes 2-4 narrow
results.  This module is the NumPy rendition of that trick: logical
operands pack into ``uint64`` limbs (lane 0 in the least-significant
sub-word), and the add/sub/mul datapaths run over a **zero-copy narrow
view** of the limb buffer (``uint16`` lanes for 4-way, ``uint32`` lanes
for 2-way).  One NumPy pass over the limb array therefore performs
``width`` logical operations per limb, at 2-4x the element throughput
of the unpacked :mod:`repro.fp.vectorized` path.

Guard-band / carry-isolation argument
-------------------------------------
Packing is only admitted when every intermediate of the lane datapath
fits its sub-word with headroom:

* The GRS-extended adder operates on ``man_bits + 4``-bit addends
  (significand + hidden bit + 3 guard positions), whose sum carries
  into bit ``man_bits + 4`` — so a lane needs ``man_bits + 5`` bits.
  Admission requires ``man_bits <= slot - 5`` (slot = 16 or 32), which
  is exactly a >= 1-bit guard band above the widest in-lane value.
* The double-width mantissa product (``2 * sig_bits`` bits) widens to
  the next dtype (uint16 -> uint32, uint32 -> uint64) for the multiply
  step only, then reduces back to lane width before packing.

Because the lanes are *separate array elements* of the narrow view —
not bit-fields sharing one integer — carries physically cannot cross
sub-lanes: the dtype boundary is the partition.  The limb layout is
only a storage/transport format; arithmetic never runs on the limb as
a single 64-bit integer.

Every packed op is bit- and flag-identical to the unpacked vectorized
path (the scalar-proven oracle); the differential campaign
(:mod:`repro.verify.differential`) proves it element-wise, pad lanes
and specials included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.vectorized import (
    _as_u64,
    check_vectorized_format,
    supports_vectorized,
)

# FPFlags.to_bits() bit positions (the 6-bit RTL sideband layout).
_FL_ZERO = 1
_FL_INVALID = 2
_FL_INEXACT = 4
_FL_UNDERFLOW = 8
_FL_OVERFLOW = 16


@dataclass(frozen=True)
class _LaneSpec:
    """Dtypes of one packing degree: sub-word, signed exponent, widened."""

    slot: int  # sub-lane width in bits
    u: type  # unsigned lane dtype
    i: type  # signed dtype for exponent arithmetic
    w: type  # widened dtype for the mantissa product only


_LANE_SPECS: dict[int, _LaneSpec] = {
    4: _LaneSpec(slot=16, u=np.uint16, i=np.int16, w=np.uint32),
    2: _LaneSpec(slot=32, u=np.uint32, i=np.int32, w=np.uint64),
}

#: Supported packing degrees (logical operands per uint64 limb).
PACK_WIDTHS: tuple[int, ...] = tuple(sorted(_LANE_SPECS))


def supports_packing(fmt: FPFormat, width: int) -> bool:
    """True when ``fmt`` can run ``width``-way packed."""
    spec = _LANE_SPECS.get(width)
    if spec is None or not supports_vectorized(fmt):
        return False
    return fmt.width <= spec.slot and fmt.man_bits <= spec.slot - 5


def packing_width(fmt: FPFormat) -> int:
    """Best packing degree for ``fmt``: 4, 2, or 1 (unpackable)."""
    for width in (4, 2):
        if supports_packing(fmt, width):
            return width
    return 1


def check_packed_format(fmt: FPFormat, width: int) -> None:
    """Shared format guard for every packed op.

    Raises one precise :class:`ValueError` naming the violated limit:
    an invalid packing degree, the shared vectorized format floor
    (:func:`repro.fp.vectorized.check_vectorized_format`), or the
    sub-lane slot/guard-band bound of the requested degree.
    """
    spec = _LANE_SPECS.get(width)
    if spec is None:
        raise ValueError(
            f"packing width must be one of {', '.join(map(str, PACK_WIDTHS))}"
            f"; got {width}"
        )
    check_vectorized_format(fmt)
    if not supports_packing(fmt, width):
        raise ValueError(
            f"{width}-way packing supports total width <= {spec.slot} bits "
            f"with fraction bits <= {spec.slot - 5} (a {spec.slot}-bit "
            f"sub-lane keeps a guard band above the {5}-bit-extended adder "
            f"sum); got {fmt.name} (width {fmt.width}, {fmt.man_bits} "
            "fraction bits) — use a lower packing degree or the unpacked "
            "vectorized path"
        )


# --------------------------------------------------------------------- #
# Limb packing / unpacking
# --------------------------------------------------------------------- #


def pack_words(
    fmt: FPFormat, words: np.ndarray, width: int
) -> tuple[np.ndarray, int]:
    """Pack a 1-D array of bit patterns into uint64 limbs.

    Returns ``(limbs, count)``: ``count`` is the logical element count;
    the tail limb is padded with ``+0`` lanes when ``count`` is not a
    multiple of ``width``.  Lane ``j`` of limb ``i`` (logical element
    ``i * width + j``) occupies bits ``[j * slot, (j + 1) * slot)``.
    """
    check_packed_format(fmt, width)
    spec = _LANE_SPECS[width]
    arr = _as_u64(fmt, words, "words")
    if arr.ndim != 1:
        raise ValueError(f"pack_words expects a 1-D array, got shape {arr.shape}")
    count = arr.size
    pad = (-count) % width
    lanes = np.zeros(count + pad, dtype=spec.u)
    lanes[:count] = arr.astype(spec.u)
    return lanes.view(np.uint64), count


def unpack_words(
    fmt: FPFormat, limbs: np.ndarray, count: int, width: int
) -> np.ndarray:
    """Unpack uint64 limbs back into ``count`` logical uint64 words."""
    check_packed_format(fmt, width)
    spec = _LANE_SPECS[width]
    limbs = np.ascontiguousarray(np.asarray(limbs, dtype=np.uint64))
    lanes = limbs.view(spec.u)
    if count > lanes.size:
        raise ValueError(f"count {count} exceeds {lanes.size} packed lanes")
    return lanes[:count].astype(np.uint64)


def _lanes_of(fmt: FPFormat, limbs: np.ndarray, spec: _LaneSpec, name: str):
    limbs = np.ascontiguousarray(np.asarray(limbs, dtype=np.uint64))
    lanes = limbs.view(spec.u)
    if lanes.size and int(lanes.max()) > fmt.word_mask:
        raise ValueError(f"{name} contains packed lanes outside {fmt.name}")
    return lanes


# --------------------------------------------------------------------- #
# Lane datapaths — line-for-line mirrors of vec_mul / vec_add in the
# narrow lane dtype (see repro.fp.vectorized for the commented originals)
# --------------------------------------------------------------------- #


def _lane_unpack(fmt: FPFormat, spec: _LaneSpec, bits):
    U = spec.u
    sign = (bits >> U(fmt.width - 1)) & U(1)
    exp = (bits >> U(fmt.man_bits)) & U(fmt.exp_mask)
    man = bits & U(fmt.man_mask)
    return sign, exp, man


def _lane_classify(fmt: FPFormat, exp, man):
    is_zero = exp == 0
    is_max = exp == fmt.exp_max
    is_inf = is_max & (man == 0)
    is_nan = is_max & (man != 0)
    return is_zero, is_inf, is_nan


def _lane_round(spec: _LaneSpec, sig, guard, rnd, sticky, mode: RoundingMode):
    U = spec.u
    inexact = (guard | rnd | sticky) != 0
    if mode is RoundingMode.TRUNCATE:
        return sig, inexact
    round_up = (guard != 0) & ((rnd != 0) | (sticky != 0) | ((sig & U(1)) != 0))
    return sig + round_up.astype(U), inexact


def _lane_pack_result(fmt: FPFormat, spec: _LaneSpec, sign, exp, sig):
    U = spec.u
    overflow = exp >= fmt.exp_max
    underflow = exp <= 0
    exp_c = np.clip(exp, 1, fmt.exp_max - 1).astype(U)
    out = (
        (sign << U(fmt.width - 1))
        | (exp_c << U(fmt.man_bits))
        | (sig & U(fmt.man_mask))
    )
    inf = (sign << U(fmt.width - 1)) | U(fmt.inf(0))
    zero = sign << U(fmt.width - 1)
    out = np.where(overflow, inf, out)
    out = np.where(underflow, zero, out)
    return out, overflow, underflow


def _mul_lanes(fmt: FPFormat, spec: _LaneSpec, al, bl, mode: RoundingMode):
    U, I, W = spec.u, spec.i, spec.w
    s1, e1, f1 = _lane_unpack(fmt, spec, al)
    s2, e2, f2 = _lane_unpack(fmt, spec, bl)
    z1, i1, n1 = _lane_classify(fmt, e1, f1)
    z2, i2, n2 = _lane_classify(fmt, e2, f2)
    sign = s1 ^ s2

    hidden = U(1) << U(fmt.man_bits)
    m1 = np.where(z1, U(0), f1 | hidden)
    m2 = np.where(z2, U(0), f2 | hidden)

    # Double-width product in the widened dtype; 2*sig_bits <= 2*(slot-4)
    # always fits.  GRS extraction matches _wide_mul_grs's one-limb
    # branch, with sig/guard/round pulled from one sig_bits+2-bit window
    # so only two variable shifts run at the widened width.
    prod = m1.astype(W) * m2
    prod_bits = 2 * fmt.sig_bits
    top = ((prod >> W(prod_bits - 1)) & W(1)).astype(U)
    dropped = (U(fmt.sig_bits - 1) + top).astype(W)
    window = (prod >> (dropped - W(2))).astype(U)
    sig = window >> U(2)
    guard = (window >> U(1)) & U(1)
    rnd = window & U(1)
    sticky_mask = (W(1) << (dropped - W(2))) - W(1)
    sticky = ((prod & sticky_mask) != 0).astype(U)
    exp = (
        e1.astype(I) + e2.astype(I) - I(fmt.bias) + top.astype(I)
    )

    sig, inexact = _lane_round(spec, sig, guard, rnd, sticky, mode)
    carry = (sig >> U(fmt.sig_bits)) & U(1)
    sig = np.where(carry != 0, sig >> U(1), sig)
    exp = exp + carry.astype(I)

    out, overflow, underflow = _lane_pack_result(fmt, spec, sign, exp, sig)

    # Specials, in priority order (NaN > 0*Inf > Inf > zero).
    any_nan = n1 | n2
    zero_times_inf = (z1 & i2) | (z2 & i1)
    any_inf = i1 | i2
    any_zero = z1 | z2
    signed_inf = (sign << U(fmt.width - 1)) | U(fmt.inf(0))
    signed_zero = sign << U(fmt.width - 1)
    out = np.where(any_zero, signed_zero, out)
    out = np.where(any_inf, signed_inf, out)
    out = np.where(zero_times_inf | any_nan, U(fmt.nan()), out)

    flags = np.where(inexact, U(_FL_INEXACT), U(0))
    flags = np.where(overflow, U(_FL_OVERFLOW | _FL_INEXACT), flags)
    flags = np.where(
        underflow, U(_FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO), flags
    )
    flags = np.where(any_zero, U(_FL_ZERO), flags)
    flags = np.where(any_inf, U(0), flags)
    flags = np.where(zero_times_inf | any_nan, U(_FL_INVALID), flags)
    return out, flags.astype(np.uint8)


def _add_lanes(fmt: FPFormat, spec: _LaneSpec, al, bl, mode: RoundingMode):
    U, I = spec.u, spec.i
    s1, e1, f1 = _lane_unpack(fmt, spec, al)
    s2, e2, f2 = _lane_unpack(fmt, spec, bl)
    z1, i1, n1 = _lane_classify(fmt, e1, f1)
    z2, i2, n2 = _lane_classify(fmt, e2, f2)

    hidden = U(1) << U(fmt.man_bits)
    m1 = f1 | hidden
    m2 = f2 | hidden

    swap = (e2 > e1) | ((e2 == e1) & (m2 > m1))
    e_big = np.where(swap, e2, e1)
    e_small = np.where(swap, e1, e2)
    m_big = np.where(swap, m2, m1)
    m_small = np.where(swap, m1, m2)
    s_big = np.where(swap, s2, s1)
    s_small = np.where(swap, s1, s2)

    # wide = man_bits + 4 <= slot - 1: the guard band that makes the
    # carry bit of total_add representable inside the lane dtype.
    wide = fmt.sig_bits + 3
    diff = e_big - e_small
    shift = np.minimum(diff, U(wide))
    big = m_big << U(3)
    small_full = m_small << U(3)
    small = np.where(diff >= wide, U(0), small_full >> shift)
    drop_mask = np.where(
        diff >= wide, ~U(0) >> U(1), (U(1) << shift) - U(1)
    )
    sticky = ((small_full & drop_mask) != 0).astype(U)

    subtract = s_big != s_small
    total_add = big + small
    carry = (total_add >> U(wide)) & U(1)
    sticky_add = np.where(carry != 0, sticky | (total_add & U(1)), sticky)
    total_add = np.where(carry != 0, total_add >> U(1), total_add)
    exp_add = e_big.astype(I) + carry.astype(I)

    total_sub = big - small - sticky
    total = np.where(subtract, total_sub, total_add)
    sticky = np.where(subtract, sticky, sticky_add)
    exp = np.where(subtract, e_big.astype(I), exp_add)

    cancel = subtract & (total == 0)

    safe_total = np.where(total == 0, U(1), total)
    lz = np.zeros_like(total, dtype=I)
    probe = safe_total
    for step in (32, 16, 8, 4, 2, 1):
        if step >= wide:
            continue
        mask = probe < (U(1) << U(wide - step))
        lz = lz + np.where(mask, I(step), I(0))
        probe = np.where(mask, probe << U(step), probe)
    total_n = safe_total << lz.astype(U)
    exp = exp - lz

    guard = (total_n >> U(2)) & U(1)
    rnd = (total_n >> U(1)) & U(1)
    st_bit = (total_n & U(1)) | sticky
    sig = total_n >> U(3)
    sig, inexact = _lane_round(spec, sig, guard, rnd, st_bit, mode)
    carry2 = (sig >> U(fmt.sig_bits)) & U(1)
    sig = np.where(carry2 != 0, sig >> U(1), sig)
    exp = exp + carry2.astype(I)

    result_sign = s_big
    out, overflow, underflow = _lane_pack_result(fmt, spec, result_sign, exp, sig)
    out = np.where(cancel, U(0), out)  # exact cancellation -> +0

    both_zero = z1 & z2
    one_zero = z1 ^ z2
    zero_sign = np.where(s1 == s2, s1, U(0)) << U(fmt.width - 1)
    pass_b = (s2 << U(fmt.width - 1)) | (e2 << U(fmt.man_bits)) | f2
    pass_a = (s1 << U(fmt.width - 1)) | (e1 << U(fmt.man_bits)) | f1
    out = np.where(z1 & ~z2, pass_b, out)
    out = np.where(z2 & ~z1, pass_a, out)
    out = np.where(both_zero, zero_sign, out)

    inf_conflict = i1 & i2 & (s1 != s2)
    signed_inf1 = (s1 << U(fmt.width - 1)) | U(fmt.inf(0))
    signed_inf2 = (s2 << U(fmt.width - 1)) | U(fmt.inf(0))
    out = np.where(i1, signed_inf1, out)
    out = np.where(i2 & ~i1, signed_inf2, out)
    any_nan = n1 | n2
    out = np.where(inf_conflict | any_nan, U(fmt.nan()), out)

    flags = np.where(inexact, U(_FL_INEXACT), U(0))
    flags = np.where(
        underflow, U(_FL_UNDERFLOW | _FL_INEXACT | _FL_ZERO), flags
    )
    flags = np.where(overflow, U(_FL_OVERFLOW | _FL_INEXACT), flags)
    flags = np.where(cancel, U(_FL_ZERO), flags)
    flags = np.where(one_zero, U(0), flags)
    flags = np.where(both_zero, U(_FL_ZERO), flags)
    flags = np.where(i1 | i2, U(0), flags)
    flags = np.where(inf_conflict | any_nan, U(_FL_INVALID), flags)
    return out, flags.astype(np.uint8)


def _sub_lanes(fmt: FPFormat, spec: _LaneSpec, al, bl, mode: RoundingMode):
    U = spec.u
    _, eb, fb = _lane_unpack(fmt, spec, bl)
    nan_b = (eb == fmt.exp_max) & (fb != 0)
    flipped = bl ^ (U(1) << U(fmt.width - 1))
    out, flags = _add_lanes(fmt, spec, al, flipped, mode)
    return np.where(nan_b, U(fmt.nan()), out), flags


_LANE_KERNELS = {"add": _add_lanes, "sub": _sub_lanes, "mul": _mul_lanes}


# --------------------------------------------------------------------- #
# Public packed ops (limb-level)
# --------------------------------------------------------------------- #


def _packed_op(
    op: str,
    fmt: FPFormat,
    a,
    b,
    mode: RoundingMode,
    width: int,
    with_flags: bool,
):
    check_packed_format(fmt, width)
    spec = _LANE_SPECS[width]
    al = _lanes_of(fmt, a, spec, "a")
    bl = _lanes_of(fmt, b, spec, "b")
    if al.shape != bl.shape:
        raise ValueError(
            f"packed operands disagree in shape: {al.shape} vs {bl.shape}"
        )
    out, flags = _LANE_KERNELS[op](fmt, spec, al, bl, mode)
    limbs = np.ascontiguousarray(out).view(np.uint64)
    if with_flags:
        return limbs, flags
    return limbs


def packed_add(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    *,
    width: int,
    with_flags: bool = False,
):
    """Lane-wise FP add over packed uint64 limbs.

    ``a``/``b`` are limb arrays from :func:`pack_words` at the same
    ``width``.  Returns the result limbs; with ``with_flags=True`` also
    a per-lane ``uint8`` sideband (length ``limbs * width`` — callers
    slice to the logical count, pad lanes report ``0+0`` flags).
    """
    return _packed_op("add", fmt, a, b, mode, width, with_flags)


def packed_sub(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    *,
    width: int,
    with_flags: bool = False,
):
    """Lane-wise FP subtract over packed uint64 limbs (see :func:`packed_add`)."""
    return _packed_op("sub", fmt, a, b, mode, width, with_flags)


def packed_mul(
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    *,
    width: int,
    with_flags: bool = False,
):
    """Lane-wise FP multiply over packed uint64 limbs (see :func:`packed_add`)."""
    return _packed_op("mul", fmt, a, b, mode, width, with_flags)


#: Packed binary ops by name (the packable subset of the vectorized ops).
PACKED_OPS = {"add": packed_add, "sub": packed_sub, "mul": packed_mul}


def packed_call(
    op: str,
    fmt: FPFormat,
    a: np.ndarray,
    b: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    *,
    width: int | None = None,
    with_flags: bool = False,
):
    """End-to-end packed execution on 1-D word arrays.

    Packs ``a``/``b`` at ``width`` (default: :func:`packing_width`),
    runs the packed kernel, and unpacks back to logical uint64 words —
    the drop-in packed counterpart of ``vec_add``/``vec_sub``/
    ``vec_mul`` on flat arrays.  With ``with_flags=True`` returns
    ``(bits, flags)`` with the flag sideband sliced to the logical
    element count.
    """
    if op not in PACKED_OPS:
        raise ValueError(
            f"unsupported packed op {op!r}; packed ops are "
            f"{', '.join(sorted(PACKED_OPS))}"
        )
    if width is None:
        width = packing_width(fmt)
    pa, count = pack_words(fmt, a, width)
    pb, count_b = pack_words(fmt, b, width)
    if count != count_b:
        raise ValueError(
            f"packed operands disagree in length: {count} vs {count_b}"
        )
    # pack_words already validated format and word ranges, so the lane
    # kernel runs directly on the limb views — no second validation pass.
    spec = _LANE_SPECS[width]
    out, flags = _LANE_KERNELS[op](fmt, spec, pa.view(spec.u), pb.view(spec.u), mode)
    bits = out[:count].astype(np.uint64)
    if with_flags:
        return bits, flags[:count]
    return bits
