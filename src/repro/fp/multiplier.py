"""Floating-point multiplier datapath (paper Figure 1b).

Stage 1 (denormalization)
    * the same denormalizer as the adder inserts the implied 1.

Stage 2 (fixed-point core)
    * mantissa multiplier (the MULT18x18 array + adder tree)
    * exponent adder followed by bias subtractor (pipeline-insertable)
    * sign XOR

Stage 3 (normalize / round)
    * a two-position shifter (no denormals means the product of two
      normalized significands lies in [1, 4), so at most one shift plus a
      possible rounding-carry shift — "at most two bits", paper §3)
    * exponent adjust subtractor
    * the same rounding module as the adder

Rounding is exact for both supported modes: the full double-width product
is formed before guard/round/sticky compression, as the embedded
multiplier array does in hardware.
"""

from __future__ import annotations

from repro.fp.flags import FPFlags
from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode, extract_grs, round_significand
from repro.fp.subunits import denormalize, fixed_mul, sign_xor


def _special_mul(fmt: FPFormat, a: int, b: int) -> tuple[int, FPFlags] | None:
    """Resolve NaN/Inf/zero-times-Inf cases; None selects the normal path."""
    if fmt.is_nan(a) or fmt.is_nan(b):
        return fmt.nan(), FPFlags(invalid=True)
    a_inf, b_inf = fmt.is_inf(a), fmt.is_inf(b)
    if a_inf or b_inf:
        if fmt.is_zero(a) or fmt.is_zero(b):  # 0 x Inf
            return fmt.nan(), FPFlags(invalid=True)
        sa, _, _ = fmt.unpack(a)
        sb, _, _ = fmt.unpack(b)
        return fmt.inf(sign_xor(sa, sb)), FPFlags()
    return None


def fp_mul(
    fmt: FPFormat,
    a: int,
    b: int,
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> tuple[int, FPFlags]:
    """Multiply two words of format ``fmt``; returns ``(bits, flags)``."""
    special = _special_mul(fmt, a, b)
    if special is not None:
        return special

    s1, e1, f1 = fmt.unpack(a)
    s2, e2, f2 = fmt.unpack(b)
    sign = sign_xor(s1, s2)

    if e1 == 0 or e2 == 0:  # zero operand (denormals already flushed)
        return fmt.zero(sign), FPFlags(zero=True)

    # --- Stage 1: denormalize ------------------------------------------- #
    m1 = denormalize(fmt, e1, f1)
    m2 = denormalize(fmt, e2, f2)

    # --- Stage 2: mantissa multiply + exponent add/bias ------------------ #
    product = fixed_mul(m1, m2)  # 2 * sig_bits wide, in [2^(2wm), 2^(2wm+2))
    exp = e1 + e2 - fmt.bias  # exponent adder then bias subtractor

    # --- Stage 3: normalize ---------------------------------------------- #
    prod_bits = 2 * fmt.sig_bits
    if product >> (prod_bits - 1):  # product in [2, 4): one-position shift
        exp += 1
        sig, grs = extract_grs(product, fmt.sig_bits, prod_bits)
    else:  # product in [1, 2)
        sig, grs = extract_grs(product, fmt.sig_bits, prod_bits - 1)

    # --- Stage 3: round ---------------------------------------------------#
    sig, inexact = round_significand(sig, grs, mode)
    if sig >> fmt.sig_bits:  # rounding carry (the second shift position)
        sig >>= 1
        exp += 1

    if exp >= fmt.exp_max:
        return fmt.inf(sign), FPFlags(overflow=True, inexact=True)
    if exp <= 0:
        return fmt.zero(sign), FPFlags(underflow=True, inexact=True, zero=True)
    return fmt.pack(sign, exp, sig & fmt.man_mask), FPFlags(inexact=inexact)


class FPMultiplier:
    """Combinational multiplier bound to a format and rounding mode."""

    def __init__(
        self,
        fmt: FPFormat,
        mode: RoundingMode = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.mode = mode

    def mul(self, a: int, b: int) -> tuple[int, FPFlags]:
        return fp_mul(self.fmt, a, b, self.mode)

    def __call__(self, a: int, b: int) -> tuple[int, FPFlags]:
        return self.mul(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FPMultiplier({self.fmt.name}, {self.mode.value})"
