"""Command-line experiment runner.

Usage::

    repro list                # enumerate experiments
    repro all                 # run everything, in paper order
    repro all --parallel 4    # same results, evaluated across cores
    repro all --cache-dir .repro-cache   # persist results; reruns are warm
    repro table1 fig2a ...    # run specific experiments
    repro --csv fig5          # CSV output where supported
    repro results --outdir results/      # write all artifacts
    repro cache stats         # inspect the persistent cache
    repro cache clear         # drop it
    repro verify --pairs 1000000 --parallel 8   # differential campaign
    repro verify --kernels    # batched-vs-stepped array differential matrix
    repro verify --packed     # packed-vs-unpacked sub-lane campaign
    repro bench --json BENCH_kernel.json        # kernel perf snapshot
    repro bench --service --json BENCH_service.json  # serving perf snapshot
    repro serve --port 8080   # micro-batching evaluation service
    repro explore --kinds adder --formats fp32   # NDJSON design points
    repro recommend --constrain max_slices=1000  # constrained optimum
    repro bench --explore --json BENCH_explore.json  # frontier perf
    repro loadgen --port 8080 --requests 2000   # drive a running server
    repro --version           # print the package version

Each experiment prints rows/series directly comparable to the paper's
table or figure of the same number.  Experiments are evaluated through
:mod:`repro.engine`: output order is always REGISTRY order regardless of
``--parallel`` completion order, and the engine's run summary (per-job
wall time, cache hit/miss counters) is printed to stderr so stdout stays
byte-identical to a serial, uncached run.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import Any, Sequence

from repro import __version__
from repro.engine import (
    CACHE_DIR_ENV,
    CACHE_VERSION,
    Engine,
    ResultCache,
    configure_default_engine,
)
from repro.experiments import REGISTRY, experiment_jobs

#: Cache directory used when ``repro cache`` is invoked without an
#: explicit ``--cache-dir`` or ``$REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"


def discover_panels(result: Any) -> list[tuple[str, Any]]:
    """CSV-exportable panels of a result, as ``(suffix, panel)`` pairs.

    Plain tables/sweeps export themselves (empty suffix); figure bundles
    (Figures 5/6) export one panel per metric attribute.
    """
    if hasattr(result, "to_csv"):
        return [("", result)]
    panels = []
    for attr in ("energy", "resources", "latency"):
        panel = getattr(result, attr, None)
        if panel is not None and hasattr(panel, "to_csv"):
            panels.append((attr, panel))
    return panels


def _emit(result: Any, csv: bool) -> None:
    if csv:
        for _suffix, panel in discover_panels(result):
            print(panel.to_csv())
        return
    print(result)


def _resolve_cache_dir(args: argparse.Namespace, default: str | None = None) -> str | None:
    if getattr(args, "no_cache", False):
        return None
    return args.cache_dir or os.environ.get(CACHE_DIR_ENV) or default


def build_engine(args: argparse.Namespace) -> Engine:
    """Engine configured from ``--parallel/--cache-dir/--no-cache``."""
    cache_dir = _resolve_cache_dir(args)
    cache = ResultCache(cache_dir) if cache_dir else None
    if cache_dir:
        # Propagate to process-pool workers and the in-library default
        # engine, so nested sweeps (explorer, kernel design space) share
        # the same persistent store.
        os.environ[CACHE_DIR_ENV] = cache_dir
        configure_default_engine(None)
    return Engine(
        cache=cache,
        workers=args.parallel,
        timeout_s=args.timeout,
        retries=args.retries,
    )


def run_experiments(names: list[str], args: argparse.Namespace) -> int:
    engine = build_engine(args)
    results = engine.run(experiment_jobs(names))
    for i, result in enumerate(results):
        if i:
            print()
        _emit(result, args.csv)
    print(engine.metrics.summary(), file=sys.stderr)
    return 0


def write_results(outdir: str, args: argparse.Namespace) -> int:
    """Run every experiment, writing text and CSV artifacts to ``outdir``."""
    root = pathlib.Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    engine = build_engine(args)
    results = engine.run(experiment_jobs())
    written = []
    for name, result in zip(REGISTRY, results):
        stem = name.replace(".", "_")
        text_path = root / f"{stem}.txt"
        text_path.write_text(str(result) + "\n")
        written.append(text_path)
        for suffix, panel in discover_panels(result):
            csv_path = root / (f"{stem}_{suffix}.csv" if suffix else f"{stem}.csv")
            csv_path.write_text(panel.to_csv())
            written.append(csv_path)
    print(f"wrote {len(written)} artifacts to {root}/")
    for path in sorted(written):
        print(f"  {path}")
    print(engine.metrics.summary(), file=sys.stderr)
    return 0


def cache_command(action: str, args: argparse.Namespace) -> int:
    if action not in ("stats", "clear"):
        print(
            f"unknown cache action {action!r} (expected: stats, clear)",
            file=sys.stderr,
        )
        return 2
    cache_dir = _resolve_cache_dir(args, default=DEFAULT_CACHE_DIR)
    assert cache_dir is not None
    cache = ResultCache(cache_dir)
    if action == "stats":
        print(cache.stats().render())
        return 0
    if action == "clear":
        if getattr(args, "stale", False):
            removed = cache.clear(stale_only=True, current_version=CACHE_VERSION)
            print(f"removed {removed} stale entr{'y' if removed == 1 else 'ies'}")
        else:
            removed = cache.clear()
            print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    raise AssertionError(action)  # pragma: no cover - validated above


def _parse_sizes(text: str, flag: str) -> tuple[int, ...] | None:
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        sizes = ()
    if not sizes or any(n < 1 for n in sizes):
        print(f"{flag} expects a comma-separated list of sizes >= 1",
              file=sys.stderr)
        return None
    return sizes


def bench_command(args: argparse.Namespace) -> int:
    """Run the kernel micro-benchmarks; optionally write the JSON snapshot."""
    from repro.bench import kernel_bench, render, write_snapshot

    if args.service:
        from repro.bench import render_service, service_bench

        snapshot = service_bench(seed=args.seed)
        print(render_service(snapshot))
        if args.json:
            write_snapshot(snapshot, args.json)
            print(f"wrote {args.json}")
        return 0

    if args.explore:
        from repro.bench import explore_bench, render_explore

        snapshot = explore_bench(repeats=args.repeats)
        print(render_explore(snapshot))
        if args.json:
            write_snapshot(snapshot, args.json)
            print(f"wrote {args.json}")
        return 0

    if args.packed:
        from repro.bench import packed_bench, render_packed

        snapshot = packed_bench(repeats=args.repeats, seed=args.seed)
        print(render_packed(snapshot))
        if args.json:
            write_snapshot(snapshot, args.json)
            print(f"wrote {args.json}")
        return 0

    sizes = _parse_sizes(args.bench_sizes, "--bench-sizes")
    if sizes is None:
        return 2
    scan_sizes: tuple[int, ...] = ()
    if args.scan_sizes:
        parsed = _parse_sizes(args.scan_sizes, "--scan-sizes")
        if parsed is None:
            return 2
        scan_sizes = parsed
    snapshot = kernel_bench(
        sizes=sizes,
        scan_sizes=scan_sizes,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(render(snapshot))
    if args.json:
        write_snapshot(snapshot, args.json)
        print(f"wrote {args.json}")
    return 0


def verify_kernels_command(args: argparse.Namespace) -> int:
    """Run the batched-vs-stepped array differential matrix."""
    from repro.verify.kernels import run_matrix

    engine = build_engine(args)
    report = run_matrix(seed=args.seed, engine=engine)
    print(report.summary())
    for case in report.failures():
        print(
            f"  mismatch {case['fmt']}/{case['mode']} n={case['n']} "
            f"PL={case['mul_latency'] + case['add_latency']} "
            f"pad={case['pad_schedule']}: fields {', '.join(case['mismatched'])}"
        )
    print(engine.metrics.summary(), file=sys.stderr)
    return 0 if report.passed else 1


def verify_packed_command(args: argparse.Namespace, formats, ops) -> int:
    """Run the packed-vs-unpacked sub-lane differential campaign."""
    from repro.fp.rounding import RoundingMode
    from repro.verify.differential import run_packed_campaign

    engine = build_engine(args)
    report = run_packed_campaign(
        formats=formats,
        ops=ops,
        modes=tuple(RoundingMode),
        pairs_per_lane=args.pairs,
        chunk_pairs=args.chunk,
        seed=args.seed,
        engine=engine,
    )
    print(report.summary())
    for ex in report.examples():
        print(
            f"  counterexample [{ex.against}] {ex.op}/{ex.mode}: "
            f"a={ex.a:#x} b={ex.b:#x} got={ex.got_bits:#x}/{ex.got_flags:#06b} "
            f"want={ex.want_bits:#x}/{ex.want_flags:#06b}"
        )
    print(engine.metrics.summary(), file=sys.stderr)
    return 0 if report.passed else 1


def verify_command(args: argparse.Namespace) -> int:
    """Run the vectorized-vs-scalar-vs-oracle differential campaign."""
    from repro.fp.format import ALL_FORMATS
    from repro.fp.rounding import RoundingMode
    from repro.verify.differential import (
        CAMPAIGN_OPS,
        PACKED_CAMPAIGN_OPS,
        run_campaign,
    )

    if args.kernels:
        return verify_kernels_command(args)

    by_name = {f.name: f for f in ALL_FORMATS}
    if args.formats:
        names = [n.strip() for n in args.formats.split(",") if n.strip()]
        unknown = [n for n in names if n not in by_name]
        if unknown:
            print(
                f"unknown formats: {', '.join(unknown)} "
                f"(known: {', '.join(by_name)})",
                file=sys.stderr,
            )
            return 2
        formats = [by_name[n] for n in names]
    else:
        formats = list(ALL_FORMATS)
    known_ops = PACKED_CAMPAIGN_OPS if args.packed else CAMPAIGN_OPS
    if args.ops:
        ops = [o.strip() for o in args.ops.split(",") if o.strip()]
        bad = [o for o in ops if o not in known_ops]
        if bad:
            print(
                f"unknown ops: {', '.join(bad)} "
                f"(known: {', '.join(known_ops)})",
                file=sys.stderr,
            )
            return 2
    else:
        ops = list(known_ops)

    if args.packed:
        return verify_packed_command(args, formats, ops)

    engine = build_engine(args)
    report = run_campaign(
        formats=formats,
        ops=ops,
        modes=tuple(RoundingMode),
        pairs_per_format=args.pairs,
        chunk_pairs=args.chunk,
        seed=args.seed,
        engine=engine,
    )
    print(report.summary())
    for ex in report.examples():
        print(
            f"  counterexample [{ex.against}] {ex.op}/{ex.mode}: "
            f"a={ex.a:#x} b={ex.b:#x} got={ex.got_bits:#x}/{ex.got_flags:#06b} "
            f"want={ex.want_bits:#x}/{ex.want_flags:#06b}"
        )
    print(engine.metrics.summary(), file=sys.stderr)
    return 0 if report.passed else 1


def _exploration_engine(cache_dir: str | None) -> "Engine":
    """Engine for the offline exploration twins (serial, optional cache)."""
    resolved = cache_dir or os.environ.get(CACHE_DIR_ENV)
    return Engine(cache=ResultCache(resolved) if resolved else None)


def explore_command(argv: Sequence[str]) -> int:
    """Offline twin of ``GET /v1/explore``: the same NDJSON, on stdout."""
    import json

    from repro.explore.catalog import (
        compute_frontier,
        frontier_payload,
        record_payload,
        unit_record,
    )
    from repro.explore.recommend import (
        QueryError,
        _resolve_formats,
        _resolve_kinds,
    )
    from repro.units.explorer import explore

    parser = argparse.ArgumentParser(
        prog="repro explore",
        description="Stream the annotated unit design-space grid as "
        "NDJSON — one point line per implementation, one frontier "
        "trailer — exactly the payloads GET /v1/explore streams.",
    )
    parser.add_argument("--kinds", default=None, metavar="K,K",
                        help="comma-separated unit kinds "
                        "(default: all four)")
    parser.add_argument("--formats", default=None, metavar="F,F",
                        help="comma-separated formats (default: all)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist sweep results under DIR "
                        f"(also via ${CACHE_DIR_ENV})")
    args = parser.parse_args(argv)
    try:
        kinds = _resolve_kinds(
            [k for k in args.kinds.split(",") if k] if args.kinds else None
        )
        formats = _resolve_formats(
            [f for f in args.formats.split(",") if f]
            if args.formats else None
        )
    except QueryError as exc:
        print(f"repro explore: {exc}", file=sys.stderr)
        return 2
    engine = _exploration_engine(args.cache_dir)
    records = []
    for kind in kinds:
        for fmt in formats:
            before = len(engine.metrics.records)
            space = explore(fmt, kind, engine=engine)
            new = engine.metrics.records[before:]
            source = new[-1].status if new else "memo"
            for report in space.reports:
                record = unit_record(kind, fmt, report)
                records.append(record)
                line = {
                    "type": "point",
                    "source": source,
                    **record_payload(record),
                }
                print(json.dumps(line, separators=(",", ":")))
    front = compute_frontier("units", records)
    print(json.dumps(frontier_payload(front), separators=(",", ":")))
    return 0


def recommend_command(argv: Sequence[str]) -> int:
    """Offline twin of ``POST /v1/recommend``: same payload, stdout."""
    from repro.explore.recommend import (
        QueryError,
        UnsatisfiableError,
        payload_bytes,
        recommend,
    )

    parser = argparse.ArgumentParser(
        prog="repro recommend",
        description="Answer a constrained design query ('max MOPS/W "
        "with slices <= 1000 and clock >= 200 MHz') over the cached "
        "Pareto frontier — byte-identical to POST /v1/recommend.",
    )
    parser.add_argument("--space", default="units",
                        choices=("units", "kernel"))
    parser.add_argument("--objective", default=None, metavar="METRIC",
                        help="metric to optimize (default: mops_per_watt "
                        "for units, energy_nj for kernel)")
    parser.add_argument("--constrain", action="append", default=[],
                        metavar="BOUND=VALUE",
                        help="bound such as max_slices=1000 or "
                        "min_clock_mhz=200; repeatable")
    parser.add_argument("--kinds", default=None, metavar="K,K",
                        help="units space: comma-separated unit kinds")
    parser.add_argument("--formats", default=None, metavar="F,F",
                        help="units space: comma-separated formats")
    parser.add_argument("--n", type=int, default=None,
                        help="kernel space: problem size (default: 16)")
    parser.add_argument("--block-sizes", default=None, metavar="B,B",
                        help="kernel space: comma-separated block sizes")
    parser.add_argument("--format", default=None, dest="fmt",
                        help="kernel space: precision (default: fp32)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist engine results under DIR "
                        f"(also via ${CACHE_DIR_ENV})")
    args = parser.parse_args(argv)
    query: dict = {"space": args.space}
    if args.objective:
        query["objective"] = args.objective
    constraints: dict = {}
    for spec in args.constrain:
        key, sep, value = spec.partition("=")
        if not sep:
            print(f"repro recommend: --constrain expects BOUND=VALUE, "
                  f"got {spec!r}", file=sys.stderr)
            return 2
        try:
            constraints[key] = float(value)
        except ValueError:
            print(f"repro recommend: bound {key!r} needs a numeric value, "
                  f"got {value!r}", file=sys.stderr)
            return 2
    if constraints:
        query["constraints"] = constraints
    if args.kinds:
        query["kinds"] = [k for k in args.kinds.split(",") if k]
    if args.formats:
        query["formats"] = [f for f in args.formats.split(",") if f]
    if args.n is not None:
        query["n"] = args.n
    if args.block_sizes:
        sizes = _parse_sizes(args.block_sizes, "--block-sizes")
        if sizes is None:
            return 2
        query["block_sizes"] = list(sizes)
    if args.fmt:
        query["format"] = args.fmt
    engine = _exploration_engine(args.cache_dir)
    try:
        payload = recommend(query, engine=engine)
    except (QueryError, UnsatisfiableError) as exc:
        print(f"repro recommend: {exc}", file=sys.stderr)
        return 2
    sys.stdout.buffer.write(payload_bytes(payload) + b"\n")
    return 0


def serve_command(argv: Sequence[str]) -> int:
    """Run the micro-batching evaluation service (blocks until signal)."""
    from repro.service import ServiceConfig, serve

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the FP evaluation surface over HTTP with "
        "micro-batching, admission control and live /metrics.  Every "
        "flag falls back to its REPRO_SERVE_* environment variable, "
        "then to the documented default.",
    )
    parser.add_argument("--host", default=None,
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port; 0 picks an ephemeral port "
                        "(default: 8080)")
    parser.add_argument("--max-batch", type=int, default=None, metavar="N",
                        help="largest op batch per vectorized call "
                        "(default: 64)")
    parser.add_argument("--linger-ms", type=float, default=None, metavar="MS",
                        help="how long an open batch waits for company "
                        "(default: 2.0)")
    parser.add_argument("--queue-depth", type=int, default=None, metavar="N",
                        help="admitted requests in flight before shedding "
                        "429s (default: 256)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="S", dest="request_timeout_s",
                        help="per-op deadline in seconds (default: 10)")
    parser.add_argument("--sweep-timeout", type=float, default=None,
                        metavar="S", dest="sweep_timeout_s",
                        help="unit/experiment sweep deadline (default: 120)")
    parser.add_argument("--drain-timeout", type=float, default=None,
                        metavar="S", dest="drain_timeout_s",
                        help="graceful-shutdown drain budget (default: 5)")
    parser.add_argument("--no-spot-check", action="store_true",
                        help="skip the per-batch scalar spot check")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist engine results under DIR "
                        f"(also via ${CACHE_DIR_ENV})")
    parser.add_argument("--trace-sample", type=float, default=None,
                        metavar="P", help="fraction of requests traced, "
                        "0.0-1.0 (default: 1.0)")
    parser.add_argument("--trace-buffer", type=int, default=None,
                        metavar="N", help="finished traces retained for "
                        "/v1/trace lookups (default: 512)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit one NDJSON line per span to stderr")
    args = parser.parse_args(argv)
    try:
        config = ServiceConfig.from_env(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            linger_ms=args.linger_ms,
            queue_depth=args.queue_depth,
            request_timeout_s=args.request_timeout_s,
            sweep_timeout_s=args.sweep_timeout_s,
            drain_timeout_s=args.drain_timeout_s,
            spot_check=False if args.no_spot_check else None,
            cache_dir=args.cache_dir,
            trace_sample=args.trace_sample,
            trace_buffer=args.trace_buffer,
            log_json=True if args.log_json else None,
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    return serve(config)


def loadgen_command(argv: Sequence[str]) -> int:
    """Drive a running server with closed-loop concurrent load."""
    from repro.fp.rounding import RoundingMode
    from repro.service.loadgen import (
        resolve_load_format,
        run_load_blocking,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Closed-loop load generator for a running "
        "'repro serve' instance.  429s count as shed load (the "
        "backpressure contract working), not failures.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--concurrency", "-c", type=int, default=16,
                        metavar="N", help="concurrent workers (default: 16)")
    parser.add_argument("--requests", "-n", type=int, default=1000,
                        metavar="N", help="total requests (default: 1000)")
    parser.add_argument("--op", default="mul",
                        choices=("add", "sub", "mul", "div", "sqrt", "fma"))
    parser.add_argument("--format", default="fp32", dest="fmt",
                        help="named paper format (default: fp32)")
    parser.add_argument("--mode", default=RoundingMode.NEAREST_EVEN.value,
                        choices=[m.value for m in RoundingMode])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=120.0, metavar="S",
                        help="whole-run deadline (default: 120)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the machine-readable report to FILE")
    parser.add_argument("--trace-ids", action="store_true",
                        help="send an explicit X-Repro-Trace-Id per "
                        "request and count echoed responses")
    args = parser.parse_args(argv)
    fmt = resolve_load_format(args.fmt)
    if fmt is None:
        print(f"repro loadgen: unknown format {args.fmt!r}", file=sys.stderr)
        return 2
    mode = {m.value: m for m in RoundingMode}[args.mode]
    try:
        report = run_load_blocking(
            args.host,
            args.port,
            concurrency=args.concurrency,
            requests=args.requests,
            op=args.op,
            fmt=fmt,
            mode=mode,
            seed=args.seed,
            timeout_s=args.timeout,
            trace_ids=args.trace_ids,
        )
    except ValueError as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(report.render())
    if args.json:
        write_report(report, args.json)
        print(f"wrote {args.json}")
    # Only 2xx (served) and 429 (deliberately shed) are healthy under
    # load; anything else — transport errors included — fails the run.
    unhealthy = report.requests - report.ok - report.shed
    return 1 if (report.errors or unhealthy) else 0


def trace_command(argv: Sequence[str]) -> int:
    """Fetch traces from a running server and render or export them."""
    import json as json_module
    from http.client import HTTPConnection

    from repro.obs.trace import render_trace

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect request traces on a live 'repro serve' "
        "instance: render one trace's span tree, list the slowest "
        "buffered traces, or export them as Chrome trace-event JSON "
        "(load into chrome://tracing or Perfetto).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--id", default=None, metavar="TRACE_ID",
                        help="render one trace by ID")
    parser.add_argument("--slowest", type=int, default=10, metavar="N",
                        help="without --id: cover the N slowest buffered "
                        "traces (default: 10)")
    parser.add_argument("--chrome", default=None, metavar="FILE",
                        help="write Chrome trace-event JSON to FILE "
                        "instead of rendering text")
    args = parser.parse_args(argv)

    if args.id is not None:
        path = f"/v1/trace/{args.id}"
    elif args.chrome is not None:
        path = f"/v1/debug/traces?slowest={args.slowest}&export=chrome"
    else:
        path = f"/v1/debug/traces?slowest={args.slowest}"
    try:
        conn = HTTPConnection(args.host, args.port, timeout=30.0)
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        conn.close()
    except OSError as exc:
        print(f"repro trace: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    if response.status != 200:
        print(f"repro trace: GET {path} -> {response.status} "
              f"{body.decode(errors='replace').strip()}", file=sys.stderr)
        return 1
    doc = json_module.loads(body)

    if args.id is not None:
        if args.chrome is not None:
            from repro.obs.chrome import chrome_trace
            doc = chrome_trace([doc])
        else:
            print(render_trace(doc))
            return 0
    if args.chrome is not None:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json_module.dump(doc, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(doc['traceEvents'])} events to {args.chrome}")
        return 0
    # Listing mode: buffer stats plus one line per slow trace.
    print(f"traces: {doc['buffered']}/{doc['capacity']} buffered, "
          f"{doc['finished']} finished, {doc['evicted']} evicted, "
          f"sample={doc['sample']}")
    for summary in doc["traces"]:
        print(f"  {summary['trace_id']:<28} {summary['duration_ms']:>9.3f} ms"
              f"  {summary['spans']:>3} span(s)  {summary.get('route', '-')}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--version":
        print(__version__)
        return 0
    if argv and argv[0] == "serve":
        return serve_command(argv[1:])
    if argv and argv[0] == "loadgen":
        return loadgen_command(argv[1:])
    if argv and argv[0] == "trace":
        return trace_command(argv[1:])
    if argv and argv[0] == "explore":
        return explore_command(argv[1:])
    if argv and argv[0] == "recommend":
        return recommend_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Govindu et al., "
        "'Analysis of High-performance Floating-point Arithmetic on FPGAs' "
        "(IPPS 2004).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'repro list'), 'all', 'results' to "
        "write every artifact to --outdir, 'cache {stats,clear}', "
        "'verify' for the differential verification campaigns, or "
        "'bench' for the kernel perf snapshot",
    )
    parser.add_argument(
        "--version", action="version", version=__version__,
        help="print the package version and exit",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text tables"
    )
    parser.add_argument(
        "--outdir",
        default="results",
        help="output directory for the 'results' command (default: results/)",
    )
    parser.add_argument(
        "--parallel",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="evaluate experiments on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist results under DIR and reuse them on reruns "
        f"(also via ${CACHE_DIR_ENV}; 'repro cache' defaults to "
        f"{DEFAULT_CACHE_DIR}/)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any configured cache directory",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-experiment wall-time cap in seconds (parallel runs)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="K",
        help="re-attempts per failing experiment (default: 1)",
    )
    parser.add_argument(
        "--stale",
        action="store_true",
        help="with 'cache clear': only drop entries from older versions",
    )
    parser.add_argument(
        "--formats",
        default=None,
        metavar="F,F",
        help="with 'verify': comma-separated formats (default: all paper formats)",
    )
    parser.add_argument(
        "--ops",
        default=None,
        metavar="OP,OP",
        help="with 'verify': comma-separated ops among "
        "add,sub,mul,div,sqrt,fma (default: all)",
    )
    parser.add_argument(
        "--pairs",
        type=int,
        default=1_000_000,
        metavar="N",
        help="with 'verify': operand pairs per format (default: 1000000)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=50_000,
        metavar="N",
        help="with 'verify': pairs per engine job (default: 50000)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="with 'verify'/'bench': base seed (default: 0)",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="with 'verify': run the batched-vs-stepped array "
        "differential matrix instead of the datapath campaign",
    )
    parser.add_argument(
        "--packed",
        action="store_true",
        help="with 'verify': run the packed-vs-unpacked sub-lane "
        "differential campaign (add/sub/mul over every supported "
        "format x packing width); with 'bench': benchmark the packed "
        "datapaths against the unpacked vectorized baseline",
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="with 'bench': benchmark cold vs warm design-space "
        "frontier computation and constrained recommendation",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="with 'bench': write the machine-readable snapshot to FILE",
    )
    parser.add_argument(
        "--bench-sizes",
        default="16,32",
        metavar="N,N",
        help="with 'bench': stepped-vs-batched sizes (default: 16,32)",
    )
    parser.add_argument(
        "--scan-sizes",
        default="64,128,256",
        metavar="N,N",
        help="with 'bench': batched-only scaling sizes "
        "(default: 64,128,256; empty string to skip)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="K",
        help="with 'bench': batched timing repeats, best-of (default: 3)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="with 'bench': benchmark the serving layer (batched vs "
        "unbatched dispatch, plus full-HTTP loopback throughput) "
        "instead of the kernels",
    )
    args = parser.parse_args(argv)
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")

    names = list(args.experiments)
    if names == ["verify"]:
        if args.pairs < 1 or args.chunk < 1:
            parser.error("--pairs and --chunk must be >= 1")
        return verify_command(args)
    if names == ["bench"]:
        if args.repeats < 1:
            print(f"--repeats must be >= 1, got {args.repeats}", file=sys.stderr)
            return 2
        return bench_command(args)
    if names and names[0] == "cache":
        if len(names) != 2:
            print("usage: repro cache {stats,clear}", file=sys.stderr)
            return 2
        return cache_command(names[1], args)
    if names == ["list"]:
        print("available experiments:")
        for name in REGISTRY:
            print(f"  {name}")
        return 0
    if names == ["results"]:
        return write_results(args.outdir, args)
    if names == ["all"]:
        names = list(REGISTRY)

    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2

    return run_experiments(names, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
