"""Command-line experiment runner.

Usage::

    repro list                # enumerate experiments
    repro all                 # run everything, in paper order
    repro table1 fig2a ...    # run specific experiments
    repro --csv fig5          # CSV output where supported

Each experiment prints rows/series directly comparable to the paper's
table or figure of the same number.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.experiments import REGISTRY


def _emit(result: Any, csv: bool) -> None:
    if csv and hasattr(result, "to_csv"):
        print(result.to_csv())
        return
    if csv:
        # Bundles (Figure 5/6) expose panels; fall through panel-wise.
        for attr in ("energy", "resources", "latency"):
            panel = getattr(result, attr, None)
            if panel is not None and hasattr(panel, "to_csv"):
                print(panel.to_csv())
        return
    print(result)


def write_results(outdir: str) -> int:
    """Run every experiment, writing text and CSV artifacts to ``outdir``."""
    import pathlib

    root = pathlib.Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name, fn in REGISTRY.items():
        result = fn()
        stem = name.replace(".", "_")
        panels: list[tuple[str, Any]] = []
        if hasattr(result, "to_csv"):
            panels.append((stem, result))
        else:  # figure bundles
            for attr in ("energy", "resources", "latency"):
                panel = getattr(result, attr, None)
                if panel is not None and hasattr(panel, "to_csv"):
                    panels.append((f"{stem}_{attr}", panel))
        text_path = root / f"{stem}.txt"
        text_path.write_text(str(result) + "\n")
        written.append(text_path)
        for panel_name, panel in panels:
            csv_path = root / f"{panel_name}.csv"
            csv_path.write_text(panel.to_csv())
            written.append(csv_path)
    print(f"wrote {len(written)} artifacts to {root}/")
    for path in written:
        print(f"  {path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Govindu et al., "
        "'Analysis of High-performance Floating-point Arithmetic on FPGAs' "
        "(IPPS 2004).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'repro list'), 'all', or 'results' to "
        "write every artifact to --outdir",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of text tables"
    )
    parser.add_argument(
        "--outdir",
        default="results",
        help="output directory for the 'results' command (default: results/)",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["list"]:
        print("available experiments:")
        for name in REGISTRY:
            print(f"  {name}")
        return 0
    if names == ["results"]:
        return write_results(args.outdir)
    if names == ["all"]:
        names = list(REGISTRY)

    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2

    for i, name in enumerate(names):
        if i:
            print()
        _emit(REGISTRY[name](), args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
