"""Reporting helpers: text tables, figure series, CSV export, ulp stats."""

from repro.analysis.accuracy import (
    ErrorStats,
    batch_ulp_errors,
    matmul_ulp_errors,
    ulp,
    ulp_error,
)
from repro.analysis.series import Series, SweepResult
from repro.analysis.tables import Table, format_table

__all__ = [
    "ErrorStats",
    "Series",
    "SweepResult",
    "Table",
    "batch_ulp_errors",
    "format_table",
    "matmul_ulp_errors",
    "ulp",
    "ulp_error",
]
