"""JSON serialization of reports and estimates.

Downstream tooling (plotting scripts, regression dashboards) wants the
model's outputs in a structured form; this module converts the library's
report objects to plain dictionaries and JSON, with a loader that checks
schema versions.
"""

from __future__ import annotations

import json
from typing import Any

from repro.fabric.synthesis import ImplementationReport
from repro.kernels.performance import KernelEstimate
from repro.power.xpower import PowerReport

#: Bumped whenever a serialized field changes meaning.
SCHEMA_VERSION = 1


def implementation_to_dict(impl: ImplementationReport) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "implementation",
        "unit": impl.unit,
        "format": impl.fmt.name,
        "stages": impl.stages,
        "slices": impl.slices,
        "luts": impl.luts,
        "flipflops": impl.flipflops,
        "clock_mhz": round(impl.clock_mhz, 4),
        "mult18": impl.mult18,
        "freq_per_area": round(impl.freq_per_area, 6),
        "critical_path_ns": round(impl.critical_path_ns, 4),
        "objective": impl.objective.value,
        "grade": impl.grade.value,
    }


def estimate_to_dict(est: KernelEstimate) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "kernel_estimate",
        "n": est.n,
        "b": est.b,
        "pipeline_latency": est.pipeline_latency,
        "pes": est.pes,
        "cycles": est.cycles,
        "frequency_mhz": round(est.frequency_mhz, 4),
        "latency_us": round(est.latency_us, 6),
        "energy_nj": round(est.energy_nj, 4),
        "energy_breakdown": {
            k: round(v, 4) for k, v in est.energy.as_dict().items()
        },
        "slices": est.slices,
        "brams": est.brams,
        "mult18": est.mult18,
        "gflops": round(est.gflops, 4),
    }


def power_to_dict(power: PowerReport) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "power",
        "clock_mw": round(power.clock_mw, 4),
        "signal_mw": round(power.signal_mw, 4),
        "logic_mw": round(power.logic_mw, 4),
        "mult_mw": round(power.mult_mw, 4),
        "total_mw": round(power.total_mw, 4),
        "frequency_mhz": power.frequency_mhz,
        "activity": power.activity,
    }


def to_json(obj: Any) -> str:
    """Serialize any supported report object to JSON."""
    if isinstance(obj, ImplementationReport):
        payload = implementation_to_dict(obj)
    elif isinstance(obj, KernelEstimate):
        payload = estimate_to_dict(obj)
    elif isinstance(obj, PowerReport):
        payload = power_to_dict(obj)
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")
    return json.dumps(payload, indent=2, sort_keys=True)


def load_json(text: str) -> dict[str, Any]:
    """Parse a serialized report, validating the schema version."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("expected a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"schema version {payload.get('schema')} != {SCHEMA_VERSION}"
        )
    return payload
