"""Numerical accuracy analysis: ulps, error statistics.

Kernel-level trade studies (rounding-mode choice, fused vs chained MACs,
accumulation order) need error measurements in *ulps* — units in the
last place of the delivered result — rather than raw relative error.
These helpers compute exact ulp distances against rational references
and aggregate them into summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.fp.format import FPFormat
from repro.fp.rounding import RoundingMode
from repro.fp.value import FPValue
from repro.fp.vectorized import supports_vectorized


def ulp(fmt: FPFormat, bits: int) -> Fraction:
    """The unit in the last place of a finite word's binade.

    For zero, the ulp of the smallest normal is returned (the spacing at
    the bottom of the flush-to-zero range).
    """
    _, exp, _ = fmt.unpack(bits)
    if exp == fmt.exp_max:
        raise ValueError("ulp of NaN/Inf is undefined")
    exp = max(exp, 1)
    return Fraction(2) ** (exp - fmt.bias - fmt.man_bits)


def ulp_error(fmt: FPFormat, bits: int, exact: Fraction) -> Fraction:
    """Distance between a delivered result and the exact value, in ulps
    of the delivered result."""
    got = FPValue(fmt, bits).to_fraction()
    return abs(got - exact) / ulp(fmt, bits)


@dataclass(frozen=True)
class ErrorStats:
    """Summary of a batch of ulp errors."""

    count: int
    mean_ulp: float
    max_ulp: float
    rms_ulp: float
    correctly_rounded_fraction: float  # errors <= 0.5 ulp

    @classmethod
    def collect(cls, errors: Iterable[Fraction]) -> "ErrorStats":
        errs = [float(e) for e in errors]
        if not errs:
            raise ValueError("no errors to summarize")
        n = len(errs)
        mean = sum(errs) / n
        rms = (sum(e * e for e in errs) / n) ** 0.5
        within_half = sum(1 for e in errs if e <= 0.5 + 1e-12) / n
        return cls(
            count=n,
            mean_ulp=mean,
            max_ulp=max(errs),
            rms_ulp=rms,
            correctly_rounded_fraction=within_half,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count}: mean {self.mean_ulp:.3f} ulp, "
            f"rms {self.rms_ulp:.3f}, max {self.max_ulp:.3f}, "
            f"{self.correctly_rounded_fraction:.1%} correctly rounded"
        )


def batch_ulp_errors(
    fmt: FPFormat,
    results: Sequence[int],
    exacts: Sequence[Fraction],
) -> ErrorStats:
    """Ulp-error statistics for paired (delivered bits, exact value)."""
    if len(results) != len(exacts):
        raise ValueError("results and exacts must have equal length")
    errors = []
    for bits, exact in zip(results, exacts):
        if not fmt.is_finite(bits):
            continue
        errors.append(ulp_error(fmt, bits, exact))
    return ErrorStats.collect(errors)


def matmul_ulp_errors(
    fmt: FPFormat,
    a: Sequence[Sequence[int]],
    b: Sequence[Sequence[int]],
    mode: RoundingMode = RoundingMode.NEAREST_EVEN,
) -> ErrorStats:
    """Ulp errors of the functional matmul against exact rational dot
    products.

    The delivered result is computed through the vectorized fast path
    whenever the format supports it — which since the wide-limb datapaths
    now includes every paper format, fp64 included — and falls back to
    the scalar reference kernel otherwise.  The fast and scalar paths are
    bit-identical (the differential campaign proves it), so the routing
    changes wall time, never the statistics.

    Operands must be finite words (exact dot products are undefined for
    NaN/Inf inputs).
    """
    from repro.kernels.fast import functional_matmul_vectorized
    from repro.kernels.matmul import functional_matmul

    n = len(a)
    if supports_vectorized(fmt):
        got = functional_matmul_vectorized(
            fmt, np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64), mode
        )
        rows = [[int(x) for x in row] for row in got]
    else:
        rows = functional_matmul(fmt, a, b, mode)
    results: list[int] = []
    exacts: list[Fraction] = []
    frac_a = [[FPValue(fmt, int(x)).to_fraction() for x in row] for row in a]
    frac_b = [[FPValue(fmt, int(x)).to_fraction() for x in row] for row in b]
    for i in range(n):
        for j in range(n):
            results.append(rows[i][j])
            exacts.append(
                sum((frac_a[i][k] * frac_b[k][j] for k in range(n)), Fraction(0))
            )
    return batch_ulp_errors(fmt, results, exacts)
