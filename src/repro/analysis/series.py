"""Figure data containers: named series over a shared x-axis.

The figure experiments (Fig 2, 3, 4, 5, 6) return :class:`SweepResult`
objects — the exact numbers the paper plots — which render as aligned
text columns and can be exported to CSV for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Series:
    """One curve: a label and y-values aligned to the sweep's x-axis."""

    label: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"series {self.label!r} is empty")


@dataclass
class SweepResult:
    """A figure: x-axis plus one or more curves."""

    title: str
    x_label: str
    y_label: str
    x: tuple[float, ...] = ()
    series: list[Series] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        values = tuple(float(v) for v in values)
        if self.x and len(values) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(values)} points, x-axis has {len(self.x)}"
            )
        self.series.append(Series(label, values))

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.title!r}")

    def render(self) -> str:
        headers = [self.x_label] + [s.label for s in self.series]
        widths = [max(len(h), 10) for h in headers]
        lines = [
            f"{self.title}   (y: {self.y_label})",
            "=" * (len(self.title) + len(self.y_label) + 8),
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        ]
        for i, xv in enumerate(self.x):
            cells = [f"{xv:g}"] + [f"{s.values[i]:.4g}" for s in self.series]
            lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        headers = [self.x_label] + [s.label for s in self.series]
        lines = [",".join(headers)]
        for i, xv in enumerate(self.x):
            lines.append(
                ",".join([f"{xv:g}"] + [f"{s.values[i]:.6g}" for s in self.series])
            )
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
