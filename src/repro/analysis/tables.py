"""Fixed-width text tables, the output format of the experiment harness.

Every experiment renders its result as a :class:`Table` whose rows mirror
the corresponding table or figure of the paper, so `python -m repro
table1` prints something directly comparable to the publication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.001:
            return f"{value:.3f}"
        return f"{value:.3g}"
    return str(value)


@dataclass
class Table:
    """A titled table with typed rows."""

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(_fmt_cell(c) for c in row))
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()


def format_table(
    title: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render a fixed-width table with a title rule."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(str(c)) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, "=" * len(title), header, rule]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
