"""Pipeline register placement: optimal chain partitioning.

The paper's methodology is iterative: synthesize, find the critical path,
insert a register to break it, repeat until diminishing returns.  The
fixed point of that process is the partition of the datapath chain into
``S`` contiguous segments that minimizes the largest segment delay — which
is what :func:`partition_chain` computes directly (binary search on the
bottleneck + greedy feasibility, which is exact for chain partitioning).

``S`` counts *register levels* (= the unit's latency): ``S-1`` internal
boundaries plus the always-present output register.  Asking for more
stages than there are quanta yields no frequency gain; the surplus
registers are appended at the output, modelling the area-only cost (and
the freq/area dip) of over-pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fabric.netlist import Quantum

_EPS = 1e-9


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of placing pipeline registers on a quanta chain.

    Attributes
    ----------
    stages:
        Requested register levels (the latency).
    segment_delays_ns:
        Combinational delay of each pipeline segment, in order.  Length is
        ``min(stages, len(quanta))``.
    critical_path_ns:
        The bottleneck segment delay (excludes register overhead).
    register_bits:
        Total flip-flop bits across all register levels, including the
        output register and any surplus deep-pipelining registers.
    boundaries:
        Indices ``i`` meaning "a register after quantum ``i``" for the
        internal cuts (the output register is implicit).
    surplus_registers:
        Register levels beyond the natural maximum (area-only).
    """

    stages: int
    segment_delays_ns: tuple[float, ...]
    critical_path_ns: float
    register_bits: int
    boundaries: tuple[int, ...]
    surplus_registers: int


def _feasible(delays: Sequence[float], limit: float, segments: int) -> bool:
    """Greedy check: can the chain split into <= segments of <= limit?"""
    used = 1
    acc = 0.0
    for d in delays:
        if d > limit + _EPS:
            return False
        if acc + d > limit + _EPS:
            used += 1
            acc = d
            if used > segments:
                return False
        else:
            acc += d
    return True


def _min_bottleneck(delays: Sequence[float], segments: int) -> float:
    """Smallest achievable max-segment delay for ``segments`` segments."""
    lo = max(delays)
    hi = sum(delays)
    if segments >= len(delays):
        return lo
    for _ in range(60):  # float bisection to ~1e-12 relative
        mid = (lo + hi) / 2
        if _feasible(delays, mid, segments):
            hi = mid
        else:
            lo = mid
    return hi


def _greedy_boundaries(
    delays: Sequence[float], limit: float, segments: int
) -> list[int]:
    """Cut positions (after-index) for a greedy packing under ``limit``."""
    cuts: list[int] = []
    acc = 0.0
    for i, d in enumerate(delays):
        if acc + d > limit + _EPS:
            cuts.append(i - 1)
            acc = d
        else:
            acc += d
    del segments  # greedy under the optimal limit never exceeds the budget
    return cuts


def _segment_delays(delays: Sequence[float], cuts: Sequence[int]) -> list[float]:
    segs: list[float] = []
    start = 0
    for c in cuts:
        segs.append(sum(delays[start : c + 1]))
        start = c + 1
    segs.append(sum(delays[start:]))
    return segs


def _split_largest(
    delays: Sequence[float], cuts: list[int], want_segments: int
) -> list[int]:
    """Add cuts (inside the currently largest segments) until the segment
    count reaches ``want_segments``; never increases the bottleneck."""
    cuts = sorted(cuts)
    while len(cuts) + 1 < want_segments:
        segs = _segment_delays(delays, cuts)
        # Find the largest *splittable* segment (>= 2 quanta).
        order = sorted(range(len(segs)), key=lambda i: -segs[i])
        bounds = [-1] + cuts + [len(delays) - 1]
        placed = False
        for si in order:
            lo, hi = bounds[si] + 1, bounds[si + 1]
            if hi > lo:  # at least two quanta: split at the balance point
                acc, best, target = 0.0, lo, segs[si] / 2
                for i in range(lo, hi):
                    acc += delays[i]
                    best = i
                    if acc >= target:
                        break
                cuts = sorted(cuts + [best])
                placed = True
                break
        if not placed:  # every segment is a single quantum
            break
    return cuts


def partition_chain(quanta: Sequence[Quantum], stages: int) -> PartitionResult:
    """Place ``stages`` register levels optimally on a quanta chain."""
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    if not quanta:
        raise ValueError("cannot partition an empty chain")
    delays = [q.delay_ns for q in quanta]
    output_bits = quanta[-1].cut_bits

    natural = min(stages, len(quanta))
    surplus = stages - natural

    if natural == 1:
        cuts: list[int] = []
        bottleneck = sum(delays)
    else:
        bottleneck = _min_bottleneck(delays, natural)
        cuts = _greedy_boundaries(delays, bottleneck, natural)
        cuts = _split_largest(delays, cuts, natural)
        bottleneck = max(_segment_delays(delays, cuts))

    reg_bits = sum(quanta[c].cut_bits for c in cuts)
    reg_bits += output_bits  # the always-present output register
    reg_bits += surplus * output_bits  # over-pipelining: area-only registers

    return PartitionResult(
        stages=stages,
        segment_delays_ns=tuple(_segment_delays(delays, cuts)),
        critical_path_ns=bottleneck,
        register_bits=reg_bits,
        boundaries=tuple(cuts),
        surplus_registers=surplus,
    )


def brute_force_bottleneck(delays: Sequence[float], segments: int) -> float:
    """Exponential-time exact reference used by the test suite."""
    n = len(delays)
    segments = min(segments, n)
    best = float("inf")

    def rec(start: int, left: int, cur_max: float) -> None:
        nonlocal best
        if left == 1:
            rest = sum(delays[start:])
            best = min(best, max(cur_max, rest))
            return
        acc = 0.0
        for i in range(start, n - left + 1):
            acc += delays[i]
            m = max(cur_max, acc)
            if m < best:
                rec(i + 1, left - 1, m)

    rec(0, segments, 0.0)
    return best
