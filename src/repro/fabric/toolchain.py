"""Synthesis / place&route optimization-objective effects.

The paper stresses that "using a different optimization objective (speed
or area) for the synthesis and place and route tool gives vastly
different results": speed optimization replicates logic to cut logic
levels (more area) and burns slices on routing; area optimization packs
tighter but lengthens paths.  These are modelled as multiplicative
factors on combinational area and delay.
"""

from __future__ import annotations

import enum


class Objective(enum.Enum):
    """Tool optimization objective for synthesis + P&R."""

    #: Default: balanced effort.
    BALANCED = "balanced"
    #: Speed: logic replication + routing-hungry placement.
    SPEED = "speed"
    #: Area: dense packing at the cost of path length.
    AREA = "area"

    @property
    def area_scale(self) -> float:
        return {"balanced": 1.0, "speed": 1.25, "area": 0.90}[self.value]

    @property
    def delay_scale(self) -> float:
        return {"balanced": 1.0, "speed": 0.92, "area": 1.12}[self.value]
