"""FPGA technology model (Virtex-II Pro class).

This subpackage substitutes for the paper's physical EDA substrate
(Xilinx ISE 5.2i synthesis + place&route on a Virtex-II Pro -7 part).
It provides:

* :mod:`repro.fabric.device` — a catalog of Virtex-II Pro parts
  (slices, block RAMs, MULT18x18s) and speed grades;
* :mod:`repro.fabric.timing` — a calibrated combinational-delay model for
  the named subunits of the FP datapaths;
* :mod:`repro.fabric.area` — slice/LUT/FF area accounting using the
  formulas the paper states (comparator n/2, shifter n·log n/2, ...);
* :mod:`repro.fabric.netlist` — datapath descriptions as ordered chains
  of delay quanta with legal register cut points;
* :mod:`repro.fabric.retiming` — optimal pipeline-register placement
  (minimize the bottleneck stage), the model of the paper's iterative
  "break the critical path" methodology;
* :mod:`repro.fabric.synthesis` — the end-to-end flow producing
  :class:`~repro.fabric.synthesis.ImplementationReport` objects
  (stages, slices, LUTs, FFs, clock rate, MHz/slice).

Calibration anchors (paper §3, OCR-restored):
11-bit comparators reach 250 MHz; a 54-bit library adder reaches 200 MHz
with 4 pipeline stages; a 54-bit fixed-point multiply needs 7 stages for
200 MHz; the double-precision mantissa comparator reaches 220 MHz
unpipelined; a 3-mux-level shifter stage exceeds 200 MHz and 2-mux stages
go higher.
"""

from repro.fabric.device import XC2VP125, Device, SpeedGrade, get_device
from repro.fabric.netlist import (
    Datapath,
    Quantum,
    adder_datapath,
    divider_datapath,
    multiplier_datapath,
)
from repro.fabric.retiming import partition_chain
from repro.fabric.synthesis import ImplementationReport, Objective, synthesize

__all__ = [
    "XC2VP125",
    "Datapath",
    "Device",
    "ImplementationReport",
    "Objective",
    "Quantum",
    "SpeedGrade",
    "adder_datapath",
    "divider_datapath",
    "get_device",
    "multiplier_datapath",
    "partition_chain",
    "synthesize",
]
