"""Virtex-II Pro device catalog.

Resource counts follow the Xilinx DS083 data sheet family table.  The
paper targets the largest part, the XC2VP125 (speed grade -7), for its
full-device matrix-multiplication estimates; smaller parts are included
so examples can explore device-fill trade-offs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpeedGrade(enum.Enum):
    """Speed grades scale all combinational delays (lower = slower part)."""

    MINUS_5 = "-5"
    MINUS_6 = "-6"
    MINUS_7 = "-7"

    @property
    def delay_scale(self) -> float:
        """Multiplier applied to -7 reference delays."""
        return {"-7": 1.0, "-6": 1.12, "-5": 1.25}[self.value]


@dataclass(frozen=True)
class Device:
    """One FPGA part.

    Attributes
    ----------
    name:
        Part number (without package/grade suffix).
    slices:
        Total logic slices (each: 2 LUT4 + 2 FF).
    bram:
        18 Kb block RAMs.
    mult18:
        Embedded 18x18 signed multipliers.
    max_clock_mhz:
        Global clocking ceiling of the fabric (the paper: "capable of
        achieving frequencies up to 300 MHz").
    """

    name: str
    slices: int
    bram: int
    mult18: int
    max_clock_mhz: float = 300.0

    @property
    def luts(self) -> int:
        return 2 * self.slices

    @property
    def flipflops(self) -> int:
        return 2 * self.slices

    def usable_slices(self, utilization: float = 0.90) -> int:
        """Routable slice budget.

        Designs that fill a device beyond ~90% typically fail timing or
        P&R; the paper's full-device estimates implicitly leave this
        margin, and so do we.
        """
        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        return int(self.slices * utilization)


_CATALOG: dict[str, Device] = {
    d.name: d
    for d in (
        Device("XC2VP2", slices=1408, bram=12, mult18=12),
        Device("XC2VP4", slices=3008, bram=28, mult18=28),
        Device("XC2VP7", slices=4928, bram=44, mult18=44),
        Device("XC2VP20", slices=9280, bram=88, mult18=88),
        Device("XC2VP30", slices=13696, bram=136, mult18=136),
        Device("XC2VP40", slices=19392, bram=192, mult18=192),
        Device("XC2VP50", slices=23616, bram=232, mult18=232),
        Device("XC2VP70", slices=33088, bram=328, mult18=328),
        Device("XC2VP100", slices=44096, bram=444, mult18=444),
        Device("XC2VP125", slices=55616, bram=556, mult18=556),
    )
}

#: The paper's target device (XC2VP125-7ff1696).
XC2VP125 = _CATALOG["XC2VP125"]


def get_device(name: str) -> Device:
    """Look up a part by name (case-insensitive)."""
    try:
        return _CATALOG[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown device {name!r}; known parts: {known}") from None


def catalog() -> tuple[Device, ...]:
    """All known parts, smallest first."""
    return tuple(sorted(_CATALOG.values(), key=lambda d: d.slices))
