"""Area model: slices, LUTs, flip-flops, and embedded multipliers.

The slice formulas are the ones the paper states in §3 ("Comparators take
about n/2 slices for a bitwidth of n", "[the shifter] takes up about
n·log n/2 slices", "[the adder] takes about n/2 slices ... excluding
pipelining"), extended with conventional estimates for the remaining
blocks.  A Virtex-II Pro slice holds two 4-LUTs and two flip-flops.

Pipeline registers are not free but are also not a full ``bits/2`` slices
per stage: the paper notes pipelining "can exploit the unused flipflops
present in the slices" causing "only a moderate increase in area".  We
model that with :data:`FF_SHARING_FACTOR` — the fraction of latched bits
that require *new* slices rather than folding into the FFs of slices the
logic already occupies.
"""

from __future__ import annotations

import math

#: Fraction of pipeline-register bits that cost fresh slices.
FF_SHARING_FACTOR = 0.55

#: LUTs reported per occupied slice (both LUTs rarely both used).
LUTS_PER_SLICE = 1.8

#: Bits handled per MULT18x18 (unsigned operand width of a signed 18x18).
MULT18_OPERAND_BITS = 17


def comparator_slices(bits: int) -> float:
    """Magnitude comparator: about n/2 slices (paper)."""
    return bits / 2


def adder_slices(bits: int) -> float:
    """Fixed-point adder/subtractor: about n/2 slices (paper)."""
    return bits / 2


def mux_slices(bits: int) -> float:
    """One n-bit 2:1 multiplexer level: one LUT per bit -> n/2 slices."""
    return bits / 2


def shifter_slices(bits: int) -> float:
    """Barrel shifter: about n*log2(n)/2 slices (paper)."""
    return bits * max(1.0, math.log2(bits)) / 2


def priority_encoder_slices(bits: int) -> float:
    """Priority encoder: comparable to an adder of the same width."""
    return bits / 2


def const_adder_slices(bits: int) -> float:
    """Constant adder / incrementer: half an adder."""
    return bits / 4


def mult18_count(sig_bits: int) -> int:
    """Embedded multipliers needed for a sig_bits x sig_bits product."""
    per_side = math.ceil(sig_bits / MULT18_OPERAND_BITS)
    return per_side * per_side


def multiplier_tree_slices(sig_bits: int) -> float:
    """Fabric slices for the partial-product adder tree around the MULT18s.

    One aligned add per extra partial product, each roughly 2*sig_bits
    wide: (k^2 - 1) * sig_bits slices with k = blocks per side — zero for
    single-block products that fit one MULT18 pair.
    """
    k = math.ceil(sig_bits / MULT18_OPERAND_BITS)
    if k <= 1:
        return 0.0
    return (k * k - 1) * sig_bits / 2


def divider_array_slices(sig_bits: int) -> float:
    """Digit-recurrence divider array: one subtractor row per quotient bit.

    Rows x (row subtractor + quotient mux) — the quadratic growth is why
    FP dividers dwarf the other units on 2004-era fabrics.
    """
    rows = sig_bits + 3
    return rows * (adder_slices(sig_bits) + sig_bits / 4)


def register_slices(bits: int, stages: int) -> float:
    """Slice cost of ``stages`` pipeline cuts each latching ``bits`` bits."""
    if stages <= 0:
        return 0.0
    return stages * bits / 2 * FF_SHARING_FACTOR


def slices_to_luts(slices: float) -> int:
    """Estimated LUT usage for a slice count."""
    return round(slices * LUTS_PER_SLICE)
