"""The end-to-end "synthesis" flow for FP datapaths.

:func:`synthesize` plays the role of ISE synthesis + place & route: it
takes a :class:`~repro.fabric.netlist.Datapath`, a pipeline depth, a tool
objective and a speed grade, places the registers optimally
(:mod:`repro.fabric.retiming`) and returns an
:class:`ImplementationReport` with the quantities the paper tabulates —
pipeline stages, slices, LUTs, flip-flops, clock rate, and the
throughput/area figure of merit (MHz/slice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric import area, timing
from repro.fabric.device import SpeedGrade
from repro.fabric.netlist import Datapath
from repro.fabric.retiming import PartitionResult, partition_chain
from repro.fabric.toolchain import Objective
from repro.fp.format import FPFormat

#: Fabric global-clock ceiling for the reference (-7) grade.
FABRIC_CLOCK_CEILING_MHZ = 300.0


@dataclass(frozen=True)
class ImplementationReport:
    """One implementation point of one unit — a row of Tables 1/2.

    ``clock_mhz`` is the post-P&R clock rate; ``freq_per_area`` is the
    paper's throughput/area metric in MHz/slice.  ``latency_cycles``
    equals ``stages`` (initiation interval is always 1).
    """

    unit: str
    fmt: FPFormat
    stages: int
    slices: int
    luts: int
    flipflops: int
    clock_mhz: float
    mult18: int
    objective: Objective
    grade: SpeedGrade
    critical_path_ns: float

    @property
    def freq_per_area(self) -> float:
        """Throughput per unit area (MHz/slice), the paper's metric."""
        return self.clock_mhz / self.slices

    @property
    def latency_cycles(self) -> int:
        return self.stages

    @property
    def latency_ns(self) -> float:
        return self.stages * 1000.0 / self.clock_mhz

    @property
    def throughput_mops(self) -> float:
        """Results per microsecond at full issue (II = 1)."""
        return self.clock_mhz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.unit}: {self.stages} stages, {self.slices} slices, "
            f"{self.clock_mhz:.1f} MHz, {self.freq_per_area:.3f} MHz/slice"
        )


def synthesize(
    datapath: Datapath,
    stages: int,
    objective: Objective = Objective.BALANCED,
    grade: SpeedGrade = SpeedGrade.MINUS_7,
    ff_sharing: float | None = None,
) -> ImplementationReport:
    """Implement ``datapath`` with ``stages`` register levels.

    ``ff_sharing`` overrides the fraction of pipeline-register bits that
    cost fresh slices (default: :data:`repro.fabric.area.
    FF_SHARING_FACTOR`); the register-cost ablation sweeps it.
    """
    partition: PartitionResult = partition_chain(datapath.quanta, stages)

    critical = partition.critical_path_ns * grade.delay_scale * objective.delay_scale
    clock = timing.achievable_mhz(
        critical, FABRIC_CLOCK_CEILING_MHZ / grade.delay_scale
    )

    if ff_sharing is None:
        ff_sharing = area.FF_SHARING_FACTOR
    if not 0.0 <= ff_sharing <= 1.0:
        raise ValueError(f"ff_sharing must be in [0, 1], got {ff_sharing}")
    comb_slices = datapath.comb_slices * objective.area_scale
    reg_slices = partition.register_bits / 2 * ff_sharing
    slices = max(1, round(comb_slices + reg_slices))

    return ImplementationReport(
        unit=datapath.name,
        fmt=datapath.fmt,
        stages=stages,
        slices=slices,
        luts=area.slices_to_luts(comb_slices),
        flipflops=partition.register_bits,
        clock_mhz=clock,
        mult18=datapath.mult18,
        objective=objective,
        grade=grade,
        critical_path_ns=critical,
    )


def sweep_stages(
    datapath: Datapath,
    max_stages: int | None = None,
    objective: Objective = Objective.BALANCED,
    grade: SpeedGrade = SpeedGrade.MINUS_7,
) -> list[ImplementationReport]:
    """Implement every pipeline depth from 1 to ``max_stages``.

    ``max_stages`` defaults to a few levels past the natural maximum so
    the over-pipelining dip in MHz/slice is visible, as in Figure 2.
    """
    if max_stages is None:
        max_stages = datapath.natural_max_stages + 4
    return [
        synthesize(datapath, s, objective=objective, grade=grade)
        for s in range(1, max_stages + 1)
    ]
