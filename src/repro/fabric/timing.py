"""Combinational delay model for the FP datapath subunits.

All delays are in nanoseconds on a Virtex-II Pro **-7** part; other speed
grades scale them (:class:`repro.fabric.device.SpeedGrade`).  The model is
calibrated against the operating points the paper reports (module list
below); it is *not* a transistor-level model — its job is to make the
frequency-versus-pipelining behaviour (saturation, per-format ceilings,
interior throughput/area optimum) emerge from the same mechanisms as on
the real device: atomic logic elements bound the stage period from below,
and total path delay divided by the stage count bounds it from above.

Calibration anchors (paper §3):

====================================  =========================================
Anchor                                Model value
====================================  =========================================
comparator, width <= 11 bits          <= 3.0 ns  -> 250 MHz single-stage
52-bit mantissa comparator            ~3.55 ns   -> 220 MHz single-stage
3 mux levels per stage                ~4.0 ns    -> 200 MHz; 2 levels -> 273 MHz
54-bit adder, 4 stages                4.0 ns/stage -> 200 MHz
54-bit multiplier, 7 stages           ~4.0 ns/stage -> 200 MHz
====================================  =========================================

The clocking overhead (clock-to-out + setup + skew) added to every stage
is :data:`REGISTER_OVERHEAD_NS`.
"""

from __future__ import annotations

import math

#: Clock-to-out + setup + clock skew charged to every pipeline stage.
REGISTER_OVERHEAD_NS = 1.0

#: One 4-input LUT + average local route (the floor for any logic level).
LUT_LEVEL_NS = 1.1

#: One level of a wide multiplexer (MUXF5/F6-assisted), including route.
MUX_LEVEL_NS = 1.33

#: Delay through one MULT18x18 primitive including input/output routing —
#: the atomic (non-pipelinable) floor inside the mantissa multiplier.
MULT18_ATOMIC_NS = 2.8

#: Atomic floor of one carry chunk inside a pipelined adder.
CARRY_CHUNK_ATOMIC_NS = 1.5


def comparator_delay(bits: int) -> float:
    """Carry-chain magnitude comparator.

    Shallow slope: the carry chain is fast, the constant is dominated by
    LUT levels and routing.  11 bits -> 3.0 ns (250 MHz), 52 bits ->
    3.55 ns (220 MHz), matching the paper's two comparator anchors.
    """
    return 2.85 + 0.0134 * bits


def small_comparator_delay(bits: int) -> float:
    """Exponent-width comparators (the denormalizer's zero-detect).

    These are narrow (<= 11 bits for all paper formats), and a bit faster
    than the generic model at tiny widths so that single-precision units
    retain a slightly higher ceiling, as observed.
    """
    return 2.0 + 0.09 * bits


def adder_delay(bits: int) -> float:
    """Library fixed-point adder/subtractor (carry chain + fabric route).

    Calibrated to 16.0 ns at 54 bits so that 4 pipeline stages yield a
    4 ns critical path -> 200 MHz (paper anchor).
    """
    return 1.2 + 0.274 * bits


def const_adder_delay(bits: int) -> float:
    """Constant adder / incrementer (rounding and exponent-adjust logic)."""
    return 0.8 + 0.06 * bits


def small_adder_delay(bits: int) -> float:
    """Narrow adder/subtractor on the exponent path.

    Exponent-width adders sit on short local routes and do not pay the
    long-line routing constant of the wide library adders, so they use a
    separate, shallower model.
    """
    return 1.0 + 0.12 * bits


def priority_encoder_delay(bits: int) -> float:
    """Priority encoder.

    The paper calls this "a critical subunit for large bitwidths": at 54
    bits it must be broken into two smaller encoders plus a small adder to
    exceed 200 MHz.  Unsplit 54-bit -> ~6.5 ns (~133 MHz); split halves
    are ~3.25 ns (-> ~235 MHz), matching that narrative.
    """
    return 2.0 + 0.083 * bits


def multiplier_delay(bits: int) -> float:
    """Fixed-point mantissa multiplier (MULT18x18 array + adder tree).

    53 bits -> 27.9 ns so that 7 stages yield ~4 ns -> ~200 MHz (anchor).
    """
    return 4.0 + 0.45 * bits


def divider_row_delay(bits: int) -> float:
    """One subtract/compare row of the digit-recurrence divider array.

    Each row is a short carry chain plus the quotient-bit select mux; rows
    are the natural pipeline cut points, so a row is atomic.
    """
    return 0.8 + 0.04 * bits


def divider_rows(bits: int) -> int:
    """Quotient bits produced by the recurrence (significand + GRS)."""
    return bits + 3


def shifter_levels(bits: int) -> int:
    """Mux levels of a barrel shifter over ``bits`` positions."""
    return max(1, math.ceil(math.log2(bits)))


def shifter_delay(bits: int) -> float:
    """Total combinational delay of an unpipelined barrel shifter."""
    return shifter_levels(bits) * MUX_LEVEL_NS


def xor_delay() -> float:
    """Sign XOR and similar single-LUT logic."""
    return 0.5


def period_to_mhz(period_ns: float) -> float:
    """Convert a clock period to a frequency."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1000.0 / period_ns


def achievable_mhz(critical_path_ns: float, max_clock_mhz: float = 300.0) -> float:
    """Clock rate for a critical path, capped by the global clock ceiling."""
    return min(period_to_mhz(critical_path_ns + REGISTER_OVERHEAD_NS), max_clock_mhz)
